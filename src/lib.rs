//! Umbrella crate for the DBDC reproduction workspace.
//!
//! Re-exports the public API of all member crates so the examples and
//! integration tests can use one coherent namespace. Downstream users should
//! depend on the individual crates (`dbdc`, `dbdc-cluster`, ...) directly.

pub use dbdc;
pub use dbdc_cluster as cluster;
pub use dbdc_datagen as datagen;
pub use dbdc_geom as geom;
pub use dbdc_index as index;
