//! **DBDC — Density Based Distributed Clustering** (Januzaj, Kriegel,
//! Pfeifle; EDBT 2004), reproduced in Rust.
//!
//! DBDC clusters horizontally distributed data without centralizing it:
//!
//! 1. every client site clusters its own data with DBSCAN
//!    ([`dbdc_cluster::dbscan()`]), enhanced to extract *specific core points*
//!    on the fly ([`dbdc_cluster::scp`]);
//! 2. each site condenses its clusters into a [`local_model`] — a set of
//!    representatives `(r, ε_r)`, built either as `REP_Scor` (the specific
//!    core points themselves) or `REP_kMeans` (k-means-refined centroids);
//! 3. the server clusters all representatives with DBSCAN
//!    (`MinPts_global = 2`, `Eps_global ≈ 2·Eps_local`) into a
//!    [`global_model`];
//! 4. the global model is broadcast and every site [`relabel`]s its objects,
//!    merging local clusters and upgrading covered noise.
//!
//! [`runtime`] orchestrates the whole protocol (sequentially, matching the
//! paper's cost model, or threaded); [`quality`] implements the paper's
//! `P^I`/`P^II` object quality functions and `Q_DBDC`; [`wire`] gives the
//! models an exact byte cost; [`partition`] distributes datasets onto sites;
//! [`network`] converts bytes into simulated transfer times.
//!
//! # Quickstart
//!
//! ```
//! use dbdc::{DbdcParams, EpsGlobal, Partitioner, run_dbdc, central_dbscan};
//! use dbdc::quality::{q_dbdc, ObjectQuality};
//!
//! let generated = dbdc_datagen::dataset_c(42);
//! let params = DbdcParams::new(1.6, 5)
//!     .with_eps_global(EpsGlobal::MultipleOfLocal(2.0));
//!
//! // Distributed clustering over 4 simulated sites.
//! let outcome = run_dbdc(&generated.data, &params,
//!                        Partitioner::RandomEqual { seed: 7 }, 4);
//!
//! // Compare against the central reference.
//! let (central, _) = central_dbscan(&generated.data, &params);
//! let report = q_dbdc(&outcome.assignment, &central.clustering,
//!                     ObjectQuality::PII);
//! assert!(report.q > 0.9);
//! ```

pub mod catalog;
pub mod global_model;
pub mod local_model;
pub mod network;
pub mod observe;
pub mod params;
pub mod partition;
pub mod pdbscan;
pub mod quality;
pub mod rachet;
pub mod relabel;
pub mod runtime;
pub mod streaming;
pub mod wire;

pub use catalog::{Federation, SiteCatalog};
pub use global_model::{build_global_model, build_global_model_observed, GlobalModel, GlobalRep};
pub use local_model::{build_local_model, LocalModel, Representative};
pub use network::{NetworkConfigError, NetworkModel};
pub use observe::dbdc_run_report;
pub use params::{DbdcParams, EpsGlobal, LocalModelKind};
pub use partition::Partitioner;
pub use pdbscan::{run_pdbscan, PdbscanOutcome};
pub use quality::{cluster_report, q_dbdc, ClusterMatch, ObjectQuality, QualityReport};
pub use rachet::{run_rachet, ClusterSummary, RachetOutcome};
pub use relabel::{relabel_site, relabel_site_observed};
pub use runtime::{
    central_dbscan, central_dbscan_recorded, run_dbdc, run_dbdc_recorded, run_dbdc_threaded,
    run_dbdc_threaded_recorded, DbdcOutcome, PhaseThreads, Timings,
};
pub use streaming::{ClientSession, ServerSession};
