//! A RACHET-style hierarchical distributed clustering comparator.
//!
//! The paper's Related Work (Section 2.2, reference \[19\]) describes
//! RACHET (Samatova et al. 2002): each site builds a clustering *hierarchy*
//! locally, transmits per-node descriptive statistics (centroid
//! approximations), and the server merges the hierarchies. The DBDC paper
//! positions itself against this family — density-based flat models vs
//! centroid-based hierarchical ones — so this module implements a compact
//! member of that family to make the comparison measurable:
//!
//! * each site runs single-link clustering (the hierarchical algorithm of
//!   the paper's Section 4 discussion) and cuts its dendrogram at the
//!   local scale;
//! * each local cluster is condensed into a `(centroid, radius, count)`
//!   summary — the "descriptive statistics" of the RACHET scheme;
//! * the server merges summaries agglomeratively: two summaries join when
//!   their centroid distance is at most the merge threshold plus both
//!   radii would allow their point sets to touch;
//! * sites relabel their clusters from the merged summary ids. Local noise
//!   stays noise — centroid summaries carry no validity region, so unlike
//!   DBDC's ε-ranges they cannot adopt foreign noise. The `abl-rachet`
//!   ablation quantifies exactly that difference.

use crate::params::DbdcParams;
use dbdc_cluster::single_link;
use dbdc_geom::{Clustering, Dataset, Euclidean, Label, Metric};
use std::time::{Duration, Instant};

/// One transmitted cluster summary.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSummary {
    /// Origin site.
    pub site: u32,
    /// Local cluster id on the origin site.
    pub local_cluster: u32,
    /// Cluster centroid.
    pub centroid: Vec<f64>,
    /// Maximum distance of a member from the centroid.
    pub radius: f64,
    /// Number of members.
    pub count: usize,
}

/// The outcome of the RACHET-style run.
#[derive(Debug, Clone)]
pub struct RachetOutcome {
    /// Final clustering of all points in original order.
    pub clustering: Clustering,
    /// Number of transmitted summaries.
    pub n_summaries: usize,
    /// Bytes transmitted (centroid coords + radius + count per summary).
    pub bytes_up: usize,
    /// Per-site local phase times.
    pub local_times: Vec<Duration>,
    /// Server merge time.
    pub merge_time: Duration,
}

impl RachetOutcome {
    /// Cost-model total: slowest local phase plus the merge.
    pub fn total(&self) -> Duration {
        self.local_times
            .iter()
            .copied()
            .max()
            .unwrap_or(Duration::ZERO)
            + self.merge_time
    }
}

/// Runs the comparator: single-link locally (cut at `params.eps_local`,
/// minimum cluster size `params.min_pts_local`), centroid summaries merged
/// centrally when centroids are within `merge_eps` (use
/// `2·Eps_local`-style values for parity with DBDC).
pub fn run_rachet(
    data: &Dataset,
    params: &DbdcParams,
    site_assignment: &[usize],
    n_sites: usize,
    merge_eps: f64,
) -> RachetOutcome {
    let (parts, back) = data.partition(n_sites, site_assignment);
    let mut summaries: Vec<ClusterSummary> = Vec::new();
    let mut site_clusterings: Vec<Clustering> = Vec::with_capacity(n_sites);
    let mut local_times = Vec::with_capacity(n_sites);
    for (site, part) in parts.iter().enumerate() {
        let t0 = Instant::now();
        let clustering = if part.is_empty() {
            Clustering::all_noise(0)
        } else {
            let dendrogram = single_link(part, &Euclidean);
            dendrogram.cut(params.eps_local, params.min_pts_local)
        };
        for c in 0..clustering.n_clusters() {
            let members = clustering.members(c);
            let dim = part.dim();
            let mut centroid = vec![0.0; dim];
            for &m in &members {
                for (acc, &v) in centroid.iter_mut().zip(part.point(m)) {
                    *acc += v;
                }
            }
            for v in centroid.iter_mut() {
                *v /= members.len() as f64;
            }
            let radius = members
                .iter()
                .map(|&m| Euclidean.dist(&centroid, part.point(m)))
                .fold(0.0f64, f64::max);
            summaries.push(ClusterSummary {
                site: site as u32,
                local_cluster: c,
                centroid,
                radius,
                count: members.len(),
            });
        }
        site_clusterings.push(clustering);
        local_times.push(t0.elapsed());
    }

    // Server: single-link over the summaries where the inter-summary
    // distance is the centroid gap minus both radii (how far apart the two
    // point clouds can be at their closest, optimistically).
    let t1 = Instant::now();
    let k = summaries.len();
    let mut dsu: Vec<usize> = (0..k).collect();
    fn find(dsu: &mut [usize], mut x: usize) -> usize {
        while dsu[x] != x {
            dsu[x] = dsu[dsu[x]];
            x = dsu[x];
        }
        x
    }
    for i in 0..k {
        for j in (i + 1)..k {
            let gap = Euclidean.dist(&summaries[i].centroid, &summaries[j].centroid)
                - summaries[i].radius
                - summaries[j].radius;
            if gap <= merge_eps {
                let (a, b) = (find(&mut dsu, i), find(&mut dsu, j));
                if a != b {
                    dsu[a] = b;
                }
            }
        }
    }
    let merge_time = t1.elapsed();

    // Relabel: every local cluster takes its summary's merged root id.
    let mut labels = vec![Label::Noise; data.len()];
    for (si, ids) in back.iter().enumerate() {
        // summary lookup for this site: local_cluster -> summary index.
        for (pos, &orig) in ids.iter().enumerate() {
            if let Label::Cluster(lc) = site_clusterings[si].label(pos as u32) {
                let summary_idx = summaries
                    .iter()
                    .position(|s| s.site == si as u32 && s.local_cluster == lc)
                    .expect("every local cluster has a summary");
                labels[orig as usize] = Label::Cluster(find(&mut dsu, summary_idx) as u32);
            }
        }
    }

    let dim = data.dim();
    let bytes_up = summaries.len() * (dim * 8 + 8 + 8);
    RachetOutcome {
        clustering: Clustering::from_labels(labels),
        n_summaries: summaries.len(),
        bytes_up,
        local_times,
        merge_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partitioner;
    use crate::quality::{q_dbdc, ObjectQuality};
    use crate::runtime::{central_dbscan, run_dbdc};
    use dbdc_datagen::{dataset_b, dataset_c};

    #[test]
    fn recovers_clean_clusters() {
        let g = dataset_c(61);
        let params = DbdcParams::new(g.suggested_eps, g.suggested_min_pts);
        let assignment = Partitioner::RandomEqual { seed: 61 }.assign(&g.data, 4);
        let out = run_rachet(&g.data, &params, &assignment, 4, 2.0 * params.eps_local);
        // Clean, well-separated clusters: the centroid scheme works fine.
        assert_eq!(out.clustering.n_clusters(), 3);
        let (central, _) = central_dbscan(&g.data, &params);
        let q = q_dbdc(&out.clustering, &central.clustering, ObjectQuality::PII);
        assert!(q.q > 0.85, "clean-data quality {:.3}", q.q);
        assert!(out.n_summaries >= 3);
        assert!(out.bytes_up > 0);
    }

    #[test]
    fn dbdc_at_least_matches_rachet_on_dataset_b() {
        // On data set B (sparse noise) both schemes hold up; DBDC must not
        // trail the hierarchical comparator.
        let g = dataset_b(62);
        let params = DbdcParams::new(g.suggested_eps, g.suggested_min_pts)
            .with_eps_global(crate::params::EpsGlobal::MultipleOfLocal(2.0));
        let (central, _) = central_dbscan(&g.data, &params);
        let assignment = Partitioner::RandomEqual { seed: 62 }.assign(&g.data, 4);
        let rachet = run_rachet(&g.data, &params, &assignment, 4, 2.0 * params.eps_local);
        let dbdc = run_dbdc(&g.data, &params, Partitioner::RandomEqual { seed: 62 }, 4);
        let q_r = q_dbdc(&rachet.clustering, &central.clustering, ObjectQuality::PII).q;
        let q_d = q_dbdc(&dbdc.assignment, &central.clustering, ObjectQuality::PII).q;
        assert!(
            q_d + 1e-9 >= q_r,
            "DBDC {q_d:.3} trails RACHET-style {q_r:.3}"
        );
    }

    #[test]
    fn noise_bridge_breaks_single_link_but_not_dbdc() {
        // The comparison the paper's Section 4 predicts: single link "is
        // very sensitive to noise" — a thin stepping-stone bridge of noise
        // chains two distinct clusters at the merge scale, while density-
        // based clustering ignores it (bridge points never reach MinPts).
        use dbdc_datagen::{ClusterSpec, MixtureSpec, Profile};
        let spec = MixtureSpec {
            clusters: vec![
                ClusterSpec {
                    center: [25.0, 50.0],
                    radii: [4.0, 4.0],
                    angle: 0.0,
                    n: 1_200,
                    profile: Profile::Uniform,
                },
                ClusterSpec {
                    center: [75.0, 50.0],
                    radii: [4.0, 4.0],
                    angle: 0.0,
                    n: 1_200,
                    profile: Profile::Uniform,
                },
            ],
            noise: 100,
            bounds: [[0.0, 100.0], [0.0, 100.0]],
        };
        let mut g = spec.generate(64);
        // The stepping stones: a line of points every 0.4 units joining the
        // two clusters — each has ~5 neighbors within eps 1.0, below
        // MinPts 6, but single link chains through them even after the
        // round-robin split halves the line's density.
        let mut data = g.data.clone();
        let mut x = 29.5;
        while x < 71.0 {
            data.push(&[x, 50.0]);
            x += 0.4;
        }
        g.data = data;
        let params =
            DbdcParams::new(1.0, 6).with_eps_global(crate::params::EpsGlobal::MultipleOfLocal(2.0));
        let (central, _) = central_dbscan(&g.data, &params);
        assert_eq!(
            central.clustering.n_clusters(),
            2,
            "DBSCAN sees two clusters"
        );
        let assignment = Partitioner::RoundRobin.assign(&g.data, 2);
        let rachet = run_rachet(&g.data, &params, &assignment, 2, 2.0 * params.eps_local);
        let dbdc = run_dbdc(&g.data, &params, Partitioner::RoundRobin, 2);
        let q_r = q_dbdc(&rachet.clustering, &central.clustering, ObjectQuality::PII).q;
        let q_d = q_dbdc(&dbdc.assignment, &central.clustering, ObjectQuality::PII).q;
        assert!(
            q_d > q_r + 0.1,
            "DBDC {q_d:.3} should clearly beat the single-link comparator {q_r:.3} under a noise bridge"
        );
    }

    #[test]
    fn summaries_are_tiny() {
        let g = dataset_c(63);
        let params = DbdcParams::new(g.suggested_eps, g.suggested_min_pts);
        let assignment = Partitioner::RandomEqual { seed: 63 }.assign(&g.data, 4);
        let out = run_rachet(&g.data, &params, &assignment, 4, 2.0 * params.eps_local);
        assert!(out.bytes_up < 10_000, "bytes {}", out.bytes_up);
        assert!(out.total() >= out.merge_time);
    }

    #[test]
    fn empty_input() {
        let d = Dataset::new(2);
        let params = DbdcParams::new(1.0, 3);
        let out = run_rachet(&d, &params, &[], 2, 2.0);
        assert!(out.clustering.is_empty());
        assert_eq!(out.n_summaries, 0);
    }
}
