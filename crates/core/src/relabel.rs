//! Relabeling of the local clustering from the global model (Section 7).
//!
//! After the server broadcasts the global model, every site independently
//! relabels its objects:
//!
//! * if a local object `o` lies within the ε_r-range of a global
//!   representative `r`, `o` joins `r`'s global cluster (the nearest
//!   qualifying representative wins when several cover `o`);
//! * this both merges formerly independent local clusters (their
//!   representatives share a global id) and upgrades local noise that a
//!   remote representative covers (objects `A`, `B` of the paper's
//!   Figure 5);
//! * objects covered by no representative remain noise (object `C`).
//!
//! Locally clustered objects are guaranteed covered by a representative of
//! their own cluster (the ε-range constructions of Section 5 ensure it; see
//! the coverage tests in `local_model`), but a defensive fallback assigns
//! stragglers — e.g. under float round-off — to the global cluster of their
//! local cluster's first representative.

use crate::global_model::GlobalModel;
use dbdc_geom::{Clustering, Dataset, Euclidean, Label, Metric};
use dbdc_index::{GridIndex, NeighborIndex};

/// Relabels one site's objects against the global model.
///
/// `local` is the site's own DBSCAN clustering (used for the fallback and
/// for noise identification); the result assigns each of the site's points
/// a **global** cluster id or noise.
pub fn relabel_site(site_data: &Dataset, local: &Clustering, global: &GlobalModel) -> Clustering {
    relabel_site_observed(site_data, local, global, None)
}

/// [`relabel_site`] with an optional [`dbdc_obs::CounterSheet`] recording
/// the range queries and distance evaluations against the representative
/// index.
pub fn relabel_site_observed(
    site_data: &Dataset,
    local: &Clustering,
    global: &GlobalModel,
    sheet: Option<&std::sync::Arc<dbdc_obs::CounterSheet>>,
) -> Clustering {
    assert_eq!(
        site_data.len(),
        local.len(),
        "local clustering must cover the site's data"
    );
    if global.reps.is_empty() || site_data.is_empty() {
        return Clustering::all_noise(site_data.len());
    }

    // Spatial index over the representative points: query with the largest
    // ε-range, then filter each candidate by its own range.
    let mut rep_points = Dataset::new(global.dim);
    for r in &global.reps {
        rep_points.push(r.point.coords());
    }
    let max_range = global
        .reps
        .iter()
        .map(|r| r.eps_range)
        .fold(0.0f64, f64::max);
    let mut grid = GridIndex::new(&rep_points, Euclidean, max_range.max(f64::MIN_POSITIVE));
    if let Some(s) = sheet {
        grid = grid.observed(s.clone());
    }

    let mut labels = Vec::with_capacity(site_data.len());
    let mut candidates = Vec::new();
    for (i, p) in site_data.iter().enumerate() {
        grid.range(p, max_range, &mut candidates);
        let mut best: Option<(f64, u32)> = None;
        for &c in &candidates {
            let rep = &global.reps[c as usize];
            let d = Euclidean.dist(p, rep.point.coords());
            if d <= rep.eps_range && best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, rep.global_cluster));
            }
        }
        let label = match best {
            Some((_, g)) => Label::Cluster(g),
            None => match local.label(i as u32) {
                Label::Noise => Label::Noise,
                Label::Cluster(lc) => {
                    // Defensive fallback: first representative of the local
                    // cluster.
                    global
                        .reps
                        .iter()
                        .find(|r| r.local_cluster == lc)
                        .map(|r| Label::Cluster(r.global_cluster))
                        .unwrap_or(Label::Noise)
                }
            },
        };
        labels.push(label);
    }
    // NOTE: ids are global cluster ids shared across sites; do not densify
    // here or sites would disagree. Densification happens when the runtime
    // assembles the full assignment.
    Clustering::from_labels_verbatim(labels, global.n_clusters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global_model::GlobalRep;
    use dbdc_geom::Point;

    fn global(reps: Vec<(f64, f64, f64, u32)>) -> GlobalModel {
        let n = reps.iter().map(|r| r.3 + 1).max().unwrap_or(0);
        GlobalModel {
            dim: 2,
            reps: reps
                .into_iter()
                .enumerate()
                .map(|(i, (x, y, eps, g))| GlobalRep {
                    point: Point::xy(x, y),
                    eps_range: eps,
                    site: 0,
                    local_cluster: i as u32,
                    global_cluster: g,
                })
                .collect(),
            n_clusters: n,
            eps_global: 2.0,
        }
    }

    #[test]
    fn figure_5_scenario() {
        // R1, R2 are local representatives of two local clusters; R3 comes
        // from another site. All three belong to global cluster 0. Objects
        // A, B were local noise inside R3's range; C stays outside.
        let mut d = Dataset::new(2);
        d.push(&[0.0, 0.0]); // in R1's range (local cluster 0)
        d.push(&[3.0, 0.0]); // in R2's range (local cluster 1)
        d.push(&[6.2, 0.0]); // A: local noise, in R3's range
        d.push(&[6.8, 0.0]); // B: local noise, in R3's range
        d.push(&[20.0, 0.0]); // C: local noise, outside everything
        let local = Clustering::from_labels(vec![
            Label::Cluster(0),
            Label::Cluster(1),
            Label::Noise,
            Label::Noise,
            Label::Noise,
        ]);
        let g = global(vec![
            (0.0, 0.0, 1.5, 0), // R1
            (3.0, 0.0, 1.5, 0), // R2
            (6.5, 0.0, 1.5, 0), // R3 (from another site)
        ]);
        let relabeled = relabel_site(&d, &local, &g);
        assert_eq!(relabeled.label(0), Label::Cluster(0));
        assert_eq!(relabeled.label(1), Label::Cluster(0));
        assert_eq!(
            relabeled.label(2),
            Label::Cluster(0),
            "A joins the global cluster"
        );
        assert_eq!(
            relabeled.label(3),
            Label::Cluster(0),
            "B joins the global cluster"
        );
        assert_eq!(relabeled.label(4), Label::Noise, "C stays noise");
    }

    #[test]
    fn merges_two_local_clusters() {
        let mut d = Dataset::new(2);
        d.push(&[0.0, 0.0]);
        d.push(&[2.0, 0.0]);
        let local = Clustering::from_labels(vec![Label::Cluster(0), Label::Cluster(1)]);
        // Both representatives map to the same global cluster.
        let g = global(vec![(0.0, 0.0, 1.0, 0), (2.0, 0.0, 1.0, 0)]);
        let r = relabel_site(&d, &local, &g);
        assert_eq!(r.label(0), r.label(1));
    }

    #[test]
    fn nearest_covering_representative_wins() {
        let mut d = Dataset::new(2);
        d.push(&[1.0, 0.0]);
        let local = Clustering::from_labels(vec![Label::Cluster(0)]);
        // Two overlapping representatives from different global clusters;
        // the nearer one (at x=1.4) wins.
        let g = global(vec![(0.0, 0.0, 2.0, 0), (1.4, 0.0, 2.0, 1)]);
        let r = relabel_site(&d, &local, &g);
        assert_eq!(r.label(0), Label::Cluster(1));
    }

    #[test]
    fn fallback_assigns_uncovered_cluster_member() {
        let mut d = Dataset::new(2);
        d.push(&[10.0, 10.0]); // outside every ε-range
        let local = Clustering::from_labels(vec![Label::Cluster(0)]);
        let g = global(vec![(0.0, 0.0, 1.0, 3)]);
        // local_cluster of that rep is 0 (enumerate index) -> fallback hits;
        // relabel_site keeps global ids verbatim.
        let r = relabel_site(&d, &local, &g);
        assert_eq!(r.label(0), Label::Cluster(3));
    }

    #[test]
    fn empty_global_model_keeps_everything_noise() {
        let mut d = Dataset::new(2);
        d.push(&[0.0, 0.0]);
        let local = Clustering::from_labels(vec![Label::Cluster(0)]);
        let g = GlobalModel {
            dim: 2,
            reps: vec![],
            n_clusters: 0,
            eps_global: 2.0,
        };
        let r = relabel_site(&d, &local, &g);
        assert!(r.label(0).is_noise());
    }

    #[test]
    fn boundary_inclusion_is_closed() {
        let mut d = Dataset::new(2);
        d.push(&[1.5, 0.0]); // exactly on the ε-range boundary
        let local = Clustering::from_labels(vec![Label::Noise]);
        let g = global(vec![(0.0, 0.0, 1.5, 0)]);
        let r = relabel_site(&d, &local, &g);
        assert_eq!(r.label(0), Label::Cluster(0));
    }
}
