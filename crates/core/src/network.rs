//! Simulated network cost model.
//!
//! The paper motivates DBDC with limited-bandwidth links (telescopes
//! producing 1 GB/hour, WAN-separated company sites) but evaluates on a
//! single machine, reporting only CPU time. This module supplies the
//! missing piece for the transmission-cost ablation: a simple
//! latency + bandwidth model converting the wire byte counts into simulated
//! transfer times, so experiments can report end-to-end times under
//! different link assumptions.

use std::time::Duration;

/// Rejected link configurations — a typo'd or hostile `--link` must
/// surface as a validation error, never a panic inside the cost model.
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkConfigError {
    /// Bandwidth is zero, negative, or non-finite.
    BadBandwidth(f64),
    /// Latency is negative or non-finite.
    BadLatency(f64),
    /// A link spec string that is neither a preset nor
    /// `BYTES_PER_SEC:LATENCY_MS`.
    BadSpec(String),
}

impl std::fmt::Display for NetworkConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkConfigError::BadBandwidth(b) => {
                write!(f, "bandwidth must be a positive finite number, got {b}")
            }
            NetworkConfigError::BadLatency(l) => {
                write!(
                    f,
                    "latency must be a non-negative finite number, got {l} ms"
                )
            }
            NetworkConfigError::BadSpec(s) => write!(
                f,
                "link spec {s:?} is neither lan|wan|slow_uplink nor BYTES_PER_SEC:LATENCY_MS"
            ),
        }
    }
}

impl std::error::Error for NetworkConfigError {}

/// A point-to-point link model: fixed per-message latency plus serialized
/// throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Sustained throughput in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// One-way per-message latency.
    pub latency: Duration,
}

impl NetworkModel {
    /// A validated link model. This is the constructor CLI/config paths
    /// must use: it rejects the degenerate bandwidths and latencies that
    /// the cost-model arithmetic cannot price.
    pub fn new(
        bandwidth_bytes_per_sec: f64,
        latency: Duration,
    ) -> Result<Self, NetworkConfigError> {
        if !(bandwidth_bytes_per_sec.is_finite() && bandwidth_bytes_per_sec > 0.0) {
            return Err(NetworkConfigError::BadBandwidth(bandwidth_bytes_per_sec));
        }
        Ok(Self {
            bandwidth_bytes_per_sec,
            latency,
        })
    }

    /// Parses a link spec: one of the presets (`lan`, `wan`,
    /// `slow_uplink`) or a custom `BYTES_PER_SEC:LATENCY_MS` pair, e.g.
    /// `125000:250` for the telescope uplink.
    pub fn from_spec(spec: &str) -> Result<Self, NetworkConfigError> {
        match spec {
            "lan" => return Ok(Self::lan()),
            "wan" => return Ok(Self::wan()),
            "slow_uplink" => return Ok(Self::slow_uplink()),
            _ => {}
        }
        let Some((bw, lat)) = spec.split_once(':') else {
            return Err(NetworkConfigError::BadSpec(spec.to_string()));
        };
        let bw: f64 = bw
            .trim()
            .parse()
            .map_err(|_| NetworkConfigError::BadSpec(spec.to_string()))?;
        let lat_ms: f64 = lat
            .trim()
            .parse()
            .map_err(|_| NetworkConfigError::BadSpec(spec.to_string()))?;
        if !(lat_ms.is_finite() && lat_ms >= 0.0) {
            return Err(NetworkConfigError::BadLatency(lat_ms));
        }
        let latency = Duration::try_from_secs_f64(lat_ms / 1e3)
            .map_err(|_| NetworkConfigError::BadLatency(lat_ms))?;
        Self::new(bw, latency)
    }
    /// A LAN-ish link: 1 Gbit/s, 0.2 ms latency.
    pub fn lan() -> Self {
        Self {
            bandwidth_bytes_per_sec: 125_000_000.0,
            latency: Duration::from_micros(200),
        }
    }

    /// A WAN link: 50 Mbit/s, 30 ms latency — the "company sites on two
    /// continents" scenario of the introduction.
    pub fn wan() -> Self {
        Self {
            bandwidth_bytes_per_sec: 6_250_000.0,
            latency: Duration::from_millis(30),
        }
    }

    /// A slow uplink: 1 Mbit/s, 250 ms latency — the telescope scenario.
    pub fn slow_uplink() -> Self {
        Self {
            bandwidth_bytes_per_sec: 125_000.0,
            latency: Duration::from_millis(250),
        }
    }

    /// Time to push one message of `bytes` over the link.
    ///
    /// Total for every input: a zero/negative/NaN bandwidth (possible when
    /// the struct is built literally, bypassing [`NetworkModel::new`]) or a
    /// transfer too long for a [`Duration`] saturates to [`Duration::MAX`]
    /// instead of panicking — "this link never completes", which is what a
    /// zero-bandwidth link means.
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        if !(self.bandwidth_bytes_per_sec.is_finite() && self.bandwidth_bytes_per_sec > 0.0) {
            return Duration::MAX;
        }
        let secs = bytes as f64 / self.bandwidth_bytes_per_sec;
        match Duration::try_from_secs_f64(secs) {
            Ok(d) => self.latency.saturating_add(d),
            Err(_) => Duration::MAX,
        }
    }

    /// Time for `k` sites to upload their models concurrently (the slowest
    /// site dominates) — DBDC's upload phase.
    pub fn concurrent_upload(&self, message_sizes: &[usize]) -> Duration {
        message_sizes
            .iter()
            .map(|&b| self.transfer_time(b))
            .max()
            .unwrap_or(Duration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_bytes() {
        let m = NetworkModel {
            bandwidth_bytes_per_sec: 1000.0,
            latency: Duration::from_millis(10),
        };
        assert_eq!(m.transfer_time(0), Duration::from_millis(10));
        assert_eq!(m.transfer_time(1000), Duration::from_millis(1010));
        assert_eq!(m.transfer_time(2500), Duration::from_millis(2510));
    }

    #[test]
    fn concurrent_upload_takes_slowest() {
        let m = NetworkModel {
            bandwidth_bytes_per_sec: 1000.0,
            latency: Duration::ZERO,
        };
        let t = m.concurrent_upload(&[100, 5000, 700]);
        assert_eq!(t, Duration::from_secs(5));
        assert_eq!(m.concurrent_upload(&[]), Duration::ZERO);
    }

    #[test]
    fn degenerate_bandwidth_never_panics() {
        // Regression: `transfer_time` used to `assert!` on zero/negative
        // bandwidth and `Duration::from_secs_f64` panicked on NaN — a
        // struct-literal link with a typo'd bandwidth took the process
        // down. Degenerate links now price as "never completes".
        for bw in [0.0, -1.0, f64::NAN, f64::NEG_INFINITY] {
            let m = NetworkModel {
                bandwidth_bytes_per_sec: bw,
                latency: Duration::from_millis(1),
            };
            assert_eq!(m.transfer_time(100), Duration::MAX, "bw {bw}");
        }
        // Infinite bandwidth is also non-finite: reject rather than
        // pretend transfers are free.
        let m = NetworkModel {
            bandwidth_bytes_per_sec: f64::INFINITY,
            latency: Duration::ZERO,
        };
        assert_eq!(m.transfer_time(1), Duration::MAX);
    }

    #[test]
    fn huge_transfers_saturate_instead_of_panicking() {
        // Regression: usize::MAX bytes over a tiny-bandwidth link
        // overflowed `Duration::from_secs_f64`.
        let m = NetworkModel {
            bandwidth_bytes_per_sec: 1e-300,
            latency: Duration::ZERO,
        };
        assert_eq!(m.transfer_time(usize::MAX), Duration::MAX);
    }

    #[test]
    fn validated_constructor_rejects_bad_links() {
        assert!(NetworkModel::new(125_000.0, Duration::from_millis(1)).is_ok());
        for bw in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                NetworkModel::new(bw, Duration::ZERO),
                Err(NetworkConfigError::BadBandwidth(_))
            ));
        }
    }

    #[test]
    fn spec_parsing() {
        assert_eq!(NetworkModel::from_spec("lan").unwrap(), NetworkModel::lan());
        assert_eq!(NetworkModel::from_spec("wan").unwrap(), NetworkModel::wan());
        assert_eq!(
            NetworkModel::from_spec("slow_uplink").unwrap(),
            NetworkModel::slow_uplink()
        );
        let custom = NetworkModel::from_spec("125000:250").unwrap();
        assert_eq!(custom.bandwidth_bytes_per_sec, 125_000.0);
        assert_eq!(custom.latency, Duration::from_millis(250));
        for bad in [
            "fast",
            "0:10",
            "-1:10",
            "nan:10",
            "1000:-3",
            "1000:nan",
            "1000",
            ":",
            "1e9:1e300",
        ] {
            assert!(NetworkModel::from_spec(bad).is_err(), "spec {bad:?}");
        }
        // Error text names the failure, for CLI surfacing.
        let err = NetworkModel::from_spec("0:10").unwrap_err();
        assert!(err.to_string().contains("positive"), "{err}");
    }

    #[test]
    fn presets_are_ordered_by_speed() {
        let bytes = 1_000_000;
        let lan = NetworkModel::lan().transfer_time(bytes);
        let wan = NetworkModel::wan().transfer_time(bytes);
        let slow = NetworkModel::slow_uplink().transfer_time(bytes);
        assert!(lan < wan);
        assert!(wan < slow);
    }
}
