//! Simulated network cost model.
//!
//! The paper motivates DBDC with limited-bandwidth links (telescopes
//! producing 1 GB/hour, WAN-separated company sites) but evaluates on a
//! single machine, reporting only CPU time. This module supplies the
//! missing piece for the transmission-cost ablation: a simple
//! latency + bandwidth model converting the wire byte counts into simulated
//! transfer times, so experiments can report end-to-end times under
//! different link assumptions.

use std::time::Duration;

/// A point-to-point link model: fixed per-message latency plus serialized
/// throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Sustained throughput in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// One-way per-message latency.
    pub latency: Duration,
}

impl NetworkModel {
    /// A LAN-ish link: 1 Gbit/s, 0.2 ms latency.
    pub fn lan() -> Self {
        Self {
            bandwidth_bytes_per_sec: 125_000_000.0,
            latency: Duration::from_micros(200),
        }
    }

    /// A WAN link: 50 Mbit/s, 30 ms latency — the "company sites on two
    /// continents" scenario of the introduction.
    pub fn wan() -> Self {
        Self {
            bandwidth_bytes_per_sec: 6_250_000.0,
            latency: Duration::from_millis(30),
        }
    }

    /// A slow uplink: 1 Mbit/s, 250 ms latency — the telescope scenario.
    pub fn slow_uplink() -> Self {
        Self {
            bandwidth_bytes_per_sec: 125_000.0,
            latency: Duration::from_millis(250),
        }
    }

    /// Time to push one message of `bytes` over the link.
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        assert!(
            self.bandwidth_bytes_per_sec > 0.0,
            "bandwidth must be positive"
        );
        self.latency + Duration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec)
    }

    /// Time for `k` sites to upload their models concurrently (the slowest
    /// site dominates) — DBDC's upload phase.
    pub fn concurrent_upload(&self, message_sizes: &[usize]) -> Duration {
        message_sizes
            .iter()
            .map(|&b| self.transfer_time(b))
            .max()
            .unwrap_or(Duration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_bytes() {
        let m = NetworkModel {
            bandwidth_bytes_per_sec: 1000.0,
            latency: Duration::from_millis(10),
        };
        assert_eq!(m.transfer_time(0), Duration::from_millis(10));
        assert_eq!(m.transfer_time(1000), Duration::from_millis(1010));
        assert_eq!(m.transfer_time(2500), Duration::from_millis(2510));
    }

    #[test]
    fn concurrent_upload_takes_slowest() {
        let m = NetworkModel {
            bandwidth_bytes_per_sec: 1000.0,
            latency: Duration::ZERO,
        };
        let t = m.concurrent_upload(&[100, 5000, 700]);
        assert_eq!(t, Duration::from_secs(5));
        assert_eq!(m.concurrent_upload(&[]), Duration::ZERO);
    }

    #[test]
    fn presets_are_ordered_by_speed() {
        let bytes = 1_000_000;
        let lan = NetworkModel::lan().transfer_time(bytes);
        let wan = NetworkModel::wan().transfer_time(bytes);
        let slow = NetworkModel::slow_uplink().transfer_time(bytes);
        assert!(lan < wan);
        assert!(wan < slow);
    }
}
