//! Wire format for model transmission.
//!
//! DBDC's efficiency argument rests on transmitting *models* instead of
//! data, so the byte cost of a model is a first-class measurement in this
//! reproduction (the `abl-wire` ablation compares it against shipping the
//! raw points). This module defines a compact little-endian binary format
//! for local and global models with a magic header, a version byte, and an
//! FNV-1a checksum, and exposes exact byte counts.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! local model:   "DBDC" ver=1 kind=0x01 site:u32 dim:u16 count:u32
//!                ( coords:f64×dim  eps_range:f64  local_cluster:u32 )×count
//!                checksum:u64
//! global model:  "DBDC" ver=1 kind=0x02 n_clusters:u32 eps_global:f64
//!                dim:u16 count:u32
//!                ( coords:f64×dim eps:f64 site:u32 local:u32 global:u32 )×count
//!                checksum:u64
//! ```

use crate::global_model::{GlobalModel, GlobalRep};
use crate::local_model::{LocalModel, Representative};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use dbdc_geom::Point;

const MAGIC: &[u8; 4] = b"DBDC";
const VERSION: u8 = 1;
const KIND_LOCAL: u8 = 0x01;
const KIND_GLOBAL: u8 = 0x02;

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the header/payload requires.
    Truncated,
    /// The magic bytes are not `DBDC`.
    BadMagic,
    /// Unknown format version.
    BadVersion(u8),
    /// The message kind does not match the requested decoder.
    BadKind(u8),
    /// Checksum mismatch — the payload was corrupted.
    BadChecksum,
    /// A coordinate or radius decoded to a non-finite value.
    NonFinite,
    /// The header declares an impossible dimensionality or entry count.
    BadHeader,
    /// A model field exceeds what the wire format can represent
    /// (encode-time): encoding would silently truncate it into a
    /// checksum-valid but wrong message.
    Oversize {
        /// Which field overflowed (`"dim"` or `"reps"`).
        field: &'static str,
        /// The offending value.
        value: u64,
        /// The largest value the format can carry.
        max: u64,
    },
    /// A representative's point dimensionality disagrees with the model
    /// header (encode-time): the fixed-stride payload would misalign.
    DimMismatch {
        /// The model's declared dimensionality.
        expected: usize,
        /// The representative's actual dimensionality.
        got: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadMagic => write!(f, "bad magic bytes"),
            WireError::BadVersion(v) => write!(f, "unsupported version {v}"),
            WireError::BadKind(k) => write!(f, "unexpected message kind {k:#04x}"),
            WireError::BadChecksum => write!(f, "checksum mismatch"),
            WireError::NonFinite => write!(f, "non-finite value in payload"),
            WireError::BadHeader => write!(f, "implausible header (dim or count)"),
            WireError::Oversize { field, value, max } => {
                write!(f, "{field} = {value} exceeds the wire maximum {max}")
            }
            WireError::DimMismatch { expected, got } => {
                write!(f, "representative has dim {got}, model declares {expected}")
            }
        }
    }
}

impl std::error::Error for WireError {}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn finish(mut buf: BytesMut) -> Bytes {
    let sum = fnv1a(&buf);
    buf.put_u64_le(sum);
    buf.freeze()
}

/// The smallest valid message on the wire: an empty local model —
/// magic (4) + version (1) + kind (1) + site (4) + dim (2) + count (4) +
/// checksum (8). Anything shorter is rejected before the checksum is
/// even attempted, so framing layers can rely on this bound.
pub const MIN_MESSAGE_BYTES: usize = 24;

fn open(bytes: &[u8], kind: u8) -> Result<&[u8], WireError> {
    if bytes.len() < MIN_MESSAGE_BYTES {
        return Err(WireError::Truncated);
    }
    let (payload, sum_bytes) = bytes.split_at(bytes.len() - 8);
    let expect = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
    if fnv1a(payload) != expect {
        return Err(WireError::BadChecksum);
    }
    if &payload[..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    if payload[4] != VERSION {
        return Err(WireError::BadVersion(payload[4]));
    }
    if payload[5] != kind {
        return Err(WireError::BadKind(payload[5]));
    }
    Ok(&payload[6..])
}

fn get_f64(buf: &mut &[u8]) -> Result<f64, WireError> {
    if buf.remaining() < 8 {
        return Err(WireError::Truncated);
    }
    let v = buf.get_f64_le();
    if v.is_finite() {
        Ok(v)
    } else {
        Err(WireError::NonFinite)
    }
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, WireError> {
    if buf.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u32_le())
}

fn get_u16(buf: &mut &[u8]) -> Result<u16, WireError> {
    if buf.remaining() < 2 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u16_le())
}

/// Validates that `dim`/`count` fit their wire fields and that every
/// representative point matches the declared dimensionality. Encoding
/// without this check would truncate `dim as u16` / `len as u32` into a
/// checksum-valid but *wrong* message — the checksum is computed after
/// the truncation, so no decoder could ever notice.
fn check_header(
    dim: usize,
    count: usize,
    rep_dims: impl Iterator<Item = usize>,
) -> Result<(), WireError> {
    if dim > u16::MAX as usize {
        return Err(WireError::Oversize {
            field: "dim",
            value: dim as u64,
            max: u16::MAX as u64,
        });
    }
    if count > u32::MAX as usize {
        return Err(WireError::Oversize {
            field: "reps",
            value: count as u64,
            max: u32::MAX as u64,
        });
    }
    for got in rep_dims {
        if got != dim {
            return Err(WireError::DimMismatch { expected: dim, got });
        }
    }
    Ok(())
}

/// Encodes a local model for transmission to the server.
///
/// Fails with [`WireError::Oversize`] when `dim` or the representative
/// count overflow their wire fields, and [`WireError::DimMismatch`] when
/// a representative's point disagrees with the declared dimensionality.
///
/// ```
/// use dbdc::{wire, LocalModel, Representative};
/// use dbdc_geom::Point;
///
/// let model = LocalModel {
///     site: 3,
///     dim: 2,
///     reps: vec![Representative {
///         point: Point::xy(1.0, 2.0),
///         eps_range: 1.5,
///         local_cluster: 0,
///     }],
/// };
/// let bytes = wire::encode_local_model(&model).unwrap();
/// assert_eq!(wire::decode_local_model(&bytes).unwrap(), model);
/// // Corruption is detected by the checksum.
/// let mut bad = bytes.to_vec();
/// bad[20] ^= 0xFF;
/// assert!(wire::decode_local_model(&bad).is_err());
/// ```
pub fn encode_local_model(m: &LocalModel) -> Result<Bytes, WireError> {
    check_header(m.dim, m.reps.len(), m.reps.iter().map(|r| r.point.dim()))?;
    let mut buf = BytesMut::with_capacity(16 + m.reps.len() * (m.dim * 8 + 12));
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(KIND_LOCAL);
    buf.put_u32_le(m.site);
    buf.put_u16_le(m.dim as u16);
    buf.put_u32_le(m.reps.len() as u32);
    for r in &m.reps {
        for &c in r.point.coords() {
            buf.put_f64_le(c);
        }
        buf.put_f64_le(r.eps_range);
        buf.put_u32_le(r.local_cluster);
    }
    Ok(finish(buf))
}

/// Decodes a local model.
pub fn decode_local_model(bytes: &[u8]) -> Result<LocalModel, WireError> {
    let mut buf = open(bytes, KIND_LOCAL)?;
    let site = get_u32(&mut buf)?;
    let dim = get_u16(&mut buf)? as usize;
    let count = get_u32(&mut buf)? as usize;
    // Reject impossible headers before allocating: each entry needs
    // dim·8 + 12 bytes, and representative points need >= 1 dimension.
    if (dim == 0 && count > 0) || buf.len() < count.saturating_mul(dim * 8 + 12) {
        return Err(WireError::BadHeader);
    }
    let mut reps = Vec::with_capacity(count);
    for _ in 0..count {
        let mut coords = Vec::with_capacity(dim);
        for _ in 0..dim {
            coords.push(get_f64(&mut buf)?);
        }
        let eps_range = get_f64(&mut buf)?;
        let local_cluster = get_u32(&mut buf)?;
        reps.push(Representative {
            point: Point::new(coords),
            eps_range,
            local_cluster,
        });
    }
    if !buf.is_empty() {
        return Err(WireError::Truncated); // trailing garbage
    }
    Ok(LocalModel { site, dim, reps })
}

/// Encodes the global model for broadcast to the client sites.
///
/// Validates `dim`/`count` against their wire fields like
/// [`encode_local_model`].
pub fn encode_global_model(g: &GlobalModel) -> Result<Bytes, WireError> {
    check_header(g.dim, g.reps.len(), g.reps.iter().map(|r| r.point.dim()))?;
    let mut buf = BytesMut::with_capacity(24 + g.reps.len() * (g.dim * 8 + 20));
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(KIND_GLOBAL);
    buf.put_u32_le(g.n_clusters);
    buf.put_f64_le(g.eps_global);
    buf.put_u16_le(g.dim as u16);
    buf.put_u32_le(g.reps.len() as u32);
    for r in &g.reps {
        for &c in r.point.coords() {
            buf.put_f64_le(c);
        }
        buf.put_f64_le(r.eps_range);
        buf.put_u32_le(r.site);
        buf.put_u32_le(r.local_cluster);
        buf.put_u32_le(r.global_cluster);
    }
    Ok(finish(buf))
}

/// Decodes a global model.
pub fn decode_global_model(bytes: &[u8]) -> Result<GlobalModel, WireError> {
    let mut buf = open(bytes, KIND_GLOBAL)?;
    let n_clusters = get_u32(&mut buf)?;
    let eps_global = get_f64(&mut buf)?;
    let dim = get_u16(&mut buf)? as usize;
    let count = get_u32(&mut buf)? as usize;
    if (dim == 0 && count > 0) || buf.len() < count.saturating_mul(dim * 8 + 20) {
        return Err(WireError::BadHeader);
    }
    let mut reps = Vec::with_capacity(count);
    for _ in 0..count {
        let mut coords = Vec::with_capacity(dim);
        for _ in 0..dim {
            coords.push(get_f64(&mut buf)?);
        }
        let eps_range = get_f64(&mut buf)?;
        let site = get_u32(&mut buf)?;
        let local_cluster = get_u32(&mut buf)?;
        let global_cluster = get_u32(&mut buf)?;
        reps.push(GlobalRep {
            point: Point::new(coords),
            eps_range,
            site,
            local_cluster,
            global_cluster,
        });
    }
    if !buf.is_empty() {
        return Err(WireError::Truncated);
    }
    Ok(GlobalModel {
        dim,
        reps,
        n_clusters,
        eps_global,
    })
}

/// Bytes needed to ship `n` raw `dim`-dimensional points — the baseline the
/// paper's transmission-cost argument compares against.
pub fn raw_data_bytes(n: usize, dim: usize) -> usize {
    n * dim * 8
}

#[cfg(test)]
mod tests {
    use super::*;

    fn local() -> LocalModel {
        LocalModel {
            site: 7,
            dim: 2,
            reps: vec![
                Representative {
                    point: Point::xy(1.5, -2.25),
                    eps_range: 1.75,
                    local_cluster: 0,
                },
                Representative {
                    point: Point::xy(10.0, 20.0),
                    eps_range: 2.0,
                    local_cluster: 1,
                },
            ],
        }
    }

    fn global() -> GlobalModel {
        GlobalModel {
            dim: 2,
            reps: vec![GlobalRep {
                point: Point::xy(0.5, 0.5),
                eps_range: 1.9,
                site: 3,
                local_cluster: 2,
                global_cluster: 11,
            }],
            n_clusters: 12,
            eps_global: 2.4,
        }
    }

    #[test]
    fn local_round_trip() {
        let m = local();
        let bytes = encode_local_model(&m).unwrap();
        let back = decode_local_model(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn global_round_trip() {
        let g = global();
        let bytes = encode_global_model(&g).unwrap();
        let back = decode_global_model(&bytes).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn empty_models_round_trip() {
        let m = LocalModel {
            site: 0,
            dim: 2,
            reps: vec![],
        };
        assert_eq!(
            decode_local_model(&encode_local_model(&m).unwrap()).unwrap(),
            m
        );
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = encode_local_model(&local()).unwrap().to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert_eq!(decode_local_model(&bytes), Err(WireError::BadChecksum));
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode_local_model(&local()).unwrap();
        assert_eq!(decode_local_model(&bytes[..4]), Err(WireError::Truncated));
        // Cutting the tail invalidates the checksum.
        let cut = &bytes[..bytes.len() - 3];
        assert!(decode_local_model(cut).is_err());
    }

    #[test]
    fn kind_confusion_is_detected() {
        let bytes = encode_global_model(&global()).unwrap();
        assert_eq!(decode_local_model(&bytes), Err(WireError::BadKind(0x02)));
        let bytes = encode_local_model(&local()).unwrap();
        assert_eq!(decode_global_model(&bytes), Err(WireError::BadKind(0x01)));
    }

    #[test]
    fn bad_magic_and_version() {
        let mut bytes = encode_local_model(&local()).unwrap().to_vec();
        bytes[0] = b'X';
        // Fix the checksum so magic is reached.
        let len = bytes.len();
        let sum = fnv1a(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(decode_local_model(&bytes), Err(WireError::BadMagic));

        let mut bytes = encode_local_model(&local()).unwrap().to_vec();
        bytes[4] = 9;
        let len = bytes.len();
        let sum = fnv1a(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(decode_local_model(&bytes), Err(WireError::BadVersion(9)));
    }

    #[test]
    fn model_is_much_smaller_than_raw_data() {
        // The transmission-cost claim: a model of 20 representatives for a
        // site of 10 000 2-d points is a tiny fraction of the raw bytes.
        let m = LocalModel {
            site: 0,
            dim: 2,
            reps: (0..20)
                .map(|i| Representative {
                    point: Point::xy(i as f64, 0.0),
                    eps_range: 1.0,
                    local_cluster: 0,
                })
                .collect(),
        };
        let model_bytes = encode_local_model(&m).unwrap().len();
        let raw = raw_data_bytes(10_000, 2);
        assert!(model_bytes * 100 < raw, "{model_bytes} vs {raw}");
    }

    #[test]
    fn error_messages_render() {
        assert_eq!(WireError::Truncated.to_string(), "message truncated");
        assert!(WireError::BadKind(2).to_string().contains("0x02"));
        assert!(WireError::Oversize {
            field: "dim",
            value: 70_000,
            max: 65_535
        }
        .to_string()
        .contains("70000"));
        assert!(WireError::DimMismatch {
            expected: 2,
            got: 3
        }
        .to_string()
        .contains("dim 3"));
    }

    #[test]
    fn oversize_dim_is_rejected_at_encode_time() {
        // Regression: `dim as u16` used to truncate 65 536 → 0 and produce
        // a checksum-valid message declaring the wrong dimensionality.
        let m = LocalModel {
            site: 0,
            dim: u16::MAX as usize + 1,
            reps: vec![],
        };
        assert_eq!(
            encode_local_model(&m),
            Err(WireError::Oversize {
                field: "dim",
                value: u16::MAX as u64 + 1,
                max: u16::MAX as u64,
            })
        );
        let g = GlobalModel {
            dim: u16::MAX as usize + 1,
            reps: vec![],
            n_clusters: 0,
            eps_global: 1.0,
        };
        assert!(matches!(
            encode_global_model(&g),
            Err(WireError::Oversize { field: "dim", .. })
        ));
    }

    #[test]
    fn oversize_dim_no_longer_round_trips_wrong() {
        // The exact silent-truncation scenario: dim = 65 537 would have
        // encoded as dim = 1. A model at the boundary (dim 65 535) still
        // encodes fine.
        let max_ok = LocalModel {
            site: 1,
            dim: u16::MAX as usize,
            reps: vec![],
        };
        let decoded = decode_local_model(&encode_local_model(&max_ok).unwrap()).unwrap();
        assert_eq!(decoded.dim, u16::MAX as usize);
    }

    #[test]
    fn rep_dim_mismatch_is_rejected_at_encode_time() {
        // A 3-d representative in a model declaring dim 2 would misalign
        // every subsequent entry of the fixed-stride payload.
        let m = LocalModel {
            site: 0,
            dim: 2,
            reps: vec![Representative {
                point: Point::new(vec![1.0, 2.0, 3.0]),
                eps_range: 1.0,
                local_cluster: 0,
            }],
        };
        assert_eq!(
            encode_local_model(&m),
            Err(WireError::DimMismatch {
                expected: 2,
                got: 3
            })
        );
    }

    #[test]
    fn minimum_frame_is_exactly_24_bytes() {
        // The smallest valid message — an empty local model — is exactly
        // MIN_MESSAGE_BYTES long and decodes.
        let m = LocalModel {
            site: 0,
            dim: 2,
            reps: vec![],
        };
        let bytes = encode_local_model(&m).unwrap();
        assert_eq!(bytes.len(), MIN_MESSAGE_BYTES);
        assert!(decode_local_model(&bytes).is_ok());
    }

    #[test]
    fn sub_minimum_frames_are_truncated_at_the_boundary() {
        // Regression: the old bound admitted 14..23-byte frames, which then
        // hit the checksum path and could mis-report the failure. Every
        // length below MIN_MESSAGE_BYTES must be `Truncated`, for both
        // decoders, even when the bytes themselves are a valid prefix.
        let m = LocalModel {
            site: 0,
            dim: 2,
            reps: vec![],
        };
        let bytes = encode_local_model(&m).unwrap();
        for len in 0..MIN_MESSAGE_BYTES {
            assert_eq!(
                decode_local_model(&bytes[..len]),
                Err(WireError::Truncated),
                "local prefix of {len} bytes"
            );
            assert_eq!(
                decode_global_model(&bytes[..len]),
                Err(WireError::Truncated),
                "global prefix of {len} bytes"
            );
        }
        // Exactly at the boundary the message is structurally complete.
        assert_eq!(decode_local_model(&bytes[..MIN_MESSAGE_BYTES]), Ok(m));
    }
}

#[cfg(test)]
mod fuzz_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Decoding must never panic, whatever the bytes.
        #[test]
        fn decode_arbitrary_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
            let _ = decode_local_model(&bytes);
            let _ = decode_global_model(&bytes);
        }

        /// Single-bit corruption of a valid message is always rejected (the
        /// checksum covers every payload byte) or decodes to the original.
        #[test]
        fn bit_flips_are_detected(flip_byte in 0usize..200, flip_bit in 0u8..8) {
            let m = LocalModel {
                site: 3,
                dim: 2,
                reps: (0..8)
                    .map(|i| Representative {
                        point: Point::xy(i as f64, -(i as f64)),
                        eps_range: 1.0 + i as f64 * 0.1,
                        local_cluster: i % 3,
                    })
                    .collect(),
            };
            let mut bytes = encode_local_model(&m).unwrap().to_vec();
            let idx = flip_byte % bytes.len();
            bytes[idx] ^= 1 << flip_bit;
            // Flips inside the checksum itself, or the astronomically
            // unlikely colliding payload, must at worst produce an
            // error — never a silently different model.
            if let Ok(decoded) = decode_local_model(&bytes) {
                prop_assert_eq!(decoded, m);
            }
        }

        /// Round trip holds for arbitrary generated models.
        #[test]
        fn round_trip_arbitrary_models(
            site in 0u32..1000,
            reps in prop::collection::vec(
                ((-1e6..1e6f64, -1e6..1e6f64), 0.0..1e3f64, 0u32..64),
                0..32
            )
        ) {
            let m = LocalModel {
                site,
                dim: 2,
                reps: reps
                    .into_iter()
                    .map(|((x, y), eps_range, local_cluster)| Representative {
                        point: Point::xy(x, y),
                        eps_range,
                        local_cluster,
                    })
                    .collect(),
            };
            let decoded = decode_local_model(&encode_local_model(&m).unwrap()).unwrap();
            prop_assert_eq!(decoded, m);
        }

        /// Every strict prefix of a valid encoded frame decodes to a clean
        /// `WireError` — never a panic, never a spurious success. This is
        /// the exact shape a truncated TCP read (or the fault proxy's
        /// truncate mode) hands the decoder.
        #[test]
        fn strict_prefixes_error_cleanly(
            site in 0u32..100,
            reps in prop::collection::vec(
                ((-1e3..1e3f64, -1e3..1e3f64), 0.0..10.0f64, 0u32..8),
                0..6
            )
        ) {
            let m = LocalModel {
                site,
                dim: 2,
                reps: reps
                    .into_iter()
                    .map(|((x, y), eps_range, local_cluster)| Representative {
                        point: Point::xy(x, y),
                        eps_range,
                        local_cluster,
                    })
                    .collect(),
            };
            let bytes = encode_local_model(&m).unwrap();
            for len in 0..bytes.len() {
                prop_assert!(
                    decode_local_model(&bytes[..len]).is_err(),
                    "prefix of {len}/{} bytes decoded",
                    bytes.len()
                );
                prop_assert!(decode_global_model(&bytes[..len]).is_err());
            }
            // And the same for a global frame built from the local reps.
            let g = GlobalModel {
                dim: 2,
                reps: m
                    .reps
                    .iter()
                    .map(|r| GlobalRep {
                        point: r.point.clone(),
                        eps_range: r.eps_range,
                        site: m.site,
                        local_cluster: r.local_cluster,
                        global_cluster: 0,
                    })
                    .collect(),
                n_clusters: 1,
                eps_global: 2.0,
            };
            let gb = encode_global_model(&g).unwrap();
            for len in 0..gb.len() {
                prop_assert!(decode_global_model(&gb[..len]).is_err());
            }
        }
    }
}

#[cfg(test)]
mod crafted_tests {
    use super::*;

    /// Re-checksum a tampered payload so the corruption reaches the parser.
    fn reseal(mut payload: Vec<u8>) -> Vec<u8> {
        let len = payload.len();
        let sum = fnv1a(&payload[..len - 8]);
        payload[len - 8..].copy_from_slice(&sum.to_le_bytes());
        payload
    }

    #[test]
    fn huge_count_is_rejected_without_allocation() {
        let m = LocalModel {
            site: 0,
            dim: 2,
            reps: vec![],
        };
        let mut bytes = encode_local_model(&m).unwrap().to_vec();
        // count field sits after magic(4)+ver(1)+kind(1)+site(4)+dim(2).
        bytes[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        let bytes = reseal(bytes);
        assert_eq!(decode_local_model(&bytes), Err(WireError::BadHeader));
    }

    #[test]
    fn zero_dim_with_entries_is_rejected() {
        let m = LocalModel {
            site: 0,
            dim: 2,
            reps: vec![Representative {
                point: Point::xy(1.0, 2.0),
                eps_range: 1.0,
                local_cluster: 0,
            }],
        };
        let mut bytes = encode_local_model(&m).unwrap().to_vec();
        bytes[10..12].copy_from_slice(&0u16.to_le_bytes()); // dim := 0
        let bytes = reseal(bytes);
        // Either BadHeader (dim 0) or Truncated (trailing bytes) — never a
        // panic.
        assert!(decode_local_model(&bytes).is_err());
    }

    #[test]
    fn global_huge_count_rejected() {
        let g = GlobalModel {
            dim: 2,
            reps: vec![],
            n_clusters: 0,
            eps_global: 1.0,
        };
        let mut bytes = encode_global_model(&g).unwrap().to_vec();
        // count sits after magic(4)+ver+kind(2)+n_clusters(4)+eps(8)+dim(2).
        bytes[20..24].copy_from_slice(&u32::MAX.to_le_bytes());
        let bytes = reseal(bytes);
        assert_eq!(decode_global_model(&bytes), Err(WireError::BadHeader));
    }
}
