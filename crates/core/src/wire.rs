//! Wire format for model transmission.
//!
//! DBDC's efficiency argument rests on transmitting *models* instead of
//! data, so the byte cost of a model is a first-class measurement in this
//! reproduction (the `abl-wire` ablation compares it against shipping the
//! raw points). This module defines a compact little-endian binary format
//! for local and global models with a magic header, a version byte, and an
//! FNV-1a checksum, and exposes exact byte counts.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! local model:   "DBDC" ver=1 kind=0x01 site:u32 dim:u16 count:u32
//!                ( coords:f64×dim  eps_range:f64  local_cluster:u32 )×count
//!                checksum:u64
//! global model:  "DBDC" ver=1 kind=0x02 n_clusters:u32 eps_global:f64
//!                dim:u16 count:u32
//!                ( coords:f64×dim eps:f64 site:u32 local:u32 global:u32 )×count
//!                checksum:u64
//! ```

use crate::global_model::{GlobalModel, GlobalRep};
use crate::local_model::{LocalModel, Representative};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use dbdc_geom::Point;

const MAGIC: &[u8; 4] = b"DBDC";
const VERSION: u8 = 1;
const KIND_LOCAL: u8 = 0x01;
const KIND_GLOBAL: u8 = 0x02;

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the header/payload requires.
    Truncated,
    /// The magic bytes are not `DBDC`.
    BadMagic,
    /// Unknown format version.
    BadVersion(u8),
    /// The message kind does not match the requested decoder.
    BadKind(u8),
    /// Checksum mismatch — the payload was corrupted.
    BadChecksum,
    /// A coordinate or radius decoded to a non-finite value.
    NonFinite,
    /// The header declares an impossible dimensionality or entry count.
    BadHeader,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadMagic => write!(f, "bad magic bytes"),
            WireError::BadVersion(v) => write!(f, "unsupported version {v}"),
            WireError::BadKind(k) => write!(f, "unexpected message kind {k:#04x}"),
            WireError::BadChecksum => write!(f, "checksum mismatch"),
            WireError::NonFinite => write!(f, "non-finite value in payload"),
            WireError::BadHeader => write!(f, "implausible header (dim or count)"),
        }
    }
}

impl std::error::Error for WireError {}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn finish(mut buf: BytesMut) -> Bytes {
    let sum = fnv1a(&buf);
    buf.put_u64_le(sum);
    buf.freeze()
}

fn open(bytes: &[u8], kind: u8) -> Result<&[u8], WireError> {
    if bytes.len() < MAGIC.len() + 2 + 8 {
        return Err(WireError::Truncated);
    }
    let (payload, sum_bytes) = bytes.split_at(bytes.len() - 8);
    let expect = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
    if fnv1a(payload) != expect {
        return Err(WireError::BadChecksum);
    }
    if &payload[..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    if payload[4] != VERSION {
        return Err(WireError::BadVersion(payload[4]));
    }
    if payload[5] != kind {
        return Err(WireError::BadKind(payload[5]));
    }
    Ok(&payload[6..])
}

fn get_f64(buf: &mut &[u8]) -> Result<f64, WireError> {
    if buf.remaining() < 8 {
        return Err(WireError::Truncated);
    }
    let v = buf.get_f64_le();
    if v.is_finite() {
        Ok(v)
    } else {
        Err(WireError::NonFinite)
    }
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, WireError> {
    if buf.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u32_le())
}

fn get_u16(buf: &mut &[u8]) -> Result<u16, WireError> {
    if buf.remaining() < 2 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u16_le())
}

/// Encodes a local model for transmission to the server.
///
/// ```
/// use dbdc::{wire, LocalModel, Representative};
/// use dbdc_geom::Point;
///
/// let model = LocalModel {
///     site: 3,
///     dim: 2,
///     reps: vec![Representative {
///         point: Point::xy(1.0, 2.0),
///         eps_range: 1.5,
///         local_cluster: 0,
///     }],
/// };
/// let bytes = wire::encode_local_model(&model);
/// assert_eq!(wire::decode_local_model(&bytes).unwrap(), model);
/// // Corruption is detected by the checksum.
/// let mut bad = bytes.to_vec();
/// bad[20] ^= 0xFF;
/// assert!(wire::decode_local_model(&bad).is_err());
/// ```
pub fn encode_local_model(m: &LocalModel) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + m.reps.len() * (m.dim * 8 + 12));
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(KIND_LOCAL);
    buf.put_u32_le(m.site);
    buf.put_u16_le(m.dim as u16);
    buf.put_u32_le(m.reps.len() as u32);
    for r in &m.reps {
        debug_assert_eq!(r.point.dim(), m.dim);
        for &c in r.point.coords() {
            buf.put_f64_le(c);
        }
        buf.put_f64_le(r.eps_range);
        buf.put_u32_le(r.local_cluster);
    }
    finish(buf)
}

/// Decodes a local model.
pub fn decode_local_model(bytes: &[u8]) -> Result<LocalModel, WireError> {
    let mut buf = open(bytes, KIND_LOCAL)?;
    let site = get_u32(&mut buf)?;
    let dim = get_u16(&mut buf)? as usize;
    let count = get_u32(&mut buf)? as usize;
    // Reject impossible headers before allocating: each entry needs
    // dim·8 + 12 bytes, and representative points need >= 1 dimension.
    if (dim == 0 && count > 0) || buf.len() < count.saturating_mul(dim * 8 + 12) {
        return Err(WireError::BadHeader);
    }
    let mut reps = Vec::with_capacity(count);
    for _ in 0..count {
        let mut coords = Vec::with_capacity(dim);
        for _ in 0..dim {
            coords.push(get_f64(&mut buf)?);
        }
        let eps_range = get_f64(&mut buf)?;
        let local_cluster = get_u32(&mut buf)?;
        reps.push(Representative {
            point: Point::new(coords),
            eps_range,
            local_cluster,
        });
    }
    if !buf.is_empty() {
        return Err(WireError::Truncated); // trailing garbage
    }
    Ok(LocalModel { site, dim, reps })
}

/// Encodes the global model for broadcast to the client sites.
pub fn encode_global_model(g: &GlobalModel) -> Bytes {
    let mut buf = BytesMut::with_capacity(24 + g.reps.len() * (g.dim * 8 + 20));
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(KIND_GLOBAL);
    buf.put_u32_le(g.n_clusters);
    buf.put_f64_le(g.eps_global);
    buf.put_u16_le(g.dim as u16);
    buf.put_u32_le(g.reps.len() as u32);
    for r in &g.reps {
        for &c in r.point.coords() {
            buf.put_f64_le(c);
        }
        buf.put_f64_le(r.eps_range);
        buf.put_u32_le(r.site);
        buf.put_u32_le(r.local_cluster);
        buf.put_u32_le(r.global_cluster);
    }
    finish(buf)
}

/// Decodes a global model.
pub fn decode_global_model(bytes: &[u8]) -> Result<GlobalModel, WireError> {
    let mut buf = open(bytes, KIND_GLOBAL)?;
    let n_clusters = get_u32(&mut buf)?;
    let eps_global = get_f64(&mut buf)?;
    let dim = get_u16(&mut buf)? as usize;
    let count = get_u32(&mut buf)? as usize;
    if (dim == 0 && count > 0) || buf.len() < count.saturating_mul(dim * 8 + 20) {
        return Err(WireError::BadHeader);
    }
    let mut reps = Vec::with_capacity(count);
    for _ in 0..count {
        let mut coords = Vec::with_capacity(dim);
        for _ in 0..dim {
            coords.push(get_f64(&mut buf)?);
        }
        let eps_range = get_f64(&mut buf)?;
        let site = get_u32(&mut buf)?;
        let local_cluster = get_u32(&mut buf)?;
        let global_cluster = get_u32(&mut buf)?;
        reps.push(GlobalRep {
            point: Point::new(coords),
            eps_range,
            site,
            local_cluster,
            global_cluster,
        });
    }
    if !buf.is_empty() {
        return Err(WireError::Truncated);
    }
    Ok(GlobalModel {
        dim,
        reps,
        n_clusters,
        eps_global,
    })
}

/// Bytes needed to ship `n` raw `dim`-dimensional points — the baseline the
/// paper's transmission-cost argument compares against.
pub fn raw_data_bytes(n: usize, dim: usize) -> usize {
    n * dim * 8
}

#[cfg(test)]
mod tests {
    use super::*;

    fn local() -> LocalModel {
        LocalModel {
            site: 7,
            dim: 2,
            reps: vec![
                Representative {
                    point: Point::xy(1.5, -2.25),
                    eps_range: 1.75,
                    local_cluster: 0,
                },
                Representative {
                    point: Point::xy(10.0, 20.0),
                    eps_range: 2.0,
                    local_cluster: 1,
                },
            ],
        }
    }

    fn global() -> GlobalModel {
        GlobalModel {
            dim: 2,
            reps: vec![GlobalRep {
                point: Point::xy(0.5, 0.5),
                eps_range: 1.9,
                site: 3,
                local_cluster: 2,
                global_cluster: 11,
            }],
            n_clusters: 12,
            eps_global: 2.4,
        }
    }

    #[test]
    fn local_round_trip() {
        let m = local();
        let bytes = encode_local_model(&m);
        let back = decode_local_model(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn global_round_trip() {
        let g = global();
        let bytes = encode_global_model(&g);
        let back = decode_global_model(&bytes).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn empty_models_round_trip() {
        let m = LocalModel {
            site: 0,
            dim: 2,
            reps: vec![],
        };
        assert_eq!(decode_local_model(&encode_local_model(&m)).unwrap(), m);
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = encode_local_model(&local()).to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert_eq!(decode_local_model(&bytes), Err(WireError::BadChecksum));
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode_local_model(&local());
        assert_eq!(decode_local_model(&bytes[..4]), Err(WireError::Truncated));
        // Cutting the tail invalidates the checksum.
        let cut = &bytes[..bytes.len() - 3];
        assert!(decode_local_model(cut).is_err());
    }

    #[test]
    fn kind_confusion_is_detected() {
        let bytes = encode_global_model(&global());
        assert_eq!(decode_local_model(&bytes), Err(WireError::BadKind(0x02)));
        let bytes = encode_local_model(&local());
        assert_eq!(decode_global_model(&bytes), Err(WireError::BadKind(0x01)));
    }

    #[test]
    fn bad_magic_and_version() {
        let mut bytes = encode_local_model(&local()).to_vec();
        bytes[0] = b'X';
        // Fix the checksum so magic is reached.
        let len = bytes.len();
        let sum = fnv1a(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(decode_local_model(&bytes), Err(WireError::BadMagic));

        let mut bytes = encode_local_model(&local()).to_vec();
        bytes[4] = 9;
        let len = bytes.len();
        let sum = fnv1a(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(decode_local_model(&bytes), Err(WireError::BadVersion(9)));
    }

    #[test]
    fn model_is_much_smaller_than_raw_data() {
        // The transmission-cost claim: a model of 20 representatives for a
        // site of 10 000 2-d points is a tiny fraction of the raw bytes.
        let m = LocalModel {
            site: 0,
            dim: 2,
            reps: (0..20)
                .map(|i| Representative {
                    point: Point::xy(i as f64, 0.0),
                    eps_range: 1.0,
                    local_cluster: 0,
                })
                .collect(),
        };
        let model_bytes = encode_local_model(&m).len();
        let raw = raw_data_bytes(10_000, 2);
        assert!(model_bytes * 100 < raw, "{model_bytes} vs {raw}");
    }

    #[test]
    fn error_messages_render() {
        assert_eq!(WireError::Truncated.to_string(), "message truncated");
        assert!(WireError::BadKind(2).to_string().contains("0x02"));
    }
}

#[cfg(test)]
mod fuzz_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Decoding must never panic, whatever the bytes.
        #[test]
        fn decode_arbitrary_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
            let _ = decode_local_model(&bytes);
            let _ = decode_global_model(&bytes);
        }

        /// Single-bit corruption of a valid message is always rejected (the
        /// checksum covers every payload byte) or decodes to the original.
        #[test]
        fn bit_flips_are_detected(flip_byte in 0usize..200, flip_bit in 0u8..8) {
            let m = LocalModel {
                site: 3,
                dim: 2,
                reps: (0..8)
                    .map(|i| Representative {
                        point: Point::xy(i as f64, -(i as f64)),
                        eps_range: 1.0 + i as f64 * 0.1,
                        local_cluster: i % 3,
                    })
                    .collect(),
            };
            let mut bytes = encode_local_model(&m).to_vec();
            let idx = flip_byte % bytes.len();
            bytes[idx] ^= 1 << flip_bit;
            // Flips inside the checksum itself, or the astronomically
            // unlikely colliding payload, must at worst produce an
            // error — never a silently different model.
            if let Ok(decoded) = decode_local_model(&bytes) {
                prop_assert_eq!(decoded, m);
            }
        }

        /// Round trip holds for arbitrary generated models.
        #[test]
        fn round_trip_arbitrary_models(
            site in 0u32..1000,
            reps in prop::collection::vec(
                ((-1e6..1e6f64, -1e6..1e6f64), 0.0..1e3f64, 0u32..64),
                0..32
            )
        ) {
            let m = LocalModel {
                site,
                dim: 2,
                reps: reps
                    .into_iter()
                    .map(|((x, y), eps_range, local_cluster)| Representative {
                        point: Point::xy(x, y),
                        eps_range,
                        local_cluster,
                    })
                    .collect(),
            };
            let decoded = decode_local_model(&encode_local_model(&m)).unwrap();
            prop_assert_eq!(decoded, m);
        }
    }
}

#[cfg(test)]
mod crafted_tests {
    use super::*;

    /// Re-checksum a tampered payload so the corruption reaches the parser.
    fn reseal(mut payload: Vec<u8>) -> Vec<u8> {
        let len = payload.len();
        let sum = fnv1a(&payload[..len - 8]);
        payload[len - 8..].copy_from_slice(&sum.to_le_bytes());
        payload
    }

    #[test]
    fn huge_count_is_rejected_without_allocation() {
        let m = LocalModel {
            site: 0,
            dim: 2,
            reps: vec![],
        };
        let mut bytes = encode_local_model(&m).to_vec();
        // count field sits after magic(4)+ver(1)+kind(1)+site(4)+dim(2).
        bytes[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        let bytes = reseal(bytes);
        assert_eq!(decode_local_model(&bytes), Err(WireError::BadHeader));
    }

    #[test]
    fn zero_dim_with_entries_is_rejected() {
        let m = LocalModel {
            site: 0,
            dim: 2,
            reps: vec![Representative {
                point: Point::xy(1.0, 2.0),
                eps_range: 1.0,
                local_cluster: 0,
            }],
        };
        let mut bytes = encode_local_model(&m).to_vec();
        bytes[10..12].copy_from_slice(&0u16.to_le_bytes()); // dim := 0
        let bytes = reseal(bytes);
        // Either BadHeader (dim 0) or Truncated (trailing bytes) — never a
        // panic.
        assert!(decode_local_model(&bytes).is_err());
    }

    #[test]
    fn global_huge_count_rejected() {
        let g = GlobalModel {
            dim: 2,
            reps: vec![],
            n_clusters: 0,
            eps_global: 1.0,
        };
        let mut bytes = encode_global_model(&g).to_vec();
        // count sits after magic(4)+ver+kind(2)+n_clusters(4)+eps(8)+dim(2).
        bytes[20..24].copy_from_slice(&u32::MAX.to_le_bytes());
        let bytes = reseal(bytes);
        assert_eq!(decode_global_model(&bytes), Err(WireError::BadHeader));
    }
}
