//! PDBSCAN — a parallel DBSCAN baseline (after Xu, Jäger, Kriegel 1999).
//!
//! The paper's Related Work (Section 2.2, reference \[21\]) contrasts DBDC
//! with the *parallel* DBSCAN of Xu et al.: there, the complete data set
//! starts on one central server, is partitioned spatially onto processors
//! that share a distributed R\*-tree (the dR\*-tree), and the processors
//! exchange messages so that the final clustering is **exact** — identical
//! to a single DBSCAN run. DBDC instead never centralizes the data and
//! accepts an approximate result in exchange for transmitting only models.
//!
//! This module implements the algorithmic core of that comparator so the
//! `abl-pdbscan` ablation can quantify the trade-off:
//!
//! * the data is partitioned into spatial stripes (standing in for the
//!   dR\*-tree's space partitioning);
//! * every worker receives its stripe **plus a halo** of foreign points
//!   within `eps` of its boundary (the replicated outer region the
//!   message-passing scheme effectively gives each processor access to);
//! * workers run DBSCAN locally; core points in the halo overlap induce
//!   merge edges between worker-local clusters;
//! * a union-find pass produces the exact global clustering.
//!
//! Exactness (equality with central DBSCAN on the core-point partition) is
//! asserted by the tests; the ablation reports its runtime and the bytes a
//! real deployment would move (halo replication + merge edges), which is
//! where DBDC wins.

use crate::params::DbdcParams;
use dbdc_cluster::{dbscan, DbscanParams};
use dbdc_geom::{Clustering, Dataset, Euclidean, Label};
use std::time::{Duration, Instant};

/// The result of a PDBSCAN run.
#[derive(Debug, Clone)]
pub struct PdbscanOutcome {
    /// The exact global clustering, in original point order.
    pub clustering: Clustering,
    /// Wall time of each worker's local phase.
    pub worker_times: Vec<Duration>,
    /// Wall time of the merge phase.
    pub merge_time: Duration,
    /// Number of points replicated into halos (the scheme's communication
    /// overhead, in points).
    pub halo_points: usize,
    /// Bytes a deployment would move: halo replication down + merge edges
    /// up (8 bytes per coordinate, 8 bytes per merge edge).
    pub bytes_moved: usize,
}

impl PdbscanOutcome {
    /// The parallel cost model: slowest worker plus the merge phase.
    pub fn total(&self) -> Duration {
        self.worker_times
            .iter()
            .copied()
            .max()
            .unwrap_or(Duration::ZERO)
            + self.merge_time
    }
}

/// Runs the PDBSCAN simulation over `workers` spatial stripes.
///
/// # Panics
/// Panics if `workers == 0`.
pub fn run_pdbscan(data: &Dataset, params: &DbdcParams, workers: usize) -> PdbscanOutcome {
    assert!(workers > 0, "need at least one worker");
    let n = data.len();
    let eps = params.eps_local;
    let dbscan_params = DbscanParams::new(eps, params.min_pts_local);
    if n == 0 {
        return PdbscanOutcome {
            clustering: Clustering::all_noise(0),
            worker_times: vec![Duration::ZERO; workers],
            merge_time: Duration::ZERO,
            halo_points: 0,
            bytes_moved: 0,
        };
    }

    // --- Partition into stripes along the widest-spread axis with eps
    // halos. Striping a degenerate axis (data extended along another
    // dimension) would replicate nearly the whole dataset into every
    // halo.
    let bbox = data.bounding_rect().expect("non-empty dataset");
    let axis = (0..data.dim())
        .max_by(|&a, &b| {
            let wa = bbox.hi()[a] - bbox.lo()[a];
            let wb = bbox.hi()[b] - bbox.lo()[b];
            wa.total_cmp(&wb)
        })
        .expect("dataset has at least 1 dimension");
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| data.point(a)[axis].total_cmp(&data.point(b)[axis]));
    let per = n.div_ceil(workers);
    // Stripe boundaries in coordinate space.
    let mut owners = vec![0usize; n];
    let mut bounds = Vec::with_capacity(workers + 1); // [lo_0, lo_1, ..., hi_last]
    bounds.push(f64::NEG_INFINITY);
    for w in 1..workers {
        let split_at = (w * per).min(n - 1);
        bounds.push(data.point(order[split_at])[axis]);
    }
    bounds.push(f64::INFINITY);
    for (pos, &idx) in order.iter().enumerate() {
        owners[idx as usize] = (pos / per.max(1)).min(workers - 1);
    }

    // Worker datasets: owned points + halo (foreign points within eps of the
    // stripe's coordinate range).
    let mut worker_ids: Vec<Vec<u32>> = vec![Vec::new(); workers];
    let mut is_halo: Vec<Vec<bool>> = vec![Vec::new(); workers];
    let mut halo_points = 0usize;
    for i in 0..n as u32 {
        let x = data.point(i)[axis];
        let own = owners[i as usize];
        for (w, (ids, halo)) in worker_ids.iter_mut().zip(is_halo.iter_mut()).enumerate() {
            if w == own {
                ids.push(i);
                halo.push(false);
            } else if x >= bounds[w] - eps && x <= bounds[w + 1] + eps {
                ids.push(i);
                halo.push(true);
                halo_points += 1;
            }
        }
    }

    // --- Local DBSCAN per worker. ---
    struct WorkerOut {
        ids: Vec<u32>,
        halo: Vec<bool>,
        clustering: Clustering,
        core: Vec<bool>,
    }
    let mut outs = Vec::with_capacity(workers);
    let mut worker_times = Vec::with_capacity(workers);
    for w in 0..workers {
        let t0 = Instant::now();
        let local_data = data.subset(&worker_ids[w]);
        let index = dbdc_index::build_index(params.index, &local_data, Euclidean, eps);
        let result = dbscan(&local_data, index.as_ref(), &dbscan_params);
        worker_times.push(t0.elapsed());
        outs.push(WorkerOut {
            ids: std::mem::take(&mut worker_ids[w]),
            halo: std::mem::take(&mut is_halo[w]),
            clustering: result.clustering,
            core: result.core,
        });
    }

    // --- Merge phase. ---
    // Global core property: a point owned by worker w has its full
    // ε-neighborhood inside w's stripe+halo, so w's core flag is globally
    // correct for owned points. Worker-local cluster ids become union-find
    // nodes; two local clusters merge when a *core* point (owned by either
    // side) carries both.
    let t1 = Instant::now();
    // Per-point: (worker, local label, local core) for the owning worker.
    let mut owned_label: Vec<Label> = vec![Label::Noise; n];
    let mut owned_core: Vec<bool> = vec![false; n];
    // Offsets per worker into the union-find space.
    let mut offsets = Vec::with_capacity(workers);
    let mut total_clusters = 0usize;
    for o in &outs {
        offsets.push(total_clusters);
        total_clusters += o.clustering.n_clusters() as usize;
    }
    let mut dsu: Vec<usize> = (0..total_clusters).collect();
    fn find(dsu: &mut [usize], mut x: usize) -> usize {
        while dsu[x] != x {
            dsu[x] = dsu[dsu[x]];
            x = dsu[x];
        }
        x
    }
    let mut merge_edges = 0usize;
    for (w, o) in outs.iter().enumerate() {
        for (pos, &gid) in o.ids.iter().enumerate() {
            let label = o.clustering.label(pos as u32);
            if !o.halo[pos] {
                owned_label[gid as usize] = match label {
                    Label::Noise => Label::Noise,
                    Label::Cluster(c) => Label::Cluster((offsets[w] + c as usize) as u32),
                };
                owned_core[gid as usize] = o.core[pos];
            }
        }
    }
    // Merge via halo points that are core somewhere: a core point's cluster
    // is the same everywhere it appears, so link the owner's cluster with
    // the halo copy's cluster.
    for (w, o) in outs.iter().enumerate() {
        for (pos, &gid) in o.ids.iter().enumerate() {
            if !o.halo[pos] {
                continue;
            }
            // The copy is in w's halo; the owner is elsewhere.
            let owner_label = owned_label[gid as usize];
            let copy_label = o.clustering.label(pos as u32);
            // Only core points (globally, i.e. per their owner) propagate
            // cluster identity.
            if !owned_core[gid as usize] {
                continue;
            }
            if let (Label::Cluster(a), Label::Cluster(b)) = (owner_label, copy_label) {
                let a = a as usize;
                let b = offsets[w] + b as usize;
                let (ra, rb) = (find(&mut dsu, a), find(&mut dsu, b));
                if ra != rb {
                    dsu[ra] = rb;
                    merge_edges += 1;
                }
            }
        }
    }
    // Resolve final labels for owned points. Border points may sit in a
    // halo-side cluster while their owner called them noise (their core
    // neighbor lives across the boundary); adopt the halo assignment then.
    let mut labels = vec![Label::Noise; n];
    for i in 0..n {
        if let Label::Cluster(c) = owned_label[i] {
            labels[i] = Label::Cluster(find(&mut dsu, c as usize) as u32);
        }
    }
    for (w, o) in outs.iter().enumerate() {
        for (pos, &gid) in o.ids.iter().enumerate() {
            if !o.halo[pos] || !labels[gid as usize].is_noise() {
                continue;
            }
            if let Label::Cluster(b) = o.clustering.label(pos as u32) {
                let b = offsets[w] + b as usize;
                labels[gid as usize] = Label::Cluster(find(&mut dsu, b) as u32);
            }
        }
    }
    let merge_time = t1.elapsed();

    let bytes_moved = halo_points * data.dim() * 8 + merge_edges * 8;
    PdbscanOutcome {
        clustering: Clustering::from_labels(labels),
        worker_times,
        merge_time,
        halo_points,
        bytes_moved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::central_dbscan;
    use dbdc_datagen::{dataset_c, scaled_a};
    use dbdc_geom::adjusted_rand_index;

    fn params(eps: f64, min_pts: usize) -> DbdcParams {
        DbdcParams::new(eps, min_pts)
    }

    /// PDBSCAN must be *exact*: same core-point partition as central DBSCAN.
    fn assert_exact(data: &Dataset, p: &DbdcParams, workers: usize) {
        let (central, _) = central_dbscan(data, p);
        let parallel = run_pdbscan(data, p, workers);
        // Noise sets must agree exactly on core points; border points can
        // flip between adjacent clusters, so compare with ARI ~ 1.
        let ari = adjusted_rand_index(&parallel.clustering, &central.clustering);
        assert!(
            ari > 0.999,
            "PDBSCAN diverges from central DBSCAN: ARI {ari} ({} vs {} clusters)",
            parallel.clustering.n_clusters(),
            central.clustering.n_clusters()
        );
        assert_eq!(
            parallel.clustering.n_clusters(),
            central.clustering.n_clusters()
        );
    }

    #[test]
    fn exact_on_dataset_c() {
        let g = dataset_c(5);
        for workers in [1, 2, 3, 5, 8] {
            assert_exact(
                &g.data,
                &params(g.suggested_eps, g.suggested_min_pts),
                workers,
            );
        }
    }

    #[test]
    fn exact_on_scaled_a() {
        let g = scaled_a(4_000, 6);
        for workers in [2, 4, 7] {
            assert_exact(
                &g.data,
                &params(g.suggested_eps, g.suggested_min_pts),
                workers,
            );
        }
    }

    #[test]
    fn cluster_spanning_stripes_is_joined() {
        // One long horizontal chain crossing all stripe boundaries.
        let mut d = Dataset::new(2);
        for i in 0..200 {
            d.push(&[i as f64 * 0.4, 0.0]);
        }
        let p = params(0.5, 3);
        let out = run_pdbscan(&d, &p, 4);
        assert_eq!(
            out.clustering.n_clusters(),
            1,
            "chain must stay one cluster"
        );
        assert_eq!(out.clustering.n_noise(), 0);
        assert!(out.halo_points > 0, "stripes must exchange halo points");
    }

    #[test]
    fn stripes_follow_the_widest_axis() {
        // Pathological for axis-0 striping: the data is a thin vertical
        // column (tiny spread on axis 0, large spread on axis 1). Fixed
        // stripes along axis 0 would put nearly every point within eps
        // of every stripe boundary, replicating ~the whole dataset into
        // each worker's halo; the widest-spread axis keeps the halo a
        // thin band per boundary.
        let mut d = Dataset::new(2);
        for i in 0..600 {
            d.push(&[(i % 5) as f64 * 0.02, i as f64 * 0.3]);
        }
        let p = params(1.0, 3);
        let out = run_pdbscan(&d, &p, 4);
        assert!(
            out.halo_points < d.len() / 5,
            "halo {} points on {} total: striping ignored the spread axis",
            out.halo_points,
            d.len()
        );
        // Still exact.
        assert_exact(&d, &p, 4);
    }

    #[test]
    fn halo_grows_with_workers() {
        let g = scaled_a(3_000, 7);
        let p = params(g.suggested_eps, g.suggested_min_pts);
        let h2 = run_pdbscan(&g.data, &p, 2).halo_points;
        let h8 = run_pdbscan(&g.data, &p, 8).halo_points;
        assert!(h8 > h2, "more stripes -> more boundary replication");
    }

    #[test]
    fn communication_exceeds_dbdc() {
        // The comparison the ablation makes: PDBSCAN's halo+merge traffic
        // is far larger than DBDC's model upload on the same data.
        let g = scaled_a(3_000, 8);
        let p = params(g.suggested_eps, g.suggested_min_pts);
        let pd = run_pdbscan(&g.data, &p, 8);
        let dbdc = crate::runtime::run_dbdc(
            &g.data,
            &p,
            crate::partition::Partitioner::RandomEqual { seed: 8 },
            8,
        );
        assert!(
            pd.bytes_moved > dbdc.bytes_up,
            "pdbscan {} B vs dbdc {} B",
            pd.bytes_moved,
            dbdc.bytes_up
        );
    }

    #[test]
    fn empty_and_single_worker() {
        let d = Dataset::new(2);
        let out = run_pdbscan(&d, &params(1.0, 3), 3);
        assert!(out.clustering.is_empty());
        let g = dataset_c(9);
        let p = params(g.suggested_eps, g.suggested_min_pts);
        let out = run_pdbscan(&g.data, &p, 1);
        assert_eq!(out.halo_points, 0, "single worker has no halo");
        assert_exact(&g.data, &p, 1);
    }
}
