//! The DBDC runtime: orchestration of the four protocol steps.
//!
//! Section 3 of the paper: (1) local clustering, (2) determination of the
//! local models, (3) determination of the global model, (4) relabeling of
//! all local data. This module runs the whole protocol over a partitioned
//! dataset, either sequentially (the paper's measurement setup — "we
//! carried out all local clusterings sequentially ... the overall runtime
//! was formed by adding the time needed for the global clustering to the
//! maximum time needed for the local clusterings") or with one thread per
//! site for wall-clock validation. Independently of the per-site driver,
//! [`DbdcParams::threads`] selects how many worker threads each DBSCAN run
//! uses internally via the deterministic parallel execution layer
//! ([`mod@dbdc_cluster::par_dbscan`]); every combination produces the same
//! clustering.
//!
//! Local models travel through the wire codec in both modes, so the byte
//! counts reported in [`DbdcOutcome`] are exact message sizes.

use crate::global_model::{build_global_model_observed, GlobalModel};
use crate::local_model::{build_local_model, LocalModel};
use crate::params::DbdcParams;
use crate::partition::Partitioner;
use crate::relabel::relabel_site_observed;
use crate::wire;
use dbdc_cluster::{
    dbscan, dbscan_with_scp, effective_partitions, effective_threads, par_dbscan_instrumented,
    par_dbscan_with_scp, partitioned_dbscan_with_scp_observed, DbscanParams, DbscanResult,
    ScpResult,
};
use dbdc_geom::{Clustering, Dataset, Euclidean, Label};
use dbdc_index::BuildOptions;
use dbdc_obs::{NoopRecorder, Recorder, Span};
use std::time::{Duration, Instant};

/// OS threads active in each protocol phase (diagnostic, recorded by the
/// runtime): the product of concurrently running sites and the worker
/// threads each site's DBSCAN uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseThreads {
    /// Local clustering + model extraction.
    pub local: usize,
    /// Server-side global clustering.
    pub global: usize,
    /// Per-site relabeling.
    pub relabel: usize,
}

/// Timings of all protocol phases.
#[derive(Debug, Clone, Default)]
pub struct Timings {
    /// Wall time of each site's local clustering + model extraction.
    pub local: Vec<Duration>,
    /// Server-side global clustering (including model decode).
    pub global: Duration,
    /// Wall time of each site's relabeling.
    pub relabel: Vec<Duration>,
    /// Thread counts per phase.
    pub threads: PhaseThreads,
    /// Per-site index-construction sub-phase, a breakdown of
    /// [`Timings::local`]. Zero when the site ran partitioned (each
    /// partition builds its own index inside [`Timings::partitions`]).
    pub build: Vec<Duration>,
    /// Per-site clustering sub-phase (DBSCAN over the built index,
    /// excluding the index build), a breakdown of [`Timings::local`].
    pub cluster: Vec<Duration>,
    /// Per-site model-extraction sub-phase.
    pub extract: Vec<Duration>,
    /// Per-site wire-encoding sub-phase.
    pub encode: Vec<Duration>,
    /// Per-site, per-partition wall times of the partitioned local
    /// phase (empty inner vectors when a site ran unpartitioned).
    pub partitions: Vec<Vec<Duration>>,
}

impl Timings {
    /// The slowest local phase — the paper's distributed local cost.
    pub fn local_max(&self) -> Duration {
        self.local.iter().copied().max().unwrap_or(Duration::ZERO)
    }

    /// The slowest relabel phase.
    pub fn relabel_max(&self) -> Duration {
        self.relabel.iter().copied().max().unwrap_or(Duration::ZERO)
    }

    /// The paper's overall-runtime cost model:
    /// `max(local times) + global time`.
    pub fn dbdc_total(&self) -> Duration {
        self.local_max() + self.global
    }

    /// The cost model extended with the (concurrent) relabel phase.
    pub fn dbdc_total_with_relabel(&self) -> Duration {
        self.dbdc_total() + self.relabel_max()
    }

    /// The timings as a [`Span`] tree: a `dbdc` root (walled at
    /// [`Timings::dbdc_total_with_relabel`]) with one `local[i]` child
    /// per site — each broken into `build`/`cluster` (plus one
    /// `partition[j]` per spatial partition when the site ran
    /// partitioned) /`extract`/`encode` when the sub-phase vectors are
    /// populated — then `global` and one `relabel[i]` per site.
    pub fn to_span(&self) -> Span {
        let mut root = Span::new("dbdc", self.dbdc_total_with_relabel());
        for (i, &t) in self.local.iter().enumerate() {
            let mut local =
                Span::new(format!("local[{i}]"), t).with_threads(self.threads.local.max(1));
            if let (Some(&c), Some(&x), Some(&e)) =
                (self.cluster.get(i), self.extract.get(i), self.encode.get(i))
            {
                local.push(Span::new(
                    "build",
                    self.build.get(i).copied().unwrap_or(Duration::ZERO),
                ));
                let mut cluster = Span::new("cluster", c);
                if let Some(parts) = self.partitions.get(i) {
                    for (j, &pt) in parts.iter().enumerate() {
                        cluster.push(Span::new(format!("partition[{j}]"), pt));
                    }
                }
                local.push(cluster);
                local.push(Span::new("extract", x));
                local.push(Span::new("encode", e));
            }
            root.push(local);
        }
        root.push(Span::new("global", self.global).with_threads(self.threads.global.max(1)));
        for (i, &t) in self.relabel.iter().enumerate() {
            root.push(
                Span::new(format!("relabel[{i}]"), t).with_threads(self.threads.relabel.max(1)),
            );
        }
        root
    }
}

/// Everything a DBDC run produces.
#[derive(Debug, Clone)]
pub struct DbdcOutcome {
    /// Number of client sites.
    pub n_sites: usize,
    /// The server's global model.
    pub global: GlobalModel,
    /// The final distributed clustering of **all** points, in the original
    /// dataset order, with dense cluster ids.
    pub assignment: Clustering,
    /// Per-site timings.
    pub timings: Timings,
    /// Total client→server bytes (all encoded local models).
    pub bytes_up: usize,
    /// Total server→client bytes (the encoded global model, once per site).
    pub bytes_down: usize,
    /// Exact encoded size of each site's local model, in site order — the
    /// actual upload message sizes the network cost model charges.
    pub per_site_bytes_up: Vec<usize>,
    /// Exact encoded size of the global model — the broadcast message every
    /// site downloads.
    pub global_model_bytes: usize,
    /// Total number of transmitted representatives.
    pub n_representatives: usize,
    /// Per-site point counts.
    pub site_sizes: Vec<usize>,
}

impl DbdcOutcome {
    /// Representatives as a fraction of the dataset size — the "number of
    /// local repr. \[%\]" column of the paper's Figure 10.
    pub fn representative_fraction(&self) -> f64 {
        let n: usize = self.site_sizes.iter().sum();
        if n == 0 {
            0.0
        } else {
            self.n_representatives as f64 / n as f64
        }
    }

    /// The paper's cost model extended with simulated network transfers
    /// over `net`: all sites upload their models concurrently, so the
    /// **slowest link** — the site with the largest encoded model —
    /// dominates ([`crate::network::NetworkModel::concurrent_upload`] over
    /// the actual per-site message sizes, not an average). The global
    /// model is then broadcast to every site concurrently, costing one
    /// transfer of its exact encoded size. Compute phases come from
    /// [`Timings::dbdc_total_with_relabel`].
    pub fn total_with_network(&self, net: &crate::network::NetworkModel) -> Duration {
        let upload = net.concurrent_upload(&self.per_site_bytes_up);
        let download = if self.n_sites == 0 {
            Duration::ZERO
        } else {
            net.transfer_time(self.global_model_bytes)
        };
        self.timings.dbdc_total_with_relabel() + upload + download
    }
}

/// Wall times of one site's local phase, total and by sub-phase.
#[derive(Debug, Clone)]
struct LocalTimes {
    total: Duration,
    build: Duration,
    cluster: Duration,
    extract: Duration,
    encode: Duration,
    /// Per-partition wall times; empty when the site ran unpartitioned.
    partitions: Vec<Duration>,
}

/// One site's local phase: cluster, extract the model, encode it.
/// Returns the encoded model bytes together with the site's clustering
/// (which stays on the site for the relabel phase). Work counters land
/// in the recorder's `local[site]` scope.
///
/// With [`DbdcParams::partitions`] resolving above 1 the site runs the
/// partitioned execution path (stripes + ε-halos + one private index
/// per partition); the labels are identical either way, and the halo
/// replication volume lands in the site's `halo_points` counter.
fn local_phase(
    site: u32,
    site_data: &Dataset,
    params: &DbdcParams,
    rec: &dyn Recorder,
) -> (ScpResult, bytes::Bytes, LocalTimes) {
    let sheet = rec.sheet(&format!("local[{site}]"));
    let eps_hist = rec.hist(&format!("local[{site}]/eps_range_ns"));
    let t0 = Instant::now();
    let dbscan_params = DbscanParams::new(params.eps_local, params.min_pts_local);
    let partitions = effective_partitions(params.partitions, params.threads);
    let (scp, t_build, partition_times) = if partitions > 1 {
        let (scp, stats) = partitioned_dbscan_with_scp_observed(
            site_data,
            params.index,
            &dbscan_params,
            partitions,
            params.threads,
            params.precision,
            sheet.as_ref(),
            eps_hist.as_ref(),
        );
        if let Some(s) = &sheet {
            s.add_halo_points(stats.halo_points);
        }
        // Each partition builds its own index inside its timed span;
        // there is no site-wide build to report separately.
        (scp, Duration::ZERO, stats.partition_times)
    } else {
        let index = dbdc_index::build_index_opts(
            params.index,
            site_data,
            Euclidean,
            params.eps_local,
            BuildOptions {
                threads: effective_threads(params.threads),
                precision: params.precision,
            },
            sheet.as_ref(),
            eps_hist.as_ref(),
        );
        let t_build = t0.elapsed();
        let scp = if params.threads == 1 {
            dbscan_with_scp(site_data, index.as_ref(), &dbscan_params)
        } else {
            par_dbscan_with_scp(site_data, index.as_ref(), &dbscan_params, params.threads)
        };
        (scp, t_build, Vec::new())
    };
    let t_cluster = t0.elapsed();
    let model: LocalModel = build_local_model(params.model, site_data, &scp, site);
    let t_extract = t0.elapsed();
    let encoded = wire::encode_local_model(&model).expect("local model fits the wire format");
    let t_encode = t0.elapsed();
    if let Some(s) = &sheet {
        s.add_representatives(model.len() as u64);
        s.add_bytes_sent(encoded.len() as u64);
    }
    let times = LocalTimes {
        total: t_encode,
        build: t_build,
        cluster: t_cluster - t_build,
        extract: t_extract - t_cluster,
        encode: t_encode - t_extract,
        partitions: partition_times,
    };
    (scp, encoded, times)
}

/// Runs the full DBDC protocol sequentially (the paper's measurement mode).
pub fn run_dbdc(
    data: &Dataset,
    params: &DbdcParams,
    partitioner: Partitioner,
    n_sites: usize,
) -> DbdcOutcome {
    run_dbdc_recorded(data, params, partitioner, n_sites, &NoopRecorder)
}

/// [`run_dbdc`] reporting into `rec`: per-site counter scopes
/// (`local[i]`, `global`, `relabel[i]`) and the protocol phase-span
/// tree. With a [`NoopRecorder`] this is exactly [`run_dbdc`].
pub fn run_dbdc_recorded(
    data: &Dataset,
    params: &DbdcParams,
    partitioner: Partitioner,
    n_sites: usize,
    rec: &dyn Recorder,
) -> DbdcOutcome {
    let assignment = partitioner.assign(data, n_sites);
    let (parts, back) = data.partition(n_sites, &assignment);
    let locals: Vec<(ScpResult, bytes::Bytes, LocalTimes)> = parts
        .iter()
        .enumerate()
        .map(|(site, part)| local_phase(site as u32, part, params, rec))
        .collect();
    assemble(data, params, parts, back, locals, false, rec)
}

/// Runs the full DBDC protocol with one OS thread per site, each spawning
/// [`DbdcParams::threads`] DBSCAN workers. The timings still record
/// per-site wall time; the protocol result is identical to the sequential
/// mode (asserted by tests).
pub fn run_dbdc_threaded(
    data: &Dataset,
    params: &DbdcParams,
    partitioner: Partitioner,
    n_sites: usize,
) -> DbdcOutcome {
    run_dbdc_threaded_recorded(data, params, partitioner, n_sites, &NoopRecorder)
}

/// [`run_dbdc_threaded`] reporting into `rec`, like
/// [`run_dbdc_recorded`]. Counter sheets are lock-free, so concurrent
/// sites record without serializing on the recorder.
pub fn run_dbdc_threaded_recorded(
    data: &Dataset,
    params: &DbdcParams,
    partitioner: Partitioner,
    n_sites: usize,
    rec: &dyn Recorder,
) -> DbdcOutcome {
    let assignment = partitioner.assign(data, n_sites);
    let (parts, back) = data.partition(n_sites, &assignment);
    let locals: Vec<(ScpResult, bytes::Bytes, LocalTimes)> = std::thread::scope(|scope| {
        let handles: Vec<_> = parts
            .iter()
            .enumerate()
            .map(|(site, part)| scope.spawn(move || local_phase(site as u32, part, params, rec)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("site thread panicked"))
            .collect()
    });
    assemble(data, params, parts, back, locals, true, rec)
}

/// Server + relabel phases shared by both modes.
fn assemble(
    data: &Dataset,
    params: &DbdcParams,
    parts: Vec<Dataset>,
    back: Vec<Vec<u32>>,
    locals: Vec<(ScpResult, bytes::Bytes, LocalTimes)>,
    threaded: bool,
    rec: &dyn Recorder,
) -> DbdcOutcome {
    // --- Server: decode the models, cluster the representatives. ---
    let global_sheet = rec.sheet("global");
    let t_global = Instant::now();
    let per_site_bytes_up: Vec<usize> = locals.iter().map(|(_, b, _)| b.len()).collect();
    let bytes_up: usize = per_site_bytes_up.iter().sum();
    let models: Vec<LocalModel> = locals
        .iter()
        .map(|(_, b, _)| wire::decode_local_model(b).expect("self-encoded model decodes"))
        .collect();
    let n_representatives: usize = models.iter().map(|m| m.len()).sum();
    let global = build_global_model_observed(&models, params, global_sheet.as_ref());
    let encoded_global =
        wire::encode_global_model(&global).expect("global model fits the wire format");
    let global_time = t_global.elapsed();
    let global_model_bytes = encoded_global.len();
    let bytes_down = global_model_bytes * parts.len();
    if let Some(s) = &global_sheet {
        s.add_bytes_received(bytes_up as u64);
        s.add_bytes_sent(bytes_down as u64);
        s.add_representatives(n_representatives as u64);
    }

    // --- Clients: relabel (sequentially or one thread per site). ---
    let n_sites = parts.len();
    let relabel_one = |site: usize, part: &Dataset| -> (Clustering, Duration) {
        let sheet = rec.sheet(&format!("relabel[{site}]"));
        let t0 = Instant::now();
        // Each site decodes the broadcast copy.
        let g = wire::decode_global_model(&encoded_global).expect("self-encoded model decodes");
        debug_assert_eq!(g.n_clusters, global.n_clusters);
        if let Some(s) = &sheet {
            s.add_bytes_received(global_model_bytes as u64);
        }
        let labels =
            relabel_site_observed(part, &locals[site].0.dbscan.clustering, &g, sheet.as_ref());
        (labels, t0.elapsed())
    };
    let relabeled: Vec<(Clustering, Duration)> = if threaded {
        std::thread::scope(|scope| {
            let relabel_one = &relabel_one;
            let handles: Vec<_> = parts
                .iter()
                .enumerate()
                .map(|(site, part)| scope.spawn(move || relabel_one(site, part)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("relabel thread panicked"))
                .collect()
        })
    } else {
        parts
            .iter()
            .enumerate()
            .map(|(site, part)| relabel_one(site, part))
            .collect()
    };
    let mut site_labels: Vec<Clustering> = Vec::with_capacity(n_sites);
    let mut relabel_times: Vec<Duration> = Vec::with_capacity(n_sites);
    for (labels, t) in relabeled {
        site_labels.push(labels);
        relabel_times.push(t);
    }

    // --- Reassemble the full clustering in original order. ---
    let mut full = vec![Label::Noise; data.len()];
    for (site, ids) in back.iter().enumerate() {
        for (pos, &orig) in ids.iter().enumerate() {
            full[orig as usize] = site_labels[site].label(pos as u32);
        }
    }
    let assignment = Clustering::from_labels(full);

    let workers = effective_threads(params.threads);
    let sites_in_flight = if threaded { n_sites.max(1) } else { 1 };
    let timings = Timings {
        local: locals.iter().map(|(_, _, t)| t.total).collect(),
        global: global_time,
        relabel: relabel_times,
        threads: PhaseThreads {
            local: sites_in_flight * workers,
            global: 1,
            relabel: sites_in_flight,
        },
        build: locals.iter().map(|(_, _, t)| t.build).collect(),
        cluster: locals.iter().map(|(_, _, t)| t.cluster).collect(),
        extract: locals.iter().map(|(_, _, t)| t.extract).collect(),
        encode: locals.iter().map(|(_, _, t)| t.encode).collect(),
        partitions: locals
            .iter()
            .map(|(_, _, t)| t.partitions.clone())
            .collect(),
    };
    if rec.is_enabled() {
        // Phase walls as distributions *across sites*: with many sites
        // the p99 exposes the straggler the paper's max-based cost
        // model charges for.
        if let Some(h) = rec.hist("phase/local_ns") {
            for t in &timings.local {
                h.record_duration(*t);
            }
        }
        if let Some(h) = rec.hist("phase/relabel_ns") {
            for t in &timings.relabel {
                h.record_duration(*t);
            }
        }
        if let Some(h) = rec.hist("phase/global_ns") {
            h.record_duration(timings.global);
        }
        rec.record_span(timings.to_span());
    }
    DbdcOutcome {
        n_sites,
        assignment,
        timings,
        global,
        bytes_up,
        bytes_down,
        per_site_bytes_up,
        global_model_bytes,
        n_representatives,
        site_sizes: parts.iter().map(|p| p.len()).collect(),
    }
}

/// The central baseline: one DBSCAN over the complete dataset with the
/// local parameters, timed. This is the `CL_central` reference of Section 8
/// and the efficiency baseline of Section 9. Honors
/// [`DbdcParams::threads`] like the local phases do.
pub fn central_dbscan(data: &Dataset, params: &DbdcParams) -> (DbscanResult, Duration) {
    central_dbscan_recorded(data, params, &NoopRecorder)
}

/// [`central_dbscan`] reporting into `rec` under the `central` counter
/// scope, with a single `central` span.
pub fn central_dbscan_recorded(
    data: &Dataset,
    params: &DbdcParams,
    rec: &dyn Recorder,
) -> (DbscanResult, Duration) {
    let sheet = rec.sheet("central");
    let eps_hist = rec.hist("central/eps_range_ns");
    let t0 = Instant::now();
    let dbscan_params = DbscanParams::new(params.eps_local, params.min_pts_local);
    let index = dbdc_index::build_index_opts(
        params.index,
        data,
        Euclidean,
        params.eps_local,
        BuildOptions {
            threads: effective_threads(params.threads),
            precision: params.precision,
        },
        sheet.as_ref(),
        eps_hist.as_ref(),
    );
    let result = if params.threads == 1 {
        dbscan(data, index.as_ref(), &dbscan_params)
    } else {
        par_dbscan_instrumented(
            data,
            index.as_ref(),
            &dbscan_params,
            params.threads,
            sheet.as_deref(),
            rec.hist("central/dsu_batch_ops").as_deref(),
        )
    };
    let elapsed = t0.elapsed();
    if rec.is_enabled() {
        rec.record_span(
            Span::new("central", elapsed).with_threads(effective_threads(params.threads)),
        );
    }
    (result, elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{EpsGlobal, LocalModelKind};
    use crate::quality::{q_dbdc, ObjectQuality};
    use dbdc_datagen::dataset_c;

    fn params() -> DbdcParams {
        DbdcParams::new(1.6, 5).with_eps_global(EpsGlobal::MultipleOfLocal(2.0))
    }

    #[test]
    fn end_to_end_matches_central_on_dataset_c() {
        let g = dataset_c(1);
        let p = params();
        let outcome = run_dbdc(&g.data, &p, Partitioner::RandomEqual { seed: 4 }, 4);
        let (central, _) = central_dbscan(&g.data, &p);
        // Data set C has 3 clean clusters: both clusterings find them and
        // the distributed quality is near-perfect (paper Figure 11).
        assert_eq!(central.clustering.n_clusters(), 3);
        assert_eq!(outcome.assignment.n_clusters(), 3);
        let q2 = q_dbdc(&outcome.assignment, &central.clustering, ObjectQuality::PII);
        assert!(q2.q > 0.9, "P^II quality {}", q2.q);
        let q1 = q_dbdc(
            &outcome.assignment,
            &central.clustering,
            ObjectQuality::PI {
                qp: p.min_pts_local,
            },
        );
        assert!(q1.q > 0.9, "P^I quality {}", q1.q);
    }

    #[test]
    fn kmeans_model_also_works() {
        let g = dataset_c(2);
        let p = params().with_model(LocalModelKind::KMeans);
        let outcome = run_dbdc(&g.data, &p, Partitioner::RandomEqual { seed: 4 }, 4);
        let (central, _) = central_dbscan(&g.data, &p);
        let q2 = q_dbdc(&outcome.assignment, &central.clustering, ObjectQuality::PII);
        assert!(q2.q > 0.9, "P^II quality {}", q2.q);
    }

    #[test]
    fn threaded_equals_sequential() {
        let g = dataset_c(3);
        let p = params();
        let seq = run_dbdc(&g.data, &p, Partitioner::RandomEqual { seed: 9 }, 5);
        let thr = run_dbdc_threaded(&g.data, &p, Partitioner::RandomEqual { seed: 9 }, 5);
        assert_eq!(seq.assignment, thr.assignment);
        assert_eq!(seq.bytes_up, thr.bytes_up);
        assert_eq!(seq.n_representatives, thr.n_representatives);
    }

    #[test]
    fn every_thread_count_gives_the_same_outcome() {
        // The determinism guarantee end to end: sequential and threaded
        // drivers, with 1/2/8 intra-site workers, all produce the same
        // protocol result.
        let g = dataset_c(12);
        let base = run_dbdc(&g.data, &params(), Partitioner::RandomEqual { seed: 7 }, 3);
        for threads in [0, 1, 2, 8] {
            let p = params().with_threads(threads);
            for threaded in [false, true] {
                let out = if threaded {
                    run_dbdc_threaded(&g.data, &p, Partitioner::RandomEqual { seed: 7 }, 3)
                } else {
                    run_dbdc(&g.data, &p, Partitioner::RandomEqual { seed: 7 }, 3)
                };
                assert_eq!(
                    base.assignment, out.assignment,
                    "threads={threads} threaded={threaded}"
                );
                assert_eq!(base.bytes_up, out.bytes_up);
                assert_eq!(base.per_site_bytes_up, out.per_site_bytes_up);
                assert_eq!(base.global_model_bytes, out.global_model_bytes);
                assert_eq!(base.n_representatives, out.n_representatives);
            }
        }
    }

    #[test]
    fn central_baseline_is_thread_count_invariant() {
        let g = dataset_c(13);
        let (seq, _) = central_dbscan(&g.data, &params());
        for threads in [0, 2, 8] {
            let (par, _) = central_dbscan(&g.data, &params().with_threads(threads));
            assert_eq!(seq.clustering, par.clustering, "threads={threads}");
            assert_eq!(seq.core, par.core);
            assert_eq!(seq.range_queries, par.range_queries);
        }
    }

    #[test]
    fn transmission_is_small() {
        let g = dataset_c(4);
        let p = params();
        let outcome = run_dbdc(&g.data, &p, Partitioner::RandomEqual { seed: 1 }, 4);
        let raw = wire::raw_data_bytes(g.data.len(), 2);
        assert!(
            outcome.bytes_up * 2 < raw,
            "model bytes {} vs raw {}",
            outcome.bytes_up,
            raw
        );
        assert!(outcome.n_representatives > 0);
        assert!(outcome.representative_fraction() < 0.5);
    }

    #[test]
    fn single_site_degenerates_to_central_clustering() {
        // With one site, the local clustering is the central clustering and
        // relabeling through the model must preserve it almost exactly.
        let g = dataset_c(5);
        let p = params();
        let outcome = run_dbdc(&g.data, &p, Partitioner::RoundRobin, 1);
        let (central, _) = central_dbscan(&g.data, &p);
        let q = q_dbdc(&outcome.assignment, &central.clustering, ObjectQuality::PII);
        assert!(q.q > 0.95, "quality {}", q.q);
    }

    #[test]
    fn timings_are_recorded() {
        let g = dataset_c(6);
        let outcome = run_dbdc(&g.data, &params(), Partitioner::RoundRobin, 3);
        assert_eq!(outcome.timings.local.len(), 3);
        assert_eq!(outcome.timings.relabel.len(), 3);
        assert!(outcome.timings.dbdc_total() >= outcome.timings.local_max());
        assert!(outcome.timings.dbdc_total_with_relabel() >= outcome.timings.dbdc_total());
        assert_eq!(outcome.site_sizes.iter().sum::<usize>(), g.data.len());
    }

    #[test]
    fn phase_thread_counts_are_recorded() {
        let g = dataset_c(11);
        let seq = run_dbdc(&g.data, &params(), Partitioner::RoundRobin, 3);
        assert_eq!(
            seq.timings.threads,
            PhaseThreads {
                local: 1,
                global: 1,
                relabel: 1
            }
        );
        let thr = run_dbdc_threaded(
            &g.data,
            &params().with_threads(2),
            Partitioner::RoundRobin,
            3,
        );
        assert_eq!(
            thr.timings.threads,
            PhaseThreads {
                local: 6,
                global: 1,
                relabel: 3
            }
        );
    }

    #[test]
    fn empty_dataset_runs() {
        let d = Dataset::new(2);
        let outcome = run_dbdc(&d, &params(), Partitioner::RoundRobin, 2);
        assert_eq!(outcome.assignment.len(), 0);
        assert_eq!(outcome.n_representatives, 0);
    }

    #[test]
    fn many_sites_on_small_data() {
        let g = dataset_c(7);
        let outcome = run_dbdc(&g.data, &params(), Partitioner::RandomEqual { seed: 2 }, 20);
        assert_eq!(outcome.n_sites, 20);
        assert_eq!(outcome.assignment.len(), g.data.len());
    }

    #[test]
    fn network_extended_cost_model() {
        let g = dataset_c(8);
        let outcome = run_dbdc(&g.data, &params(), Partitioner::RoundRobin, 4);
        let lan = crate::network::NetworkModel::lan();
        let slow = crate::network::NetworkModel::slow_uplink();
        let base = outcome.timings.dbdc_total_with_relabel();
        let with_lan = outcome.total_with_network(&lan);
        let with_slow = outcome.total_with_network(&slow);
        assert!(with_lan > base);
        assert!(with_slow > with_lan, "slow uplink must dominate LAN");
    }

    #[test]
    fn network_cost_charges_slowest_site_exactly() {
        // The upload phase is concurrent: the site with the largest encoded
        // model determines the cost, not the per-site average.
        let g = dataset_c(9);
        let outcome = run_dbdc(&g.data, &params(), Partitioner::RandomEqual { seed: 3 }, 4);
        assert_eq!(outcome.per_site_bytes_up.len(), 4);
        assert_eq!(
            outcome.per_site_bytes_up.iter().sum::<usize>(),
            outcome.bytes_up
        );
        assert_eq!(
            outcome.global_model_bytes * outcome.n_sites,
            outcome.bytes_down
        );
        let net = crate::network::NetworkModel::wan();
        let slowest = *outcome.per_site_bytes_up.iter().max().unwrap();
        let expected = outcome.timings.dbdc_total_with_relabel()
            + net.transfer_time(slowest)
            + net.transfer_time(outcome.global_model_bytes);
        assert_eq!(outcome.total_with_network(&net), expected);
    }

    #[test]
    fn network_cost_without_sites_is_pure_compute() {
        // `run_dbdc` insists on at least one site, so build the degenerate
        // outcome by hand: no uploads, no broadcast, only compute time.
        let outcome = DbdcOutcome {
            n_sites: 0,
            global: GlobalModel {
                dim: 2,
                reps: Vec::new(),
                n_clusters: 0,
                eps_global: 1.0,
            },
            assignment: Clustering::from_labels(Vec::new()),
            timings: Timings::default(),
            bytes_up: 0,
            bytes_down: 0,
            per_site_bytes_up: Vec::new(),
            global_model_bytes: 0,
            n_representatives: 0,
            site_sizes: Vec::new(),
        };
        let net = crate::network::NetworkModel::wan();
        assert_eq!(
            outcome.total_with_network(&net),
            outcome.timings.dbdc_total_with_relabel()
        );
    }
}
