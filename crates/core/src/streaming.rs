//! Streaming DBDC sessions — the paper's incremental mode.
//!
//! Section 6: "the incremental version of DBSCAN allows us to start with
//! the construction of the global model after the first representatives of
//! any local model come in. Thus we do not have to wait for all clients to
//! have transmitted their complete local models." And Section 4 motivates
//! incremental local clustering: a site only re-transmits its model when
//! its clustering changes "considerably".
//!
//! Two session types deliver that mode:
//!
//! * [`ServerSession`] — maintains the global model incrementally: local
//!   models are ingested as they arrive (each representative is an
//!   insertion into an incremental DBSCAN over representative space), and a
//!   consistent [`GlobalModel`] snapshot is available at any time. A site
//!   may also *replace* its model, which retracts its previous
//!   representatives.
//! * [`ClientSession`] — maintains a site's clustering with incremental
//!   DBSCAN as points stream in, extracts the `REP_Scor` local model from
//!   the maintained state on demand, and reports how far the clustering has
//!   drifted since the last transmitted model so the caller can decide when
//!   to re-send.

use crate::global_model::{GlobalModel, GlobalRep};
use crate::local_model::{LocalModel, Representative};
use crate::params::DbdcParams;
use dbdc_cluster::{DbscanParams, IncrementalDbscan};
use dbdc_geom::{adjusted_rand_index, Clustering, Euclidean, Label, Metric, Point};
use std::collections::HashMap;

/// The server side of streaming DBDC.
///
/// ```
/// use dbdc::{ClientSession, ServerSession, DbdcParams, EpsGlobal};
///
/// let params = DbdcParams::new(1.0, 3).with_eps_global(EpsGlobal::MultipleOfLocal(2.0));
/// let mut client = ClientSession::new(0, 2, params);
/// for i in 0..12 {
///     client.insert(&[i as f64 * 0.2, 0.0]);
/// }
/// let mut server = ServerSession::new(2, 2.0, &params);
/// server.ingest(&client.take_model());           // first model arrives
/// let snapshot = server.snapshot();              // global model available immediately
/// assert!(snapshot.n_clusters >= 1);
/// assert_eq!(client.drift(), 0.0);               // nothing changed since the send
/// ```
pub struct ServerSession {
    eps_global: f64,
    dim: usize,
    inc: IncrementalDbscan,
    /// Metadata per incremental point id; `None` for retracted entries.
    meta: Vec<Option<(u32, u32, f64)>>, // (site, local_cluster, eps_range)
    /// Ids contributed by each site, for retraction on model replacement.
    by_site: HashMap<u32, Vec<u32>>,
}

impl ServerSession {
    /// Creates a session clustering representatives of dimension `dim` with
    /// the resolved `Eps_global` of `params`. Since representatives arrive
    /// over time, the `MaxEpsRange` policy cannot be used here — resolve it
    /// with [`DbdcParams::resolve_eps_global`] over an expected range or use
    /// an explicit policy.
    ///
    /// # Panics
    /// Panics if `eps_global` is not positive and finite.
    pub fn new(dim: usize, eps_global: f64, params: &DbdcParams) -> Self {
        Self {
            eps_global,
            dim,
            inc: IncrementalDbscan::new(dim, DbscanParams::new(eps_global, params.min_pts_global)),
            meta: Vec::new(),
            by_site: HashMap::new(),
        }
    }

    /// Number of live representatives.
    pub fn n_representatives(&self) -> usize {
        self.meta.iter().flatten().count()
    }

    /// Ingests (or replaces) a site's local model.
    ///
    /// # Panics
    /// Panics if the model's dimensionality disagrees with the session.
    pub fn ingest(&mut self, model: &LocalModel) {
        assert!(
            model.is_empty() || model.dim == self.dim,
            "model dimensionality mismatch"
        );
        // Retract the site's previous representatives, if any.
        if let Some(old) = self.by_site.remove(&model.site) {
            for id in old {
                self.inc.remove(id);
                self.meta[id as usize] = None;
            }
        }
        let mut ids = Vec::with_capacity(model.reps.len());
        for r in &model.reps {
            let id = self.inc.insert(r.point.coords());
            debug_assert_eq!(id as usize, self.meta.len());
            self.meta
                .push(Some((model.site, r.local_cluster, r.eps_range)));
            ids.push(id);
        }
        self.by_site.insert(model.site, ids);
    }

    /// A consistent snapshot of the current global model (representatives
    /// that incremental DBSCAN considers noise are promoted to singleton
    /// clusters, as in the batch path).
    pub fn snapshot(&self) -> GlobalModel {
        let mut reps = Vec::with_capacity(self.n_representatives());
        let mut dense: HashMap<u32, u32> = HashMap::new();
        let mut next = 0u32;
        // First pass: count clustered ids densely in id order.
        for (id, m) in self.meta.iter().enumerate() {
            let Some(&(site, local_cluster, eps_range)) = m.as_ref() else {
                continue;
            };
            let global_cluster = match self.inc.label(id as u32) {
                Label::Cluster(c) => *dense.entry(c).or_insert_with(|| {
                    let v = next;
                    next += 1;
                    v
                }),
                Label::Noise => {
                    let v = next;
                    next += 1;
                    v
                }
            };
            reps.push(GlobalRep {
                point: Point::from(self.inc.point(id as u32)),
                eps_range,
                site,
                local_cluster,
                global_cluster,
            });
        }
        GlobalModel {
            dim: self.dim,
            reps,
            n_clusters: next,
            eps_global: self.eps_global,
        }
    }
}

/// The client side of streaming DBDC: a site whose data arrives over time.
pub struct ClientSession {
    site: u32,
    dim: usize,
    params: DbdcParams,
    inc: IncrementalDbscan,
    /// The clustering at the time of the last transmitted model.
    last_sent: Option<Clustering>,
}

impl ClientSession {
    /// Creates a streaming client for 2-d data (the workspace's datasets).
    pub fn new(site: u32, dim: usize, params: DbdcParams) -> Self {
        Self {
            site,
            dim,
            params,
            inc: IncrementalDbscan::new(
                dim,
                DbscanParams::new(params.eps_local, params.min_pts_local),
            ),
            last_sent: None,
        }
    }

    /// Inserts a streamed point; returns its id.
    pub fn insert(&mut self, p: &[f64]) -> u32 {
        self.inc.insert(p)
    }

    /// Removes a point (e.g. record expiry).
    pub fn remove(&mut self, id: u32) {
        self.inc.remove(id);
    }

    /// Number of live points on the site.
    pub fn len(&self) -> usize {
        self.inc.len()
    }

    /// Whether the site holds no live points.
    pub fn is_empty(&self) -> bool {
        self.inc.is_empty()
    }

    /// The site's current clustering.
    pub fn clustering(&self) -> Clustering {
        self.inc.clustering()
    }

    /// Drift of the current clustering relative to the last transmitted
    /// model, as `1 - ARI` in `[0, 1]` (1 if nothing was sent yet).
    pub fn drift(&self) -> f64 {
        match &self.last_sent {
            None => 1.0,
            Some(prev) => {
                let current = self.inc.clustering();
                // Compare over the ids that existed at send time.
                let k = prev.len().min(current.len());
                let prev_k = Clustering::from_labels(prev.labels()[..k].to_vec());
                let cur_k = Clustering::from_labels(current.labels()[..k].to_vec());
                (1.0 - adjusted_rand_index(&prev_k, &cur_k)).clamp(0.0, 1.0)
            }
        }
    }

    /// Extracts the current `REP_Scor` local model from the maintained
    /// clustering state and marks it as transmitted (resetting drift).
    ///
    /// The specific core points are selected greedily in id order over the
    /// *current* core points; the specific ε-ranges follow Definition 7.
    pub fn take_model(&mut self) -> LocalModel {
        let clustering = self.inc.clustering();
        self.last_sent = Some(clustering.clone());
        let metric = Euclidean;
        // Collect current core points per cluster.
        let mut cores_by_cluster: HashMap<u32, Vec<u32>> = HashMap::new();
        for id in 0..clustering.len() as u32 {
            if self.inc.is_live(id) && self.inc.is_core(id) {
                if let Label::Cluster(c) = clustering.label(id) {
                    cores_by_cluster.entry(c).or_default().push(id);
                }
            }
        }
        let mut reps = Vec::new();
        let mut clusters: Vec<_> = cores_by_cluster.into_iter().collect();
        clusters.sort_by_key(|(c, _)| *c);
        for (cluster, cores) in clusters {
            // Greedy Scor selection in id order.
            let mut scor: Vec<u32> = Vec::new();
            for &c in &cores {
                let covered = scor.iter().any(|&s| {
                    metric.dist(self.inc.point(s), self.inc.point(c)) <= self.params.eps_local
                });
                if !covered {
                    scor.push(c);
                }
            }
            // Definition 7 ε-ranges.
            for &s in &scor {
                let max_core = cores
                    .iter()
                    .map(|&c| metric.dist(self.inc.point(s), self.inc.point(c)))
                    .filter(|&d| d <= self.params.eps_local)
                    .fold(0.0f64, f64::max);
                reps.push(Representative {
                    point: Point::from(self.inc.point(s)),
                    eps_range: self.params.eps_local + max_core,
                    local_cluster: cluster,
                });
            }
        }
        LocalModel {
            site: self.site,
            dim: self.dim,
            reps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::EpsGlobal;
    use crate::quality::{q_dbdc, ObjectQuality};
    use crate::relabel::relabel_site;
    use crate::runtime::central_dbscan;
    use dbdc_geom::Dataset;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn params() -> DbdcParams {
        DbdcParams::new(1.2, 5).with_eps_global(EpsGlobal::MultipleOfLocal(2.0))
    }

    /// Streamed sites + incremental server must reach the same quality as
    /// the batch pipeline.
    #[test]
    fn streaming_matches_batch_quality() {
        let g = dbdc_datagen::dataset_c(77);
        let p = params();
        let sites = 3;
        // Stream points round-robin into client sessions.
        let mut clients: Vec<ClientSession> = (0..sites)
            .map(|s| ClientSession::new(s as u32, 2, p))
            .collect();
        let mut site_points: Vec<Dataset> = vec![Dataset::new(2); sites];
        for (i, pt) in g.data.iter().enumerate() {
            clients[i % sites].insert(pt);
            site_points[i % sites].push(pt);
        }
        // Server ingests models as they "arrive".
        let mut server = ServerSession::new(2, 2.0 * p.eps_local, &p);
        for c in clients.iter_mut() {
            server.ingest(&c.take_model());
        }
        let global = server.snapshot();
        assert!(global.n_clusters >= 3);
        // Relabel every site and reassemble.
        let mut full = vec![Label::Noise; g.data.len()];
        for (s, client) in clients.iter().enumerate() {
            let local = client.clustering();
            let relabeled = relabel_site(&site_points[s], &local, &global);
            for (pos, orig) in (s..g.data.len()).step_by(sites).enumerate() {
                full[orig] = relabeled.label(pos as u32);
            }
        }
        let assignment = Clustering::from_labels(full);
        let (central, _) = central_dbscan(&g.data, &p);
        let q = q_dbdc(&assignment, &central.clustering, ObjectQuality::PII);
        assert!(q.q > 0.9, "streaming quality {:.3}", q.q);
    }

    #[test]
    fn server_supports_early_snapshots() {
        let g = dbdc_datagen::dataset_c(78);
        let p = params();
        let mut clients: Vec<ClientSession> = (0..2).map(|s| ClientSession::new(s, 2, p)).collect();
        for (i, pt) in g.data.iter().enumerate() {
            clients[i % 2].insert(pt);
        }
        let mut server = ServerSession::new(2, 2.0 * p.eps_local, &p);
        // Snapshot after the FIRST model only — Section 6's selling point.
        server.ingest(&clients[0].take_model());
        let early = server.snapshot();
        assert!(early.n_clusters > 0);
        assert!(early.reps.iter().all(|r| r.site == 0));
        // Then the second model arrives and the snapshot extends.
        server.ingest(&clients[1].take_model());
        let late = server.snapshot();
        assert!(late.reps.len() > early.reps.len());
    }

    #[test]
    fn model_replacement_retracts_old_representatives() {
        let p = params();
        let mut server = ServerSession::new(2, 2.0 * p.eps_local, &p);
        let model_a = LocalModel {
            site: 4,
            dim: 2,
            reps: vec![Representative {
                point: Point::xy(0.0, 0.0),
                eps_range: 1.5,
                local_cluster: 0,
            }],
        };
        server.ingest(&model_a);
        assert_eq!(server.n_representatives(), 1);
        let model_b = LocalModel {
            site: 4,
            dim: 2,
            reps: vec![
                Representative {
                    point: Point::xy(10.0, 10.0),
                    eps_range: 1.5,
                    local_cluster: 0,
                },
                Representative {
                    point: Point::xy(11.0, 10.0),
                    eps_range: 1.5,
                    local_cluster: 0,
                },
            ],
        };
        server.ingest(&model_b);
        assert_eq!(server.n_representatives(), 2);
        let snap = server.snapshot();
        assert!(snap.reps.iter().all(|r| r.point.coords()[0] >= 10.0));
        // The two nearby representatives merge into one cluster.
        assert_eq!(snap.n_clusters, 1);
    }

    #[test]
    fn drift_tracks_structural_change() {
        let p = params();
        let mut client = ClientSession::new(0, 2, p);
        assert_eq!(client.drift(), 1.0, "everything is drift before a send");
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..60 {
            client.insert(&[rng.random_range(-1.0..1.0), rng.random_range(-1.0..1.0)]);
        }
        let model = client.take_model();
        assert!(!model.is_empty());
        assert_eq!(client.drift(), 0.0, "freshly sent model has zero drift");
        // A new far-away cluster appears: drift grows.
        for _ in 0..60 {
            client.insert(&[
                20.0 + rng.random_range(-1.0..1.0),
                rng.random_range(-1.0..1.0),
            ]);
        }
        // Drift is measured on the common prefix, which is unchanged, so
        // feed churn into the old region too.
        for id in 0..20 {
            client.remove(id);
        }
        assert!(client.drift() > 0.0);
    }

    #[test]
    fn streaming_model_satisfies_scor_invariants() {
        let p = params();
        let mut client = ClientSession::new(0, 2, p);
        let g = dbdc_datagen::dataset_c(79);
        for pt in g.data.iter().take(400) {
            client.insert(pt);
        }
        let model = client.take_model();
        let metric = Euclidean;
        // Pairwise separation of representatives of the same cluster.
        for (i, a) in model.reps.iter().enumerate() {
            for b in &model.reps[i + 1..] {
                if a.local_cluster == b.local_cluster {
                    assert!(
                        metric.dist(a.point.coords(), b.point.coords()) > p.eps_local,
                        "scor separation violated"
                    );
                }
            }
            assert!(a.eps_range >= p.eps_local);
            assert!(a.eps_range <= 2.0 * p.eps_local + 1e-9);
        }
    }

    #[test]
    fn empty_session_behaviour() {
        let p = params();
        let mut client = ClientSession::new(0, 2, p);
        assert!(client.is_empty());
        let model = client.take_model();
        assert!(model.is_empty());
        let mut server = ServerSession::new(2, 2.0 * p.eps_local, &p);
        server.ingest(&model);
        let snap = server.snapshot();
        assert_eq!(snap.n_clusters, 0);
        assert_eq!(client.len(), 0);
    }
}
