//! Local models (Section 5 of the paper).
//!
//! After a client site has clustered its data with the enhanced DBSCAN, it
//! condenses each local cluster into a handful of *representatives*, each a
//! pair `(r, ε_r)`: all objects of the site within `ε_r` of `r` are promised
//! to belong to `r`'s cluster. Two constructions are provided:
//!
//! * [`build_scor`] — `REP_Scor` (Section 5.1): the specific core points
//!   themselves, with the specific ε-ranges of Definition 7.
//! * [`build_kmeans`] — `REP_kMeans` (Section 5.2): per cluster, run k-means
//!   *inside* the cluster with `k = |Scor_C|`, seeded by the specific core
//!   points; the centroids become the representatives and each takes the
//!   maximum distance to its assigned objects as its ε-range.

use crate::params::LocalModelKind;
use dbdc_cluster::{kmeans_seeded, KMeansParams, ScpResult};
use dbdc_geom::{Dataset, Point};

/// One transmitted representative: a point, its validity radius, and the
/// local cluster it stands for.
#[derive(Debug, Clone, PartialEq)]
pub struct Representative {
    /// The representative object (a real data point for `REP_Scor`, a
    /// synthetic centroid for `REP_kMeans`).
    pub point: Point,
    /// The ε-range: the radius within which this representative speaks for
    /// its cluster.
    pub eps_range: f64,
    /// Id of the cluster on the origin site this representative describes.
    pub local_cluster: u32,
}

/// The local model of one site: everything the site sends to the server.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalModel {
    /// The site's identifier.
    pub site: u32,
    /// Dimensionality of the representatives.
    pub dim: usize,
    /// The representatives of all local clusters.
    pub reps: Vec<Representative>,
}

impl LocalModel {
    /// Number of representatives.
    pub fn len(&self) -> usize {
        self.reps.len()
    }

    /// Whether the model is empty (a site with no clusters).
    pub fn is_empty(&self) -> bool {
        self.reps.is_empty()
    }

    /// The largest ε-range in the model (0 if empty).
    pub fn max_eps_range(&self) -> f64 {
        self.reps.iter().map(|r| r.eps_range).fold(0.0, f64::max)
    }
}

/// Builds the `REP_Scor` local model from an enhanced-DBSCAN result.
pub fn build_scor(data: &Dataset, scp: &ScpResult, site: u32) -> LocalModel {
    let mut reps = Vec::with_capacity(scp.n_representatives());
    for (cluster, list) in scp.scp.iter().enumerate() {
        for s in list {
            reps.push(Representative {
                point: Point::from(data.point(s.point)),
                eps_range: s.eps_range,
                local_cluster: cluster as u32,
            });
        }
    }
    LocalModel {
        site,
        dim: data.dim(),
        reps,
    }
}

/// Builds the `REP_kMeans` local model from an enhanced-DBSCAN result.
///
/// Per cluster `C`: `k = |Scor_C|`, initial centroids = the specific core
/// points, data = the members of `C` only. Each centroid `c_{i,j}` receives
/// `ε = max{ dist(o, c_{i,j}) | o assigned to c_{i,j} }`.
pub fn build_kmeans(
    data: &Dataset,
    scp: &ScpResult,
    site: u32,
    kmeans_params: &KMeansParams,
) -> LocalModel {
    let mut reps = Vec::with_capacity(scp.n_representatives());
    for (cluster, list) in scp.scp.iter().enumerate() {
        if list.is_empty() {
            continue;
        }
        let members = scp.dbscan.clustering.members(cluster as u32);
        let cluster_data = data.subset(&members);
        let seed_ids: Vec<u32> = list.iter().map(|s| s.point).collect();
        let seeds = data.subset(&seed_ids);
        let km = kmeans_seeded(&cluster_data, &seeds, kmeans_params);
        for j in 0..km.centroids.len() as u32 {
            reps.push(Representative {
                point: Point::from(km.centroids.point(j)),
                eps_range: km.max_assigned_distance(&cluster_data, j),
                local_cluster: cluster as u32,
            });
        }
    }
    LocalModel {
        site,
        dim: data.dim(),
        reps,
    }
}

/// Builds the local model of the requested kind.
pub fn build_local_model(
    kind: LocalModelKind,
    data: &Dataset,
    scp: &ScpResult,
    site: u32,
) -> LocalModel {
    match kind {
        LocalModelKind::Scor => build_scor(data, scp, site),
        LocalModelKind::KMeans => build_kmeans(data, scp, site, &KMeansParams::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbdc_cluster::{dbscan_with_scp, DbscanParams};
    use dbdc_geom::{Euclidean, Metric};
    use dbdc_index::LinearScan;

    fn blobs() -> Dataset {
        let mut d = Dataset::new(2);
        for (cx, cy) in [(0.0, 0.0), (20.0, 20.0)] {
            for i in 0..40 {
                let t = i as f64;
                d.push(&[cx + (t * 0.7).sin() * 1.5, cy + (t * 1.3).cos() * 1.5]);
            }
        }
        d.push(&[100.0, 100.0]); // noise
        d
    }

    fn scp_of(data: &Dataset, eps: f64, min_pts: usize) -> ScpResult {
        let idx = LinearScan::new(data, Euclidean);
        dbscan_with_scp(data, &idx, &DbscanParams::new(eps, min_pts))
    }

    #[test]
    fn scor_model_mirrors_scp() {
        let d = blobs();
        let scp = scp_of(&d, 1.0, 4);
        let m = build_scor(&d, &scp, 3);
        assert_eq!(m.site, 3);
        assert_eq!(m.dim, 2);
        assert_eq!(m.len(), scp.n_representatives());
        // Every representative is an actual data point with its scp range.
        for r in &m.reps {
            let found = scp.scp[r.local_cluster as usize]
                .iter()
                .any(|s| d.point(s.point) == r.point.coords() && s.eps_range == r.eps_range);
            assert!(found, "representative without matching scp");
        }
    }

    #[test]
    fn kmeans_model_same_count_as_scor() {
        // Section 5.2: "the number of representatives for each cluster is
        // the same as in the previous approach".
        let d = blobs();
        let scp = scp_of(&d, 1.0, 4);
        let scor = build_scor(&d, &scp, 0);
        let km = build_kmeans(&d, &scp, 0, &KMeansParams::default());
        assert_eq!(scor.len(), km.len());
    }

    #[test]
    fn kmeans_ranges_cover_assigned_members() {
        // Every cluster member lies within the ε-range of at least one of
        // its cluster's representatives (its own centroid qualifies).
        let d = blobs();
        let scp = scp_of(&d, 1.0, 4);
        let m = build_kmeans(&d, &scp, 0, &KMeansParams::default());
        for i in 0..d.len() as u32 {
            if let Some(c) = scp.dbscan.clustering.label(i).cluster() {
                let covered =
                    m.reps.iter().filter(|r| r.local_cluster == c).any(|r| {
                        Euclidean.dist(r.point.coords(), d.point(i)) <= r.eps_range + 1e-9
                    });
                assert!(covered, "member {i} escapes all kmeans ε-ranges");
            }
        }
    }

    #[test]
    fn scor_ranges_cover_members_too() {
        let d = blobs();
        let scp = scp_of(&d, 1.0, 4);
        let m = build_scor(&d, &scp, 0);
        for i in 0..d.len() as u32 {
            if let Some(c) = scp.dbscan.clustering.label(i).cluster() {
                let covered =
                    m.reps.iter().filter(|r| r.local_cluster == c).any(|r| {
                        Euclidean.dist(r.point.coords(), d.point(i)) <= r.eps_range + 1e-9
                    });
                assert!(covered, "member {i} escapes all scor ε-ranges");
            }
        }
    }

    #[test]
    fn noise_is_not_represented() {
        let d = blobs();
        let scp = scp_of(&d, 1.0, 4);
        for kind in [LocalModelKind::Scor, LocalModelKind::KMeans] {
            let m = build_local_model(kind, &d, &scp, 0);
            // Representative clusters reference only real clusters.
            let n_clusters = scp.dbscan.clustering.n_clusters();
            for r in &m.reps {
                assert!(r.local_cluster < n_clusters);
            }
        }
    }

    #[test]
    fn empty_site_produces_empty_model() {
        let d = Dataset::new(2);
        let scp = scp_of(&d, 1.0, 4);
        let m = build_scor(&d, &scp, 9);
        assert!(m.is_empty());
        assert_eq!(m.max_eps_range(), 0.0);
    }

    #[test]
    fn max_eps_range_is_max() {
        let d = blobs();
        let scp = scp_of(&d, 1.0, 4);
        let m = build_scor(&d, &scp, 0);
        let expect = m.reps.iter().map(|r| r.eps_range).fold(0.0, f64::max);
        assert_eq!(m.max_eps_range(), expect);
        assert!(m.max_eps_range() >= 1.0);
        assert!(m.max_eps_range() <= 2.0 + 1e-9);
    }
}
