//! Assembling a [`RunReport`] from a recorded DBDC run.
//!
//! [`crate::runtime::run_dbdc_recorded`] leaves a [`RecordingRecorder`]
//! holding the measured phase-span tree and one counter scope per
//! protocol party. This module turns that raw capture plus the
//! [`DbdcOutcome`] into the stable report the CLI emits: it injects the
//! *modeled* `upload`/`broadcast` phases into the span tree (no bytes
//! cross a wire in this single-process reproduction, so their durations
//! come from the [`NetworkModel`]), merges each site's local and relabel
//! counters, and prices the real transfer sizes on all three link
//! presets.

use crate::network::NetworkModel;
use crate::params::DbdcParams;
use crate::runtime::DbdcOutcome;
use dbdc_geom::Label;
use dbdc_obs::{
    ClusterStats, Counters, DatasetInfo, NetworkCost, RecordingRecorder, RunReport, SiteStats,
    Span, TransferStats,
};

/// The link presets a report prices the transfers with, in order.
pub const LINK_PRESETS: [&str; 3] = ["lan", "wan", "slow_uplink"];

/// Resolves a preset name from [`LINK_PRESETS`].
pub fn link_preset(name: &str) -> Option<NetworkModel> {
    match name {
        "lan" => Some(NetworkModel::lan()),
        "wan" => Some(NetworkModel::wan()),
        "slow_uplink" => Some(NetworkModel::slow_uplink()),
        _ => None,
    }
}

/// Resolves any link spec a CLI accepts: a preset from [`LINK_PRESETS`]
/// or a custom validated `BYTES_PER_SEC:LATENCY_MS` pair.
pub fn link_model(spec: &str) -> Option<NetworkModel> {
    NetworkModel::from_spec(spec).ok()
}

/// The measured `dbdc` span tree extended with the modeled transfer
/// phases on `link`: `upload` goes after the last `local[i]` child,
/// `broadcast` after `global`, both flagged modeled, and the root wall
/// grows by both so it stays the sum of the sequential protocol steps.
pub fn span_with_network(measured: &Span, outcome: &DbdcOutcome, link: &NetworkModel) -> Span {
    let upload = link.concurrent_upload(&outcome.per_site_bytes_up);
    let broadcast = if outcome.n_sites == 0 {
        std::time::Duration::ZERO
    } else {
        link.transfer_time(outcome.global_model_bytes)
    };
    let mut root = measured.clone();
    root.wall += upload + broadcast;
    let last_local = root
        .children
        .iter()
        .rposition(|c| c.name.starts_with("local["))
        .map(|i| i + 1)
        .unwrap_or(0);
    root.children
        .insert(last_local, Span::modeled("upload", upload));
    let after_global = root
        .children
        .iter()
        .position(|c| c.name == "global")
        .map(|i| i + 1)
        .unwrap_or(root.children.len());
    root.children
        .insert(after_global, Span::modeled("broadcast", broadcast));
    root
}

/// Builds the full [`RunReport`] for a recorded distributed run.
///
/// `link` selects the preset whose modeled transfer phases are spliced
/// into the span tree (the `network` section always prices all of
/// [`LINK_PRESETS`]); pass `None` to keep the measured tree as-is.
/// `run_id` is the operator's shared run identity (see schema v3): the
/// report is stamped `role: standalone` — every protocol role lives in
/// this one process — which also keeps `merge_reports` from quietly
/// mixing an in-process report into a real server + sites fleet.
pub fn dbdc_run_report(
    command: &str,
    dim: usize,
    params: &DbdcParams,
    outcome: &DbdcOutcome,
    rec: &RecordingRecorder,
    link: Option<&str>,
    run_id: Option<String>,
) -> RunReport {
    let n_points: usize = outcome.site_sizes.iter().sum();
    let mut report = RunReport::new(command)
        .with_identity("standalone", run_id, "standalone")
        .with_param("eps_local", params.eps_local)
        .with_param("min_pts_local", params.min_pts_local)
        .with_param("model", params.model.name())
        .with_param("index", params.index.name())
        .with_param("threads", params.threads)
        .with_param("partitions", params.partitions)
        .with_param("precision", params.precision.name())
        .with_param("sites", outcome.n_sites);
    report.dataset = Some(DatasetInfo {
        points: n_points,
        dim,
    });

    // Span trees: splice the modeled transfers of the chosen link into
    // every recorded dbdc tree.
    let net = link.and_then(link_model);
    report.spans = rec
        .spans()
        .into_iter()
        .map(|s| match &net {
            Some(n) if s.name == "dbdc" => span_with_network(&s, outcome, n),
            _ => s,
        })
        .collect();
    report.scopes = rec.scopes();
    report.hists = rec.hist_scopes();

    // Per-site stats: counters from the local and relabel scopes merged.
    report.sites = (0..outcome.n_sites)
        .map(|site| {
            let mut counters = rec.counters(&format!("local[{site}]"));
            counters.add(&rec.counters(&format!("relabel[{site}]")));
            SiteStats {
                site,
                points: outcome.site_sizes[site],
                representatives: counters.representatives as usize,
                bytes_up: outcome.per_site_bytes_up[site],
                local: outcome.timings.local[site],
                relabel: outcome.timings.relabel[site],
                counters,
            }
        })
        .collect();

    report.transfer = Some(TransferStats {
        bytes_up: outcome.bytes_up,
        bytes_down: outcome.bytes_down,
        per_site_bytes_up: outcome.per_site_bytes_up.clone(),
        global_model_bytes: outcome.global_model_bytes,
        representatives: outcome.n_representatives,
    });
    report.network = LINK_PRESETS
        .iter()
        .map(|&name| {
            let net = link_preset(name).expect("preset names resolve");
            NetworkCost {
                link: name.to_string(),
                upload: net.concurrent_upload(&outcome.per_site_bytes_up),
                broadcast: if outcome.n_sites == 0 {
                    std::time::Duration::ZERO
                } else {
                    net.transfer_time(outcome.global_model_bytes)
                },
                total: outcome.total_with_network(&net),
            }
        })
        .collect();
    report.clusters = Some(cluster_stats(
        outcome.assignment.n_clusters() as usize,
        outcome.assignment.labels(),
    ));
    report
}

/// A [`ClusterStats`] from a cluster count and a label slice.
pub fn cluster_stats(clusters: usize, labels: &[Label]) -> ClusterStats {
    ClusterStats {
        clusters,
        noise: labels.iter().filter(|l| l.is_noise()).count(),
    }
}

/// The merged counters of every scope a recorder captured.
pub fn total_counters(rec: &RecordingRecorder) -> Counters {
    Counters::sum(rec.scopes().iter().map(|(_, c)| c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::EpsGlobal;
    use crate::partition::Partitioner;
    use crate::runtime::run_dbdc_recorded;
    use dbdc_datagen::dataset_c;

    fn recorded_outcome() -> (DbdcOutcome, RecordingRecorder) {
        let g = dataset_c(21);
        let p = DbdcParams::new(1.6, 5).with_eps_global(EpsGlobal::MultipleOfLocal(2.0));
        let rec = RecordingRecorder::new();
        let outcome = run_dbdc_recorded(&g.data, &p, Partitioner::RandomEqual { seed: 3 }, 3, &rec);
        (outcome, rec)
    }

    #[test]
    fn report_covers_every_protocol_phase() {
        let (outcome, rec) = recorded_outcome();
        let p = DbdcParams::new(1.6, 5);
        let report = dbdc_run_report("run", 2, &p, &outcome, &rec, Some("wan"), None);
        let root = report.find_span("dbdc").expect("dbdc span recorded");
        for name in [
            "local[0]",
            "local[2]",
            "cluster",
            "extract",
            "encode",
            "upload",
            "global",
            "broadcast",
            "relabel[0]",
            "relabel[2]",
        ] {
            assert!(root.find(name).is_some(), "missing span {name}");
        }
        assert!(root.find("upload").unwrap().modeled);
        assert!(root.find("broadcast").unwrap().modeled);
        assert_eq!(report.sites.len(), 3);
        assert_eq!(report.network.len(), LINK_PRESETS.len());
        let clusters = report.clusters.expect("cluster stats");
        assert_eq!(clusters.clusters, outcome.assignment.n_clusters() as usize);
    }

    #[test]
    fn report_carries_latency_and_phase_histograms() {
        let (outcome, rec) = recorded_outcome();
        let p = DbdcParams::new(1.6, 5);
        let report = dbdc_run_report("run", 2, &p, &outcome, &rec, None, None);
        let hist = |name: &str| {
            report
                .hists
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing hist {name}"))
                .1
                .clone()
        };
        // Every ε-range and knn query of each site's local phase landed
        // one latency sample.
        for site in 0..3 {
            let h = hist(&format!("local[{site}]/eps_range_ns"));
            let c = rec.counters(&format!("local[{site}]"));
            assert_eq!(h.count(), c.range_queries + c.knn_queries);
            assert!(h.max() >= h.p50());
        }
        // Phase walls: one sample per site for local/relabel, one for
        // global.
        assert_eq!(hist("phase/local_ns").count(), 3);
        assert_eq!(hist("phase/relabel_ns").count(), 3);
        assert_eq!(hist("phase/global_ns").count(), 1);
        // Histograms survive the JSON round trip exactly.
        let back = RunReport::parse(&report.to_json_string()).expect("parses");
        assert_eq!(back.hists, report.hists);
    }

    #[test]
    fn noop_recorder_yields_no_histograms() {
        let g = dataset_c(22);
        let p = DbdcParams::new(1.6, 5).with_eps_global(EpsGlobal::MultipleOfLocal(2.0));
        let rec = RecordingRecorder::new();
        let with = run_dbdc_recorded(&g.data, &p, Partitioner::RoundRobin, 2, &rec);
        let without = crate::runtime::run_dbdc(&g.data, &p, Partitioner::RoundRobin, 2);
        // Instrumentation must not change the clustering.
        assert_eq!(with.assignment, without.assignment);
        assert!(!rec.hist_scopes().is_empty());
    }

    #[test]
    fn modeled_root_wall_matches_cost_model() {
        let (outcome, rec) = recorded_outcome();
        let measured = &rec.spans()[0];
        let net = NetworkModel::wan();
        let extended = span_with_network(measured, &outcome, &net);
        assert_eq!(extended.wall, outcome.total_with_network(&net));
        // Phase order: locals, upload, global, broadcast, relabels.
        let names: Vec<&str> = extended.children.iter().map(|c| c.name.as_str()).collect();
        let upload = names.iter().position(|n| *n == "upload").unwrap();
        let global = names.iter().position(|n| *n == "global").unwrap();
        let broadcast = names.iter().position(|n| *n == "broadcast").unwrap();
        assert!(upload < global && global < broadcast);
        assert!(names[..upload].iter().all(|n| n.starts_with("local[")));
    }

    #[test]
    fn site_counters_merge_local_and_relabel() {
        let (outcome, rec) = recorded_outcome();
        let p = DbdcParams::new(1.6, 5);
        let report = dbdc_run_report("run", 2, &p, &outcome, &rec, None, None);
        for s in &report.sites {
            let local = rec.counters(&format!("local[{}]", s.site));
            let relabel = rec.counters(&format!("relabel[{}]", s.site));
            assert_eq!(
                s.counters.range_queries,
                local.range_queries + relabel.range_queries
            );
            assert_eq!(
                s.counters.bytes_sent,
                outcome.per_site_bytes_up[s.site] as u64
            );
            assert!(relabel.bytes_received > 0, "relabel downloads the model");
        }
        // The JSON emitter truncates durations to whole microseconds, so
        // live reports converge after one serialization: a second round
        // trip is byte-identical.
        let text = report.to_json_string();
        let back = RunReport::parse(&text).expect("parses");
        assert_eq!(back.to_json_string(), text);
    }
}
