//! Global model determination (Section 6 of the paper).
//!
//! The server collects the local models of all sites and clusters the
//! representatives with DBSCAN again, using `MinPts_global = 2` (every
//! representative already stands for a dense neighborhood, so two
//! density-connected representatives are enough evidence to merge their
//! clusters) and an `Eps_global` resolved by the configured policy —
//! the paper's default being the maximum transmitted ε-range, which is
//! "generally close to 2·Eps_local".
//!
//! One deliberate deviation from plain DBSCAN: the paper states that *each
//! local representative forms a cluster on its own*, so representatives
//! that plain DBSCAN would call noise (no neighbor within `Eps_global`)
//! are promoted to singleton global clusters instead of being dropped.

use crate::local_model::LocalModel;
use crate::params::DbdcParams;
use dbdc_cluster::{dbscan, DbscanParams};
use dbdc_geom::{Dataset, Label, Point};
use dbdc_index::LinearScan;

/// A representative annotated with its global cluster id.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalRep {
    /// The representative point.
    pub point: Point,
    /// Its ε-range (validity radius), as transmitted by the site.
    pub eps_range: f64,
    /// Origin site.
    pub site: u32,
    /// Cluster id on the origin site.
    pub local_cluster: u32,
    /// Assigned global cluster id.
    pub global_cluster: u32,
}

/// The global model: every representative with its global cluster id, plus
/// the resolved server parameters. This is what the server broadcasts back
/// to all sites.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalModel {
    /// Dimensionality of the representatives.
    pub dim: usize,
    /// All representatives with global ids.
    pub reps: Vec<GlobalRep>,
    /// Number of global clusters.
    pub n_clusters: u32,
    /// The `Eps_global` actually used.
    pub eps_global: f64,
}

impl GlobalModel {
    /// The global id assigned to local cluster `local_cluster` of `site`
    /// through one of its representatives (they may map to several global
    /// clusters if `Eps_global` is small; this returns the first).
    pub fn global_of(&self, site: u32, local_cluster: u32) -> Option<u32> {
        self.reps
            .iter()
            .find(|r| r.site == site && r.local_cluster == local_cluster)
            .map(|r| r.global_cluster)
    }
}

/// Clusters all transmitted representatives into the global model.
///
/// # Panics
/// Panics if the models disagree on dimensionality.
pub fn build_global_model(models: &[LocalModel], params: &DbdcParams) -> GlobalModel {
    build_global_model_observed(models, params, None)
}

/// [`build_global_model`] with an optional [`dbdc_obs::CounterSheet`]
/// recording the server's range queries and distance evaluations.
///
/// # Panics
/// Panics if the models disagree on dimensionality.
pub fn build_global_model_observed(
    models: &[LocalModel],
    params: &DbdcParams,
    sheet: Option<&std::sync::Arc<dbdc_obs::CounterSheet>>,
) -> GlobalModel {
    let dim = models
        .iter()
        .find(|m| !m.is_empty())
        .map(|m| m.dim)
        .unwrap_or(2);
    let mut points = Dataset::new(dim);
    let mut meta: Vec<(u32, u32, f64)> = Vec::new(); // (site, local_cluster, eps_range)
    for m in models {
        assert!(
            m.is_empty() || m.dim == dim,
            "local models disagree on dimensionality"
        );
        for r in &m.reps {
            points.push(r.point.coords());
            meta.push((m.site, r.local_cluster, r.eps_range));
        }
    }
    let eps_global = params.resolve_eps_global(
        models
            .iter()
            .flat_map(|m| m.reps.iter().map(|r| &r.eps_range)),
    );

    let labels = if points.is_empty() {
        Vec::new()
    } else {
        // The representative set is small (a fraction of the data), so the
        // linear-scan backend is the right tool here.
        let mut idx = LinearScan::new(&points, dbdc_geom::Euclidean);
        if let Some(s) = sheet {
            idx = idx.observed(s.clone());
        }
        let result = dbscan(
            &points,
            &idx,
            &DbscanParams::new(eps_global, params.min_pts_global),
        );
        result.clustering.labels().to_vec()
    };

    // Promote unclustered representatives to singleton clusters.
    let mut next = labels
        .iter()
        .filter_map(|l| l.cluster())
        .max()
        .map(|m| m + 1)
        .unwrap_or(0);
    let mut reps = Vec::with_capacity(meta.len());
    for (i, (site, local_cluster, eps_range)) in meta.into_iter().enumerate() {
        let global_cluster = match labels[i] {
            Label::Cluster(c) => c,
            Label::Noise => {
                let c = next;
                next += 1;
                c
            }
        };
        reps.push(GlobalRep {
            point: Point::from(points.point(i as u32)),
            eps_range,
            site,
            local_cluster,
            global_cluster,
        });
    }
    GlobalModel {
        dim,
        reps,
        n_clusters: next,
        eps_global,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local_model::Representative;
    use crate::params::EpsGlobal;

    fn model(site: u32, reps: Vec<(f64, f64, f64, u32)>) -> LocalModel {
        LocalModel {
            site,
            dim: 2,
            reps: reps
                .into_iter()
                .map(|(x, y, eps, lc)| Representative {
                    point: Point::xy(x, y),
                    eps_range: eps,
                    local_cluster: lc,
                })
                .collect(),
        }
    }

    #[test]
    fn merges_representatives_across_sites() {
        // The paper's Figure 4: representatives from 3 sites spaced within
        // 2·Eps_local merge into one global cluster.
        let eps_local = 1.0;
        let m1 = model(0, vec![(0.0, 0.0, 1.8, 0), (1.9, 0.0, 1.7, 0)]);
        let m2 = model(1, vec![(3.8, 0.0, 1.9, 0)]);
        let m3 = model(2, vec![(5.5, 0.0, 1.6, 0)]);
        let params = crate::params::DbdcParams::new(eps_local, 4)
            .with_eps_global(EpsGlobal::MultipleOfLocal(2.0));
        let g = build_global_model(&[m1, m2, m3], &params);
        assert_eq!(g.eps_global, 2.0);
        assert_eq!(g.n_clusters, 1);
        assert!(g.reps.iter().all(|r| r.global_cluster == 0));
    }

    #[test]
    fn eps_local_fails_to_merge_figure_4_viii() {
        // With Eps_global = Eps_local the same layout stays fragmented
        // (Figure 4c VIII).
        let m1 = model(0, vec![(0.0, 0.0, 1.8, 0), (1.9, 0.0, 1.7, 0)]);
        let m2 = model(1, vec![(3.8, 0.0, 1.9, 0)]);
        let m3 = model(2, vec![(5.5, 0.0, 1.6, 0)]);
        let params =
            crate::params::DbdcParams::new(1.0, 4).with_eps_global(EpsGlobal::MultipleOfLocal(1.0));
        let g = build_global_model(&[m1, m2, m3], &params);
        assert!(g.n_clusters > 1, "got {} clusters", g.n_clusters);
    }

    #[test]
    fn max_eps_range_policy_uses_transmitted_ranges() {
        let m1 = model(0, vec![(0.0, 0.0, 1.8, 0)]);
        let m2 = model(1, vec![(1.75, 0.0, 1.7, 0)]);
        let params = crate::params::DbdcParams::new(1.0, 4); // default MaxEpsRange
        let g = build_global_model(&[m1, m2], &params);
        // Eps_global = max ε_R = 1.8 covers the 1.75 gap; Eps_local = 1.0
        // would not.
        assert_eq!(g.eps_global, 1.8);
        assert_eq!(g.n_clusters, 1);
    }

    #[test]
    fn isolated_representative_forms_singleton_cluster() {
        let m1 = model(0, vec![(0.0, 0.0, 1.5, 0), (1.0, 0.0, 1.5, 0)]);
        let m2 = model(1, vec![(50.0, 50.0, 1.5, 0)]);
        let params =
            crate::params::DbdcParams::new(1.0, 4).with_eps_global(EpsGlobal::MultipleOfLocal(2.0));
        let g = build_global_model(&[m1, m2], &params);
        // Two reps merge; the distant one is its own cluster, not dropped.
        assert_eq!(g.n_clusters, 2);
        let far = g.reps.iter().find(|r| r.site == 1).unwrap();
        let near: Vec<_> = g.reps.iter().filter(|r| r.site == 0).collect();
        assert_eq!(near[0].global_cluster, near[1].global_cluster);
        assert_ne!(far.global_cluster, near[0].global_cluster);
    }

    #[test]
    fn global_of_lookup() {
        let m1 = model(0, vec![(0.0, 0.0, 1.5, 0), (30.0, 0.0, 1.5, 1)]);
        let params =
            crate::params::DbdcParams::new(1.0, 4).with_eps_global(EpsGlobal::MultipleOfLocal(2.0));
        let g = build_global_model(&[m1], &params);
        assert_eq!(g.n_clusters, 2);
        assert!(g.global_of(0, 0).is_some());
        assert!(g.global_of(0, 1).is_some());
        assert_ne!(g.global_of(0, 0), g.global_of(0, 1));
        assert_eq!(g.global_of(5, 0), None);
    }

    #[test]
    fn empty_input() {
        let params = crate::params::DbdcParams::new(1.0, 4);
        let g = build_global_model(&[], &params);
        assert_eq!(g.n_clusters, 0);
        assert!(g.reps.is_empty());
        let g = build_global_model(&[model(0, vec![])], &params);
        assert_eq!(g.n_clusters, 0);
    }

    #[test]
    fn same_site_clusters_can_merge_globally() {
        // Two local clusters of one site whose representatives are close
        // merge in the global model (the Section 7 example).
        let m = model(0, vec![(0.0, 0.0, 1.8, 0), (1.5, 0.0, 1.8, 1)]);
        let params =
            crate::params::DbdcParams::new(1.0, 4).with_eps_global(EpsGlobal::MultipleOfLocal(2.0));
        let g = build_global_model(&[m], &params);
        assert_eq!(g.n_clusters, 1);
        assert_eq!(g.global_of(0, 0), g.global_of(0, 1));
    }
}
