//! Quality of distributed clustering (Section 8 of the paper).
//!
//! The paper measures a distributed clustering `CL_distr` against a central
//! reference clustering `CL_central` by averaging a per-object quality
//! `P(x)` over all objects (Definition 9):
//!
//! `Q_DBDC = (Σ P(xᵢ)) / n`
//!
//! Two object quality functions are defined:
//!
//! * **P^I** (Definition 10, discrete): 1 if the object is noise in both
//!   clusterings, or clustered in both with
//!   `|C_d ∩ C_c| >= qp` (quality parameter, default `MinPts`); 0
//!   otherwise. *The published case list is garbled (two overlapping
//!   noise cases); we implement the interpretation dictated by the prose of
//!   Section 8.1 — see DESIGN.md.*
//! * **P^II** (Definition 11, continuous): noise in both → 1; noise in
//!   exactly one → 0; otherwise the Jaccard overlap
//!   `|C_d ∩ C_c| / |C_d ∪ C_c|` of the two clusters containing the
//!   object. *The published first case reads "1 if noise in distributed
//!   but clustered centrally", contradicting the prose ("the value of P(x)
//!   should be 0"); we follow the prose.*
//!
//! `C_d` and `C_c` are the clusters containing the object in the two
//! clusterings, so no cluster matching step is needed; the per-pair
//! intersections come from a [`Contingency`] table built once in `O(n)`.

use dbdc_geom::{Clustering, Contingency};

/// The paper's two object quality functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectQuality {
    /// Discrete `P^I` with quality parameter `qp`.
    PI {
        /// Minimum shared-cluster cardinality for an object to count as
        /// correctly clustered. The paper motivates `qp = MinPts`.
        qp: usize,
    },
    /// Continuous (Jaccard) `P^II`.
    PII,
}

/// Per-comparison report: the overall quality plus diagnostic breakdowns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityReport {
    /// `Q_DBDC` — mean object quality in `[0, 1]`.
    pub q: f64,
    /// Number of objects with quality exactly 1.
    pub perfect: usize,
    /// Number of objects with quality exactly 0.
    pub zero: usize,
    /// Objects that are noise in both clusterings.
    pub noise_both: usize,
    /// Objects noise in the distributed clustering only.
    pub noise_distr_only: usize,
    /// Objects noise in the central clustering only.
    pub noise_central_only: usize,
}

/// Computes `Q_DBDC` of a distributed clustering against a central
/// reference (Definition 9) under the chosen object quality function.
///
/// Both clusterings must label the same objects in the same order. An empty
/// comparison scores 1 (nothing was mis-clustered).
///
/// ```
/// use dbdc::{q_dbdc, ObjectQuality};
/// use dbdc_geom::{Clustering, Label};
///
/// let central = Clustering::from_labels(vec![
///     Label::Cluster(0), Label::Cluster(0), Label::Cluster(0), Label::Cluster(0),
/// ]);
/// // The distributed run split the cluster in half.
/// let distr = Clustering::from_labels(vec![
///     Label::Cluster(0), Label::Cluster(0), Label::Cluster(1), Label::Cluster(1),
/// ]);
/// let report = q_dbdc(&distr, &central, ObjectQuality::PII);
/// assert!((report.q - 0.5).abs() < 1e-12);   // Jaccard 2/4 per object
/// assert_eq!(q_dbdc(&distr, &central, ObjectQuality::PI { qp: 2 }).q, 1.0);
/// ```
pub fn q_dbdc(distr: &Clustering, central: &Clustering, p: ObjectQuality) -> QualityReport {
    assert_eq!(
        distr.len(),
        central.len(),
        "clusterings must cover the same objects"
    );
    let n = distr.len();
    if n == 0 {
        return QualityReport {
            q: 1.0,
            perfect: 0,
            zero: 0,
            noise_both: 0,
            noise_distr_only: 0,
            noise_central_only: 0,
        };
    }
    let table = Contingency::new(distr, central);
    let mut sum = 0.0f64;
    let mut perfect = 0usize;
    let mut zero = 0usize;
    for i in 0..n as u32 {
        let v = object_quality(&table, distr, central, i, p);
        sum += v;
        if v >= 1.0 {
            perfect += 1;
        } else if v <= 0.0 {
            zero += 1;
        }
    }
    QualityReport {
        q: sum / n as f64,
        perfect,
        zero,
        noise_both: table.noise_both(),
        noise_distr_only: table.noise_a_only(),
        noise_central_only: table.noise_b_only(),
    }
}

/// The per-object quality `P(x)` for object `i`.
pub fn object_quality(
    table: &Contingency,
    distr: &Clustering,
    central: &Clustering,
    i: u32,
    p: ObjectQuality,
) -> f64 {
    match (distr.label(i).cluster(), central.label(i).cluster()) {
        (None, None) => 1.0,
        (None, Some(_)) | (Some(_), None) => 0.0,
        (Some(cd), Some(cc)) => {
            let inter = table.intersection(cd, cc);
            match p {
                ObjectQuality::PI { qp } => {
                    if inter >= qp {
                        1.0
                    } else {
                        0.0
                    }
                }
                ObjectQuality::PII => inter as f64 / table.union(cd, cc) as f64,
            }
        }
    }
}

/// How one reference (central) cluster fared in the distributed clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterMatch {
    /// The central cluster id.
    pub central: u32,
    /// Its size.
    pub size: usize,
    /// The distributed cluster with the largest overlap, if any member was
    /// clustered at all.
    pub best_distr: Option<u32>,
    /// Jaccard similarity of the best match.
    pub jaccard: f64,
    /// Number of distinct distributed clusters its members landed in
    /// (1 = kept intact, >1 = fragmented).
    pub fragments: usize,
    /// Members the distributed clustering calls noise.
    pub lost_to_noise: usize,
}

/// Per-cluster breakdown of a distributed-vs-central comparison: for every
/// central cluster, its best-matching distributed cluster, the Jaccard of
/// that match, its fragmentation, and how many members the distributed run
/// dropped to noise. Sorted by descending central cluster size.
pub fn cluster_report(distr: &Clustering, central: &Clustering) -> Vec<ClusterMatch> {
    assert_eq!(
        distr.len(),
        central.len(),
        "clusterings must cover the same objects"
    );
    let table = Contingency::new(distr, central);
    let mut report = Vec::with_capacity(central.n_clusters() as usize);
    for c in 0..central.n_clusters() {
        let size = table.size_b(c);
        let mut best: Option<(u32, usize)> = None;
        let mut fragments = 0usize;
        let mut clustered = 0usize;
        for d in 0..distr.n_clusters() {
            let inter = table.intersection(d, c);
            if inter > 0 {
                fragments += 1;
                clustered += inter;
                if best.is_none_or(|(_, b)| inter > b) {
                    best = Some((d, inter));
                }
            }
        }
        let jaccard = best
            .map(|(d, inter)| inter as f64 / table.union(d, c) as f64)
            .unwrap_or(0.0);
        report.push(ClusterMatch {
            central: c,
            size,
            best_distr: best.map(|(d, _)| d),
            jaccard,
            fragments,
            lost_to_noise: size - clustered,
        });
    }
    report.sort_by(|a, b| b.size.cmp(&a.size).then(a.central.cmp(&b.central)));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbdc_geom::Label;
    use proptest::prelude::*;

    fn c(ids: &[i64]) -> Clustering {
        Clustering::from_labels(
            ids.iter()
                .map(|&i| {
                    if i < 0 {
                        Label::Noise
                    } else {
                        Label::Cluster(i as u32)
                    }
                })
                .collect(),
        )
    }

    #[test]
    fn identical_clusterings_score_one() {
        let a = c(&[0, 0, 0, 1, 1, 1, -1, -1]);
        for p in [ObjectQuality::PI { qp: 3 }, ObjectQuality::PII] {
            let r = q_dbdc(&a, &a, p);
            assert_eq!(r.q, 1.0, "quality under {p:?}");
            assert_eq!(r.perfect, 8);
            assert_eq!(r.zero, 0);
            assert_eq!(r.noise_both, 2);
        }
    }

    #[test]
    fn permuted_ids_score_one() {
        let a = c(&[0, 0, 0, 1, 1, 1]);
        let b = c(&[4, 4, 4, 2, 2, 2]);
        assert_eq!(q_dbdc(&a, &b, ObjectQuality::PII).q, 1.0);
        assert_eq!(q_dbdc(&a, &b, ObjectQuality::PI { qp: 3 }).q, 1.0);
    }

    #[test]
    fn noise_mismatch_scores_zero() {
        // Object clustered in distr, noise in central -> 0 (prose of §8.1).
        let distr = c(&[0, 0, 0]);
        let central = c(&[-1, 0, 0]);
        let table = Contingency::new(&distr, &central);
        assert_eq!(
            object_quality(&table, &distr, &central, 0, ObjectQuality::PII),
            0.0
        );
        // And the symmetric case.
        let table2 = Contingency::new(&central, &distr);
        assert_eq!(
            object_quality(&table2, &central, &distr, 0, ObjectQuality::PII),
            0.0
        );
    }

    #[test]
    fn p2_is_jaccard() {
        // distr: {0,1,2,3} in one cluster; central: {0,1} + {2,3} split.
        let distr = c(&[0, 0, 0, 0]);
        let central = c(&[0, 0, 1, 1]);
        let r = q_dbdc(&distr, &central, ObjectQuality::PII);
        // For every object: |C_d ∩ C_c| = 2, |C_d ∪ C_c| = 4 -> 0.5.
        assert!((r.q - 0.5).abs() < 1e-12);
    }

    #[test]
    fn p1_thresholds_on_qp() {
        let distr = c(&[0, 0, 0, 0]);
        let central = c(&[0, 0, 1, 1]);
        // Intersections are size 2: qp=2 accepts, qp=3 rejects.
        assert_eq!(q_dbdc(&distr, &central, ObjectQuality::PI { qp: 2 }).q, 1.0);
        assert_eq!(q_dbdc(&distr, &central, ObjectQuality::PI { qp: 3 }).q, 0.0);
    }

    #[test]
    fn p1_is_coarser_than_p2() {
        // The paper's motivating observation (Figures 9/10): P^I saturates
        // where P^II still discriminates. Here P^I = 1 but P^II < 1.
        let distr = c(&[0, 0, 0, 0, 0, 0]);
        let central = c(&[0, 0, 0, 0, 1, 1]);
        let p1 = q_dbdc(&distr, &central, ObjectQuality::PI { qp: 2 }).q;
        let p2 = q_dbdc(&distr, &central, ObjectQuality::PII).q;
        assert_eq!(p1, 1.0);
        assert!(p2 < 1.0);
    }

    #[test]
    fn report_breakdown_counts() {
        let distr = c(&[0, -1, -1, 0]);
        let central = c(&[0, 0, -1, -1]);
        let r = q_dbdc(&distr, &central, ObjectQuality::PII);
        assert_eq!(r.noise_both, 1);
        assert_eq!(r.noise_distr_only, 1);
        assert_eq!(r.noise_central_only, 1);
    }

    #[test]
    fn empty_comparison_is_perfect() {
        let e = Clustering::all_noise(0);
        assert_eq!(q_dbdc(&e, &e, ObjectQuality::PII).q, 1.0);
    }

    fn arb_clustering(n: usize) -> impl Strategy<Value = Clustering> {
        prop::collection::vec(-1i64..4, n).prop_map(|v| c(&v))
    }

    proptest! {
        #[test]
        fn quality_is_bounded((a, b) in (arb_clustering(30), arb_clustering(30))) {
            for p in [ObjectQuality::PI { qp: 2 }, ObjectQuality::PII] {
                let r = q_dbdc(&a, &b, p);
                prop_assert!((0.0..=1.0).contains(&r.q));
            }
        }

        #[test]
        fn self_quality_is_one(a in arb_clustering(30)) {
            prop_assert_eq!(q_dbdc(&a, &a, ObjectQuality::PII).q, 1.0);
            prop_assert_eq!(q_dbdc(&a, &a, ObjectQuality::PI { qp: 1 }).q, 1.0);
        }

        #[test]
        fn p2_symmetric((a, b) in (arb_clustering(30), arb_clustering(30))) {
            // Jaccard and the noise cases are symmetric in the two roles.
            let ab = q_dbdc(&a, &b, ObjectQuality::PII).q;
            let ba = q_dbdc(&b, &a, ObjectQuality::PII).q;
            prop_assert!((ab - ba).abs() < 1e-12);
        }

        #[test]
        fn quality_is_invariant_under_label_permutation(
            (a, b) in (arb_clustering(30), arb_clustering(30)),
            shift in 1u32..7,
        ) {
            // Cluster ids are names, not positions: bijectively renaming
            // the ids of either clustering must not move Q_DBDC. The
            // renaming `id -> (id + shift) mod 7` is a cyclic permutation
            // of the id space used by `arb_clustering` (ids 0..4 fit in
            // 0..7 for every shift).
            let rename = |cl: &Clustering| {
                Clustering::from_labels(
                    cl.labels()
                        .iter()
                        .map(|l| match l.cluster() {
                            Some(id) => Label::Cluster((id + shift) % 7),
                            None => Label::Noise,
                        })
                        .collect(),
                )
            };
            let (ra, rb) = (rename(&a), rename(&b));
            for p in [ObjectQuality::PI { qp: 2 }, ObjectQuality::PII] {
                let orig = q_dbdc(&a, &b, p);
                prop_assert_eq!(q_dbdc(&ra, &b, p), orig);
                prop_assert_eq!(q_dbdc(&a, &rb, p), orig);
                prop_assert_eq!(q_dbdc(&ra, &rb, p), orig);
            }
        }

        #[test]
        fn p1_dominates_p2_when_qp_is_one((a, b) in (arb_clustering(30), arb_clustering(30))) {
            // With qp = 1, P^I(x) = 1 whenever the clusters intersect at
            // all, so it upper-bounds P^II pointwise.
            let p1 = q_dbdc(&a, &b, ObjectQuality::PI { qp: 1 }).q;
            let p2 = q_dbdc(&a, &b, ObjectQuality::PII).q;
            prop_assert!(p1 >= p2 - 1e-12);
        }
    }

    #[test]
    fn cluster_report_intact_match() {
        let distr = c(&[0, 0, 0, 1, 1, -1]);
        let central = c(&[0, 0, 0, 1, 1, -1]);
        let r = cluster_report(&distr, &central);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].size, 3);
        assert_eq!(r[0].jaccard, 1.0);
        assert_eq!(r[0].fragments, 1);
        assert_eq!(r[0].lost_to_noise, 0);
    }

    #[test]
    fn cluster_report_fragmentation_and_noise() {
        // Central cluster 0 = {0..5}; distributed splits it in two and
        // drops one member to noise.
        let central = c(&[0, 0, 0, 0, 0, 0]);
        let distr = c(&[0, 0, 0, 1, 1, -1]);
        let r = cluster_report(&distr, &central);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].fragments, 2);
        assert_eq!(r[0].lost_to_noise, 1);
        assert_eq!(r[0].best_distr, Some(0));
        // |best ∩ central| = 3, |best ∪ central| = 6.
        assert!((r[0].jaccard - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cluster_report_all_noise_match() {
        let central = c(&[0, 0, 0]);
        let distr = c(&[-1, -1, -1]);
        let r = cluster_report(&distr, &central);
        assert_eq!(r[0].best_distr, None);
        assert_eq!(r[0].jaccard, 0.0);
        assert_eq!(r[0].lost_to_noise, 3);
    }

    #[test]
    fn cluster_report_sorted_by_size() {
        let central = c(&[0, 1, 1, 1, 2, 2]);
        let distr = central.clone();
        let r = cluster_report(&distr, &central);
        assert_eq!(r[0].size, 3);
        assert_eq!(r[1].size, 2);
        assert_eq!(r[2].size, 1);
    }
}
