//! DBDC configuration.

use dbdc_index::{IndexKind, Precision};

/// Which local model the client sites build (Section 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LocalModelKind {
    /// `REP_Scor` (Section 5.1): the specific core points themselves, with
    /// their specific ε-ranges.
    #[default]
    Scor,
    /// `REP_kMeans` (Section 5.2): per cluster, k-means centroids seeded by
    /// the specific core points, with max-assigned-distance ε-ranges.
    KMeans,
}

impl LocalModelKind {
    /// Short stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            LocalModelKind::Scor => "REP_Scor",
            LocalModelKind::KMeans => "REP_kMeans",
        }
    }
}

/// How the server chooses `Eps_global` (Section 6).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum EpsGlobal {
    /// The paper's proposed default: the maximum ε-range over all local
    /// representatives ("generally close to 2·Eps_local").
    #[default]
    MaxEpsRange,
    /// A user-tuned multiple of `Eps_local` (the paper's experiments sweep
    /// this; 2.0 is the recommended setting).
    MultipleOfLocal(f64),
    /// An absolute radius.
    Absolute(f64),
}

/// Full DBDC parameter set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbdcParams {
    /// `Eps` for the local DBSCAN runs.
    pub eps_local: f64,
    /// `MinPts` for the local DBSCAN runs.
    pub min_pts_local: usize,
    /// Server-side ε policy.
    pub eps_global: EpsGlobal,
    /// `MinPts_global`. The paper fixes this to 2: every representative
    /// stands for a whole ε-neighborhood, so two density-connected
    /// representatives suffice to merge their clusters.
    pub min_pts_global: usize,
    /// Which local model to build.
    pub model: LocalModelKind,
    /// Spatial index backend for the local DBSCAN runs.
    pub index: IndexKind,
    /// Worker threads for each DBSCAN run (local phases and the central
    /// baseline). `1` runs the classic sequential algorithm; any other
    /// value uses the deterministic parallel execution layer
    /// ([`mod@dbdc_cluster::par_dbscan`]), with `0` meaning "all available
    /// cores". The clustering result is identical for every setting.
    pub threads: usize,
    /// Spatial partitions for each site's local phase. `1` (the
    /// default) clusters through one index over the site's whole shard;
    /// any other value stripes the shard along its widest-spread axis
    /// with ε-halos and runs one private index per partition
    /// ([`mod@dbdc_cluster::partitioned`]), with `0` meaning "one
    /// partition per worker thread". Labels are identical for every
    /// setting.
    pub partitions: usize,
    /// Coordinate precision of the index scan path. The default
    /// [`Precision::F64`] is bit-exact; the opt-in [`Precision::F32`]
    /// halves scan bandwidth and is approximate near the ε boundary, so
    /// runs report label agreement against the f64 oracle instead of
    /// gating on identity.
    pub precision: Precision,
}

impl DbdcParams {
    /// Creates a parameter set with the paper's defaults for everything but
    /// the local DBSCAN parameters.
    ///
    /// # Panics
    /// Panics if `eps_local` is not positive and finite or
    /// `min_pts_local == 0`.
    pub fn new(eps_local: f64, min_pts_local: usize) -> Self {
        assert!(
            eps_local.is_finite() && eps_local > 0.0,
            "eps_local must be positive and finite"
        );
        assert!(min_pts_local > 0, "min_pts_local must be at least 1");
        Self {
            eps_local,
            min_pts_local,
            eps_global: EpsGlobal::default(),
            min_pts_global: 2,
            model: LocalModelKind::default(),
            index: IndexKind::default(),
            threads: 1,
            partitions: 1,
            precision: Precision::F64,
        }
    }

    /// Selects the DBSCAN worker-thread count (builder style); see
    /// [`DbdcParams::threads`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Selects the local-phase partition count (builder style); see
    /// [`DbdcParams::partitions`].
    pub fn with_partitions(mut self, partitions: usize) -> Self {
        self.partitions = partitions;
        self
    }

    /// Selects the scan-path precision (builder style); see
    /// [`DbdcParams::precision`].
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Selects the local model kind (builder style).
    pub fn with_model(mut self, model: LocalModelKind) -> Self {
        self.model = model;
        self
    }

    /// Selects the `Eps_global` policy (builder style).
    pub fn with_eps_global(mut self, eps_global: EpsGlobal) -> Self {
        self.eps_global = eps_global;
        self
    }

    /// Selects the index backend (builder style).
    pub fn with_index(mut self, index: IndexKind) -> Self {
        self.index = index;
        self
    }

    /// Resolves the ε the server will cluster the representatives with,
    /// given the ε-ranges of all collected representatives.
    pub fn resolve_eps_global<'a>(&self, rep_ranges: impl Iterator<Item = &'a f64>) -> f64 {
        match self.eps_global {
            EpsGlobal::MaxEpsRange => rep_ranges
                .copied()
                .fold(0.0f64, f64::max)
                .max(self.eps_local),
            EpsGlobal::MultipleOfLocal(m) => {
                assert!(m.is_finite() && m > 0.0, "multiplier must be positive");
                m * self.eps_local
            }
            EpsGlobal::Absolute(e) => {
                assert!(e.is_finite() && e > 0.0, "absolute eps must be positive");
                e
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = DbdcParams::new(1.5, 4);
        assert_eq!(p.min_pts_global, 2);
        assert_eq!(p.model, LocalModelKind::Scor);
        assert_eq!(p.eps_global, EpsGlobal::MaxEpsRange);
    }

    #[test]
    fn resolve_max_eps_range() {
        let p = DbdcParams::new(1.0, 4);
        let ranges = [1.2, 1.9, 1.4];
        assert_eq!(p.resolve_eps_global(ranges.iter()), 1.9);
        // With no representatives fall back to eps_local.
        assert_eq!(p.resolve_eps_global([].iter()), 1.0);
    }

    #[test]
    fn resolve_multiplier_and_absolute() {
        let p = DbdcParams::new(1.5, 4).with_eps_global(EpsGlobal::MultipleOfLocal(2.0));
        assert_eq!(p.resolve_eps_global([9.0].iter()), 3.0);
        let p = p.with_eps_global(EpsGlobal::Absolute(0.7));
        assert_eq!(p.resolve_eps_global([9.0].iter()), 0.7);
    }

    #[test]
    fn builder_style() {
        let p = DbdcParams::new(1.0, 3)
            .with_model(LocalModelKind::KMeans)
            .with_index(dbdc_index::IndexKind::Grid)
            .with_threads(4);
        assert_eq!(p.model, LocalModelKind::KMeans);
        assert_eq!(p.index, dbdc_index::IndexKind::Grid);
        assert_eq!(p.model.name(), "REP_kMeans");
        assert_eq!(p.threads, 4);
    }

    #[test]
    fn threads_default_to_sequential() {
        let p = DbdcParams::new(1.0, 3);
        assert_eq!(p.threads, 1);
        assert_eq!(p.partitions, 1);
        assert_eq!(p.precision, Precision::F64);
        let p = p.with_partitions(4).with_precision(Precision::F32);
        assert_eq!(p.partitions, 4);
        assert_eq!(p.precision, Precision::F32);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_eps() {
        let _ = DbdcParams::new(-1.0, 3);
    }

    #[test]
    #[should_panic(expected = "multiplier must be positive")]
    fn rejects_bad_multiplier() {
        let p = DbdcParams::new(1.0, 3).with_eps_global(EpsGlobal::MultipleOfLocal(0.0));
        let _ = p.resolve_eps_global([].iter());
    }
}
