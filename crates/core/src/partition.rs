//! Distribution of the data onto client sites.
//!
//! The paper's evaluation "equally distributed the data set onto the
//! different client sites" — i.e. a random equal split, our default. The
//! other schemes exist for the partitioning ablation: round-robin (equal and
//! deterministic, but order-correlated) and spatial stripes (the adversarial
//! opposite: whole regions — and thus whole clusters — land on single
//! sites, which changes what the local models must capture).

use dbdc_geom::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A strategy for assigning points to sites.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Partitioner {
    /// Shuffle, then deal equally (sizes differ by at most 1). This is the
    /// paper's setup.
    RandomEqual {
        /// Shuffle seed.
        seed: u64,
    },
    /// Point `i` goes to site `i mod k`.
    RoundRobin,
    /// Sort by one coordinate and cut into `k` contiguous stripes —
    /// maximally skewed spatial locality.
    SpatialStripes {
        /// The coordinate to stripe along.
        axis: usize,
    },
}

impl Partitioner {
    /// Short stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Partitioner::RandomEqual { .. } => "random-equal",
            Partitioner::RoundRobin => "round-robin",
            Partitioner::SpatialStripes { .. } => "spatial-stripes",
        }
    }

    /// Computes the site of every point; the result has one entry in
    /// `0..k` per point.
    ///
    /// # Panics
    /// Panics if `k == 0` or (for stripes) the axis is out of range.
    pub fn assign(&self, data: &Dataset, k: usize) -> Vec<usize> {
        assert!(k > 0, "need at least one site");
        let n = data.len();
        match *self {
            Partitioner::RandomEqual { seed } => {
                let mut order: Vec<usize> = (0..n).collect();
                let mut rng = StdRng::seed_from_u64(seed);
                for i in (1..n).rev() {
                    let j = rng.random_range(0..=i);
                    order.swap(i, j);
                }
                let mut assignment = vec![0usize; n];
                for (pos, &idx) in order.iter().enumerate() {
                    assignment[idx] = pos % k;
                }
                assignment
            }
            Partitioner::RoundRobin => (0..n).map(|i| i % k).collect(),
            Partitioner::SpatialStripes { axis } => {
                assert!(axis < data.dim(), "stripe axis out of range");
                let mut order: Vec<u32> = (0..n as u32).collect();
                order.sort_by(|&a, &b| data.point(a)[axis].total_cmp(&data.point(b)[axis]));
                let mut assignment = vec![0usize; n];
                let per = n.div_ceil(k);
                for (pos, &idx) in order.iter().enumerate() {
                    assignment[idx as usize] = (pos / per.max(1)).min(k - 1);
                }
                assignment
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_data(n: usize) -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..n {
            d.push(&[i as f64, (i * 7 % 13) as f64]);
        }
        d
    }

    fn sizes(assignment: &[usize], k: usize) -> Vec<usize> {
        let mut s = vec![0usize; k];
        for &a in assignment {
            s[a] += 1;
        }
        s
    }

    #[test]
    fn random_equal_is_balanced() {
        let d = grid_data(103);
        let a = Partitioner::RandomEqual { seed: 5 }.assign(&d, 4);
        let s = sizes(&a, 4);
        assert_eq!(s.iter().sum::<usize>(), 103);
        assert!(s.iter().all(|&x| x == 25 || x == 26), "sizes {s:?}");
    }

    #[test]
    fn random_equal_deterministic_per_seed() {
        let d = grid_data(50);
        let a = Partitioner::RandomEqual { seed: 9 }.assign(&d, 3);
        let b = Partitioner::RandomEqual { seed: 9 }.assign(&d, 3);
        let c = Partitioner::RandomEqual { seed: 10 }.assign(&d, 3);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn round_robin_pattern() {
        let d = grid_data(7);
        let a = Partitioner::RoundRobin.assign(&d, 3);
        assert_eq!(a, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn stripes_respect_coordinate_order() {
        let d = grid_data(100);
        let a = Partitioner::SpatialStripes { axis: 0 }.assign(&d, 4);
        // Points are already sorted by x in grid_data.
        for w in 0..99 {
            assert!(a[w] <= a[w + 1]);
        }
        let s = sizes(&a, 4);
        assert_eq!(s, vec![25, 25, 25, 25]);
    }

    #[test]
    fn one_site_gets_everything() {
        let d = grid_data(10);
        for p in [
            Partitioner::RandomEqual { seed: 0 },
            Partitioner::RoundRobin,
            Partitioner::SpatialStripes { axis: 1 },
        ] {
            assert!(p.assign(&d, 1).iter().all(|&a| a == 0), "{}", p.name());
        }
    }

    #[test]
    fn more_sites_than_points() {
        let d = grid_data(3);
        let a = Partitioner::RandomEqual { seed: 1 }.assign(&d, 10);
        assert!(a.iter().all(|&s| s < 10));
        assert_eq!(a.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn zero_sites_panics() {
        Partitioner::RoundRobin.assign(&grid_data(3), 0);
    }

    #[test]
    #[should_panic(expected = "axis out of range")]
    fn bad_axis_panics() {
        Partitioner::SpatialStripes { axis: 7 }.assign(&grid_data(3), 2);
    }
}
