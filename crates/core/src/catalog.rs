//! Post-clustering site catalog (the payoff of Section 7).
//!
//! "These updated local client clusterings help the clients to answer
//! server questions efficiently, e.g. questions such as 'give me all
//! objects on your site which belong to the global cluster 4711'." This
//! module implements exactly that: a per-site inverted index from global
//! cluster ids to local object ids, plus a federation helper that fans a
//! query out over all sites and tallies per-site cluster statistics.

use dbdc_geom::{Clustering, Dataset, Label};
use std::collections::HashMap;

/// A site's queryable view of its relabeled data.
#[derive(Debug, Clone)]
pub struct SiteCatalog {
    site: u32,
    /// Global cluster id -> local point ids.
    by_cluster: HashMap<u32, Vec<u32>>,
    n_points: usize,
    n_noise: usize,
}

impl SiteCatalog {
    /// Builds the catalog from a site's relabeled clustering (global ids,
    /// as produced by [`crate::relabel_site`]).
    pub fn new(site: u32, relabeled: &Clustering) -> Self {
        let mut by_cluster: HashMap<u32, Vec<u32>> = HashMap::new();
        let mut n_noise = 0;
        for (i, l) in relabeled.labels().iter().enumerate() {
            match l {
                Label::Cluster(c) => by_cluster.entry(*c).or_default().push(i as u32),
                Label::Noise => n_noise += 1,
            }
        }
        Self {
            site,
            by_cluster,
            n_points: relabeled.len(),
            n_noise,
        }
    }

    /// The site id.
    pub fn site(&self) -> u32 {
        self.site
    }

    /// Number of points on the site.
    pub fn len(&self) -> usize {
        self.n_points
    }

    /// Whether the site holds no points.
    pub fn is_empty(&self) -> bool {
        self.n_points == 0
    }

    /// Local noise count.
    pub fn n_noise(&self) -> usize {
        self.n_noise
    }

    /// The global cluster ids present on this site.
    pub fn clusters(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.by_cluster.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// "Give me all objects on your site which belong to the global
    /// cluster `c`" — the paper's example query. Returns local point ids.
    pub fn members_of(&self, c: u32) -> &[u32] {
        self.by_cluster.get(&c).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of the site's objects in global cluster `c`.
    pub fn count_of(&self, c: u32) -> usize {
        self.members_of(c).len()
    }
}

/// The federation of all site catalogs — what the server can ask without
/// ever seeing raw data beyond the query results it explicitly requests.
#[derive(Debug, Clone, Default)]
pub struct Federation {
    sites: Vec<SiteCatalog>,
}

impl Federation {
    /// Builds the federation from per-site relabeled clusterings.
    pub fn new(site_clusterings: &[Clustering]) -> Self {
        Self {
            sites: site_clusterings
                .iter()
                .enumerate()
                .map(|(s, c)| SiteCatalog::new(s as u32, c))
                .collect(),
        }
    }

    /// Per-site member counts for global cluster `c`:
    /// `(site, count)` for every site holding members.
    pub fn cluster_distribution(&self, c: u32) -> Vec<(u32, usize)> {
        self.sites
            .iter()
            .filter(|s| s.count_of(c) > 0)
            .map(|s| (s.site(), s.count_of(c)))
            .collect()
    }

    /// Total size of global cluster `c` across all sites.
    pub fn cluster_size(&self, c: u32) -> usize {
        self.sites.iter().map(|s| s.count_of(c)).sum()
    }

    /// All global clusters present anywhere, sorted.
    pub fn clusters(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.sites.iter().flat_map(|s| s.clusters()).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Fetches the actual objects of cluster `c` from every site — the only
    /// operation that moves raw data, and it moves exactly the requested
    /// cluster. `site_data[s]` must be site `s`'s dataset.
    pub fn fetch_cluster(&self, c: u32, site_data: &[Dataset]) -> Dataset {
        assert_eq!(site_data.len(), self.sites.len(), "one dataset per site");
        let dim = site_data
            .iter()
            .find(|d| !d.is_empty())
            .map(|d| d.dim())
            .unwrap_or(2);
        let mut out = Dataset::new(dim);
        for (catalog, data) in self.sites.iter().zip(site_data) {
            for &id in catalog.members_of(c) {
                out.push(data.point(id));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{DbdcParams, EpsGlobal};
    use crate::partition::Partitioner;
    use crate::relabel::relabel_site;
    use crate::runtime::central_dbscan;
    use dbdc_cluster::{dbscan_with_scp, DbscanParams};
    use dbdc_geom::Euclidean;

    fn labels(v: &[i64]) -> Clustering {
        Clustering::from_labels_verbatim(
            v.iter()
                .map(|&i| {
                    if i < 0 {
                        Label::Noise
                    } else {
                        Label::Cluster(i as u32)
                    }
                })
                .collect(),
            10,
        )
    }

    #[test]
    fn site_catalog_answers_the_papers_query() {
        let c = labels(&[4, 4, -1, 7, 4]);
        let cat = SiteCatalog::new(3, &c);
        assert_eq!(cat.site(), 3);
        assert_eq!(cat.members_of(4), &[0, 1, 4]);
        assert_eq!(cat.members_of(7), &[3]);
        assert!(cat.members_of(9).is_empty());
        assert_eq!(cat.n_noise(), 1);
        assert_eq!(cat.clusters(), vec![4, 7]);
        assert_eq!(cat.count_of(4), 3);
        assert_eq!(cat.len(), 5);
    }

    #[test]
    fn federation_aggregates_across_sites() {
        let fed = Federation::new(&[labels(&[0, 0, 1]), labels(&[1, 1, -1]), labels(&[0, 2, 2])]);
        assert_eq!(fed.clusters(), vec![0, 1, 2]);
        assert_eq!(fed.cluster_size(0), 3);
        assert_eq!(fed.cluster_size(1), 3);
        assert_eq!(fed.cluster_distribution(0), vec![(0, 2), (2, 1)]);
        assert_eq!(fed.cluster_distribution(1), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn fetch_cluster_moves_only_the_requested_points() {
        let site0 = Dataset::from_flat(2, vec![0.0, 0.0, 1.0, 1.0]);
        let site1 = Dataset::from_flat(2, vec![2.0, 2.0]);
        let fed = Federation::new(&[labels(&[5, -1]), labels(&[5])]);
        let fetched = fed.fetch_cluster(5, &[site0, site1]);
        assert_eq!(fetched.len(), 2);
        assert_eq!(fetched.point(0), &[0.0, 0.0]);
        assert_eq!(fetched.point(1), &[2.0, 2.0]);
    }

    #[test]
    fn end_to_end_federation_counts_match_assignment() {
        // Run the protocol manually so the per-site relabelings (with
        // shared global ids) are available, then check the federation's
        // totals against the assembled assignment.
        let g = dbdc_datagen::dataset_c(31);
        let params = DbdcParams::new(g.suggested_eps, g.suggested_min_pts)
            .with_eps_global(EpsGlobal::MultipleOfLocal(2.0));
        let sites = 3;
        let assignment = Partitioner::RandomEqual { seed: 31 }.assign(&g.data, sites);
        let (parts, _) = g.data.partition(sites, &assignment);
        let mut models = Vec::new();
        let mut locals = Vec::new();
        for (site, part) in parts.iter().enumerate() {
            let idx = dbdc_index::build_index(params.index, part, Euclidean, params.eps_local);
            let scp = dbscan_with_scp(
                part,
                idx.as_ref(),
                &DbscanParams::new(params.eps_local, params.min_pts_local),
            );
            models.push(crate::local_model::build_local_model(
                params.model,
                part,
                &scp,
                site as u32,
            ));
            locals.push(scp);
        }
        let global = crate::global_model::build_global_model(&models, &params);
        let relabeled: Vec<Clustering> = parts
            .iter()
            .zip(&locals)
            .map(|(part, scp)| relabel_site(part, &scp.dbscan.clustering, &global))
            .collect();
        let fed = Federation::new(&relabeled);
        // Every global cluster's federated size equals its total membership.
        let total: usize = fed.clusters().iter().map(|&c| fed.cluster_size(c)).sum();
        let noise: usize = relabeled.iter().map(|c| c.n_noise()).sum();
        assert_eq!(total + noise, g.data.len());
        // And the central run agrees on the big picture.
        let (central, _) = central_dbscan(&g.data, &params);
        assert_eq!(
            fed.clusters().len(),
            central.clustering.n_clusters() as usize
        );
    }
}
