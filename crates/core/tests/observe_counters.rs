//! Counter ground truth: a recorded DBDC run over the linear-scan
//! backend must report exactly the work the protocol's algorithms are
//! known to do — one distance evaluation per point per range query, one
//! range query per point plus the SCP finalization queries, and wire
//! byte counts equal to the real encoded message sizes.

use dbdc::{
    run_dbdc, run_dbdc_recorded, run_dbdc_threaded_recorded, DbdcParams, EpsGlobal, Partitioner,
};
use dbdc_cluster::{dbscan_with_scp, DbscanParams};
use dbdc_geom::{Dataset, Euclidean};
use dbdc_index::{IndexKind, LinearScan};
use dbdc_obs::{NoopRecorder, RecordingRecorder};

const N_SITES: usize = 3;

fn params() -> DbdcParams {
    DbdcParams::new(1.6, 5)
        .with_eps_global(EpsGlobal::MultipleOfLocal(2.0))
        .with_index(IndexKind::Linear)
}

fn partitioned(data: &Dataset) -> Vec<Dataset> {
    let p = Partitioner::RandomEqual { seed: 11 };
    let assignment = p.assign(data, N_SITES);
    data.partition(N_SITES, &assignment).0
}

#[test]
fn sequential_counters_match_linear_scan_ground_truth() {
    let g = dbdc_datagen::dataset_c(31);
    let p = params();
    let rec = RecordingRecorder::new();
    let outcome = run_dbdc_recorded(
        &g.data,
        &p,
        Partitioner::RandomEqual { seed: 11 },
        N_SITES,
        &rec,
    );

    // --- Per-site local scopes vs an independent reference run. ---
    let parts = partitioned(&g.data);
    for (site, part) in parts.iter().enumerate() {
        let c = rec.counters(&format!("local[{site}]"));
        let reference = dbscan_with_scp(
            part,
            &LinearScan::new(part, Euclidean),
            &DbscanParams::new(p.eps_local, p.min_pts_local),
        );
        assert_eq!(
            c.range_queries, reference.dbscan.range_queries as u64,
            "site {site}: every physical ε-range query must be counted"
        );
        // A linear scan evaluates the distance to every point, per query.
        assert_eq!(c.distance_evals, c.range_queries * part.len() as u64);
        assert_eq!(c.node_visits, 0, "linear scan has no index nodes");
        assert_eq!(c.knn_queries, 0);
        assert_eq!(c.bytes_sent, outcome.per_site_bytes_up[site] as u64);
        assert_eq!(c.bytes_received, 0, "uploads only in the local phase");
    }

    // --- Server scope: one query per representative, real byte totals. ---
    let global = rec.counters("global");
    let n_reps = outcome.n_representatives as u64;
    assert_eq!(global.range_queries, n_reps);
    assert_eq!(global.distance_evals, n_reps * n_reps);
    assert_eq!(global.representatives, n_reps);
    assert_eq!(global.bytes_received, outcome.bytes_up as u64);
    assert_eq!(global.bytes_sent, outcome.bytes_down as u64);

    // --- Relabel scopes: every site downloads one global model copy. ---
    for (site, part) in parts.iter().enumerate() {
        let c = rec.counters(&format!("relabel[{site}]"));
        assert_eq!(c.bytes_received, outcome.global_model_bytes as u64);
        assert_eq!(c.bytes_sent, 0);
        assert_eq!(
            c.range_queries,
            part.len() as u64,
            "relabel issues one range query per local object"
        );
    }
}

#[test]
fn threaded_replay_counters_count_physical_queries_once() {
    // With worker threads, the deterministic execution layer materializes
    // every neighborhood once up front and replays from the cache: the
    // *physical* query count per site is exactly n, not n plus the
    // expansion and SCP re-queries of the sequential path.
    let g = dbdc_datagen::dataset_c(32);
    let p = params().with_threads(2);
    let rec = RecordingRecorder::new();
    let outcome = run_dbdc_threaded_recorded(
        &g.data,
        &p,
        Partitioner::RandomEqual { seed: 11 },
        N_SITES,
        &rec,
    );
    let parts = partitioned(&g.data);
    for (site, part) in parts.iter().enumerate() {
        let c = rec.counters(&format!("local[{site}]"));
        let n = part.len() as u64;
        assert_eq!(c.range_queries, n, "site {site}");
        assert_eq!(c.distance_evals, n * n, "site {site}");
    }
    // The recorded run is still the plain protocol result.
    let plain = run_dbdc(&g.data, &p, Partitioner::RandomEqual { seed: 11 }, N_SITES);
    assert_eq!(outcome.assignment, plain.assignment);
}

#[test]
fn recording_does_not_change_the_outcome() {
    let g = dbdc_datagen::dataset_c(33);
    let p = params();
    let rec = RecordingRecorder::new();
    let seed = Partitioner::RandomEqual { seed: 5 };
    let recorded = run_dbdc_recorded(&g.data, &p, seed, N_SITES, &rec);
    let noop = run_dbdc_recorded(&g.data, &p, seed, N_SITES, &NoopRecorder);
    let plain = run_dbdc(&g.data, &p, seed, N_SITES);
    for other in [&noop, &plain] {
        assert_eq!(recorded.assignment, other.assignment);
        assert_eq!(recorded.per_site_bytes_up, other.per_site_bytes_up);
        assert_eq!(recorded.global_model_bytes, other.global_model_bytes);
        assert_eq!(recorded.n_representatives, other.n_representatives);
    }
    // Nothing was captured through the no-op recorder, everything through
    // the recording one.
    assert!(!rec.scopes().is_empty());
    assert_eq!(rec.spans().len(), 1);
    assert_eq!(rec.spans()[0].name, "dbdc");
}
