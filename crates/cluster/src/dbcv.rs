//! DBCV — Density-Based Clustering Validation (Moulavi et al., SDM 2014).
//!
//! The paper's own quality measure, `Q_DBDC` (Section 8), compares the
//! distributed clustering against a *central reference* run — so it says
//! nothing on unlabeled workloads where no reference exists. DBCV is the
//! ground-truth-free complement: a relative validity index for
//! density-based clusterings that scores a labeling from the data alone,
//! in `[-1, 1]` (higher is better, 0 is the degenerate/undecided value).
//!
//! The construction, exactly as implemented here:
//!
//! 1. **All-points-core-distance** — for each object `x` of cluster `Cᵢ`
//!    (`nᵢ = |Cᵢ|`), over a `d`-dimensional space:
//!    `apts(x) = ( Σ_{y∈Cᵢ, y≠x} (1/d(x,y))^d / (nᵢ−1) )^(−1/d)`,
//!    an inverse-power-mean density estimate (duplicates drive it to 0).
//! 2. **Mutual reachability** — `d_mr(x,y) = max(apts(x), apts(y), d(x,y))`,
//!    the same smoothed metric HDBSCAN builds on.
//! 3. **Density sparseness** (DSC) — per cluster, the maximum edge of the
//!    minimum spanning tree of the complete mutual-reachability graph
//!    restricted to *internal* edges (both endpoints of MST degree ≥ 2;
//!    clusters too small to have internal edges fall back to all edges).
//!    The MST is built with dense Prim, `O(nᵢ²)` distance evaluations.
//! 4. **Density separation** (DSPC) — for each cluster pair, the minimum
//!    mutual reachability between their internal nodes.
//! 5. **Validity** — `V(Cᵢ) = (minⱼ DSPC(Cᵢ,Cⱼ) − DSC(Cᵢ))
//!    / max(minⱼ DSPC(Cᵢ,Cⱼ), DSC(Cᵢ))`, and the global index is the
//!    size-weighted sum `Σ (nᵢ/|O|)·V(Cᵢ)` where `|O|` counts *every*
//!    object including noise — so heavy noise drags the index toward 0.
//!
//! Degenerate inputs return defined values instead of NaN: fewer than two
//! scoreable clusters (all noise, a single cluster, or everything in
//! singletons) yields exactly `0.0`. Singleton clusters cannot carry a
//! density estimate and are treated as noise, following the reference
//! `dbcvindex` implementation.
//!
//! Two core-distance paths are provided: the exact `O(nᵢ²)` sum over the
//! cluster ([`CorePath::Exact`]), and an index-accelerated approximation
//! ([`CorePath::Knn`]) that truncates the sum to the `k` nearest
//! within-cluster neighbours found via [`dbdc_index::NeighborIndex::knn`] — with
//! `k ≥ nᵢ` the two are identical. Hot loops count into the `quality`
//! counter scope (`mst_edges`, `distance_evals`) through the usual
//! flush-once-per-phase discipline.

use dbdc_geom::{Clustering, Dataset, Metric};
use dbdc_index::{build_index_observed, IndexKind};
use dbdc_obs::Recorder;

/// Counter scope the DBCV hot loops record under.
pub const QUALITY_SCOPE: &str = "quality";

/// How all-points-core-distances are computed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CorePath {
    /// The exact `O(nᵢ²)` sum over every same-cluster object.
    Exact,
    /// Truncate the density sum to the `k` nearest within-cluster
    /// neighbours, found with a per-cluster spatial index. Exact when
    /// `k ≥ nᵢ`; a cheap upper-biased approximation otherwise.
    Knn {
        /// Neighbours kept per object (the query point itself excluded).
        k: usize,
        /// Index structure built per cluster for the knn queries.
        index: IndexKind,
    },
}

/// The result of a DBCV evaluation.
#[derive(Debug, Clone)]
pub struct DbcvOutcome {
    /// The global index in `[-1, 1]`; `0.0` for degenerate inputs.
    pub value: f64,
    /// Clusters that were scored (size ≥ 2 after singleton demotion).
    pub n_clusters: usize,
    /// Objects counted as noise, including singleton-cluster members.
    pub n_noise: usize,
    /// Per-cluster validity `V(Cᵢ)` indexed by cluster id; clusters too
    /// small to score hold `0.0`.
    pub cluster_validity: Vec<f64>,
}

/// Computes DBCV with exact core distances and no instrumentation.
///
/// ```
/// use dbdc_cluster::dbcv::dbcv;
/// use dbdc_geom::{Clustering, Dataset, Euclidean, Label};
/// use dbdc_obs::NoopRecorder;
///
/// let data = Dataset::from_flat(
///     2,
///     vec![0.0, 0.0, 0.1, 0.0, 0.0, 0.1, 9.0, 9.0, 9.1, 9.0, 9.0, 9.1],
/// );
/// let labels = Clustering::from_labels(vec![
///     Label::Cluster(0), Label::Cluster(0), Label::Cluster(0),
///     Label::Cluster(1), Label::Cluster(1), Label::Cluster(1),
/// ]);
/// let out = dbcv(&data, &labels, Euclidean, &NoopRecorder);
/// assert!(out.value > 0.9); // two tight, well-separated blobs
/// ```
pub fn dbcv<M: Metric + Clone>(
    data: &Dataset,
    clustering: &Clustering,
    metric: M,
    rec: &dyn Recorder,
) -> DbcvOutcome {
    dbcv_with(data, clustering, metric, CorePath::Exact, rec)
}

/// Computes DBCV with an explicit core-distance path.
///
/// # Panics
/// Panics if `clustering` does not cover `data`.
pub fn dbcv_with<M: Metric + Clone>(
    data: &Dataset,
    clustering: &Clustering,
    metric: M,
    path: CorePath,
    rec: &dyn Recorder,
) -> DbcvOutcome {
    assert_eq!(
        data.len(),
        clustering.len(),
        "clustering must cover the dataset"
    );
    let n_labels = clustering.n_clusters() as usize;
    let total = data.len();
    let mut validity = vec![0.0; n_labels];

    // Membership lists; singleton clusters are demoted to noise.
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); n_labels];
    for i in 0..total as u32 {
        if let Some(c) = clustering.label(i).cluster() {
            members[c as usize].push(i);
        }
    }
    let singles: usize = members
        .iter()
        .filter(|m| m.len() == 1)
        .map(|m| m.len())
        .sum();
    let n_noise = clustering.n_noise() + singles;
    let scored: Vec<usize> = (0..n_labels).filter(|&c| members[c].len() >= 2).collect();

    if total == 0 || scored.len() < 2 {
        return DbcvOutcome {
            value: 0.0,
            n_clusters: scored.len(),
            n_noise,
            cluster_validity: validity,
        };
    }

    let sheet = rec.sheet(QUALITY_SCOPE);
    let mut dist_evals = 0u64;
    let mut mst_edges = 0u64;
    let dim = data.dim().max(1) as i32;

    // Per scored cluster: core distances, then the Prim MST over mutual
    // reachability, then the internal-node set and DSC.
    let mut cores: Vec<Vec<f64>> = Vec::with_capacity(scored.len());
    let mut internals: Vec<Vec<u32>> = Vec::with_capacity(scored.len());
    let mut dscs: Vec<f64> = Vec::with_capacity(scored.len());
    for &c in &scored {
        let m = &members[c];
        let core = match path {
            CorePath::Exact => {
                dist_evals += (m.len() * (m.len() - 1)) as u64;
                exact_cores(data, m, &metric, dim)
            }
            CorePath::Knn { k, index } => knn_cores(data, m, &metric, dim, k, index, rec),
        };
        let (edges, degree) = prim_mst(data, m, &core, &metric, &mut dist_evals);
        mst_edges += edges.len() as u64;
        let internal: Vec<u32> = (0..m.len() as u32)
            .filter(|&i| degree[i as usize] >= 2)
            .collect();
        // Internal edges only; clusters of 2-3 points have none, so fall
        // back to the full edge set (and below to the full node set).
        let dsc = edges
            .iter()
            .filter(|&&(a, b, _)| degree[a as usize] >= 2 && degree[b as usize] >= 2)
            .map(|&(_, _, w)| w)
            .fold(f64::NEG_INFINITY, f64::max);
        let dsc = if dsc.is_finite() {
            dsc
        } else {
            edges.iter().map(|&(_, _, w)| w).fold(0.0, f64::max)
        };
        cores.push(core);
        internals.push(internal);
        dscs.push(dsc);
    }

    // Pairwise minimum density separation between internal nodes.
    let mut min_dspc = vec![f64::INFINITY; scored.len()];
    for i in 0..scored.len() {
        for j in i + 1..scored.len() {
            let sep = dspc(
                data,
                (&members[scored[i]], &cores[i], &internals[i]),
                (&members[scored[j]], &cores[j], &internals[j]),
                &metric,
                &mut dist_evals,
            );
            min_dspc[i] = min_dspc[i].min(sep);
            min_dspc[j] = min_dspc[j].min(sep);
        }
    }

    let mut value = 0.0;
    for (s, &c) in scored.iter().enumerate() {
        let denom = min_dspc[s].max(dscs[s]);
        let v = if denom > 0.0 && denom.is_finite() {
            (min_dspc[s] - dscs[s]) / denom
        } else {
            0.0 // all-duplicate degenerate cluster: undecided, not NaN
        };
        validity[c] = v;
        value += members[c].len() as f64 / total as f64 * v;
    }

    if let Some(sheet) = sheet {
        sheet.add_distance_evals(dist_evals);
        sheet.add_mst_edges(mst_edges);
    }
    DbcvOutcome {
        value,
        n_clusters: scored.len(),
        n_noise,
        cluster_validity: validity,
    }
}

/// Exact all-points-core-distances of one cluster.
fn exact_cores<M: Metric>(data: &Dataset, members: &[u32], metric: &M, dim: i32) -> Vec<f64> {
    let n = members.len();
    members
        .iter()
        .map(|&x| {
            let p = data.point(x);
            let mut sum = 0.0;
            for &y in members {
                if y == x {
                    continue;
                }
                sum += (1.0 / metric.dist(p, data.point(y))).powi(dim);
            }
            // A zero distance contributes +inf, collapsing the core
            // distance to 0 — the density estimate at a duplicate point.
            (sum / (n - 1) as f64).powf(-1.0 / dim as f64)
        })
        .collect()
}

/// Index-accelerated core distances: the density sum truncated to each
/// object's `k` nearest within-cluster neighbours.
fn knn_cores<M: Metric + Clone>(
    data: &Dataset,
    members: &[u32],
    metric: &M,
    dim: i32,
    k: usize,
    kind: IndexKind,
    rec: &dyn Recorder,
) -> Vec<f64> {
    let sub = data.subset(members);
    let sheet = rec.sheet(QUALITY_SCOPE);
    // The grid index needs a positive cell size; the bounding-box
    // diagonal scaled by the point count approximates the within-cluster
    // neighbour spacing (the other index kinds ignore the hint).
    let hint = sub
        .bounding_rect()
        .map(|r| metric.dist(r.lo(), r.hi()) / (members.len() as f64))
        .filter(|h| h.is_finite() && *h > 0.0)
        .unwrap_or(1.0);
    let index = build_index_observed(kind, &sub, metric.clone(), hint, sheet.as_ref());
    let k = k.max(1).min(members.len() - 1);
    (0..members.len() as u32)
        .map(|local| {
            let p = sub.point(local);
            // +1 because the query point itself comes back at distance 0.
            let mut sum = 0.0;
            let mut cnt = 0usize;
            for (hit, d) in index.knn(p, k + 1) {
                if hit == local {
                    continue;
                }
                sum += (1.0 / d).powi(dim);
                cnt += 1;
            }
            if cnt == 0 {
                return f64::INFINITY;
            }
            (sum / cnt as f64).powf(-1.0 / dim as f64)
        })
        .collect()
}

/// Dense Prim over the implicit complete mutual-reachability graph of one
/// cluster. Returns the MST edge list (local indices, weight) and the
/// per-node degree.
fn prim_mst<M: Metric>(
    data: &Dataset,
    members: &[u32],
    core: &[f64],
    metric: &M,
    dist_evals: &mut u64,
) -> (Vec<(u32, u32, f64)>, Vec<u32>) {
    let n = members.len();
    let mut in_tree = vec![false; n];
    let mut best = vec![f64::INFINITY; n];
    let mut parent = vec![0u32; n];
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    let mut degree = vec![0u32; n];
    in_tree[0] = true;
    let mut last = 0usize;
    for _ in 1..n {
        // Relax every out-of-tree node against the vertex added last.
        let lp = data.point(members[last]);
        for v in 0..n {
            if in_tree[v] {
                continue;
            }
            *dist_evals += 1;
            let d = metric.dist(lp, data.point(members[v]));
            let w = d.max(core[last]).max(core[v]);
            if w < best[v] {
                best[v] = w;
                parent[v] = last as u32;
            }
        }
        let next = (0..n)
            .filter(|&v| !in_tree[v])
            .min_by(|&a, &b| best[a].total_cmp(&best[b]))
            .expect("cluster has an out-of-tree vertex");
        in_tree[next] = true;
        edges.push((parent[next], next as u32, best[next]));
        degree[parent[next] as usize] += 1;
        degree[next] += 1;
        last = next;
    }
    (edges, degree)
}

/// Minimum mutual reachability between the internal nodes of two
/// clusters (falling back to all nodes when a cluster has none).
fn dspc<M: Metric>(
    data: &Dataset,
    a: (&[u32], &[f64], &[u32]),
    b: (&[u32], &[f64], &[u32]),
    metric: &M,
    dist_evals: &mut u64,
) -> f64 {
    let nodes = |(members, _, internal): (&[u32], &[f64], &[u32])| -> Vec<u32> {
        if internal.is_empty() {
            (0..members.len() as u32).collect()
        } else {
            internal.to_vec()
        }
    };
    let (na, nb) = (nodes(a), nodes(b));
    let mut min = f64::INFINITY;
    for &x in &na {
        let px = data.point(a.0[x as usize]);
        let cx = a.1[x as usize];
        for &y in &nb {
            *dist_evals += 1;
            let d = metric.dist(px, data.point(b.0[y as usize]));
            min = min.min(d.max(cx).max(b.1[y as usize]));
        }
    }
    min
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbdc_geom::{Euclidean, Label};
    use dbdc_obs::{NoopRecorder, RecordingRecorder};

    /// Two tight blobs far apart, labeled correctly.
    fn blobs() -> (Dataset, Clustering) {
        let mut d = Dataset::new(2);
        let mut labels = Vec::new();
        for i in 0..20 {
            let t = i as f64 * 0.37;
            d.push(&[t.sin() * 0.3, t.cos() * 0.3]);
            labels.push(Label::Cluster(0));
        }
        for i in 0..20 {
            let t = i as f64 * 0.53;
            d.push(&[50.0 + t.sin() * 0.3, 50.0 + t.cos() * 0.3]);
            labels.push(Label::Cluster(1));
        }
        (d, Clustering::from_labels(labels))
    }

    /// A uniform grid of points split arbitrarily down the middle — a
    /// clustering with no density justification.
    fn split_uniform() -> (Dataset, Clustering) {
        let mut d = Dataset::new(2);
        let mut labels = Vec::new();
        for x in 0..8 {
            for y in 0..8 {
                d.push(&[x as f64, y as f64]);
                labels.push(Label::Cluster(u32::from(x >= 4)));
            }
        }
        (d, Clustering::from_labels(labels))
    }

    #[test]
    fn separated_blobs_score_near_one() {
        let (d, c) = blobs();
        let out = dbcv(&d, &c, Euclidean, &NoopRecorder);
        assert!(out.value > 0.9, "got {}", out.value);
        assert_eq!(out.n_clusters, 2);
        assert_eq!(out.n_noise, 0);
        assert_eq!(out.cluster_validity.len(), 2);
        assert!(out.cluster_validity.iter().all(|&v| v > 0.9));
    }

    #[test]
    fn arbitrary_split_of_uniform_data_scores_nonpositive() {
        let (d, c) = split_uniform();
        let out = dbcv(&d, &c, Euclidean, &NoopRecorder);
        // The "separation" between the halves equals the within-cluster
        // spacing, so the index must not reward the split.
        assert!(out.value <= 0.0, "got {}", out.value);
        assert!(out.value >= -1.0);
    }

    #[test]
    fn bounded_in_minus_one_one() {
        for (d, c) in [blobs(), split_uniform()] {
            let v = dbcv(&d, &c, Euclidean, &NoopRecorder).value;
            assert!((-1.0..=1.0).contains(&v), "got {v}");
        }
    }

    #[test]
    fn degenerate_inputs_return_zero() {
        let (d, _) = blobs();
        let all_noise = Clustering::all_noise(d.len());
        assert_eq!(dbcv(&d, &all_noise, Euclidean, &NoopRecorder).value, 0.0);

        let one = Clustering::from_labels(vec![Label::Cluster(0); d.len()]);
        let out = dbcv(&d, &one, Euclidean, &NoopRecorder);
        assert_eq!(out.value, 0.0);
        assert_eq!(out.n_clusters, 1);

        let empty = Dataset::new(2);
        let out = dbcv(&empty, &Clustering::all_noise(0), Euclidean, &NoopRecorder);
        assert_eq!(out.value, 0.0);
    }

    #[test]
    fn singleton_clusters_count_as_noise() {
        let mut d = Dataset::new(2);
        let mut labels = Vec::new();
        for i in 0..6 {
            d.push(&[i as f64 * 0.1, 0.0]);
            labels.push(Label::Cluster(0));
        }
        for i in 0..6 {
            d.push(&[40.0 + i as f64 * 0.1, 0.0]);
            labels.push(Label::Cluster(1));
        }
        d.push(&[100.0, 100.0]);
        labels.push(Label::Cluster(2)); // singleton
        let c = Clustering::from_labels(labels);
        let out = dbcv(&d, &c, Euclidean, &NoopRecorder);
        assert_eq!(out.n_clusters, 2);
        assert_eq!(out.n_noise, 1);
        assert_eq!(out.cluster_validity[2], 0.0);
        assert!(out.value.is_finite());
    }

    #[test]
    fn duplicate_points_do_not_panic_or_nan() {
        let mut d = Dataset::new(2);
        let mut labels = Vec::new();
        for _ in 0..4 {
            d.push(&[0.0, 0.0]);
            labels.push(Label::Cluster(0));
        }
        for _ in 0..4 {
            d.push(&[1.0, 1.0]);
            labels.push(Label::Cluster(1));
        }
        let out = dbcv(
            &d,
            &Clustering::from_labels(labels),
            Euclidean,
            &NoopRecorder,
        );
        assert!(out.value.is_finite(), "got {}", out.value);
        assert!((-1.0..=1.0).contains(&out.value));
    }

    #[test]
    fn knn_path_with_full_k_matches_exact() {
        let (d, c) = blobs();
        let exact = dbcv(&d, &c, Euclidean, &NoopRecorder);
        for kind in IndexKind::ALL {
            let knn = dbcv_with(
                &d,
                &c,
                Euclidean,
                CorePath::Knn {
                    k: d.len(),
                    index: kind,
                },
                &NoopRecorder,
            );
            assert!(
                (knn.value - exact.value).abs() < 1e-9,
                "{kind:?}: {} vs {}",
                knn.value,
                exact.value
            );
        }
    }

    #[test]
    fn knn_path_with_small_k_stays_close_on_blobs() {
        let (d, c) = blobs();
        let exact = dbcv(&d, &c, Euclidean, &NoopRecorder);
        let approx = dbcv_with(
            &d,
            &c,
            Euclidean,
            CorePath::Knn {
                k: 5,
                index: IndexKind::KdTree,
            },
            &NoopRecorder,
        );
        assert!(
            (approx.value - exact.value).abs() < 0.1,
            "{} vs {}",
            approx.value,
            exact.value
        );
    }

    #[test]
    fn hot_loops_record_into_the_quality_scope() {
        let (d, c) = blobs();
        let rec = RecordingRecorder::new();
        dbcv(&d, &c, Euclidean, &rec);
        let counters = rec.counters(QUALITY_SCOPE);
        // One MST per 20-point cluster: 19 edges each.
        assert_eq!(counters.mst_edges, 38);
        assert!(counters.distance_evals > 0);

        // The knn path additionally routes its index queries there.
        let rec = RecordingRecorder::new();
        dbcv_with(
            &d,
            &c,
            Euclidean,
            CorePath::Knn {
                k: 5,
                index: IndexKind::KdTree,
            },
            &rec,
        );
        let counters = rec.counters(QUALITY_SCOPE);
        assert_eq!(counters.knn_queries, d.len() as u64);
    }

    #[test]
    fn label_permutation_leaves_the_score_unchanged() {
        let (d, c) = blobs();
        let swapped: Vec<Label> = c
            .labels()
            .iter()
            .map(|l| match l {
                Label::Cluster(0) => Label::Cluster(1),
                Label::Cluster(1) => Label::Cluster(0),
                other => *other,
            })
            .collect();
        let base = dbcv(&d, &c, Euclidean, &NoopRecorder).value;
        let perm = dbcv(
            &d,
            &Clustering::from_labels(swapped),
            Euclidean,
            &NoopRecorder,
        )
        .value;
        assert_eq!(base, perm);
    }
}
