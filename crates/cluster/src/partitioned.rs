//! Partitioned local DBSCAN: spatial stripes with ε-halos.
//!
//! [`par_dbscan`](mod@crate::par_dbscan) parallelizes the ε-range queries
//! against one shared index. This module instead partitions the points
//! into spatial stripes along the widest-spread axis, replicates an
//! ε-halo of foreign points into each stripe, builds a *private* index
//! per partition, and runs the queries of each partition on its own
//! worker. That bounds every index to a fraction of the data (better
//! locality, smaller build) and removes all sharing between workers
//! except the final merge — the shape a per-site scale-out needs.
//!
//! # Correctness
//!
//! For every Lp metric the per-axis distance never exceeds the true
//! distance, so the full ε-neighborhood of a point owned by stripe `s`
//! lies within `s`'s coordinate range extended by ε on both sides —
//! exactly the stripe-plus-halo subset each partition receives. Each
//! owned point's neighborhood is therefore *complete*, and after
//! mapping subset-local ids back to site-local ids and sorting, the
//! neighbor **sets** equal the unpartitioned index's answers.
//!
//! The clustering tail reuses `par_dbscan`'s order-independent steps
//! (core flags, core-core union-find merge, canonicalization), so the
//! labels are **identical** to sequential [`crate::dbscan::dbscan`] at
//! every partition count — that identity is the correctness gate the
//! tests pin. Specific-core-point selection is visit-order dependent
//! (Definition 6), so [`partitioned_dbscan_with_scp`] replays the same
//! sequential state machine over the sorted neighborhoods: its labels
//! are again identical, while the chosen representatives may differ
//! deterministically from the unpartitioned run's.

use crate::dbscan::{DbscanParams, DbscanResult};
use crate::par_dbscan::{cluster_from_neighborhoods, effective_threads, replay_scp};
use crate::scp::ScpResult;
use dbdc_geom::{Dataset, Euclidean};
use dbdc_index::{build_index_opts, BuildOptions, IndexKind, Precision, QueryWorkspace};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Resolves a partition-count knob: `0` means "one partition per
/// worker thread", anything else is taken literally. Always at least 1.
pub fn effective_partitions(requested: usize, threads: usize) -> usize {
    if requested == 0 {
        effective_threads(threads)
    } else {
        requested
    }
}

/// Telemetry of one partitioned run.
#[derive(Debug, Clone)]
pub struct PartitionStats {
    /// Partitions actually used (after clamping to the point count).
    pub partitions: usize,
    /// Total points replicated into halos across all partitions.
    pub halo_points: u64,
    /// Per-partition wall time (index build + owned-point queries).
    pub partition_times: Vec<Duration>,
    /// Points owned by each partition.
    pub partition_owned: Vec<usize>,
    /// Halo points replicated into each partition.
    pub partition_halo: Vec<usize>,
}

/// One stripe's slice of the axis-sorted order: it owns positions
/// `[own_start, own_end)` and additionally sees the halo positions
/// `[halo_start, own_start)` and `[own_end, halo_end)`.
#[derive(Debug, Clone, Copy)]
struct Stripe {
    part: usize,
    halo_start: usize,
    own_start: usize,
    own_end: usize,
    halo_end: usize,
}

/// Computes every point's closed ε-neighborhood through per-partition
/// indexes, with partitions processed concurrently on up to `threads`
/// workers (`0` = all cores). Neighbor lists come back sorted
/// ascending; as sets they equal the answers of one index over the
/// whole dataset.
pub fn partitioned_neighborhoods(
    data: &Dataset,
    kind: IndexKind,
    eps: f64,
    partitions: usize,
    threads: usize,
    precision: Precision,
) -> (Vec<Vec<u32>>, PartitionStats) {
    partitioned_neighborhoods_observed(data, kind, eps, partitions, threads, precision, None, None)
}

/// [`partitioned_neighborhoods`] with optional instrumentation shared
/// by every partition's index: `sheet` collects query work counters,
/// `hist` the per-query latency distribution. The sheets are lock-free,
/// so partition workers record concurrently.
#[allow(clippy::too_many_arguments)]
pub fn partitioned_neighborhoods_observed(
    data: &Dataset,
    kind: IndexKind,
    eps: f64,
    partitions: usize,
    threads: usize,
    precision: Precision,
    sheet: Option<&std::sync::Arc<dbdc_obs::CounterSheet>>,
    hist: Option<&std::sync::Arc<dbdc_obs::HistSheet>>,
) -> (Vec<Vec<u32>>, PartitionStats) {
    let n = data.len();
    let partitions = partitions.max(1).min(n.max(1));
    let mut neighbors: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut stats = PartitionStats {
        partitions,
        halo_points: 0,
        partition_times: vec![Duration::ZERO; partitions],
        partition_owned: vec![0; partitions],
        partition_halo: vec![0; partitions],
    };
    if n == 0 {
        return (neighbors, stats);
    }

    // Stripe along the widest-spread axis: striping a degenerate axis
    // (e.g. always axis 0 on data extended along axis 1) would give
    // every partition a halo covering nearly the whole dataset.
    let bbox = data.bounding_rect().expect("non-empty dataset");
    let axis = (0..data.dim())
        .max_by(|&a, &b| {
            let wa = bbox.hi()[a] - bbox.lo()[a];
            let wb = bbox.hi()[b] - bbox.lo()[b];
            wa.total_cmp(&wb)
        })
        .expect("dataset has at least 1 dimension");

    // Count-balanced stripes over the axis-sorted order (ties broken by
    // id so the partitioning is fully deterministic).
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        data.point(a)[axis]
            .total_cmp(&data.point(b)[axis])
            .then(a.cmp(&b))
    });
    let coord = |pos: usize| data.point(order[pos])[axis];
    let per = n.div_ceil(partitions);
    let mut stripes: Vec<Stripe> = Vec::with_capacity(partitions);
    for p in 0..partitions {
        let own_start = (p * per).min(n);
        let own_end = ((p + 1) * per).min(n);
        if own_start >= own_end {
            continue;
        }
        // The halo is everything within ε of the stripe's coordinate
        // range — contiguous in the sorted order, found by bisection.
        let lo = coord(own_start) - eps;
        let hi = coord(own_end - 1) + eps;
        let halo_start = order[..own_start].partition_point(|&i| data.point(i)[axis] < lo);
        let halo_end = own_end + order[own_end..].partition_point(|&i| data.point(i)[axis] <= hi);
        stripes.push(Stripe {
            part: p,
            halo_start,
            own_start,
            own_end,
            halo_end,
        });
        let halo = (own_start - halo_start) + (halo_end - own_end);
        stats.partition_owned[p] = own_end - own_start;
        stats.partition_halo[p] = halo;
        stats.halo_points += halo as u64;
    }

    // One worker per partition (capped by `threads`); each builds the
    // stripe's private index and answers its owned points' queries.
    let workers = effective_threads(threads).min(stripes.len().max(1));
    let run_stripe = |s: Stripe, ws: &mut QueryWorkspace| {
        let t0 = Instant::now();
        let sub_ids: Vec<u32> = order[s.halo_start..s.halo_end].to_vec();
        let sub = data.subset(&sub_ids);
        let opts = BuildOptions {
            threads: 1,
            precision,
        };
        let index = build_index_opts(kind, &sub, Euclidean, eps, opts, sheet, hist);
        let mut lists: Vec<Vec<u32>> = Vec::with_capacity(s.own_end - s.own_start);
        let mut buf: Vec<u32> = Vec::new();
        for pos in s.own_start..s.own_end {
            let local = (pos - s.halo_start) as u32;
            index.range_with(sub.point(local), eps, &mut buf, ws);
            let mut mapped: Vec<u32> = buf.iter().map(|&l| sub_ids[l as usize]).collect();
            // Sorted lists make the neighborhoods canonical across
            // backends and partition counts.
            mapped.sort_unstable();
            lists.push(mapped);
        }
        (lists, t0.elapsed())
    };
    if workers <= 1 {
        let mut ws = QueryWorkspace::new();
        for &s in &stripes {
            let (lists, took) = run_stripe(s, &mut ws);
            stats.partition_times[s.part] = took;
            for (k, nb) in lists.into_iter().enumerate() {
                neighbors[order[s.own_start + k] as usize] = nb;
            }
        }
        return (neighbors, stats);
    }
    type StripeOut = Option<(Vec<Vec<u32>>, Duration)>;
    let outs: Vec<Mutex<StripeOut>> = stripes.iter().map(|_| Mutex::new(None)).collect();
    let cursor = Mutex::new(0usize);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // One workspace (and one range buffer inside the
                // closure) per worker for the whole run.
                let mut ws = QueryWorkspace::new();
                loop {
                    let t = {
                        let mut c = cursor.lock().expect("a partition worker panicked");
                        let t = *c;
                        *c += 1;
                        t
                    };
                    let Some(&s) = stripes.get(t) else { break };
                    let out = run_stripe(s, &mut ws);
                    *outs[t].lock().expect("a partition worker panicked") = Some(out);
                }
            });
        }
    });
    for (slot, &s) in outs.iter().zip(&stripes) {
        let (lists, took) = slot
            .lock()
            .expect("a partition worker panicked")
            .take()
            .expect("every stripe was processed");
        stats.partition_times[s.part] = took;
        for (k, nb) in lists.into_iter().enumerate() {
            neighbors[order[s.own_start + k] as usize] = nb;
        }
    }
    (neighbors, stats)
}

/// Partitioned DBSCAN: stripes + halos + per-partition indexes, merged
/// through the same union-find canonicalization as
/// [`crate::par_dbscan::par_dbscan`]. Labels are identical to
/// sequential [`crate::dbscan::dbscan`] for every backend, thread
/// count, and partition count.
pub fn partitioned_dbscan(
    data: &Dataset,
    kind: IndexKind,
    params: &DbscanParams,
    partitions: usize,
    threads: usize,
    precision: Precision,
) -> (DbscanResult, PartitionStats) {
    let (neighbors, stats) =
        partitioned_neighborhoods(data, kind, params.eps, partitions, threads, precision);
    let result = cluster_from_neighborhoods(data.len(), &neighbors, params.min_pts, None, None);
    (result, stats)
}

/// Partitioned variant of [`crate::par_dbscan::par_dbscan_with_scp`]:
/// identical labels, deterministic (but possibly different from the
/// unpartitioned run's) specific-core-point representatives — see the
/// module docs.
pub fn partitioned_dbscan_with_scp(
    data: &Dataset,
    kind: IndexKind,
    params: &DbscanParams,
    partitions: usize,
    threads: usize,
    precision: Precision,
) -> (ScpResult, PartitionStats) {
    let (neighbors, stats) =
        partitioned_neighborhoods(data, kind, params.eps, partitions, threads, precision);
    (replay_scp(data, &neighbors, params), stats)
}

/// [`partitioned_dbscan_with_scp`] with optional instrumentation, as
/// [`partitioned_neighborhoods_observed`].
#[allow(clippy::too_many_arguments)]
pub fn partitioned_dbscan_with_scp_observed(
    data: &Dataset,
    kind: IndexKind,
    params: &DbscanParams,
    partitions: usize,
    threads: usize,
    precision: Precision,
    sheet: Option<&std::sync::Arc<dbdc_obs::CounterSheet>>,
    hist: Option<&std::sync::Arc<dbdc_obs::HistSheet>>,
) -> (ScpResult, PartitionStats) {
    let (neighbors, stats) = partitioned_neighborhoods_observed(
        data, kind, params.eps, partitions, threads, precision, sheet, hist,
    );
    (replay_scp(data, &neighbors, params), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::dbscan;
    use dbdc_geom::Metric;
    use dbdc_index::{LinearScan, NeighborIndex};

    fn two_blobs_and_noise() -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..120 {
            let t = i as f64 * 0.37;
            d.push(&[t.sin() * 2.0, t.cos() * 2.0]);
            d.push(&[15.0 + t.cos() * 1.5, 1.0 + t.sin() * 1.5]);
        }
        for i in 0..20 {
            let t = i as f64;
            d.push(&[t * 3.1, 40.0 + (t * 0.7).sin() * 20.0]);
        }
        d
    }

    #[test]
    fn labels_identical_to_sequential() {
        let d = two_blobs_and_noise();
        let idx = LinearScan::new(&d, Euclidean);
        for (eps, min_pts) in [(0.8, 3), (5.0, 4)] {
            let params = DbscanParams::new(eps, min_pts);
            let seq = dbscan(&d, &idx, &params);
            for kind in IndexKind::ALL {
                for partitions in [1, 2, 3, 7] {
                    let (par, stats) =
                        partitioned_dbscan(&d, kind, &params, partitions, 2, Precision::F64);
                    assert_eq!(
                        seq.clustering, par.clustering,
                        "kind={kind:?} partitions={partitions} eps={eps}"
                    );
                    assert_eq!(seq.core, par.core);
                    assert_eq!(stats.partitions, partitions);
                }
            }
        }
    }

    #[test]
    fn neighborhoods_are_complete_and_sorted() {
        let d = two_blobs_and_noise();
        let idx = LinearScan::new(&d, Euclidean);
        let eps = 1.2;
        let (nb, stats) =
            partitioned_neighborhoods(&d, IndexKind::KdTree, eps, 4, 2, Precision::F64);
        assert!(stats.halo_points > 0, "ε-halos must replicate points");
        assert_eq!(
            stats.halo_points,
            stats.partition_halo.iter().sum::<usize>() as u64
        );
        for i in 0..d.len() as u32 {
            let mut want = idx.range_vec(d.point(i), eps);
            want.sort_unstable();
            assert_eq!(nb[i as usize], want, "point {i}");
        }
    }

    #[test]
    fn stripes_follow_the_widest_axis() {
        // Data extended along axis 1; striping axis 0 would put every
        // point into every halo. With the widest-spread axis the halo
        // stays a thin band per boundary.
        let mut d = Dataset::new(2);
        for i in 0..400 {
            d.push(&[(i % 7) as f64 * 0.01, i as f64 * 0.5]);
        }
        let (_, stats) = partitioned_neighborhoods(&d, IndexKind::Grid, 1.0, 4, 2, Precision::F64);
        let owned: usize = stats.partition_owned.iter().sum();
        assert_eq!(owned, d.len());
        assert!(
            (stats.halo_points as usize) < d.len() / 10,
            "halo {} should be a thin band, not ~3x the dataset",
            stats.halo_points
        );
    }

    #[test]
    fn halo_heavy_eps_still_identical() {
        // ε wide enough that halos overlap several stripes.
        let d = two_blobs_and_noise();
        let idx = LinearScan::new(&d, Euclidean);
        let params = DbscanParams::new(12.0, 3);
        let seq = dbscan(&d, &idx, &params);
        let (par, stats) = partitioned_dbscan(&d, IndexKind::RStar, &params, 6, 3, Precision::F64);
        assert_eq!(seq.clustering, par.clustering);
        assert!(stats.halo_points as usize > d.len() / 2);
    }

    #[test]
    fn scp_labels_identical_and_ranges_cover() {
        let d = two_blobs_and_noise();
        let idx = LinearScan::new(&d, Euclidean);
        let params = DbscanParams::new(0.8, 3);
        let seq = dbscan(&d, &idx, &params);
        let (scp, _) =
            partitioned_dbscan_with_scp(&d, IndexKind::KdTree, &params, 3, 2, Precision::F64);
        assert_eq!(seq.clustering, scp.dbscan.clustering);
        // Every core point must be covered by a representative of its
        // own cluster within the specific ε-range (Definition 7).
        for i in 0..d.len() as u32 {
            if !scp.dbscan.core[i as usize] {
                continue;
            }
            let c = scp.dbscan.clustering.label(i).cluster().expect("core") as usize;
            assert!(
                scp.scp[c]
                    .iter()
                    .any(|s| Euclidean.dist(d.point(s.point), d.point(i)) <= s.eps_range),
                "core {i} uncovered"
            );
        }
    }

    #[test]
    fn empty_and_more_partitions_than_points() {
        let empty = Dataset::new(2);
        let params = DbscanParams::new(1.0, 2);
        let (r, stats) = partitioned_dbscan(&empty, IndexKind::Grid, &params, 4, 2, Precision::F64);
        assert!(r.clustering.is_empty());
        assert_eq!(stats.halo_points, 0);

        let d = Dataset::from_flat(2, vec![0.0, 0.0, 0.1, 0.0, 5.0, 5.0]);
        let idx = LinearScan::new(&d, Euclidean);
        let seq = dbscan(&d, &idx, &params);
        let (r, stats) = partitioned_dbscan(&d, IndexKind::KdTree, &params, 9, 4, Precision::F64);
        assert_eq!(seq.clustering, r.clustering);
        assert_eq!(stats.partitions, 3, "clamped to the point count");
    }

    #[test]
    fn effective_partitions_resolves_auto() {
        assert_eq!(effective_partitions(3, 8), 3);
        assert_eq!(effective_partitions(0, 5), 5);
        assert!(effective_partitions(0, 0) >= 1);
    }
}
