//! DBSCAN over arbitrary metric spaces.
//!
//! Section 4 of the paper lists as a DBSCAN advantage that it "can be used
//! for all kinds of metric data spaces and is not confined to vector
//! spaces". This module delivers on that: the same algorithm as
//! [`crate::dbscan()`], but generic over an object type `T` and a
//! [`MetricSpace`]`<T>`, with the region queries served by an
//! [`MTree`] — the metric access method the paper cites.

use dbdc_geom::metric::MetricSpace;
use dbdc_geom::{Clustering, Label};
use dbdc_index::MTree;

use crate::dbscan::DbscanParams;

const UNCLASSIFIED: i64 = -2;
const NOISE: i64 = -1;

/// The result of a metric-space DBSCAN run.
#[derive(Debug, Clone)]
pub struct MetricDbscanResult {
    /// Cluster labels, indexed by the objects' insertion order.
    pub clustering: Clustering,
    /// Core flags, indexed likewise.
    pub core: Vec<bool>,
}

/// Clusters `objects` under the metric `space` with DBSCAN, using an M-tree
/// for the ε-range queries. Objects are identified by their position in the
/// input slice.
///
/// ```
/// use dbdc_cluster::{metric_dbscan, DbscanParams};
/// use dbdc_geom::metric::EditDistance;
///
/// let words: Vec<String> = ["kitten", "mitten", "bitten", "zebra"]
///     .iter().map(|s| s.to_string()).collect();
/// let result = metric_dbscan(&words, EditDistance, &DbscanParams::new(1.0, 2));
/// assert_eq!(result.clustering.n_clusters(), 1);
/// assert!(result.clustering.label(3).is_noise()); // "zebra"
/// ```
pub fn metric_dbscan<T: Clone, S: MetricSpace<T>>(
    objects: &[T],
    space: S,
    params: &DbscanParams,
) -> MetricDbscanResult {
    let tree = MTree::from_objects(space, objects.iter().cloned());
    let n = objects.len();
    let mut state = vec![UNCLASSIFIED; n];
    let mut core = vec![false; n];
    let mut next_cluster: i64 = 0;
    let mut seeds: Vec<u32> = Vec::new();
    for i in 0..n as u32 {
        if state[i as usize] != UNCLASSIFIED {
            continue;
        }
        let neighbors = tree.range(&objects[i as usize], params.eps);
        if neighbors.len() < params.min_pts {
            state[i as usize] = NOISE;
            continue;
        }
        let cluster = next_cluster;
        next_cluster += 1;
        core[i as usize] = true;
        state[i as usize] = cluster;
        seeds.clear();
        for &q in &neighbors {
            let s = &mut state[q as usize];
            if *s == UNCLASSIFIED {
                *s = cluster;
                seeds.push(q);
            } else if *s == NOISE {
                *s = cluster;
            }
        }
        while let Some(j) = seeds.pop() {
            let neighbors = tree.range(&objects[j as usize], params.eps);
            if neighbors.len() < params.min_pts {
                continue;
            }
            core[j as usize] = true;
            for &q in &neighbors {
                let s = &mut state[q as usize];
                if *s == UNCLASSIFIED {
                    *s = cluster;
                    seeds.push(q);
                } else if *s == NOISE {
                    *s = cluster;
                }
            }
        }
    }
    let labels = state
        .iter()
        .map(|&s| {
            if s < 0 {
                Label::Noise
            } else {
                Label::Cluster(s as u32)
            }
        })
        .collect();
    MetricDbscanResult {
        clustering: Clustering::from_labels(labels),
        core,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::dbscan;
    use dbdc_geom::metric::{EditDistance, VectorSpace};
    use dbdc_geom::{Dataset, Euclidean};
    use dbdc_index::LinearScan;

    #[test]
    fn clusters_word_families_by_edit_distance() {
        let words: Vec<String> = [
            // family 1: "cluster" variants
            "cluster",
            "clusters",
            "clustered",
            "clusterer",
            "cluster s",
            // family 2: "string" variants
            "string",
            "strings",
            "stringy",
            "strong",
            "sting",
            // isolated
            "zygomorphic",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let r = metric_dbscan(&words, EditDistance, &DbscanParams::new(2.0, 3));
        assert_eq!(r.clustering.n_clusters(), 2);
        assert!(r.clustering.label(10).is_noise(), "zygomorphic is noise");
        // The two families are separated.
        assert_eq!(r.clustering.label(0), r.clustering.label(1));
        assert_eq!(r.clustering.label(5), r.clustering.label(6));
        assert_ne!(r.clustering.label(0), r.clustering.label(5));
    }

    #[test]
    fn agrees_with_vector_dbscan_on_vector_data() {
        let mut d = Dataset::new(2);
        let mut objs: Vec<Vec<f64>> = Vec::new();
        for (cx, cy) in [(0.0f64, 0.0f64), (10.0, 10.0)] {
            for i in 0..20 {
                let t = i as f64 * 0.37;
                let p = vec![cx + t.sin(), cy + t.cos()];
                d.push(&p);
                objs.push(p);
            }
        }
        objs.push(vec![50.0, 50.0]);
        d.push(&[50.0, 50.0]);
        let params = DbscanParams::new(1.5, 4);
        let idx = LinearScan::new(&d, Euclidean);
        let vector = dbscan(&d, &idx, &params);
        let metric = metric_dbscan(&objs, VectorSpace(Euclidean), &params);
        assert_eq!(vector.clustering, metric.clustering);
        assert_eq!(vector.core, metric.core);
    }

    #[test]
    fn empty_input() {
        let objs: Vec<String> = vec![];
        let r = metric_dbscan(&objs, EditDistance, &DbscanParams::new(1.0, 2));
        assert!(r.clustering.is_empty());
        assert!(r.core.is_empty());
    }
}
