//! Deterministic parallel DBSCAN.
//!
//! The sequential [`crate::dbscan::dbscan`] spends essentially all of its
//! time in the `n` ε-range queries; everything else is `O(n)` label
//! bookkeeping. This module runs those queries concurrently against the
//! shared read-only [`NeighborIndex`] on a scoped worker pool, then
//! rebuilds the *exact* sequential result from the cached neighborhoods:
//!
//! 1. **Query phase (parallel):** workers claim fixed-size blocks of
//!    points from a shared cursor and fill `neighbors[i]` for their
//!    block. The index is only read, so no synchronization beyond the
//!    block cursor is needed.
//! 2. **Core phase:** `core[i] = |neighbors[i]| >= min_pts` — the
//!    core-object condition (Definition 1) verbatim.
//! 3. **Merge phase:** a [`UnionFind`] unions every ε-adjacent pair of
//!    core points. Each resulting set is one maximal density-connected
//!    component of core points.
//! 4. **Canonicalization:** components become clusters in ascending order
//!    of their lowest core-point id, and each border point joins the
//!    lowest-numbered adjacent cluster.
//!
//! # Determinism guarantee
//!
//! [`par_dbscan`] is **bit-identical** to [`crate::dbscan::dbscan`] for
//! any dataset, parameters, and (deterministic) index, regardless of
//! thread count. This is not a coincidence of scheduling — steps 3-4
//! reconstruct the sequential algorithm's choices exactly:
//!
//! * *Cluster numbering.* Sequential DBSCAN creates a cluster when the
//!   outer loop reaches a still-unclassified core point, and a cluster's
//!   lowest-id core point can never be claimed earlier by a different
//!   cluster (whoever labels it is an ε-adjacent core, hence the same
//!   component) nor marked noise (it is core). So the k-th cluster
//!   created sequentially is exactly the component with the k-th
//!   smallest minimum core id — the order step 4 assigns.
//! * *Border points.* A border point adjacent to cores of several
//!   clusters is labeled by the earliest-created one: that cluster's
//!   single expansion processes every one of its core points before the
//!   outer loop moves on, and later expansions never relabel a clustered
//!   point. "Earliest-created" is "lowest cluster id", which is what
//!   step 4 picks.
//! * *Core flags and query counts.* Sequential DBSCAN issues exactly one
//!   range query per point and flags cores by the same cardinality test,
//!   so `core` and `range_queries` agree trivially.
//!
//! [`par_dbscan_with_scp`] extends this to the paper's enhanced DBSCAN:
//! specific-core-point selection is *visit-order dependent*
//! (Definition 6 "is not disjunctive"), so it replays the sequential
//! state machine — but over the cached neighborhoods, issuing zero
//! additional index queries. The replay consumes identical neighbor
//! lists in identical order, hence produces the identical [`ScpResult`].

use crate::dbscan::{DbscanParams, DbscanResult};
use crate::scp::{ScpResult, SpecificCorePoint};
use crate::union_find::UnionFind;
use dbdc_geom::{Clustering, Dataset, Label, Metric};
use dbdc_index::{NeighborIndex, QueryWorkspace};
use std::sync::Mutex;

const UNCLASSIFIED: i64 = -2;
const NOISE: i64 = -1;

/// Points per unit of work a worker claims from the shared cursor. Large
/// enough that cursor contention is negligible, small enough to balance
/// skewed neighborhoods across workers.
const BLOCK: usize = 128;

/// Resolves a thread-count knob: `0` means "use all available cores",
/// anything else is taken literally. The result is always at least 1.
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Computes all `n` closed ε-neighborhoods of `data` concurrently on
/// `threads` scoped worker threads (capped by the number of points;
/// `threads == 0` uses all available cores). `neighbors[i]` holds the
/// index's answer for point `i`, in the index's native order.
pub fn parallel_neighborhoods(
    data: &Dataset,
    index: &dyn NeighborIndex,
    eps: f64,
    threads: usize,
) -> Vec<Vec<u32>> {
    let n = data.len();
    let mut neighbors: Vec<Vec<u32>> = vec![Vec::new(); n];
    let threads = effective_threads(threads).min(n.max(1));
    if threads <= 1 {
        let mut ws = QueryWorkspace::new();
        for (i, slot) in neighbors.iter_mut().enumerate() {
            index.range_with(data.point(i as u32), eps, slot, &mut ws);
        }
        return neighbors;
    }
    let work = Mutex::new(neighbors.chunks_mut(BLOCK).enumerate());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // One workspace per worker: the traversal stack keeps
                // its high-water capacity across every claimed block.
                let mut ws = QueryWorkspace::new();
                loop {
                    // Hold the lock only to claim a block, not to fill it.
                    let claimed = work.lock().expect("a worker panicked").next();
                    let Some((block, chunk)) = claimed else { break };
                    let base = block * BLOCK;
                    for (k, slot) in chunk.iter_mut().enumerate() {
                        index.range_with(data.point((base + k) as u32), eps, slot, &mut ws);
                    }
                }
            });
        }
    });
    neighbors
}

/// Parallel DBSCAN over `data`: identical output to
/// [`crate::dbscan::dbscan`] (see the module docs for why), with the
/// ε-range queries spread over `threads` workers (`0` = all cores).
///
/// ```
/// use dbdc_cluster::{dbscan, par_dbscan, DbscanParams};
/// use dbdc_geom::{Dataset, Euclidean};
/// use dbdc_index::LinearScan;
///
/// let data = Dataset::from_flat(2, vec![
///     0.0, 0.0,  0.5, 0.0,   10.0, 0.0,  10.5, 0.0,   50.0, 50.0,
/// ]);
/// let index = LinearScan::new(&data, Euclidean);
/// let params = DbscanParams::new(1.0, 2);
/// let seq = dbscan(&data, &index, &params);
/// let par = par_dbscan(&data, &index, &params, 4);
/// assert_eq!(seq.clustering, par.clustering);
/// assert_eq!(seq.core, par.core);
/// ```
///
/// # Panics
/// Panics if the index does not cover `data` (`index.len() != data.len()`).
pub fn par_dbscan(
    data: &Dataset,
    index: &dyn NeighborIndex,
    params: &DbscanParams,
    threads: usize,
) -> DbscanResult {
    par_dbscan_observed(data, index, params, threads, None)
}

/// [`par_dbscan`] with an optional [`dbdc_obs::CounterSheet`] recording
/// the DSU work of the merge and canonicalization phases (the index's
/// own query counters attach to the index, not here). With
/// `sheet: None` this is exactly [`par_dbscan`]; the tally lives in
/// plain fields of the [`UnionFind`] either way and is flushed once at
/// the end, so the hot loops see no atomics.
///
/// # Panics
/// Panics if the index does not cover `data` (`index.len() != data.len()`).
pub fn par_dbscan_observed(
    data: &Dataset,
    index: &dyn NeighborIndex,
    params: &DbscanParams,
    threads: usize,
    sheet: Option<&dbdc_obs::CounterSheet>,
) -> DbscanResult {
    par_dbscan_instrumented(data, index, params, threads, sheet, None)
}

/// [`par_dbscan_observed`] with an optional [`dbdc_obs::HistSheet`]
/// capturing the *distribution* of DSU batch sizes — how many union
/// operations each core point's neighborhood contributes to the merge
/// phase. A heavy tail here means a few dense hubs dominate the merge.
/// With `hist: None` the merge loop is the uninstrumented original.
///
/// # Panics
/// Panics if the index does not cover `data` (`index.len() != data.len()`).
pub fn par_dbscan_instrumented(
    data: &Dataset,
    index: &dyn NeighborIndex,
    params: &DbscanParams,
    threads: usize,
    sheet: Option<&dbdc_obs::CounterSheet>,
    hist: Option<&dbdc_obs::HistSheet>,
) -> DbscanResult {
    assert_eq!(
        index.len(),
        data.len(),
        "index must be built over the clustered dataset"
    );
    let neighbors = parallel_neighborhoods(data, index, params.eps, threads);
    cluster_from_neighborhoods(data.len(), &neighbors, params.min_pts, sheet, hist)
}

/// Steps 2-4 of the module algorithm: core flags, core-core merge, and
/// canonicalization over already-computed neighborhoods. The labels
/// depend only on the neighbor *sets*, not their list order (see the
/// module docs), so callers may hand in neighborhoods in any per-list
/// order — the partitioned local phase sorts its lists ascending.
pub(crate) fn cluster_from_neighborhoods(
    n: usize,
    neighbors: &[Vec<u32>],
    min_pts: usize,
    sheet: Option<&dbdc_obs::CounterSheet>,
    hist: Option<&dbdc_obs::HistSheet>,
) -> DbscanResult {
    let core: Vec<bool> = neighbors.iter().map(|ns| ns.len() >= min_pts).collect();

    // Merge ε-adjacent cores. Neighborhoods are symmetric, so scanning
    // each core's own list covers every core-core edge. The loop is
    // duplicated rather than branch-per-edge so the unobserved path
    // stays exactly the original.
    let mut components = UnionFind::new(n);
    match hist {
        None => {
            for i in 0..n {
                if !core[i] {
                    continue;
                }
                for &q in &neighbors[i] {
                    if core[q as usize] {
                        components.union(i as u32, q);
                    }
                }
            }
        }
        Some(h) => {
            for i in 0..n {
                if !core[i] {
                    continue;
                }
                let mut batch = 0u64;
                for &q in &neighbors[i] {
                    if core[q as usize] {
                        components.union(i as u32, q);
                        batch += 1;
                    }
                }
                h.record(batch);
            }
        }
    }

    // Canonical cluster ids: ascending order of each component's lowest
    // core id reproduces the sequential creation order.
    let mut raw = vec![UNCLASSIFIED; n];
    let mut cluster_of_root = vec![NOISE; n];
    let mut next_cluster: i64 = 0;
    for i in 0..n {
        if !core[i] {
            continue;
        }
        let root = components.find(i as u32) as usize;
        if cluster_of_root[root] < 0 {
            cluster_of_root[root] = next_cluster;
            next_cluster += 1;
        }
        raw[i] = cluster_of_root[root];
    }

    // Border points take the lowest adjacent cluster (the one whose
    // sequential expansion reached them first); isolated points stay
    // noise.
    for i in 0..n {
        if core[i] {
            continue;
        }
        let mut best = NOISE;
        for &q in &neighbors[i] {
            if core[q as usize] && (best == NOISE || raw[q as usize] < best) {
                best = raw[q as usize];
            }
        }
        raw[i] = best;
    }

    if let Some(s) = sheet {
        let (unions, finds) = components.ops();
        s.add_dsu(unions, finds);
    }

    let labels = raw
        .iter()
        .map(|&s| {
            if s < 0 {
                Label::Noise
            } else {
                Label::Cluster(s as u32)
            }
        })
        .collect();
    DbscanResult {
        clustering: Clustering::from_labels(labels),
        core,
        range_queries: n,
    }
}

/// Parallel variant of [`crate::scp::dbscan_with_scp`]: the ε-range
/// queries run on the worker pool, then the sequential enhanced-DBSCAN
/// state machine is replayed over the cached neighborhoods (specific
/// core point selection is visit-order dependent, so replay is the only
/// way to reproduce it exactly). Output is identical to the sequential
/// function for any thread count.
///
/// # Panics
/// Panics if the index does not cover `data` (`index.len() != data.len()`).
pub fn par_dbscan_with_scp(
    data: &Dataset,
    index: &dyn NeighborIndex,
    params: &DbscanParams,
    threads: usize,
) -> ScpResult {
    assert_eq!(
        index.len(),
        data.len(),
        "index must be built over the clustered dataset"
    );
    let neighborhoods = parallel_neighborhoods(data, index, params.eps, threads);
    replay_scp(data, &neighborhoods, params)
}

/// Sequential enhanced-DBSCAN replay over precomputed neighborhoods.
/// Mirrors `scp::dbscan_with_scp` statement for statement, with each
/// `index.range(...)` replaced by a cached lookup; `range_queries`
/// counts the queries the sequential run would have issued, so the two
/// results compare equal field by field.
///
/// The clustering *labels* depend only on the neighbor sets (cluster
/// creation order is outer-loop order, border claims go to the
/// earliest-created cluster); the *specific core point* selection does
/// depend on each list's internal order, so callers feeding reordered
/// lists (the partitioned local phase) get identical labels but
/// possibly different — still deterministic — representatives.
pub(crate) fn replay_scp(
    data: &Dataset,
    neighborhoods: &[Vec<u32>],
    params: &DbscanParams,
) -> ScpResult {
    let n = data.len();
    let mut state = vec![UNCLASSIFIED; n];
    let mut core = vec![false; n];
    let mut next_cluster: i64 = 0;
    let mut seeds: Vec<u32> = Vec::new();
    let mut range_queries = 0usize;
    let mut scp_ids: Vec<Vec<u32>> = Vec::new();
    let metric = dbdc_geom::Euclidean;

    let add_core_point = |scp_ids: &mut Vec<Vec<u32>>, cluster: usize, id: u32| {
        let list = &mut scp_ids[cluster];
        let covered = list
            .iter()
            .any(|&s| metric.dist(data.point(s), data.point(id)) <= params.eps);
        if !covered {
            list.push(id);
        }
    };

    for i in 0..n as u32 {
        if state[i as usize] != UNCLASSIFIED {
            continue;
        }
        let neighbors = &neighborhoods[i as usize];
        range_queries += 1;
        if neighbors.len() < params.min_pts {
            state[i as usize] = NOISE;
            continue;
        }
        let cluster = next_cluster as usize;
        next_cluster += 1;
        scp_ids.push(Vec::new());
        core[i as usize] = true;
        state[i as usize] = cluster as i64;
        add_core_point(&mut scp_ids, cluster, i);
        seeds.clear();
        for &q in neighbors {
            let s = &mut state[q as usize];
            if *s == UNCLASSIFIED {
                *s = cluster as i64;
                seeds.push(q);
            } else if *s == NOISE {
                *s = cluster as i64;
            }
        }
        while let Some(j) = seeds.pop() {
            let neighbors = &neighborhoods[j as usize];
            range_queries += 1;
            if neighbors.len() < params.min_pts {
                continue;
            }
            core[j as usize] = true;
            add_core_point(&mut scp_ids, cluster, j);
            for &q in neighbors {
                let s = &mut state[q as usize];
                if *s == UNCLASSIFIED {
                    *s = cluster as i64;
                    seeds.push(q);
                } else if *s == NOISE {
                    *s = cluster as i64;
                }
            }
        }
    }

    // Definition 7 finalization; the sequential version re-queries each
    // specific core point here, the replay reuses its cached list.
    let mut scp: Vec<Vec<SpecificCorePoint>> = Vec::with_capacity(scp_ids.len());
    for ids in &scp_ids {
        let mut list = Vec::with_capacity(ids.len());
        for &s in ids {
            range_queries += 1;
            let max_core_dist = neighborhoods[s as usize]
                .iter()
                .filter(|&&q| core[q as usize])
                .map(|&q| metric.dist(data.point(s), data.point(q)))
                .fold(0.0f64, f64::max);
            list.push(SpecificCorePoint {
                point: s,
                eps_range: params.eps + max_core_dist,
            });
        }
        scp.push(list);
    }

    let labels = state
        .iter()
        .map(|&s| {
            if s < 0 {
                Label::Noise
            } else {
                Label::Cluster(s as u32)
            }
        })
        .collect();
    let clustering = Clustering::from_labels(labels);

    let mut remapped: Vec<Vec<SpecificCorePoint>> = vec![Vec::new(); scp.len()];
    for (raw, list) in scp.into_iter().enumerate() {
        let dense = list
            .first()
            .and_then(|s| clustering.label(s.point).cluster())
            .unwrap_or(raw as u32) as usize;
        remapped[dense] = list;
    }

    ScpResult {
        dbscan: DbscanResult {
            clustering,
            core,
            range_queries,
        },
        scp: remapped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::dbscan;
    use crate::scp::dbscan_with_scp;
    use dbdc_geom::Euclidean;
    use dbdc_index::LinearScan;

    fn spiral_with_noise() -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..150 {
            let t = i as f64 * 0.1;
            d.push(&[t.cos() * (1.0 + t * 0.2), t.sin() * (1.0 + t * 0.2)]);
        }
        for i in 0..30 {
            let t = i as f64;
            d.push(&[
                20.0 + (t * 0.37).sin() * 8.0,
                -15.0 + (t * 0.73).cos() * 8.0,
            ]);
        }
        d
    }

    fn assert_equal_at_all_thread_counts(d: &Dataset, eps: f64, min_pts: usize) {
        let idx = LinearScan::new(d, Euclidean);
        let params = DbscanParams::new(eps, min_pts);
        let seq = dbscan(d, &idx, &params);
        let seq_scp = dbscan_with_scp(d, &idx, &params);
        for threads in [1, 2, 3, 8] {
            let par = par_dbscan(d, &idx, &params, threads);
            assert_eq!(seq.clustering, par.clustering, "threads={threads}");
            assert_eq!(seq.core, par.core, "threads={threads}");
            assert_eq!(seq.range_queries, par.range_queries, "threads={threads}");
            let par_scp = par_dbscan_with_scp(d, &idx, &params, threads);
            assert_eq!(seq_scp.dbscan.clustering, par_scp.dbscan.clustering);
            assert_eq!(seq_scp.dbscan.core, par_scp.dbscan.core);
            assert_eq!(seq_scp.dbscan.range_queries, par_scp.dbscan.range_queries);
            assert_eq!(seq_scp.scp, par_scp.scp, "threads={threads}");
        }
    }

    #[test]
    fn matches_sequential_on_spiral() {
        assert_equal_at_all_thread_counts(&spiral_with_noise(), 0.4, 3);
    }

    #[test]
    fn matches_sequential_when_everything_is_one_cluster() {
        assert_equal_at_all_thread_counts(&spiral_with_noise(), 50.0, 2);
    }

    #[test]
    fn matches_sequential_when_everything_is_noise() {
        assert_equal_at_all_thread_counts(&spiral_with_noise(), 1e-9, 2);
    }

    #[test]
    fn matches_sequential_with_min_pts_one() {
        assert_equal_at_all_thread_counts(&spiral_with_noise(), 0.4, 1);
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::new(2);
        let idx = LinearScan::new(&d, Euclidean);
        let r = par_dbscan(&d, &idx, &DbscanParams::new(1.0, 3), 8);
        assert_eq!(r.clustering.len(), 0);
        assert_eq!(r.range_queries, 0);
    }

    #[test]
    fn single_point() {
        let d = Dataset::from_flat(2, vec![1.0, 2.0]);
        let idx = LinearScan::new(&d, Euclidean);
        let r = par_dbscan(&d, &idx, &DbscanParams::new(1.0, 2), 8);
        assert!(r.clustering.label(0).is_noise());
        let r1 = par_dbscan(&d, &idx, &DbscanParams::new(1.0, 1), 8);
        assert_eq!(r1.clustering.label(0).cluster(), Some(0));
    }

    #[test]
    fn effective_threads_resolves_zero_to_cores() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }

    #[test]
    fn dsu_counters_match_ground_truth() {
        let d = spiral_with_noise();
        let idx = LinearScan::new(&d, Euclidean);
        let params = DbscanParams::new(0.4, 3);
        let sheet = dbdc_obs::CounterSheet::new();
        let r = par_dbscan_observed(&d, &idx, &params, 2, Some(&sheet));
        let c = sheet.snapshot();

        // Recompute the merge phase's shape from the neighborhoods.
        let nb = parallel_neighborhoods(&d, &idx, params.eps, 1);
        let core: Vec<bool> = nb.iter().map(|ns| ns.len() >= params.min_pts).collect();
        let core_count = core.iter().filter(|&&c| c).count() as u64;
        let union_calls: u64 = (0..d.len())
            .filter(|&i| core[i])
            .map(|i| nb[i].iter().filter(|&&q| core[q as usize]).count() as u64)
            .sum();
        let n_clusters = r.clustering.n_clusters() as u64;

        // Merging every core-core edge succeeds exactly (cores - components)
        // times; every cluster contains at least one core, so the component
        // count is the cluster count.
        assert_eq!(c.dsu_unions, core_count - n_clusters);
        // Each union call performs two finds; canonicalization adds one
        // find per core point.
        assert_eq!(c.dsu_finds, 2 * union_calls + core_count);
        // The sheet only records DSU work here; query counters belong to
        // the index.
        assert_eq!(c.range_queries, 0);

        // Observed and plain runs agree.
        let plain = par_dbscan(&d, &idx, &params, 2);
        assert_eq!(plain.clustering, r.clustering);
    }

    #[test]
    fn dsu_batch_histogram_matches_counters() {
        let d = spiral_with_noise();
        let idx = LinearScan::new(&d, Euclidean);
        let params = DbscanParams::new(0.4, 3);
        let sheet = dbdc_obs::CounterSheet::new();
        let hist = dbdc_obs::HistSheet::new();
        let r = par_dbscan_instrumented(&d, &idx, &params, 2, Some(&sheet), Some(&hist));
        let h = hist.snapshot();
        let c = sheet.snapshot();

        // One batch per core point; the batch sizes sum to the union
        // *calls*, of which exactly dsu_unions succeeded.
        let nb = parallel_neighborhoods(&d, &idx, params.eps, 1);
        let core_count = nb.iter().filter(|ns| ns.len() >= params.min_pts).count() as u64;
        assert_eq!(h.count(), core_count);
        assert!(h.sum() >= c.dsu_unions);
        assert!(h.max() >= 1);

        // Instrumented and plain runs agree.
        let plain = par_dbscan(&d, &idx, &params, 2);
        assert_eq!(plain.clustering, r.clustering);
    }

    #[test]
    fn neighborhoods_match_index_answers() {
        let d = spiral_with_noise();
        let idx = LinearScan::new(&d, Euclidean);
        let nb = parallel_neighborhoods(&d, &idx, 0.4, 4);
        for i in 0..d.len() as u32 {
            assert_eq!(nb[i as usize], idx.range_vec(d.point(i), 0.4));
        }
    }
}
