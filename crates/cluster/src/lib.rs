//! Clustering algorithms for the DBDC reproduction.
//!
//! * [`mod@dbscan`] — DBSCAN \[Ester et al. 96\], the paper's local and global
//!   clustering algorithm, with per-point core flags.
//! * [`scp`] — the paper's "slightly enhanced DBSCAN" that extracts
//!   *specific core points* and their specific ε-ranges on the fly
//!   (Definitions 6 and 7), the substrate of both local models.
//! * [`kmeans`] — seeded Lloyd's algorithm (for the `REP_kMeans` local
//!   model, Section 5.2) and a k-means++ baseline.
//! * [`mod@optics`] — OPTICS \[Ankerst et al. 99\], the alternative global-model
//!   builder discussed in Section 6.
//! * [`incremental`] — incremental DBSCAN \[Ester et al. 98\], the paper's
//!   cited mechanism for keeping local models fresh without re-clustering.
//! * [`singlelink`] — single-link agglomerative clustering, the rejected
//!   alternative of Section 4, for comparisons.
//! * [`mod@metric_dbscan`] — DBSCAN over arbitrary metric spaces via the
//!   M-tree, demonstrating the "not confined to vector spaces" claim.
//! * [`mod@par_dbscan`] — deterministic parallel DBSCAN: concurrent
//!   ε-range queries on a scoped worker pool, core merging through a
//!   [`union_find::UnionFind`], output bit-identical to [`dbscan::dbscan`].
//! * [`mod@partitioned`] — partitioned local DBSCAN: spatial stripes
//!   with ε-halos, a private index per partition, per-partition workers,
//!   labels identical to [`dbscan::dbscan`] at every partition count.
//! * [`mod@dbcv`] — the DBCV relative validity index \[Moulavi et al. 14\],
//!   the ground-truth-free quality signal for unlabeled workloads.

pub mod dbcv;
pub mod dbscan;
pub mod incremental;
pub mod kdist;
pub mod kmeans;
pub mod metric_dbscan;
pub mod optics;
pub mod par_dbscan;
pub mod partitioned;
pub mod scp;
pub mod singlelink;
pub mod union_find;

pub use dbcv::{dbcv, dbcv_with, CorePath, DbcvOutcome};
pub use dbscan::{dbscan, dbscan_euclidean, DbscanParams, DbscanResult};
pub use incremental::IncrementalDbscan;
pub use kdist::{k_distance, KDistance};
pub use kmeans::{kmeans_pp, kmeans_seeded, KMeansParams, KMeansResult};
pub use metric_dbscan::{metric_dbscan, MetricDbscanResult};
pub use optics::{extract_dbscan, optics, OpticsResult};
pub use par_dbscan::{
    effective_threads, par_dbscan, par_dbscan_instrumented, par_dbscan_observed,
    par_dbscan_with_scp, parallel_neighborhoods,
};
pub use partitioned::{
    effective_partitions, partitioned_dbscan, partitioned_dbscan_with_scp,
    partitioned_dbscan_with_scp_observed, partitioned_neighborhoods,
    partitioned_neighborhoods_observed, PartitionStats,
};
pub use scp::{dbscan_with_scp, ScpResult, SpecificCorePoint};
pub use singlelink::{single_link, Dendrogram, Merge};
pub use union_find::UnionFind;
