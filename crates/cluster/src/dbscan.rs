//! DBSCAN (Ester, Kriegel, Sander, Xu — KDD 1996).
//!
//! The paper's local *and* global clustering algorithm. This implementation
//! follows the original ExpandCluster formulation: it discovers clusters as
//! maximal density-connected sets (Definitions 1-5 of the DBDC paper) and
//! reports, for every point, whether it is a **core** point — the property
//! the DBDC local models are built from.
//!
//! The neighborhood backend is any [`NeighborIndex`], mirroring the paper's
//! use of R*-trees / M-trees for the region queries.

use dbdc_geom::{Clustering, Dataset, Label};
use dbdc_index::{NeighborIndex, QueryWorkspace};

/// DBSCAN parameters: the ε-radius and the core-point density threshold.
///
/// A point is a core point iff its closed ε-neighborhood (which includes the
/// point itself) contains at least `min_pts` points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbscanParams {
    /// Neighborhood radius (`Eps` in the paper).
    pub eps: f64,
    /// Minimum neighborhood cardinality for the core-object condition
    /// (`MinPts` in the paper).
    pub min_pts: usize,
}

impl DbscanParams {
    /// Creates a parameter set.
    ///
    /// # Panics
    /// Panics if `eps` is not positive and finite or `min_pts == 0`.
    pub fn new(eps: f64, min_pts: usize) -> Self {
        assert!(
            eps.is_finite() && eps > 0.0,
            "eps must be positive and finite"
        );
        assert!(min_pts > 0, "min_pts must be at least 1");
        Self { eps, min_pts }
    }
}

/// The result of a DBSCAN run: the clustering plus per-point core flags.
#[derive(Debug, Clone)]
pub struct DbscanResult {
    /// Cluster labels (noise for unclustered points).
    pub clustering: Clustering,
    /// `core[i]` — whether point `i` satisfies the core-object condition.
    pub core: Vec<bool>,
    /// Number of ε-range queries issued (diagnostic; one per point).
    pub range_queries: usize,
}

impl DbscanResult {
    /// Indices of all core points.
    pub fn core_points(&self) -> Vec<u32> {
        self.core
            .iter()
            .enumerate()
            .filter_map(|(i, &c)| c.then_some(i as u32))
            .collect()
    }

    /// Indices of border points (clustered but not core).
    pub fn border_points(&self) -> Vec<u32> {
        self.clustering
            .labels()
            .iter()
            .enumerate()
            .filter_map(|(i, l)| (!l.is_noise() && !self.core[i]).then_some(i as u32))
            .collect()
    }
}

const UNCLASSIFIED: i64 = -2;
const NOISE: i64 = -1;

/// Runs DBSCAN over `data` using `index` for the ε-range queries.
///
/// Every point receives exactly one region query, so the complexity is
/// `O(n · Q)` where `Q` is the index's query cost — `O(n log n)` with a
/// spatial index on well-behaved data, matching the paper's Section 9.1
/// analysis.
///
/// ```
/// use dbdc_cluster::{dbscan, DbscanParams};
/// use dbdc_geom::{Dataset, Euclidean};
/// use dbdc_index::LinearScan;
///
/// // Two pairs of close points and one isolated point.
/// let data = Dataset::from_flat(2, vec![
///     0.0, 0.0,  0.5, 0.0,   10.0, 0.0,  10.5, 0.0,   50.0, 50.0,
/// ]);
/// let index = LinearScan::new(&data, Euclidean);
/// let result = dbscan(&data, &index, &DbscanParams::new(1.0, 2));
/// assert_eq!(result.clustering.n_clusters(), 2);
/// assert!(result.clustering.label(4).is_noise());
/// assert_eq!(result.core_points().len(), 4);
/// ```
///
/// # Panics
/// Panics if the index does not cover `data` (`index.len() != data.len()`).
pub fn dbscan(data: &Dataset, index: &dyn NeighborIndex, params: &DbscanParams) -> DbscanResult {
    assert_eq!(
        index.len(),
        data.len(),
        "index must be built over the clustered dataset"
    );
    let n = data.len();
    let mut state = vec![UNCLASSIFIED; n];
    let mut core = vec![false; n];
    let mut next_cluster: i64 = 0;
    let mut neighbors: Vec<u32> = Vec::new();
    let mut seeds: Vec<u32> = Vec::new();
    let mut ws = QueryWorkspace::new();
    let mut range_queries = 0usize;

    for i in 0..n as u32 {
        if state[i as usize] != UNCLASSIFIED {
            continue;
        }
        index.range_with(data.point(i), params.eps, &mut neighbors, &mut ws);
        range_queries += 1;
        if neighbors.len() < params.min_pts {
            state[i as usize] = NOISE;
            continue;
        }
        // i is a core point: start a new cluster and expand it.
        let cluster = next_cluster;
        next_cluster += 1;
        core[i as usize] = true;
        state[i as usize] = cluster;
        seeds.clear();
        for &q in &neighbors {
            let s = &mut state[q as usize];
            if *s == UNCLASSIFIED {
                *s = cluster;
                seeds.push(q);
            } else if *s == NOISE {
                // Former noise becomes a border point of this cluster.
                *s = cluster;
            }
        }
        while let Some(j) = seeds.pop() {
            index.range_with(data.point(j), params.eps, &mut neighbors, &mut ws);
            range_queries += 1;
            if neighbors.len() < params.min_pts {
                continue; // border point: clustered but not expanded
            }
            core[j as usize] = true;
            for &q in &neighbors {
                let s = &mut state[q as usize];
                if *s == UNCLASSIFIED {
                    *s = cluster;
                    seeds.push(q);
                } else if *s == NOISE {
                    *s = cluster;
                }
            }
        }
    }

    let labels = state
        .iter()
        .map(|&s| {
            if s < 0 {
                Label::Noise
            } else {
                Label::Cluster(s as u32)
            }
        })
        .collect();
    DbscanResult {
        clustering: Clustering::from_labels(labels),
        core,
        range_queries,
    }
}

/// Convenience wrapper: builds the default index ([`dbdc_index::IndexKind`])
/// over `data` with the Euclidean metric and runs DBSCAN.
pub fn dbscan_euclidean(data: &Dataset, params: &DbscanParams) -> DbscanResult {
    let index = dbdc_index::build_index(
        dbdc_index::IndexKind::default(),
        data,
        dbdc_geom::Euclidean,
        params.eps,
    );
    dbscan(data, index.as_ref(), params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbdc_geom::Euclidean;
    use dbdc_index::LinearScan;

    fn run(data: &Dataset, eps: f64, min_pts: usize) -> DbscanResult {
        let idx = LinearScan::new(data, Euclidean);
        dbscan(data, &idx, &DbscanParams::new(eps, min_pts))
    }

    /// Two well-separated blobs and one isolated point.
    fn two_blobs() -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..10 {
            d.push(&[i as f64 * 0.1, 0.0]);
        }
        for i in 0..10 {
            d.push(&[10.0 + i as f64 * 0.1, 0.0]);
        }
        d.push(&[100.0, 100.0]);
        d
    }

    #[test]
    fn finds_two_clusters_and_noise() {
        let d = two_blobs();
        let r = run(&d, 0.15, 3);
        assert_eq!(r.clustering.n_clusters(), 2);
        assert_eq!(r.clustering.n_noise(), 1);
        assert!(r.clustering.label(20).is_noise());
        // All members of blob 1 share a label.
        let l0 = r.clustering.label(0);
        for i in 0..10 {
            assert_eq!(r.clustering.label(i), l0);
        }
        let l1 = r.clustering.label(10);
        assert_ne!(l0, l1);
        for i in 10..20 {
            assert_eq!(r.clustering.label(i), l1);
        }
    }

    #[test]
    fn core_and_border_flags() {
        // A chain 0..5 spaced 1.0 apart, eps=1.0, min_pts=3: interior points
        // have 3 neighbors (self + 2), endpoints only 2 -> border.
        let mut d = Dataset::new(2);
        for i in 0..6 {
            d.push(&[i as f64, 0.0]);
        }
        let r = run(&d, 1.0, 3);
        assert_eq!(r.clustering.n_clusters(), 1);
        assert_eq!(r.clustering.n_noise(), 0);
        assert!(!r.core[0] && !r.core[5], "endpoints are border points");
        for i in 1..5 {
            assert!(r.core[i], "interior point {i} must be core");
        }
        assert_eq!(r.core_points(), vec![1, 2, 3, 4]);
        assert_eq!(r.border_points(), vec![0, 5]);
    }

    #[test]
    fn min_pts_one_clusters_everything() {
        // With min_pts=1 every point is core, so there is no noise.
        let d = two_blobs();
        let r = run(&d, 0.15, 1);
        assert_eq!(r.clustering.n_noise(), 0);
        assert!(r.core.iter().all(|&c| c));
        assert_eq!(r.clustering.n_clusters(), 3);
    }

    #[test]
    fn all_noise_when_eps_tiny() {
        let d = two_blobs();
        let r = run(&d, 1e-6, 2);
        assert_eq!(r.clustering.n_clusters(), 0);
        assert_eq!(r.clustering.n_noise(), d.len());
        assert!(r.core.iter().all(|&c| !c));
    }

    #[test]
    fn one_cluster_when_eps_huge() {
        let d = two_blobs();
        let r = run(&d, 1000.0, 3);
        assert_eq!(r.clustering.n_clusters(), 1);
        assert_eq!(r.clustering.n_noise(), 0);
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::new(2);
        let r = run(&d, 1.0, 3);
        assert_eq!(r.clustering.len(), 0);
        assert_eq!(r.clustering.n_clusters(), 0);
    }

    #[test]
    fn one_range_query_per_point() {
        let d = two_blobs();
        let r = run(&d, 0.15, 3);
        assert_eq!(r.range_queries, d.len());
    }

    #[test]
    fn result_invariant_borders_touch_core() {
        // Every clustered non-core point must have a core point of the same
        // cluster within eps (density-reachability).
        let d = two_blobs();
        let (eps, min_pts) = (0.15, 3);
        let r = run(&d, eps, min_pts);
        let idx = LinearScan::new(&d, Euclidean);
        for i in 0..d.len() as u32 {
            if let Some(c) = r.clustering.label(i).cluster() {
                if !r.core[i as usize] {
                    let ok = idx
                        .range_vec(d.point(i), eps)
                        .iter()
                        .any(|&q| r.core[q as usize] && r.clustering.label(q).cluster() == Some(c));
                    assert!(
                        ok,
                        "border point {i} not within eps of a core of its cluster"
                    );
                }
            }
        }
    }

    #[test]
    fn noise_never_near_core() {
        let d = two_blobs();
        let (eps, min_pts) = (0.15, 3);
        let r = run(&d, eps, min_pts);
        let idx = LinearScan::new(&d, Euclidean);
        for i in 0..d.len() as u32 {
            if r.clustering.label(i).is_noise() {
                let near_core = idx
                    .range_vec(d.point(i), eps)
                    .iter()
                    .any(|&q| r.core[q as usize]);
                assert!(
                    !near_core,
                    "noise point {i} is density-reachable from a core"
                );
            }
        }
    }

    #[test]
    fn deterministic_given_same_input() {
        let d = two_blobs();
        let a = run(&d, 0.15, 3);
        let b = run(&d, 0.15, 3);
        assert_eq!(a.clustering, b.clustering);
        assert_eq!(a.core, b.core);
    }

    #[test]
    fn euclidean_wrapper_matches_linear_backend() {
        let d = two_blobs();
        let params = DbscanParams::new(0.15, 3);
        let a = dbscan_euclidean(&d, &params);
        let b = run(&d, 0.15, 3);
        assert_eq!(a.clustering, b.clustering);
        assert_eq!(a.core, b.core);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_eps() {
        let _ = DbscanParams::new(0.0, 3);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_zero_min_pts() {
        let _ = DbscanParams::new(1.0, 0);
    }
}
