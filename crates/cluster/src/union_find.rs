//! Disjoint-set union (union-find) over dense `u32` ids.
//!
//! The parallel DBSCAN merge phase ([`mod@crate::par_dbscan`]) unions every
//! ε-adjacent pair of core points; each resulting set is exactly one
//! density-connected cluster (Definitions 4-5 of the paper restricted to
//! core points). Path-halving `find` plus union-by-rank gives the usual
//! near-constant amortized cost, and the structure is deliberately tiny:
//! two flat vectors, no per-element allocation.

/// Disjoint-set forest over the ids `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    unions: u64,
    finds: u64,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "UnionFind is indexed by u32");
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            unions: 0,
            finds: 0,
        }
    }

    /// Operation tally since construction: `(successful unions, find
    /// calls)`. `find` counts every invocation, including the two inside
    /// each [`UnionFind::union`].
    pub fn ops(&self) -> (u64, u64) {
        (self.unions, self.finds)
    }

    /// Number of elements (not sets).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure holds no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set, with path halving.
    pub fn find(&mut self, x: u32) -> u32 {
        self.finds += 1;
        let mut x = x;
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
    }

    /// Merges the sets containing `a` and `b`; returns `true` if they were
    /// previously distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = match self.rank[ra as usize].cmp(&self.rank[rb as usize]) {
            std::cmp::Ordering::Less => (rb, ra),
            std::cmp::Ordering::Greater => (ra, rb),
            std::cmp::Ordering::Equal => {
                self.rank[ra as usize] += 1;
                (ra, rb)
            }
        };
        self.parent[lo as usize] = hi;
        self.unions += 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_distinct() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.len(), 4);
        for i in 0..4 {
            assert_eq!(uf.find(i), i);
        }
        assert!(!uf.same(0, 3));
    }

    #[test]
    fn union_merges_and_reports() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.same(0, 2));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 3), "already merged");
        assert!(uf.same(0, 3));
        assert!(!uf.same(0, 5));
    }

    #[test]
    fn long_chain_collapses() {
        let mut uf = UnionFind::new(1000);
        for i in 0..999 {
            uf.union(i, i + 1);
        }
        let root = uf.find(0);
        for i in 0..1000 {
            assert_eq!(uf.find(i), root);
        }
    }

    #[test]
    fn empty_is_fine() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.ops(), (0, 0));
    }

    #[test]
    fn ops_tally_unions_and_finds() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 1); // 2 finds, 1 union
        uf.union(0, 1); // 2 finds, no union (already merged)
        uf.union(2, 3); // 2 finds, 1 union
        uf.find(0); // 1 find
        assert_eq!(uf.ops(), (2, 7));
    }
}
