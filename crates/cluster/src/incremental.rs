//! Incremental DBSCAN (after Ester, Kriegel, Sander, Wimmer, Xu — VLDB 1998).
//!
//! Section 4 of the paper lists the existence of an incremental DBSCAN as a
//! key reason for choosing density-based local clustering: a client site
//! only needs to transmit a new local model when its clustering changes
//! "considerably". This module provides that substrate: a maintained
//! clustering that absorbs point insertions and deletions with work
//! proportional to the affected neighborhood, following the reference's
//! case analysis (noise / creation / absorption / merge on insertion, and
//! potential splits on deletion).
//!
//! Deletions use a conservative *affected-cluster recluster*: the members of
//! every cluster touched by the deletion are re-expanded from their
//! (up-to-date) core points. This is more work than the minimal update in
//! the reference but is guaranteed to coincide with a fresh DBSCAN run —
//! a property the tests verify — while still only touching the affected
//! clusters.

use crate::dbscan::DbscanParams;
use dbdc_geom::{Clustering, Dataset, Euclidean, Label, Metric};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

const UNCLASSIFIED: i64 = -2;
const NOISE: i64 = -1;

/// A dynamically maintained DBSCAN clustering.
///
/// Point ids are assigned on insertion and never reused; removed points keep
/// their id but are excluded from all queries and reported as noise.
///
/// ```
/// use dbdc_cluster::{IncrementalDbscan, DbscanParams};
///
/// let mut inc = IncrementalDbscan::new(2, DbscanParams::new(1.0, 3));
/// let a = inc.insert(&[0.0, 0.0]);
/// inc.insert(&[0.5, 0.0]);
/// assert!(inc.label(a).is_noise());      // not dense enough yet
/// inc.insert(&[0.0, 0.5]);               // third point creates a cluster
/// assert!(!inc.label(a).is_noise());
/// assert_eq!(inc.clustering().n_clusters(), 1);
/// ```
pub struct IncrementalDbscan {
    params: DbscanParams,
    dim: usize,
    data: Dataset,
    live: Vec<bool>,
    labels: Vec<i64>,
    core: Vec<bool>,
    next_cluster: i64,
    /// ε-sized uniform grid over the live points.
    grid: HashMap<Box<[i64]>, Vec<u32>>,
}

impl IncrementalDbscan {
    /// Creates an empty maintained clustering for `dim`-dimensional points.
    pub fn new(dim: usize, params: DbscanParams) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        Self {
            params,
            dim,
            data: Dataset::new(dim),
            live: Vec::new(),
            labels: Vec::new(),
            core: Vec::new(),
            next_cluster: 0,
            grid: HashMap::new(),
        }
    }

    /// Number of live (inserted and not removed) points.
    pub fn len(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    /// Whether there are no live points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether point `id` is live.
    pub fn is_live(&self, id: u32) -> bool {
        self.live.get(id as usize).copied().unwrap_or(false)
    }

    /// The coordinates of point `id` (live or removed).
    pub fn point(&self, id: u32) -> &[f64] {
        self.data.point(id)
    }

    /// Whether live point `id` currently satisfies the core condition.
    pub fn is_core(&self, id: u32) -> bool {
        self.core[id as usize]
    }

    /// The current label of point `id` (removed points report noise).
    pub fn label(&self, id: u32) -> Label {
        match self.labels[id as usize] {
            l if l < 0 => Label::Noise,
            l => Label::Cluster(l as u32),
        }
    }

    /// A snapshot of the full clustering, one label per ever-inserted id
    /// (removed ids are noise).
    pub fn clustering(&self) -> Clustering {
        Clustering::from_labels(
            self.labels
                .iter()
                .enumerate()
                .map(|(i, &l)| {
                    if !self.live[i] || l < 0 {
                        Label::Noise
                    } else {
                        Label::Cluster(l as u32)
                    }
                })
                .collect(),
        )
    }

    fn cell_of(&self, p: &[f64]) -> Box<[i64]> {
        p.iter()
            .map(|&c| (c / self.params.eps).floor() as i64)
            .collect()
    }

    /// Live point ids within `eps` of `q` (closed ball).
    fn range(&self, q: &[f64]) -> Vec<u32> {
        let eps = self.params.eps;
        let lo: Vec<i64> = q
            .iter()
            .map(|&c| ((c - eps) / eps).floor() as i64)
            .collect();
        let hi: Vec<i64> = q
            .iter()
            .map(|&c| ((c + eps) / eps).floor() as i64)
            .collect();
        let mut out = Vec::new();
        let mut cur = lo.clone();
        'outer: loop {
            if let Some(ids) = self.grid.get(cur.as_slice()) {
                for &i in ids {
                    if Euclidean.dist(q, self.data.point(i)) <= eps {
                        out.push(i);
                    }
                }
            }
            for d in 0..self.dim {
                if cur[d] < hi[d] {
                    cur[d] += 1;
                    continue 'outer;
                }
                cur[d] = lo[d];
            }
            break;
        }
        out
    }

    /// Inserts a point and updates the clustering; returns the new id.
    ///
    /// Implements the insertion cases of the reference: *noise* (no new core
    /// points and no core neighbor), *absorption* (no new core points but a
    /// core neighbor exists), and *creation/merge* (new core points appear —
    /// one BFS over the core graph from the new cores relabels everything
    /// that becomes density-connected, merging clusters if several are
    /// reached).
    pub fn insert(&mut self, p: &[f64]) -> u32 {
        assert_eq!(p.len(), self.dim, "wrong dimensionality");
        let id = self.data.push(p);
        self.live.push(true);
        self.labels.push(UNCLASSIFIED);
        self.core.push(false);
        self.grid.entry(self.cell_of(p)).or_default().push(id);

        let neighbors = self.range(p);
        // Only points in N_eps(p) gain a neighbor, so only they can change
        // core status — and only from non-core to core.
        let mut new_cores = Vec::new();
        for &q in &neighbors {
            if !self.core[q as usize] && self.range(self.data.point(q)).len() >= self.params.min_pts
            {
                self.core[q as usize] = true;
                new_cores.push(q);
            }
        }

        if new_cores.is_empty() {
            // Noise or absorption.
            let core_neighbor = neighbors.iter().find(|&&q| self.core[q as usize]);
            self.labels[id as usize] = match core_neighbor {
                Some(&q) => self.labels[q as usize],
                None => NOISE,
            };
            return id;
        }

        // Creation / merge: BFS over the core graph from the new cores.
        let cluster = self.next_cluster;
        self.next_cluster += 1;
        let mut queue = new_cores;
        let mut visited: HashMap<u32, ()> = HashMap::new();
        for &c in &queue {
            visited.insert(c, ());
        }
        while let Some(x) = queue.pop() {
            debug_assert!(self.core[x as usize]);
            self.labels[x as usize] = cluster;
            for q in self.range(self.data.point(x)) {
                if self.core[q as usize] {
                    if let Entry::Vacant(e) = visited.entry(q) {
                        e.insert(());
                        queue.push(q);
                    }
                } else {
                    // Border point of the (possibly merged) cluster.
                    self.labels[q as usize] = cluster;
                }
            }
        }
        id
    }

    /// Removes point `id` and updates the clustering.
    ///
    /// # Panics
    /// Panics if `id` was never inserted or is already removed.
    pub fn remove(&mut self, id: u32) {
        assert!(self.is_live(id), "point {id} is not live");
        let p: Vec<f64> = self.data.point(id).to_vec();
        self.live[id as usize] = false;
        let cell = self.cell_of(&p);
        if let Some(ids) = self.grid.get_mut(&cell) {
            ids.retain(|&i| i != id);
            if ids.is_empty() {
                self.grid.remove(&cell);
            }
        }
        let was_core = self.core[id as usize];
        let old_label = self.labels[id as usize];
        self.core[id as usize] = false;
        self.labels[id as usize] = NOISE;

        let neighbors = self.range(&p);
        // Neighbors lose a member; some cores may be demoted.
        let mut demoted = Vec::new();
        for &q in &neighbors {
            if self.core[q as usize] && self.range(self.data.point(q)).len() < self.params.min_pts {
                self.core[q as usize] = false;
                demoted.push(q);
            }
        }

        if !was_core && demoted.is_empty() {
            // The removed point was border or noise and nothing depended on
            // it; no labels can change.
            return;
        }

        // Recluster every affected cluster from scratch over its members.
        let mut affected: Vec<i64> = neighbors
            .iter()
            .map(|&q| self.labels[q as usize])
            .chain([old_label])
            .filter(|&l| l >= 0)
            .collect();
        affected.sort_unstable();
        affected.dedup();
        if affected.is_empty() {
            return;
        }
        let members: Vec<u32> = (0..self.labels.len() as u32)
            .filter(|&i| {
                self.live[i as usize] && affected.binary_search(&self.labels[i as usize]).is_ok()
            })
            .collect();
        let mut in_members = vec![false; self.labels.len()];
        for &m in &members {
            in_members[m as usize] = true;
        }
        for &m in &members {
            self.labels[m as usize] = UNCLASSIFIED;
        }
        // Expand from cores within the member set.
        for &m in &members {
            if self.labels[m as usize] != UNCLASSIFIED || !self.core[m as usize] {
                continue;
            }
            let cluster = self.next_cluster;
            self.next_cluster += 1;
            self.labels[m as usize] = cluster;
            let mut queue = vec![m];
            while let Some(x) = queue.pop() {
                for q in self.range(self.data.point(x)) {
                    if !in_members[q as usize] {
                        continue; // points of unaffected clusters keep labels
                    }
                    if self.labels[q as usize] == UNCLASSIFIED {
                        self.labels[q as usize] = cluster;
                        if self.core[q as usize] {
                            queue.push(q);
                        }
                    }
                }
            }
        }
        // Unreached members become noise unless a live core (possibly of an
        // unaffected cluster) still covers them.
        for &m in &members {
            if self.labels[m as usize] != UNCLASSIFIED {
                continue;
            }
            let adopt = self
                .range(self.data.point(m))
                .into_iter()
                .find(|&q| self.core[q as usize]);
            self.labels[m as usize] = match adopt {
                Some(q) => self.labels[q as usize],
                None => NOISE,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::dbscan;
    use dbdc_index::LinearScan;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const EPS: f64 = 1.2;
    const MIN_PTS: usize = 4;

    /// Checks that the maintained state is a valid DBSCAN result for the
    /// live points: exact core flags, matching core partition, and valid
    /// border/noise assignment.
    fn assert_matches_batch(inc: &IncrementalDbscan) {
        // Rebuild the live dataset.
        let mut live_ids = Vec::new();
        let mut d = Dataset::new(2);
        for id in 0..inc.labels.len() as u32 {
            if inc.is_live(id) {
                live_ids.push(id);
                d.push(inc.point(id));
            }
        }
        let idx = LinearScan::new(&d, Euclidean);
        let batch = dbscan(&d, &idx, &DbscanParams::new(EPS, MIN_PTS));
        // 1. Core flags must match exactly.
        for (bi, &id) in live_ids.iter().enumerate() {
            assert_eq!(
                inc.is_core(id),
                batch.core[bi],
                "core flag mismatch for id {id}"
            );
        }
        // 2. Two core points share a cluster iff batch agrees.
        for (bi, &a) in live_ids.iter().enumerate() {
            if !inc.is_core(a) {
                continue;
            }
            for (bj, &b) in live_ids.iter().enumerate().skip(bi + 1) {
                if !inc.is_core(b) {
                    continue;
                }
                let same_inc = inc.label(a) == inc.label(b);
                let same_batch =
                    batch.clustering.label(bi as u32) == batch.clustering.label(bj as u32);
                assert_eq!(same_inc, same_batch, "core partition mismatch ({a},{b})");
            }
        }
        // 3. Non-core points: noise iff no core within eps; otherwise the
        // assigned cluster must contain a core neighbor.
        for &id in &live_ids {
            if inc.is_core(id) {
                continue;
            }
            let core_neighbors: Vec<u32> = inc
                .range(inc.point(id))
                .into_iter()
                .filter(|&q| inc.is_core(q))
                .collect();
            match inc.label(id) {
                Label::Noise => {
                    assert!(
                        core_neighbors.is_empty(),
                        "point {id} is noise but has a core neighbor"
                    );
                }
                Label::Cluster(_) => {
                    assert!(
                        core_neighbors
                            .iter()
                            .any(|&q| inc.label(q) == inc.label(id)),
                        "border {id} not adjacent to a core of its cluster"
                    );
                }
            }
        }
    }

    fn params() -> DbscanParams {
        DbscanParams::new(EPS, MIN_PTS)
    }

    #[test]
    fn insertion_cases() {
        let mut inc = IncrementalDbscan::new(2, params());
        // Noise case: isolated points.
        let a = inc.insert(&[0.0, 0.0]);
        assert_eq!(inc.label(a), Label::Noise);
        inc.insert(&[0.5, 0.0]);
        inc.insert(&[0.0, 0.5]);
        assert_matches_batch(&inc);
        // Creation case: the 4th nearby point makes a core.
        inc.insert(&[0.5, 0.5]);
        assert!(!inc.label(a).is_noise(), "cluster should be created");
        assert_matches_batch(&inc);
        // Absorption case: a 5th point near the cluster.
        let e = inc.insert(&[1.0, 0.5]);
        assert!(!inc.label(e).is_noise());
        assert_matches_batch(&inc);
    }

    #[test]
    fn merge_case() {
        let mut inc = IncrementalDbscan::new(2, params());
        // Two clusters 4 apart (eps=1.2), then a bridge point merges them.
        for i in 0..5 {
            inc.insert(&[i as f64 * 0.3, 0.0]);
        }
        for i in 0..5 {
            inc.insert(&[4.0 + i as f64 * 0.3, 0.0]);
        }
        assert_matches_batch(&inc);
        let c = inc.clustering();
        assert_eq!(c.n_clusters(), 2);
        // A dense bridge of core points connects the two blobs.
        inc.insert(&[2.0, 0.0]);
        inc.insert(&[2.8, 0.0]);
        inc.insert(&[3.1, 0.0]);
        assert_matches_batch(&inc);
        let c = inc.clustering();
        assert_eq!(c.n_clusters(), 1, "clusters should merge");
    }

    #[test]
    fn deletion_split_case() {
        let mut inc = IncrementalDbscan::new(2, params());
        // A dumbbell: two dense blobs joined by a thin bridge.
        let mut ids = Vec::new();
        for i in 0..6 {
            ids.push(inc.insert(&[i as f64 * 0.3, 0.0]));
        }
        for i in 0..6 {
            ids.push(inc.insert(&[5.0 + i as f64 * 0.3, 0.0]));
        }
        let b1 = inc.insert(&[2.3, 0.0]);
        let b2 = inc.insert(&[2.9, 0.0]);
        let b3 = inc.insert(&[3.5, 0.0]);
        let b4 = inc.insert(&[4.1, 0.0]);
        assert_eq!(inc.clustering().n_clusters(), 1);
        assert_matches_batch(&inc);
        // Removing the bridge splits the cluster.
        inc.remove(b2);
        assert_matches_batch(&inc);
        inc.remove(b1);
        inc.remove(b3);
        inc.remove(b4);
        assert_matches_batch(&inc);
        assert_eq!(inc.clustering().n_clusters(), 2, "cluster should split");
    }

    #[test]
    fn deletion_of_border_and_noise_is_local() {
        let mut inc = IncrementalDbscan::new(2, params());
        for i in 0..8 {
            inc.insert(&[i as f64 * 0.3, 0.0]);
        }
        let noise = inc.insert(&[50.0, 50.0]);
        assert_matches_batch(&inc);
        inc.remove(noise);
        assert_matches_batch(&inc);
    }

    #[test]
    fn randomized_against_batch() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut inc = IncrementalDbscan::new(2, params());
        let mut live: Vec<u32> = Vec::new();
        for step in 0..300 {
            if !live.is_empty() && rng.random_range(0..100) < 25 {
                let pos = rng.random_range(0..live.len());
                let id = live.swap_remove(pos);
                inc.remove(id);
            } else {
                // Clustered-ish data: a few attractors plus noise.
                let p = if rng.random_range(0..100) < 80 {
                    let (cx, cy) = [(0.0, 0.0), (6.0, 6.0), (0.0, 8.0)][rng.random_range(0..3)];
                    [
                        cx + rng.random_range(-1.5..1.5),
                        cy + rng.random_range(-1.5..1.5),
                    ]
                } else {
                    [rng.random_range(-12.0..12.0), rng.random_range(-12.0..12.0)]
                };
                live.push(inc.insert(&p));
            }
            if step % 25 == 24 {
                assert_matches_batch(&inc);
            }
        }
        assert_matches_batch(&inc);
    }

    #[test]
    #[should_panic(expected = "not live")]
    fn double_remove_panics() {
        let mut inc = IncrementalDbscan::new(2, params());
        let id = inc.insert(&[0.0, 0.0]);
        inc.remove(id);
        inc.remove(id);
    }

    #[test]
    fn len_tracks_live_points() {
        let mut inc = IncrementalDbscan::new(2, params());
        assert!(inc.is_empty());
        let a = inc.insert(&[0.0, 0.0]);
        let _b = inc.insert(&[1.0, 1.0]);
        assert_eq!(inc.len(), 2);
        inc.remove(a);
        assert_eq!(inc.len(), 1);
        assert!(!inc.is_live(a));
    }
}
