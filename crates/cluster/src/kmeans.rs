//! k-means (Lloyd's algorithm).
//!
//! Two roles in this workspace:
//!
//! * the refinement step of the `REP_kMeans` local model (Section 5.2): for
//!   each DBSCAN cluster `C`, k-means is run *within* `C` with
//!   `k = |Scor_C|` and the specific core points as the initial centroids —
//!   this is [`kmeans_seeded`];
//! * a conventional clustering baseline with k-means++ initialization
//!   ([`kmeans_pp`]), used by examples to illustrate why the paper picks
//!   DBSCAN for the local step (poor behaviour on non-globular clusters and
//!   noise).

use dbdc_geom::{Dataset, Euclidean, Metric, SquaredEuclidean};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Convergence controls for Lloyd's iterations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansParams {
    /// Hard iteration cap.
    pub max_iter: usize,
    /// Stop when no centroid moves more than this (Euclidean) distance.
    pub tol: f64,
}

impl Default for KMeansParams {
    fn default() -> Self {
        Self {
            max_iter: 100,
            tol: 1e-6,
        }
    }
}

/// The result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Final centroids (`k` points). Centroids are synthetic points — they
    /// need not coincide with any input point.
    pub centroids: Dataset,
    /// `assignment[i]` — centroid index of point `i`.
    pub assignment: Vec<u32>,
    /// Sum of squared distances of points to their centroid.
    pub inertia: f64,
    /// Number of Lloyd iterations executed.
    pub iterations: usize,
}

impl KMeansResult {
    /// Maximum distance from any point assigned to centroid `j` to that
    /// centroid — the `ε_{c_{i,j}}` of the paper's Section 5.2, computed
    /// over the supplied dataset.
    pub fn max_assigned_distance(&self, data: &Dataset, j: u32) -> f64 {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a == j)
            .map(|(i, _)| Euclidean.dist(data.point(i as u32), self.centroids.point(j)))
            .fold(0.0f64, f64::max)
    }
}

/// Runs Lloyd's algorithm from explicit starting centroids.
///
/// This is the form the `REP_kMeans` local model needs: `k` is implied by
/// `seeds.len()` and the seeds are the specific core points. Empty clusters
/// keep their previous centroid (deterministic, and appropriate here since
/// seeds are well-separated core points).
///
/// ```
/// use dbdc_cluster::{kmeans_seeded, KMeansParams};
/// use dbdc_geom::Dataset;
///
/// let data = Dataset::from_flat(2, vec![0.0, 0.0, 0.0, 2.0, 10.0, 0.0, 10.0, 2.0]);
/// let seeds = Dataset::from_flat(2, vec![1.0, 1.0, 9.0, 1.0]);
/// let result = kmeans_seeded(&data, &seeds, &KMeansParams::default());
/// assert_eq!(result.centroids.point(0), &[0.0, 1.0]);
/// assert_eq!(result.centroids.point(1), &[10.0, 1.0]);
/// assert_eq!(result.assignment, vec![0, 0, 1, 1]);
/// ```
///
/// # Panics
/// Panics if `seeds` is empty, dimensions mismatch, or `data` is empty.
pub fn kmeans_seeded(data: &Dataset, seeds: &Dataset, params: &KMeansParams) -> KMeansResult {
    assert!(!data.is_empty(), "cannot cluster an empty dataset");
    assert!(!seeds.is_empty(), "need at least one seed centroid");
    assert_eq!(data.dim(), seeds.dim(), "seed dimensionality mismatch");
    let n = data.len();
    let k = seeds.len();
    let dim = data.dim();
    let mut centroids = seeds.clone();
    let mut assignment = vec![0u32; n];
    let mut iterations = 0;

    for _ in 0..params.max_iter {
        iterations += 1;
        // Assignment step.
        for i in 0..n as u32 {
            let p = data.point(i);
            let mut best = 0u32;
            let mut best_d = f64::INFINITY;
            for j in 0..k as u32 {
                let d = SquaredEuclidean.dist(p, centroids.point(j));
                if d < best_d {
                    best_d = d;
                    best = j;
                }
            }
            assignment[i as usize] = best;
        }
        // Update step.
        let mut sums = vec![0.0f64; k * dim];
        let mut counts = vec![0usize; k];
        for (i, &a) in assignment.iter().enumerate() {
            let j = a as usize;
            counts[j] += 1;
            for (dcoord, &c) in sums[j * dim..(j + 1) * dim]
                .iter_mut()
                .zip(data.point(i as u32))
            {
                *dcoord += c;
            }
        }
        let mut moved = 0.0f64;
        let mut new_flat = Vec::with_capacity(k * dim);
        for j in 0..k {
            if counts[j] == 0 {
                // Keep the stale centroid: deterministic and harmless for
                // the seeded use case.
                new_flat.extend_from_slice(centroids.point(j as u32));
                continue;
            }
            let start = new_flat.len();
            for d in 0..dim {
                new_flat.push(sums[j * dim + d] / counts[j] as f64);
            }
            moved = moved.max(Euclidean.dist(&new_flat[start..], centroids.point(j as u32)));
        }
        centroids = Dataset::from_flat(dim, new_flat);
        if moved <= params.tol {
            break;
        }
    }

    let inertia = (0..n as u32)
        .map(|i| SquaredEuclidean.dist(data.point(i), centroids.point(assignment[i as usize])))
        .sum();
    KMeansResult {
        centroids,
        assignment,
        inertia,
        iterations,
    }
}

/// k-means++ initialization followed by Lloyd's algorithm.
///
/// # Panics
/// Panics if `k == 0` or `k > data.len()` or `data` is empty.
pub fn kmeans_pp(data: &Dataset, k: usize, seed: u64, params: &KMeansParams) -> KMeansResult {
    assert!(!data.is_empty(), "cannot cluster an empty dataset");
    assert!(k > 0, "k must be positive");
    assert!(k <= data.len(), "k cannot exceed the number of points");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = data.len();
    let mut seeds = Dataset::with_capacity(data.dim(), k);
    let first = rng.random_range(0..n) as u32;
    seeds.push(data.point(first));
    let mut dist_sq: Vec<f64> = (0..n as u32)
        .map(|i| SquaredEuclidean.dist(data.point(i), data.point(first)))
        .collect();
    while seeds.len() < k {
        let total: f64 = dist_sq.iter().sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with chosen seeds; pick any.
            rng.random_range(0..n) as u32
        } else {
            let mut target = rng.random_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &d) in dist_sq.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen as u32
        };
        seeds.push(data.point(next));
        for i in 0..n as u32 {
            let d = SquaredEuclidean.dist(data.point(i), data.point(next));
            if d < dist_sq[i as usize] {
                dist_sq[i as usize] = d;
            }
        }
    }
    kmeans_seeded(data, &seeds, params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Dataset {
        let mut d = Dataset::new(2);
        for (cx, cy) in [(0.0, 0.0), (10.0, 10.0)] {
            for i in 0..20 {
                let t = i as f64 * 0.314;
                d.push(&[cx + t.sin() * 0.5, cy + t.cos() * 0.5]);
            }
        }
        d
    }

    #[test]
    fn seeded_converges_to_blob_centers() {
        let d = blobs();
        let seeds = Dataset::from_flat(2, vec![1.0, 1.0, 9.0, 9.0]);
        let r = kmeans_seeded(&d, &seeds, &KMeansParams::default());
        assert_eq!(r.centroids.len(), 2);
        // Centroids land near (0,0) and (10,10).
        let c0 = r.centroids.point(0);
        let c1 = r.centroids.point(1);
        assert!(Euclidean.dist(c0, &[0.0, 0.0]) < 0.5, "c0 = {c0:?}");
        assert!(Euclidean.dist(c1, &[10.0, 10.0]) < 0.5, "c1 = {c1:?}");
        // First 20 points to centroid 0, rest to 1.
        assert!(r.assignment[..20].iter().all(|&a| a == 0));
        assert!(r.assignment[20..].iter().all(|&a| a == 1));
    }

    #[test]
    fn inertia_decreases_with_more_centroids() {
        let d = blobs();
        let r1 = kmeans_pp(&d, 1, 9, &KMeansParams::default());
        let r2 = kmeans_pp(&d, 2, 9, &KMeansParams::default());
        let r4 = kmeans_pp(&d, 4, 9, &KMeansParams::default());
        assert!(r2.inertia < r1.inertia);
        assert!(r4.inertia <= r2.inertia);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let mut d = Dataset::new(2);
        for i in 0..5 {
            d.push(&[i as f64 * 3.0, 0.0]);
        }
        let r = kmeans_pp(&d, 5, 1, &KMeansParams::default());
        assert!(r.inertia < 1e-18, "inertia {}", r.inertia);
    }

    #[test]
    fn single_centroid_is_mean() {
        let d = Dataset::from_flat(2, vec![0.0, 0.0, 2.0, 0.0, 0.0, 2.0, 2.0, 2.0]);
        let seeds = Dataset::from_flat(2, vec![50.0, -50.0]);
        let r = kmeans_seeded(&d, &seeds, &KMeansParams::default());
        assert!(Euclidean.dist(r.centroids.point(0), &[1.0, 1.0]) < 1e-9);
        assert_eq!(r.assignment, vec![0, 0, 0, 0]);
    }

    #[test]
    fn empty_cluster_keeps_seed() {
        // Second seed is so far away it never wins a point.
        let d = Dataset::from_flat(2, vec![0.0, 0.0, 1.0, 0.0]);
        let seeds = Dataset::from_flat(2, vec![0.5, 0.0, 1000.0, 1000.0]);
        let r = kmeans_seeded(&d, &seeds, &KMeansParams::default());
        assert_eq!(r.centroids.point(1), &[1000.0, 1000.0]);
        assert!(r.assignment.iter().all(|&a| a == 0));
    }

    #[test]
    fn max_assigned_distance_covers_members() {
        let d = blobs();
        let seeds = Dataset::from_flat(2, vec![0.0, 0.0, 10.0, 10.0]);
        let r = kmeans_seeded(&d, &seeds, &KMeansParams::default());
        for j in 0..2u32 {
            let eps = r.max_assigned_distance(&d, j);
            for (i, &a) in r.assignment.iter().enumerate() {
                if a == j {
                    let dist = Euclidean.dist(d.point(i as u32), r.centroids.point(j));
                    assert!(dist <= eps + 1e-12);
                }
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let d = blobs();
        let a = kmeans_pp(&d, 3, 77, &KMeansParams::default());
        let b = kmeans_pp(&d, 3, 77, &KMeansParams::default());
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn respects_max_iter() {
        let d = blobs();
        let seeds = Dataset::from_flat(2, vec![5.0, 5.0, 5.1, 5.1]);
        let r = kmeans_seeded(
            &d,
            &seeds,
            &KMeansParams {
                max_iter: 1,
                tol: 0.0,
            },
        );
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn duplicate_points_all_assigned() {
        let mut d = Dataset::new(2);
        for _ in 0..10 {
            d.push(&[1.0, 1.0]);
        }
        let r = kmeans_pp(&d, 3, 3, &KMeansParams::default());
        assert_eq!(r.assignment.len(), 10);
        assert!(r.inertia < 1e-18);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn rejects_no_seeds() {
        let d = blobs();
        let _ = kmeans_seeded(&d, &Dataset::new(2), &KMeansParams::default());
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn rejects_k_above_n() {
        let d = Dataset::from_flat(2, vec![0.0, 0.0]);
        let _ = kmeans_pp(&d, 2, 0, &KMeansParams::default());
    }
}
