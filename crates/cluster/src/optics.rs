//! OPTICS (Ankerst, Breunig, Kriegel, Sander — SIGMOD 1999).
//!
//! Section 6 of the paper discusses OPTICS as an alternative way to build
//! the global model: instead of committing to one `Eps_global`, the server
//! could compute the full reachability ordering of the representatives and
//! let the user cut it at any ε without re-clustering. The paper declines
//! for practical reasons; we implement OPTICS anyway and use it in the
//! `abl-optics` ablation to quantify that design decision.
//!
//! The implementation is the standard one: a reachability ordering computed
//! with a lazy-deletion priority queue, plus the flat-clustering extraction
//! (`ExtractDBSCAN-Clustering`) that recovers a DBSCAN-equivalent partition
//! for any `eps_cut <= eps`.

use crate::dbscan::DbscanParams;
use dbdc_geom::{Clustering, Dataset, Euclidean, Label, Metric};
use dbdc_index::NeighborIndex;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The OPTICS ordering of a dataset.
#[derive(Debug, Clone)]
pub struct OpticsResult {
    /// Point indices in processing (reachability) order.
    pub order: Vec<u32>,
    /// `reachability[i]` — reachability distance of point `i`
    /// (`f64::INFINITY` where undefined, i.e. for the first point of each
    /// density-connected component).
    pub reachability: Vec<f64>,
    /// `core_dist[i]` — core distance of point `i` (`f64::INFINITY` if `i`
    /// is not a core point at the generating ε).
    pub core_dist: Vec<f64>,
    /// The generating parameters.
    pub params: DbscanParams,
}

/// Computes the OPTICS ordering of `data` wrt. `params.eps` / `params.min_pts`.
pub fn optics(data: &Dataset, index: &dyn NeighborIndex, params: &DbscanParams) -> OpticsResult {
    assert_eq!(
        index.len(),
        data.len(),
        "index must be built over the clustered dataset"
    );
    let n = data.len();
    let metric = Euclidean;
    let mut processed = vec![false; n];
    let mut reachability = vec![f64::INFINITY; n];
    let mut core_dist = vec![f64::INFINITY; n];
    let mut order = Vec::with_capacity(n);
    let mut neighbors: Vec<u32> = Vec::new();

    let compute_core_dist = |neighbors: &[u32], p: u32, data: &Dataset| -> f64 {
        if neighbors.len() < params.min_pts {
            return f64::INFINITY;
        }
        let mut dists: Vec<f64> = neighbors
            .iter()
            .map(|&q| metric.dist(data.point(p), data.point(q)))
            .collect();
        let k = params.min_pts - 1; // self is included at distance 0
        dists.select_nth_unstable_by(k, f64::total_cmp);
        dists[k]
    };

    // Lazy-deletion priority queue of (reachability, id). Entries are stale
    // when the stored reachability no longer matches.
    let mut seeds: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    let key = |d: f64| -> u64 { d.to_bits() }; // monotone for non-negative finite d

    for start in 0..n as u32 {
        if processed[start as usize] {
            continue;
        }
        index.range(data.point(start), params.eps, &mut neighbors);
        processed[start as usize] = true;
        order.push(start);
        core_dist[start as usize] = compute_core_dist(&neighbors, start, data);
        if core_dist[start as usize].is_finite() {
            update_seeds(
                data,
                &neighbors,
                start,
                core_dist[start as usize],
                &processed,
                &mut reachability,
                &mut seeds,
                key,
            );
            while let Some(Reverse((rbits, q))) = seeds.pop() {
                if processed[q as usize] || key(reachability[q as usize]) != rbits {
                    continue; // stale entry
                }
                index.range(data.point(q), params.eps, &mut neighbors);
                processed[q as usize] = true;
                order.push(q);
                core_dist[q as usize] = compute_core_dist(&neighbors, q, data);
                if core_dist[q as usize].is_finite() {
                    update_seeds(
                        data,
                        &neighbors,
                        q,
                        core_dist[q as usize],
                        &processed,
                        &mut reachability,
                        &mut seeds,
                        key,
                    );
                }
            }
        }
    }

    OpticsResult {
        order,
        reachability,
        core_dist,
        params: *params,
    }
}

#[allow(clippy::too_many_arguments)]
fn update_seeds(
    data: &Dataset,
    neighbors: &[u32],
    center: u32,
    center_core_dist: f64,
    processed: &[bool],
    reachability: &mut [f64],
    seeds: &mut BinaryHeap<Reverse<(u64, u32)>>,
    key: impl Fn(f64) -> u64,
) {
    let metric = Euclidean;
    for &o in neighbors {
        if processed[o as usize] {
            continue;
        }
        let new_reach = center_core_dist.max(metric.dist(data.point(center), data.point(o)));
        if new_reach < reachability[o as usize] {
            reachability[o as usize] = new_reach;
            seeds.push(Reverse((key(new_reach), o)));
        }
    }
}

/// Extracts a DBSCAN-equivalent flat clustering from an OPTICS ordering at
/// cut radius `eps_cut` (must satisfy `eps_cut <= params.eps` for the result
/// to be meaningful).
///
/// ```
/// use dbdc_cluster::{optics, extract_dbscan, DbscanParams};
/// use dbdc_geom::{Dataset, Euclidean};
/// use dbdc_index::LinearScan;
///
/// let data = Dataset::from_flat(2, vec![
///     0.0, 0.0,  0.3, 0.0,  0.6, 0.0,     // tight triple
///     5.0, 0.0,  5.3, 0.0,  5.6, 0.0,     // second triple
/// ]);
/// let index = LinearScan::new(&data, Euclidean);
/// let ordering = optics(&data, &index, &DbscanParams::new(10.0, 3));
/// // One OPTICS run answers every cut: a tight cut separates the triples,
/// // a loose one merges them.
/// assert_eq!(extract_dbscan(&ordering, 1.0).n_clusters(), 2);
/// assert_eq!(extract_dbscan(&ordering, 10.0).n_clusters(), 1);
/// ```
pub fn extract_dbscan(result: &OpticsResult, eps_cut: f64) -> Clustering {
    assert!(
        eps_cut <= result.params.eps,
        "eps_cut must not exceed the generating eps"
    );
    let n = result.order.len();
    let mut labels = vec![Label::Noise; n];
    let mut current: Option<u32> = None;
    let mut next = 0u32;
    for &p in &result.order {
        if result.reachability[p as usize] > eps_cut {
            if result.core_dist[p as usize] <= eps_cut {
                let c = next;
                next += 1;
                current = Some(c);
                labels[p as usize] = Label::Cluster(c);
            } else {
                current = None;
            }
        } else if let Some(c) = current {
            labels[p as usize] = Label::Cluster(c);
        }
    }
    Clustering::from_labels(labels)
}

impl OpticsResult {
    /// Renders the reachability plot as ASCII art: one column per point in
    /// processing order, bar height proportional to reachability distance
    /// (capped at the generating ε; `∞` bars span the full height).
    /// Clusters appear as valleys, separations as peaks.
    pub fn reachability_plot(&self, width: usize, height: usize) -> String {
        if self.order.is_empty() || width == 0 || height == 0 {
            return String::from("(empty)\n");
        }
        let n = self.order.len();
        let cap = self.params.eps;
        // Downsample to `width` columns by taking the max (peaks must stay
        // visible — they are the cluster separators).
        let cols: Vec<f64> = (0..width)
            .map(|c| {
                let lo = c * n / width;
                let hi = ((c + 1) * n / width).max(lo + 1).min(n);
                self.order[lo..hi]
                    .iter()
                    .map(|&p| self.reachability[p as usize].min(cap))
                    .fold(0.0f64, f64::max)
            })
            .collect();
        let mut out = String::with_capacity((width + 1) * height);
        for row in (0..height).rev() {
            let threshold = cap * (row as f64 + 0.5) / height as f64;
            for &v in &cols {
                out.push(if v >= threshold { '█' } else { ' ' });
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::dbscan;
    use dbdc_geom::adjusted_rand_index;
    use dbdc_index::LinearScan;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(2);
        for (cx, cy) in [(0.0, 0.0), (10.0, 0.0), (5.0, 12.0)] {
            for _ in 0..80 {
                d.push(&[
                    cx + rng.random_range(-1.0..1.0),
                    cy + rng.random_range(-1.0..1.0),
                ]);
            }
        }
        for _ in 0..20 {
            d.push(&[rng.random_range(-10.0..20.0), rng.random_range(-10.0..25.0)]);
        }
        d
    }

    #[test]
    fn ordering_covers_all_points_once() {
        let d = blobs(1);
        let idx = LinearScan::new(&d, Euclidean);
        let r = optics(&d, &idx, &DbscanParams::new(1.0, 5));
        assert_eq!(r.order.len(), d.len());
        let mut seen = vec![false; d.len()];
        for &p in &r.order {
            assert!(!seen[p as usize], "point {p} appears twice");
            seen[p as usize] = true;
        }
    }

    #[test]
    fn extraction_matches_dbscan_structure() {
        // The extracted clustering at eps_cut == eps must match DBSCAN run
        // at eps (up to border-point ambiguity): ARI should be ~1.
        let d = blobs(2);
        let idx = LinearScan::new(&d, Euclidean);
        let params = DbscanParams::new(1.0, 5);
        let o = optics(&d, &idx, &params);
        let flat = extract_dbscan(&o, 1.0);
        let base = dbscan(&d, &idx, &params).clustering;
        assert_eq!(flat.n_clusters(), base.n_clusters());
        let ari = adjusted_rand_index(&flat, &base);
        assert!(ari > 0.98, "ARI {ari} too low");
    }

    #[test]
    fn smaller_cut_gives_no_fewer_clusters() {
        // OPTICS's selling point: one run, many eps cuts. A tighter cut can
        // only fragment (or shrink) clusters, never merge them.
        let d = blobs(3);
        let idx = LinearScan::new(&d, Euclidean);
        let o = optics(&d, &idx, &DbscanParams::new(2.0, 5));
        let loose = extract_dbscan(&o, 2.0);
        let tight = extract_dbscan(&o, 0.8);
        assert!(tight.n_noise() >= loose.n_noise());
        let idxx = LinearScan::new(&d, Euclidean);
        let base_tight = dbscan(&d, &idxx, &DbscanParams::new(0.8, 5)).clustering;
        let ari = adjusted_rand_index(&tight, &base_tight);
        assert!(ari > 0.9, "tight-cut ARI {ari} too low");
    }

    #[test]
    fn reachability_finite_inside_clusters() {
        let d = blobs(4);
        let idx = LinearScan::new(&d, Euclidean);
        let o = optics(&d, &idx, &DbscanParams::new(1.0, 5));
        // All but the first point of each component have finite
        // reachability; there are 3 dense blobs, so at most a handful of
        // infinities among the blob points.
        let finite = o.reachability.iter().filter(|r| r.is_finite()).count();
        assert!(finite > d.len() / 2);
    }

    #[test]
    fn core_dist_is_min_pts_th_distance() {
        let d = Dataset::from_flat(2, vec![0.0, 0.0, 1.0, 0.0, 2.0, 0.0, 3.0, 0.0]);
        let idx = LinearScan::new(&d, Euclidean);
        let o = optics(&d, &idx, &DbscanParams::new(2.5, 3));
        // For point 0: neighbors within 2.5 are {0,1,2}; 3rd smallest
        // distance (incl. self at 0) is 2.0.
        assert_eq!(o.core_dist[0], 2.0);
        // For point 1: neighbors {0,1,2,3}; 3rd smallest is 1.0.
        assert_eq!(o.core_dist[1], 1.0);
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::new(2);
        let idx = LinearScan::new(&d, Euclidean);
        let o = optics(&d, &idx, &DbscanParams::new(1.0, 3));
        assert!(o.order.is_empty());
        let c = extract_dbscan(&o, 1.0);
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "eps_cut")]
    fn extract_rejects_cut_above_eps() {
        let d = Dataset::from_flat(2, vec![0.0, 0.0]);
        let idx = LinearScan::new(&d, Euclidean);
        let o = optics(&d, &idx, &DbscanParams::new(1.0, 2));
        let _ = extract_dbscan(&o, 2.0);
    }

    #[test]
    fn reachability_plot_shows_valleys_and_peaks() {
        let d = blobs(6);
        let idx = LinearScan::new(&d, Euclidean);
        let o = optics(&d, &idx, &DbscanParams::new(2.0, 5));
        let plot = o.reachability_plot(60, 8);
        let lines: Vec<&str> = plot.lines().collect();
        assert_eq!(lines.len(), 8);
        assert!(lines.iter().all(|l| l.chars().count() == 60));
        // Bottom row is mostly filled (every point has some reachability),
        // top row only at the separations.
        let top = lines[0].matches('█').count();
        let bottom = lines[7].matches('█').count();
        assert!(bottom > top, "bottom {bottom} vs top {top}");

        let empty = OpticsResult {
            order: vec![],
            reachability: vec![],
            core_dist: vec![],
            params: DbscanParams::new(1.0, 2),
        };
        assert_eq!(empty.reachability_plot(10, 4), "(empty)\n");
    }
}
