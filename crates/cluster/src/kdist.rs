//! The sorted k-distance plot — DBSCAN's parameter heuristic.
//!
//! The original DBSCAN paper (the DBDC paper's reference \[7\]) proposes
//! choosing `Eps` from the sorted k-distance graph: plot every point's
//! distance to its k-th nearest neighbor in descending order and pick the
//! first "valley" after the noise head. This module computes the curve and
//! a simple automatic knee estimate, which the CLI's `suggest` command and
//! the examples use to pick `Eps_local` for unknown data.

use dbdc_geom::Dataset;
use dbdc_index::NeighborIndex;

/// The sorted k-distance curve of a dataset.
#[derive(Debug, Clone)]
pub struct KDistance {
    /// `k` used (distance to the k-th nearest neighbor, self excluded).
    pub k: usize,
    /// k-distances sorted in descending order.
    pub sorted: Vec<f64>,
}

/// Computes the k-distance curve using `index` for the kNN queries.
///
/// ```
/// use dbdc_cluster::k_distance;
/// use dbdc_geom::{Dataset, Euclidean};
/// use dbdc_index::LinearScan;
///
/// let data = Dataset::from_flat(2, vec![0.0, 0.0, 1.0, 0.0, 2.0, 0.0, 50.0, 0.0]);
/// let index = LinearScan::new(&data, Euclidean);
/// let curve = k_distance(&data, &index, 1);
/// // Descending: the isolated point's nearest neighbor is 48 away.
/// assert_eq!(curve.sorted[0], 48.0);
/// assert_eq!(*curve.sorted.last().unwrap(), 1.0);
/// ```
///
/// # Panics
/// Panics if `k == 0` or the index does not cover `data`.
pub fn k_distance(data: &Dataset, index: &dyn NeighborIndex, k: usize) -> KDistance {
    assert!(k > 0, "k must be positive");
    assert_eq!(index.len(), data.len(), "index must cover the dataset");
    let mut sorted: Vec<f64> = (0..data.len() as u32)
        .map(|i| {
            // +1 because the query point itself is included in the result.
            let nn = index.knn(data.point(i), k + 1);
            nn.last().map(|&(_, d)| d).unwrap_or(0.0)
        })
        .collect();
    sorted.sort_by(|a, b| b.total_cmp(a));
    KDistance { k, sorted }
}

impl KDistance {
    /// The k-distance at the given quantile of the *descending* curve
    /// (`0.0` = largest, `1.0` = smallest).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = ((self.sorted.len() - 1) as f64 * q).round() as usize;
        self.sorted[idx]
    }

    /// A simple automatic `Eps` suggestion: the point of maximum distance
    /// between the (normalized) curve and the straight line joining its
    /// endpoints — the classic "knee" estimate. Falls back to the median
    /// for degenerate curves.
    pub fn knee(&self) -> f64 {
        let n = self.sorted.len();
        if n < 3 {
            return self.quantile(0.5);
        }
        let (y0, y1) = (self.sorted[0], self.sorted[n - 1]);
        let span = (y0 - y1).abs();
        if span < 1e-12 {
            return y0;
        }
        let mut best = (0usize, f64::MIN);
        for (i, &y) in self.sorted.iter().enumerate() {
            let t = i as f64 / (n - 1) as f64;
            // Line from (0, y0) to (1, y1), both axes normalized.
            let line = y0 + (y1 - y0) * t;
            let dist = (line - y) / span; // signed: below-line knees count
            if dist > best.1 {
                best = (i, dist);
            }
        }
        self.sorted[best.0]
    }

    /// Renders the curve as a compact ASCII sparkline (for CLI output).
    pub fn sparkline(&self, width: usize) -> String {
        if self.sorted.is_empty() || width == 0 {
            return String::new();
        }
        let ramp: &[char] = &['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.sorted[0].max(1e-300);
        let n = self.sorted.len();
        (0..width)
            .map(|c| {
                let idx = c * (n - 1) / width.max(1).saturating_sub(1).max(1);
                let v = self.sorted[idx.min(n - 1)] / max;
                ramp[((v * (ramp.len() - 1) as f64).round() as usize).min(ramp.len() - 1)]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbdc_geom::Euclidean;
    use dbdc_index::LinearScan;

    fn clustered_data() -> Dataset {
        let mut d = Dataset::new(2);
        // Two tight clusters and scattered noise.
        for i in 0..50 {
            let t = i as f64;
            d.push(&[(t * 0.77).sin() * 0.5, (t * 1.3).cos() * 0.5]);
        }
        for i in 0..50 {
            let t = i as f64;
            d.push(&[20.0 + (t * 0.9).sin() * 0.5, 20.0 + (t * 0.7).cos() * 0.5]);
        }
        for i in 0..10 {
            d.push(&[i as f64 * 7.3 + 3.0, 40.0 - i as f64 * 3.1]);
        }
        d
    }

    #[test]
    fn curve_is_descending_and_complete() {
        let d = clustered_data();
        let idx = LinearScan::new(&d, Euclidean);
        let kd = k_distance(&d, &idx, 4);
        assert_eq!(kd.sorted.len(), d.len());
        for w in kd.sorted.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn knee_separates_noise_from_cluster_scale() {
        let d = clustered_data();
        let idx = LinearScan::new(&d, Euclidean);
        let kd = k_distance(&d, &idx, 4);
        let eps = kd.knee();
        // Cluster points have 4-distances well under 1.0; noise points are
        // several units from their neighbors. The knee must land between.
        assert!(eps > 0.2, "knee {eps} too small");
        assert!(eps < 10.0, "knee {eps} too large");
        // DBSCAN with the suggested eps finds the two clusters.
        let r = crate::dbscan::dbscan(&d, &idx, &crate::dbscan::DbscanParams::new(eps, 4));
        assert_eq!(r.clustering.n_clusters(), 2, "eps {eps}");
    }

    #[test]
    fn quantiles() {
        let d = clustered_data();
        let idx = LinearScan::new(&d, Euclidean);
        let kd = k_distance(&d, &idx, 3);
        assert_eq!(kd.quantile(0.0), kd.sorted[0]);
        assert_eq!(kd.quantile(1.0), *kd.sorted.last().unwrap());
        assert!(kd.quantile(0.0) >= kd.quantile(0.5));
    }

    #[test]
    fn sparkline_has_requested_width() {
        let d = clustered_data();
        let idx = LinearScan::new(&d, Euclidean);
        let kd = k_distance(&d, &idx, 4);
        let s = kd.sparkline(32);
        assert_eq!(s.chars().count(), 32);
    }

    #[test]
    fn tiny_inputs() {
        let mut d = Dataset::new(2);
        d.push(&[0.0, 0.0]);
        d.push(&[1.0, 0.0]);
        let idx = LinearScan::new(&d, Euclidean);
        let kd = k_distance(&d, &idx, 1);
        assert_eq!(kd.sorted, vec![1.0, 1.0]);
        assert_eq!(kd.knee(), 1.0);
        let empty = Dataset::new(2);
        let idx = LinearScan::new(&empty, Euclidean);
        let kd = k_distance(&empty, &idx, 2);
        assert!(kd.sorted.is_empty());
        assert_eq!(kd.quantile(0.5), 0.0);
    }
}
