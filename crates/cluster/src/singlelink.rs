//! Single-link agglomerative clustering.
//!
//! Section 4 of the paper considers (and rejects) single-link as the local
//! clustering algorithm: it captures non-globular shapes but "is very
//! sensitive to noise and cannot handle clusters of varying density". This
//! small implementation exists so that examples and tests can demonstrate
//! that comparison concretely.
//!
//! Single-link with a distance cut is equivalent to connected components of
//! the minimum spanning tree after removing edges longer than the cut, so
//! the implementation computes Prim's MST in `O(n²)` (fine for the example
//! scale) and cuts it.

use dbdc_geom::{Clustering, Dataset, Label, Metric};

/// A merge step of the single-link dendrogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// One endpoint of the MST edge realizing the merge.
    pub a: u32,
    /// The other endpoint.
    pub b: u32,
    /// The merge (edge) distance.
    pub distance: f64,
}

/// The single-link dendrogram: MST edges in ascending distance order.
#[derive(Debug, Clone)]
pub struct Dendrogram {
    /// `n` (number of points it was built over).
    pub n: usize,
    /// The `n - 1` merges, sorted by ascending distance.
    pub merges: Vec<Merge>,
}

impl Dendrogram {
    /// Cuts the dendrogram at `distance`: clusters are the connected
    /// components using only merges with `distance <= cut`. Components
    /// smaller than `min_size` become noise.
    pub fn cut(&self, cut: f64, min_size: usize) -> Clustering {
        let mut dsu = Dsu::new(self.n);
        for m in &self.merges {
            if m.distance <= cut {
                dsu.union(m.a as usize, m.b as usize);
            }
        }
        let mut sizes = vec![0usize; self.n];
        for i in 0..self.n {
            sizes[dsu.find(i)] += 1;
        }
        let labels = (0..self.n)
            .map(|i| {
                let root = dsu.find(i);
                if sizes[root] >= min_size.max(1) {
                    Label::Cluster(root as u32)
                } else {
                    Label::Noise
                }
            })
            .collect();
        Clustering::from_labels(labels)
    }
}

/// Computes the single-link dendrogram of `data` under `metric` via Prim's
/// MST. `O(n²)` time, `O(n)` memory.
pub fn single_link<M: Metric>(data: &Dataset, metric: &M) -> Dendrogram {
    let n = data.len();
    if n == 0 {
        return Dendrogram { n, merges: vec![] };
    }
    let mut in_tree = vec![false; n];
    let mut best_dist = vec![f64::INFINITY; n];
    let mut best_from = vec![0u32; n];
    in_tree[0] = true;
    for (i, d) in best_dist.iter_mut().enumerate().skip(1) {
        *d = metric.dist(data.point(0), data.point(i as u32));
    }
    let mut merges = Vec::with_capacity(n.saturating_sub(1));
    for _ in 1..n {
        let (next, _) = best_dist
            .iter()
            .enumerate()
            .filter(|&(i, _)| !in_tree[i])
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("some point remains outside the tree");
        in_tree[next] = true;
        merges.push(Merge {
            a: best_from[next],
            b: next as u32,
            distance: best_dist[next],
        });
        for i in 0..n {
            if !in_tree[i] {
                let d = metric.dist(data.point(next as u32), data.point(i as u32));
                if d < best_dist[i] {
                    best_dist[i] = d;
                    best_from[i] = next as u32;
                }
            }
        }
    }
    merges.sort_by(|a, b| a.distance.total_cmp(&b.distance));
    Dendrogram { n, merges }
}

struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbdc_geom::Euclidean;

    fn chain_and_blob() -> Dataset {
        let mut d = Dataset::new(2);
        // An elongated chain (non-globular).
        for i in 0..10 {
            d.push(&[i as f64, 0.0]);
        }
        // A compact blob far away.
        for i in 0..5 {
            d.push(&[50.0 + 0.1 * i as f64, 50.0]);
        }
        d
    }

    #[test]
    fn mst_has_n_minus_one_edges() {
        let d = chain_and_blob();
        let dg = single_link(&d, &Euclidean);
        assert_eq!(dg.merges.len(), d.len() - 1);
        // Sorted ascending.
        for w in dg.merges.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn cut_separates_chain_from_blob() {
        let d = chain_and_blob();
        let dg = single_link(&d, &Euclidean);
        let c = dg.cut(1.5, 2);
        assert_eq!(c.n_clusters(), 2);
        assert_eq!(c.n_noise(), 0);
        // The chain is one cluster despite being non-globular — single
        // link's strength.
        let l = c.label(0);
        for i in 0..10 {
            assert_eq!(c.label(i), l);
        }
    }

    #[test]
    fn min_size_filters_singletons() {
        let mut d = chain_and_blob();
        d.push(&[-30.0, -30.0]); // isolated point
        let dg = single_link(&d, &Euclidean);
        let c = dg.cut(1.5, 2);
        assert_eq!(c.n_noise(), 1);
        assert!(c.label(15).is_noise());
    }

    #[test]
    fn noise_chains_link_clusters_the_weakness() {
        // A line of stepping stones between two blobs: single link merges
        // them at a cut where DBSCAN (with min_pts > 2) would not — the
        // noise sensitivity the paper cites.
        let mut d = Dataset::new(2);
        for i in 0..5 {
            d.push(&[i as f64 * 0.2, 0.0]);
        }
        for i in 0..5 {
            d.push(&[10.0 + i as f64 * 0.2, 0.0]);
        }
        for i in 1..10 {
            d.push(&[i as f64, 0.0]); // bridge
        }
        let dg = single_link(&d, &Euclidean);
        let c = dg.cut(1.0, 2);
        assert_eq!(c.n_clusters(), 1, "single link chains through the bridge");
    }

    #[test]
    fn cut_zero_gives_all_noise_with_min_size_two() {
        let d = chain_and_blob();
        let dg = single_link(&d, &Euclidean);
        let c = dg.cut(0.0, 2);
        assert_eq!(c.n_clusters(), 0);
        assert_eq!(c.n_noise(), d.len());
    }

    #[test]
    fn empty_and_singleton() {
        let d = Dataset::new(2);
        let dg = single_link(&d, &Euclidean);
        assert!(dg.merges.is_empty());
        assert!(dg.cut(1.0, 1).is_empty());

        let mut one = Dataset::new(2);
        one.push(&[1.0, 2.0]);
        let dg = single_link(&one, &Euclidean);
        assert!(dg.merges.is_empty());
        let c = dg.cut(1.0, 1);
        assert_eq!(c.n_clusters(), 1);
    }
}
