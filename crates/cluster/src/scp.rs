//! DBSCAN with on-the-fly *specific core point* extraction.
//!
//! Section 4 of the paper: "We slightly enhanced DBSCAN so that we can
//! easily determine the local model after we have finished the local
//! clustering. All information which is comprised within the local model,
//! i.e. the representatives and their corresponding ε-ranges, is computed
//! on-the-fly during the DBSCAN run."
//!
//! Definition 6 (specific core points): `Scor_C ⊆ Cor_C` such that no
//! specific core point lies in another's ε-neighborhood, and every core
//! point of the cluster lies in the ε-neighborhood of some specific core
//! point. As the paper notes, the set is not unique — it depends on the
//! processing order of the DBSCAN run; this module selects greedily in
//! exactly that visit order.
//!
//! Definition 7 (specific ε-ranges):
//! `ε_s = Eps + max{ dist(s, sᵢ) | sᵢ ∈ Cor ∧ sᵢ ∈ N_Eps(s) }`.
//! The maximum is taken once the run is complete (a late-visited core point
//! can fall inside an early specific core point's neighborhood), via one
//! extra range query per specific core point.

use crate::dbscan::{DbscanParams, DbscanResult};
use dbdc_geom::{Clustering, Dataset, Label};
use dbdc_index::{NeighborIndex, QueryWorkspace};

/// A specific core point with its specific ε-range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecificCorePoint {
    /// Index of the point in the local dataset.
    pub point: u32,
    /// The specific ε-range `ε_s` (Definition 7).
    pub eps_range: f64,
}

/// Result of the enhanced DBSCAN run: the ordinary DBSCAN result plus, for
/// every cluster, its complete set of specific core points.
#[derive(Debug, Clone)]
pub struct ScpResult {
    /// The underlying DBSCAN clustering and core flags.
    pub dbscan: DbscanResult,
    /// `scp[c]` — the specific core points of cluster `c`, in selection
    /// order.
    pub scp: Vec<Vec<SpecificCorePoint>>,
}

impl ScpResult {
    /// Total number of specific core points across all clusters.
    pub fn n_representatives(&self) -> usize {
        self.scp.iter().map(|v| v.len()).sum()
    }
}

const UNCLASSIFIED: i64 = -2;
const NOISE: i64 = -1;

/// Runs DBSCAN while extracting specific core points in visit order.
///
/// The clustering and core flags are identical to [`crate::dbscan::dbscan`]
/// (asserted by tests); the only additions are the greedy `Scor` selection
/// the moment each core point is discovered, and one ε-range query per
/// specific core point at the end to finalize Definition 7's maximum.
///
/// ```
/// use dbdc_cluster::{dbscan_with_scp, DbscanParams};
/// use dbdc_geom::{Dataset, Euclidean};
/// use dbdc_index::LinearScan;
///
/// // One dense cluster of 20 points packed well inside one Eps ball.
/// let mut data = Dataset::new(2);
/// for i in 0..20 {
///     data.push(&[i as f64 * 0.01, 0.0]);
/// }
/// let index = LinearScan::new(&data, Euclidean);
/// let result = dbscan_with_scp(&data, &index, &DbscanParams::new(1.0, 3));
/// // All 20 points fit in the first core point's ε-neighborhood, so one
/// // specific core point represents the whole cluster.
/// assert_eq!(result.n_representatives(), 1);
/// let rep = result.scp[0][0];
/// assert!(rep.eps_range >= 1.0 && rep.eps_range <= 2.0);
/// ```
pub fn dbscan_with_scp(
    data: &Dataset,
    index: &dyn NeighborIndex,
    params: &DbscanParams,
) -> ScpResult {
    assert_eq!(
        index.len(),
        data.len(),
        "index must be built over the clustered dataset"
    );
    let n = data.len();
    let mut state = vec![UNCLASSIFIED; n];
    let mut core = vec![false; n];
    let mut next_cluster: i64 = 0;
    let mut neighbors: Vec<u32> = Vec::new();
    let mut seeds: Vec<u32> = Vec::new();
    let mut ws = QueryWorkspace::new();
    let mut range_queries = 0usize;
    // Per-cluster specific core points (ids only; ranges computed at the
    // end).
    let mut scp_ids: Vec<Vec<u32>> = Vec::new();
    let metric = dbdc_geom::Euclidean;
    use dbdc_geom::Metric;

    // Greedy Scor membership test: the new core point joins unless an
    // existing specific core point of its cluster covers it.
    let add_core_point = |scp_ids: &mut Vec<Vec<u32>>, cluster: usize, id: u32| {
        let list = &mut scp_ids[cluster];
        let covered = list
            .iter()
            .any(|&s| metric.dist(data.point(s), data.point(id)) <= params.eps);
        if !covered {
            list.push(id);
        }
    };

    for i in 0..n as u32 {
        if state[i as usize] != UNCLASSIFIED {
            continue;
        }
        index.range_with(data.point(i), params.eps, &mut neighbors, &mut ws);
        range_queries += 1;
        if neighbors.len() < params.min_pts {
            state[i as usize] = NOISE;
            continue;
        }
        let cluster = next_cluster as usize;
        next_cluster += 1;
        scp_ids.push(Vec::new());
        core[i as usize] = true;
        state[i as usize] = cluster as i64;
        add_core_point(&mut scp_ids, cluster, i);
        seeds.clear();
        for &q in &neighbors {
            let s = &mut state[q as usize];
            if *s == UNCLASSIFIED {
                *s = cluster as i64;
                seeds.push(q);
            } else if *s == NOISE {
                *s = cluster as i64;
            }
        }
        while let Some(j) = seeds.pop() {
            index.range_with(data.point(j), params.eps, &mut neighbors, &mut ws);
            range_queries += 1;
            if neighbors.len() < params.min_pts {
                continue;
            }
            core[j as usize] = true;
            add_core_point(&mut scp_ids, cluster, j);
            for &q in &neighbors {
                let s = &mut state[q as usize];
                if *s == UNCLASSIFIED {
                    *s = cluster as i64;
                    seeds.push(q);
                } else if *s == NOISE {
                    *s = cluster as i64;
                }
            }
        }
    }

    // Finalize Definition 7: ε_s = Eps + max dist to core points within Eps.
    let mut scp: Vec<Vec<SpecificCorePoint>> = Vec::with_capacity(scp_ids.len());
    for ids in &scp_ids {
        let mut list = Vec::with_capacity(ids.len());
        for &s in ids {
            index.range_with(data.point(s), params.eps, &mut neighbors, &mut ws);
            range_queries += 1;
            let max_core_dist = neighbors
                .iter()
                .filter(|&&q| core[q as usize])
                .map(|&q| metric.dist(data.point(s), data.point(q)))
                .fold(0.0f64, f64::max);
            list.push(SpecificCorePoint {
                point: s,
                eps_range: params.eps + max_core_dist,
            });
        }
        scp.push(list);
    }

    let labels = state
        .iter()
        .map(|&s| {
            if s < 0 {
                Label::Noise
            } else {
                Label::Cluster(s as u32)
            }
        })
        .collect();
    let clustering = Clustering::from_labels(labels);

    // `Clustering::from_labels` renumbers cluster ids by first appearance in
    // *point* order, which can differ from DBSCAN's creation order: a point
    // marked noise during an early cluster's scan may later be absorbed as a
    // border of a later cluster, making that later cluster appear first in
    // the label vector. Remap the scp lists onto the dense ids so that
    // `scp[c]` always describes `Cluster(c)` of the returned clustering.
    let mut remapped: Vec<Vec<SpecificCorePoint>> = vec![Vec::new(); scp.len()];
    for (raw, list) in scp.into_iter().enumerate() {
        // Every cluster has at least one specific core point; its dense id
        // is wherever the clustering put that point.
        let dense = list
            .first()
            .and_then(|s| clustering.label(s.point).cluster())
            .unwrap_or(raw as u32) as usize;
        remapped[dense] = list;
    }

    ScpResult {
        dbscan: DbscanResult {
            clustering,
            core,
            range_queries,
        },
        scp: remapped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::dbscan;
    use dbdc_geom::{Euclidean, Metric};
    use dbdc_index::LinearScan;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn gaussian_blobs(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(2);
        for (cx, cy) in [(0.0, 0.0), (8.0, 8.0), (0.0, 9.0)] {
            for _ in 0..120 {
                // Box-Muller-ish jitter via averaging keeps rand API simple.
                let jitter = |rng: &mut StdRng| {
                    (0..4).map(|_| rng.random_range(-1.0..1.0)).sum::<f64>() / 2.0
                };
                d.push(&[cx + jitter(&mut rng), cy + jitter(&mut rng)]);
            }
        }
        for _ in 0..30 {
            d.push(&[rng.random_range(-20.0..20.0), rng.random_range(-20.0..20.0)]);
        }
        d
    }

    fn run(data: &Dataset, eps: f64, min_pts: usize) -> ScpResult {
        let idx = LinearScan::new(data, Euclidean);
        dbscan_with_scp(data, &idx, &DbscanParams::new(eps, min_pts))
    }

    #[test]
    fn clustering_identical_to_plain_dbscan() {
        let d = gaussian_blobs(5);
        let idx = LinearScan::new(&d, Euclidean);
        let params = DbscanParams::new(0.7, 5);
        let plain = dbscan(&d, &idx, &params);
        let scp = dbscan_with_scp(&d, &idx, &params);
        assert_eq!(plain.clustering, scp.dbscan.clustering);
        assert_eq!(plain.core, scp.dbscan.core);
    }

    #[test]
    fn scp_are_core_points_of_their_cluster() {
        let d = gaussian_blobs(6);
        let r = run(&d, 0.7, 5);
        for (c, list) in r.scp.iter().enumerate() {
            assert!(!list.is_empty(), "cluster {c} must have representatives");
            for s in list {
                assert!(r.dbscan.core[s.point as usize], "scp must be core");
                assert_eq!(
                    r.dbscan.clustering.label(s.point).cluster(),
                    Some(c as u32),
                    "scp must belong to its cluster"
                );
            }
        }
    }

    #[test]
    fn scp_pairwise_separation() {
        // Definition 6 condition 2: no scp lies in another's ε-neighborhood.
        let d = gaussian_blobs(7);
        let eps = 0.7;
        let r = run(&d, eps, 5);
        for list in &r.scp {
            for (i, a) in list.iter().enumerate() {
                for b in &list[i + 1..] {
                    let dist = Euclidean.dist(d.point(a.point), d.point(b.point));
                    assert!(
                        dist > eps,
                        "specific core points {} and {} violate separation: {dist} <= {eps}",
                        a.point,
                        b.point
                    );
                }
            }
        }
    }

    #[test]
    fn scp_cover_all_core_points() {
        // Definition 6 condition 3: every core point is within Eps of a scp
        // of its cluster.
        let d = gaussian_blobs(8);
        let eps = 0.7;
        let r = run(&d, eps, 5);
        for i in 0..d.len() as u32 {
            if !r.dbscan.core[i as usize] {
                continue;
            }
            let c = r
                .dbscan
                .clustering
                .label(i)
                .cluster()
                .expect("cores are clustered") as usize;
            let covered = r.scp[c]
                .iter()
                .any(|s| Euclidean.dist(d.point(s.point), d.point(i)) <= eps);
            assert!(
                covered,
                "core point {i} not covered by any scp of cluster {c}"
            );
        }
    }

    #[test]
    fn eps_ranges_match_definition_7() {
        let d = gaussian_blobs(9);
        let eps = 0.7;
        let r = run(&d, eps, 5);
        let idx = LinearScan::new(&d, Euclidean);
        for list in &r.scp {
            for s in list {
                let max_core = idx
                    .range_vec(d.point(s.point), eps)
                    .iter()
                    .filter(|&&q| r.dbscan.core[q as usize])
                    .map(|&q| Euclidean.dist(d.point(s.point), d.point(q)))
                    .fold(0.0f64, f64::max);
                assert!(
                    (s.eps_range - (eps + max_core)).abs() < 1e-12,
                    "eps_range mismatch for scp {}",
                    s.point
                );
                // ε_s is bounded: Eps <= ε_s <= 2·Eps.
                assert!(s.eps_range >= eps - 1e-12);
                assert!(s.eps_range <= 2.0 * eps + 1e-12);
            }
        }
    }

    #[test]
    fn every_cluster_member_covered_by_some_scp_range() {
        // The coverage property Section 7 relies on: every object of a local
        // cluster lies within ε_s of some specific core point of its
        // cluster. (Border points are within Eps of a core point c, c is
        // within Eps of a scp s, and ε_s >= Eps + dist(c, s).)
        let d = gaussian_blobs(10);
        let eps = 0.7;
        let r = run(&d, eps, 5);
        for i in 0..d.len() as u32 {
            if let Some(c) = r.dbscan.clustering.label(i).cluster() {
                let covered = r.scp[c as usize]
                    .iter()
                    .any(|s| Euclidean.dist(d.point(s.point), d.point(i)) <= s.eps_range + 1e-12);
                assert!(covered, "cluster member {i} not covered by any scp ε-range");
            }
        }
    }

    #[test]
    fn representative_count_much_smaller_than_data() {
        let d = gaussian_blobs(11);
        let r = run(&d, 0.7, 5);
        let n_rep = r.n_representatives();
        assert!(n_rep > 0);
        assert!(
            n_rep * 3 < d.len(),
            "representatives ({n_rep}) should be a small fraction of n ({})",
            d.len()
        );
    }

    #[test]
    fn empty_and_all_noise() {
        let d = Dataset::new(2);
        let r = run(&d, 1.0, 3);
        assert!(r.scp.is_empty());
        assert_eq!(r.n_representatives(), 0);

        let mut sparse = Dataset::new(2);
        for i in 0..5 {
            sparse.push(&[i as f64 * 100.0, 0.0]);
        }
        let r = run(&sparse, 1.0, 3);
        assert!(r.scp.is_empty());
        assert_eq!(r.dbscan.clustering.n_noise(), 5);
    }

    #[test]
    fn dense_single_cluster_one_scp_when_tiny() {
        // All points within eps of the first-visited core point -> exactly
        // one specific core point.
        let mut d = Dataset::new(2);
        for i in 0..20 {
            d.push(&[i as f64 * 0.01, 0.0]);
        }
        let r = run(&d, 1.0, 3);
        assert_eq!(r.dbscan.clustering.n_clusters(), 1);
        assert_eq!(r.scp[0].len(), 1);
    }
}
