//! Property-based identity check for the partitioned local phase: on
//! arbitrary data and parameters, `partitioned_dbscan` must produce
//! exactly the sequential `dbscan` output on every backend, at every
//! thread count, at every partition count — including halo-heavy ε
//! settings where the stripes overlap almost entirely.

use dbdc_cluster::{dbscan, partitioned_dbscan, DbscanParams};
use dbdc_geom::{Dataset, Precision};
use dbdc_index::{build_index, IndexKind};
use proptest::prelude::*;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    // Clumps plus uniform background, with an anisotropic stretch so
    // the widest-spread axis the striper picks is not always the same.
    (
        prop::collection::vec(((0.0..30.0f64, 0.0..30.0f64), 3..25usize), 1..4),
        prop::collection::vec((0.0..30.0f64, 0.0..30.0f64), 0..15),
        1.0..5.0f64,
        prop::bool::ANY,
    )
        .prop_map(|(clumps, background, stretch, flip)| {
            let mut d = Dataset::new(2);
            let mut push = |x: f64, y: f64| {
                if flip {
                    d.push(&[x, y * stretch]);
                } else {
                    d.push(&[x * stretch, y]);
                }
            };
            for ((cx, cy), n) in clumps {
                for i in 0..n {
                    let t = i as f64;
                    push(cx + (t * 0.7).sin() * 0.8, cy + (t * 1.1).cos() * 0.8);
                }
            }
            for (x, y) in background {
                push(x, y);
            }
            d
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Labels, core flags, and neighbor accounting are identical to the
    /// sequential algorithm on every backend × 1/2/8 threads × 1/2/4
    /// partitions.
    #[test]
    fn partitioned_labels_equal_sequential(
        data in arb_dataset(),
        eps in 0.5..3.0f64,
        min_pts in 2usize..7,
    ) {
        let params = DbscanParams::new(eps, min_pts);
        for kind in IndexKind::ALL {
            let idx = build_index(kind, &data, dbdc_geom::Euclidean, eps);
            let seq = dbscan(&data, idx.as_ref(), &params);
            for threads in [1usize, 2, 8] {
                for partitions in [1usize, 2, 4] {
                    let (part, stats) = partitioned_dbscan(
                        &data, kind, &params, partitions, threads, Precision::F64,
                    );
                    prop_assert_eq!(&seq.clustering, &part.clustering,
                        "labels differ ({:?}, {} threads, {} partitions)",
                        kind, threads, partitions);
                    prop_assert_eq!(&seq.core, &part.core,
                        "core flags differ ({:?}, {} threads, {} partitions)",
                        kind, threads, partitions);
                    prop_assert_eq!(stats.partitions, partitions.min(data.len().max(1)),
                        "partition count not honored");
                }
            }
        }
    }

    /// Halo-heavy regime: ε comparable to the whole spread, so every
    /// stripe's halo swallows most of its neighbors' points. The merge
    /// must still reproduce the sequential labels exactly, and the halo
    /// accounting must cover the replication.
    #[test]
    fn halo_heavy_partitions_equal_sequential(
        data in arb_dataset(),
        eps in 8.0..20.0f64,
        min_pts in 2usize..5,
    ) {
        let params = DbscanParams::new(eps, min_pts);
        let idx = build_index(IndexKind::RStar, &data, dbdc_geom::Euclidean, eps);
        let seq = dbscan(&data, idx.as_ref(), &params);
        for partitions in [2usize, 4] {
            let (part, stats) = partitioned_dbscan(
                &data, IndexKind::RStar, &params, partitions, 2, Precision::F64,
            );
            prop_assert_eq!(&seq.clustering, &part.clustering,
                "labels differ at {} halo-heavy partitions", partitions);
            prop_assert_eq!(&seq.core, &part.core,
                "core flags differ at {} halo-heavy partitions", partitions);
            // With ε this large the stripes overlap: some replication
            // must actually have happened (unless everything fit in one
            // clamped stripe).
            if stats.partitions > 1 && data.len() > stats.partitions {
                prop_assert!(stats.halo_points > 0,
                    "ε {} produced no halo over {} points", eps, data.len());
            }
        }
    }
}
