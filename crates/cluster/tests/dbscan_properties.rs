//! Property-based tests of the DBSCAN definitions (paper Definitions 1-5)
//! over randomly generated datasets: whatever the data, the result must be
//! a valid density-based clustering.

use dbdc_cluster::{dbscan, dbscan_with_scp, DbscanParams};
use dbdc_geom::{Dataset, Euclidean, Metric};
use dbdc_index::{LinearScan, NeighborIndex};
use proptest::prelude::*;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    // A mix of clumps (many points near a few centers) and background.
    (
        prop::collection::vec(((0.0..30.0f64, 0.0..30.0f64), 3..25usize), 1..4),
        prop::collection::vec((0.0..30.0f64, 0.0..30.0f64), 0..15),
    )
        .prop_map(|(clumps, background)| {
            let mut d = Dataset::new(2);
            for ((cx, cy), n) in clumps {
                for i in 0..n {
                    let t = i as f64;
                    d.push(&[cx + (t * 0.7).sin() * 0.8, cy + (t * 1.1).cos() * 0.8]);
                }
            }
            for (x, y) in background {
                d.push(&[x, y]);
            }
            d
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The DBSCAN validity invariants hold on arbitrary data:
    /// 1. core flags match the definition exactly;
    /// 2. clustered non-core points touch a core point of their cluster;
    /// 3. noise points have no core point within eps;
    /// 4. two core points within eps share a cluster (density connectivity).
    #[test]
    fn dbscan_output_is_valid(data in arb_dataset(), eps in 0.5..3.0f64, min_pts in 2usize..7) {
        let idx = LinearScan::new(&data, Euclidean);
        let params = DbscanParams::new(eps, min_pts);
        let r = dbscan(&data, &idx, &params);

        for i in 0..data.len() as u32 {
            let neighbors = idx.range_vec(data.point(i), eps);
            // 1. Core definition.
            prop_assert_eq!(
                r.core[i as usize],
                neighbors.len() >= min_pts,
                "core flag mismatch at {}", i
            );
            match r.clustering.label(i).cluster() {
                Some(c) => {
                    if !r.core[i as usize] {
                        // 2. Border points are density-reachable.
                        prop_assert!(
                            neighbors.iter().any(|&q| r.core[q as usize]
                                && r.clustering.label(q).cluster() == Some(c)),
                            "border {} has no core neighbor in its cluster", i
                        );
                    }
                }
                None => {
                    // 3. Noise is not reachable from any core.
                    prop_assert!(
                        neighbors.iter().all(|&q| !r.core[q as usize]),
                        "noise {} within eps of a core point", i
                    );
                }
            }
            // 4. Core-core neighbors share a cluster.
            if r.core[i as usize] {
                for &q in &neighbors {
                    if r.core[q as usize] {
                        prop_assert_eq!(
                            r.clustering.label(i).cluster(),
                            r.clustering.label(q).cluster(),
                            "connected cores {} and {} split", i, q
                        );
                    }
                }
            }
        }
    }

    /// The specific-core-point construction satisfies Definition 6 (subset
    /// of cores, pairwise separation, coverage) and Definition 7 (ε-range
    /// bounds) on arbitrary data.
    #[test]
    fn scp_invariants_hold(data in arb_dataset(), eps in 0.5..3.0f64, min_pts in 2usize..7) {
        let idx = LinearScan::new(&data, Euclidean);
        let params = DbscanParams::new(eps, min_pts);
        let r = dbscan_with_scp(&data, &idx, &params);
        for (c, list) in r.scp.iter().enumerate() {
            for (i, a) in list.iter().enumerate() {
                prop_assert!(r.dbscan.core[a.point as usize]);
                prop_assert_eq!(
                    r.dbscan.clustering.label(a.point).cluster(),
                    Some(c as u32)
                );
                prop_assert!(a.eps_range >= eps - 1e-12);
                prop_assert!(a.eps_range <= 2.0 * eps + 1e-12);
                for b in &list[i + 1..] {
                    prop_assert!(
                        Euclidean.dist(data.point(a.point), data.point(b.point)) > eps,
                        "scp separation violated in cluster {}", c
                    );
                }
            }
        }
        // Coverage: every core point within eps of a scp of its cluster.
        for i in 0..data.len() as u32 {
            if r.dbscan.core[i as usize] {
                let c = r.dbscan.clustering.label(i).cluster().unwrap() as usize;
                prop_assert!(
                    r.scp[c].iter().any(|s| {
                        Euclidean.dist(data.point(s.point), data.point(i)) <= eps
                    }),
                    "core {} uncovered", i
                );
            }
        }
    }
}
