//! Property-based determinism check for the parallel execution layer:
//! on arbitrary data and parameters, `par_dbscan` must produce exactly
//! the sequential `dbscan` output at every thread count, and
//! `par_dbscan_with_scp` the exact `dbscan_with_scp` output.

use dbdc_cluster::{dbscan, dbscan_with_scp, par_dbscan, par_dbscan_with_scp, DbscanParams};
use dbdc_geom::Dataset;
use dbdc_index::{build_index, IndexKind};
use proptest::prelude::*;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    // Same shape as dbscan_properties: clumps plus uniform background.
    (
        prop::collection::vec(((0.0..30.0f64, 0.0..30.0f64), 3..25usize), 1..4),
        prop::collection::vec((0.0..30.0f64, 0.0..30.0f64), 0..15),
    )
        .prop_map(|(clumps, background)| {
            let mut d = Dataset::new(2);
            for ((cx, cy), n) in clumps {
                for i in 0..n {
                    let t = i as f64;
                    d.push(&[cx + (t * 0.7).sin() * 0.8, cy + (t * 1.1).cos() * 0.8]);
                }
            }
            for (x, y) in background {
                d.push(&[x, y]);
            }
            d
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Labels, core flags, and query counts are identical to the
    /// sequential algorithm at 1, 2, and 8 threads on every backend.
    #[test]
    fn parallel_labels_equal_sequential(
        data in arb_dataset(),
        eps in 0.5..3.0f64,
        min_pts in 2usize..7,
    ) {
        let params = DbscanParams::new(eps, min_pts);
        // The sequential LinearScan run is the oracle every (backend,
        // thread-count) combination must reproduce label-for-label — it
        // is the one backend with no tree, no arena, and no batching.
        let oracle_idx = build_index(IndexKind::Linear, &data, dbdc_geom::Euclidean, eps);
        let oracle = dbscan(&data, oracle_idx.as_ref(), &params);
        for kind in IndexKind::ALL {
            let idx = build_index(kind, &data, dbdc_geom::Euclidean, eps);
            let seq = dbscan(&data, idx.as_ref(), &params);
            prop_assert_eq!(&oracle.clustering, &seq.clustering,
                "labels differ from LinearScan oracle ({:?})", kind);
            prop_assert_eq!(&oracle.core, &seq.core,
                "core flags differ from LinearScan oracle ({:?})", kind);
            for threads in [1usize, 2, 8] {
                let par = par_dbscan(&data, idx.as_ref(), &params, threads);
                prop_assert_eq!(&seq.clustering, &par.clustering,
                    "labels differ ({:?}, {} threads)", kind, threads);
                prop_assert_eq!(&seq.core, &par.core,
                    "core flags differ ({:?}, {} threads)", kind, threads);
                prop_assert_eq!(seq.range_queries, par.range_queries,
                    "query count differs ({:?}, {} threads)", kind, threads);
            }
        }
    }

    /// The scp-extracting variant replays the sequential selection
    /// exactly: identical specific core points, ε-ranges, and accounting.
    #[test]
    fn parallel_scp_equals_sequential(
        data in arb_dataset(),
        eps in 0.5..3.0f64,
        min_pts in 2usize..7,
    ) {
        let params = DbscanParams::new(eps, min_pts);
        let idx = build_index(IndexKind::RStar, &data, dbdc_geom::Euclidean, eps);
        let seq = dbscan_with_scp(&data, idx.as_ref(), &params);
        for threads in [1usize, 2, 8] {
            let par = par_dbscan_with_scp(&data, idx.as_ref(), &params, threads);
            prop_assert_eq!(&seq.scp, &par.scp, "scp differ at {} threads", threads);
            prop_assert_eq!(&seq.dbscan.clustering, &par.dbscan.clustering,
                "labels differ at {} threads", threads);
            prop_assert_eq!(&seq.dbscan.core, &par.dbscan.core,
                "core flags differ at {} threads", threads);
            prop_assert_eq!(seq.dbscan.range_queries, par.dbscan.range_queries,
                "query count differs at {} threads", threads);
        }
    }
}
