//! Pinned former proptest failures, replayed as plain tests.
//!
//! The dataset below is the checked-in case from
//! `dbscan_properties.proptest-regressions`, kept as an explicit test so
//! it runs on every backend regardless of which proptest implementation
//! (and persistence mechanism) the workspace builds against.

use dbdc_cluster::{dbscan, dbscan_with_scp, par_dbscan, par_dbscan_with_scp, DbscanParams};
use dbdc_geom::{Dataset, Euclidean, Metric};
use dbdc_index::{build_index, IndexKind};

/// 12 points on the unit disc; with eps = 0.5, min_pts = 3 this produces a
/// mix of core, border, and noise points with several near-eps pair
/// distances, which is what made it a good boundary-semantics probe.
fn regression_dataset() -> Dataset {
    let pts: [[f64; 2]; 12] = [
        [0.0, 0.8],
        [0.5153741497901528, 0.3628768971404619],
        [0.7883597839907681, -0.4708008938042767],
        [0.6905674933190992, -0.789983815927092],
        [0.2679905201247241, -0.2458662959827355],
        [-0.2806265821516959, 0.566935819433008],
        [-0.6972606179308702, 0.7601860735668234],
        [-0.7859620900994662, 0.12269908963029078],
        [-0.5050133102978573, -0.6488744112493249],
        [0.013451120387479771, -0.7113529221002888],
        [0.5255892789750313, 0.0035405583904406287],
        [0.7905345871016003, 0.7145648892074586],
    ];
    let mut d = Dataset::new(2);
    for p in &pts {
        d.push(p);
    }
    d
}

const EPS: f64 = 0.5;
const MIN_PTS: usize = 3;

#[test]
fn pinned_case_is_valid_on_every_index_backend() {
    let data = regression_dataset();
    let params = DbscanParams::new(EPS, MIN_PTS);

    let mut reference = None;
    for kind in IndexKind::ALL {
        let idx = build_index(kind, &data, Euclidean, EPS);
        let r = dbscan(&data, idx.as_ref(), &params);

        for i in 0..data.len() as u32 {
            let neighbors = idx.range_vec(data.point(i), EPS);
            assert_eq!(
                r.core[i as usize],
                neighbors.len() >= MIN_PTS,
                "[{kind:?}] core flag mismatch at {i}"
            );
            match r.clustering.label(i).cluster() {
                Some(c) => {
                    if !r.core[i as usize] {
                        assert!(
                            neighbors.iter().any(|&q| r.core[q as usize]
                                && r.clustering.label(q).cluster() == Some(c)),
                            "[{kind:?}] border {i} has no core neighbor in its cluster"
                        );
                    }
                }
                None => {
                    assert!(
                        neighbors.iter().all(|&q| !r.core[q as usize]),
                        "[{kind:?}] noise {i} within eps of a core point"
                    );
                }
            }
            if r.core[i as usize] {
                for &q in &neighbors {
                    if r.core[q as usize] {
                        assert_eq!(
                            r.clustering.label(i).cluster(),
                            r.clustering.label(q).cluster(),
                            "[{kind:?}] connected cores {i} and {q} split"
                        );
                    }
                }
            }
        }

        // Every backend must agree exactly — the index choice is a pure
        // performance knob.
        match &reference {
            None => reference = Some(r),
            Some(base) => {
                assert_eq!(base.clustering, r.clustering, "[{kind:?}] labels differ");
                assert_eq!(base.core, r.core, "[{kind:?}] core flags differ");
            }
        }
    }
}

#[test]
fn pinned_case_scp_invariants_hold() {
    let data = regression_dataset();
    let params = DbscanParams::new(EPS, MIN_PTS);
    for kind in IndexKind::ALL {
        let idx = build_index(kind, &data, Euclidean, EPS);
        let r = dbscan_with_scp(&data, idx.as_ref(), &params);
        for (c, list) in r.scp.iter().enumerate() {
            for (i, a) in list.iter().enumerate() {
                assert!(r.dbscan.core[a.point as usize]);
                assert_eq!(r.dbscan.clustering.label(a.point).cluster(), Some(c as u32));
                assert!(a.eps_range >= EPS - 1e-12);
                assert!(a.eps_range <= 2.0 * EPS + 1e-12);
                for b in &list[i + 1..] {
                    assert!(
                        Euclidean.dist(data.point(a.point), data.point(b.point)) > EPS,
                        "[{kind:?}] scp separation violated in cluster {c}"
                    );
                }
            }
        }
        for i in 0..data.len() as u32 {
            if r.dbscan.core[i as usize] {
                let c = r.dbscan.clustering.label(i).cluster().unwrap() as usize;
                assert!(
                    r.scp[c]
                        .iter()
                        .any(|s| Euclidean.dist(data.point(s.point), data.point(i)) <= EPS),
                    "[{kind:?}] core {i} uncovered"
                );
            }
        }
    }
}

/// Larger deterministic dataset (xorshift; ~300 points in three density
/// regimes) exercising deep kd/R* trees, so the flattened arena
/// traversals — not just tiny two-level trees — are held to the
/// LinearScan oracle label-for-label.
fn oracle_dataset() -> Dataset {
    let mut d = Dataset::new(2);
    let mut s = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s % 10_000) as f64 / 10_000.0
    };
    // Three dense blobs ...
    for (cx, cy) in [(2.0, 2.0), (8.0, 3.0), (5.0, 9.0)] {
        for _ in 0..80 {
            d.push(&[cx + next() * 1.2, cy + next() * 1.2]);
        }
    }
    // ... plus sparse background noise.
    for _ in 0..60 {
        d.push(&[next() * 12.0, next() * 12.0]);
    }
    d
}

#[test]
fn flattened_backends_match_linear_oracle_label_for_label() {
    let data = oracle_dataset();
    let params = DbscanParams::new(0.4, 4);
    let linear = build_index(IndexKind::Linear, &data, Euclidean, params.eps);
    let oracle = dbscan(&data, linear.as_ref(), &params);
    assert!(oracle.clustering.n_clusters() >= 3, "dataset must cluster");

    for kind in [IndexKind::Grid, IndexKind::KdTree, IndexKind::RStar] {
        let idx = build_index(kind, &data, Euclidean, params.eps);
        let r = dbscan(&data, idx.as_ref(), &params);
        assert_eq!(oracle.clustering, r.clustering, "[{kind:?}] labels");
        assert_eq!(oracle.core, r.core, "[{kind:?}] core flags");
        // The scp greedy selection is visit-order dependent and each
        // backend has its own (deterministic) neighbor order, so scp is
        // pinned per backend: sequential and parallel runs on the same
        // index must replay the identical selection.
        let seq_scp = dbscan_with_scp(&data, idx.as_ref(), &params);
        for threads in [1, 2, 8] {
            let par = par_dbscan(&data, idx.as_ref(), &params, threads);
            assert_eq!(
                oracle.clustering, par.clustering,
                "[{kind:?}] labels, threads={threads}"
            );
            assert_eq!(oracle.core, par.core, "[{kind:?}] core, threads={threads}");
            let par_scp = par_dbscan_with_scp(&data, idx.as_ref(), &params, threads);
            assert_eq!(
                seq_scp.scp, par_scp.scp,
                "[{kind:?}] scp, threads={threads}"
            );
        }
    }
}

#[test]
fn pinned_case_parallel_matches_sequential() {
    let data = regression_dataset();
    let params = DbscanParams::new(EPS, MIN_PTS);
    for kind in IndexKind::ALL {
        let idx = build_index(kind, &data, Euclidean, EPS);
        let seq = dbscan(&data, idx.as_ref(), &params);
        let seq_scp = dbscan_with_scp(&data, idx.as_ref(), &params);
        for threads in [1, 2, 8] {
            let par = par_dbscan(&data, idx.as_ref(), &params, threads);
            assert_eq!(
                seq.clustering, par.clustering,
                "[{kind:?}] threads={threads}"
            );
            assert_eq!(seq.core, par.core, "[{kind:?}] threads={threads}");
            let par_scp = par_dbscan_with_scp(&data, idx.as_ref(), &params, threads);
            assert_eq!(seq_scp.scp, par_scp.scp, "[{kind:?}] threads={threads}");
            assert_eq!(
                seq_scp.dbscan.clustering, par_scp.dbscan.clustering,
                "[{kind:?}] threads={threads}"
            );
        }
    }
}
