//! `dbdc-cli` — run DBDC from the command line.
//!
//! ```text
//! dbdc-cli generate --set a --seed 42 --out points.csv
//! dbdc-cli central  --input points.csv --eps 1.0 --min-pts 5 --out labels.csv
//! dbdc-cli run      --input points.csv --eps 1.0 --min-pts 5 --sites 4 \
//!                   --model scor --eps-global 2.0 --out labels.csv
//! dbdc-cli compare  --input points.csv --eps 1.0 --min-pts 5 --sites 4
//! ```

mod args;
mod csv;

use args::Args;
use dbdc::{
    central_dbscan, q_dbdc, run_dbdc, run_dbdc_threaded, DbdcParams, EpsGlobal, LocalModelKind,
    ObjectQuality, Partitioner,
};
use dbdc_geom::Dataset;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(rest),
        "central" => cmd_central(rest),
        "run" => cmd_run(rest),
        "compare" => cmd_compare(rest),
        "plot" => cmd_plot(rest),
        "suggest" => cmd_suggest(rest),
        "stream" => cmd_stream(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
dbdc-cli — Density Based Distributed Clustering (EDBT 2004)

commands:
  generate --set a|b|c --seed N [--n N] [--out FILE] [--truth]
      write a synthetic test data set as CSV (x,y; --truth appends labels)
  central --input FILE --eps E --min-pts M [--index KIND] [--threads T]
      [--out FILE]
      central DBSCAN over a CSV point file
  run --input FILE --eps E --min-pts M --sites K [--model scor|kmeans]
      [--eps-global MULT|max] [--partitioner random|roundrobin|stripes]
      [--seed N] [--threaded] [--threads T] [--out FILE]
      the DBDC protocol over K simulated sites
  compare --input FILE --eps E --min-pts M --sites K [--model scor|kmeans]
      [--eps-global MULT|max] [--seed N] [--threads T]
      run both and report the paper's quality measures
  plot --input FILE --out FILE.svg [--eps E --min-pts M] [--title T]
      render a CSV point file as an SVG scatter plot, clustered with
      DBSCAN when --eps/--min-pts are given
  suggest --input FILE [--k K]
      suggest an Eps via the sorted k-distance knee (k defaults to 4)
  stream --input FILE --eps E --min-pts M --sites K [--batch N]
      [--drift D] [--seed S]
      replay the file as a stream into incremental client sessions and an
      incremental server; report transmissions saved by drift gating

KIND: linear|grid|kdtree|rstar (default rstar)
T: DBSCAN worker threads; 1 = sequential (default), 0 = all cores.
   The clustering is identical for every value.";

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Rejects stray positional arguments — every subcommand is flag-driven.
fn no_positionals(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    match args.positional() {
        [] => Ok(()),
        extra => Err(format!("unexpected arguments: {extra:?}").into()),
    }
}

fn read_input(args: &Args) -> Result<Dataset, Box<dyn std::error::Error>> {
    let path = args.require("input")?;
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    Ok(csv::read_dataset(BufReader::new(file))?)
}

fn write_output(
    args: &Args,
    data: &Dataset,
    labels: &dbdc_geom::Clustering,
) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(path) = args.get("out") {
        let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
        csv::write_dataset(BufWriter::new(file), data, Some(labels))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn parse_eps_global(args: &Args) -> Result<EpsGlobal, Box<dyn std::error::Error>> {
    match args.get("eps-global") {
        None => Ok(EpsGlobal::MultipleOfLocal(2.0)),
        Some("max") => Ok(EpsGlobal::MaxEpsRange),
        Some(v) => {
            let mult: f64 = v
                .parse()
                .map_err(|_| format!("--eps-global expects a multiplier or \"max\", got {v:?}"))?;
            Ok(EpsGlobal::MultipleOfLocal(mult))
        }
    }
}

fn parse_model(args: &Args) -> Result<LocalModelKind, Box<dyn std::error::Error>> {
    match args.get("model") {
        None | Some("scor") => Ok(LocalModelKind::Scor),
        Some("kmeans") => Ok(LocalModelKind::KMeans),
        Some(v) => Err(format!("--model expects scor|kmeans, got {v:?}").into()),
    }
}

fn parse_partitioner(args: &Args, seed: u64) -> Result<Partitioner, Box<dyn std::error::Error>> {
    match args.get("partitioner") {
        None | Some("random") => Ok(Partitioner::RandomEqual { seed }),
        Some("roundrobin") => Ok(Partitioner::RoundRobin),
        Some("stripes") => Ok(Partitioner::SpatialStripes { axis: 0 }),
        Some(v) => {
            Err(format!("--partitioner expects random|roundrobin|stripes, got {v:?}").into())
        }
    }
}

fn build_params(args: &Args) -> Result<DbdcParams, Box<dyn std::error::Error>> {
    let eps: f64 = args.require_as("eps")?;
    let min_pts: usize = args.require_as("min-pts")?;
    let index: dbdc_index::IndexKind = args.get_or("index", dbdc_index::IndexKind::RStar)?;
    let threads: usize = args.get_or("threads", 1)?;
    Ok(DbdcParams::new(eps, min_pts)
        .with_eps_global(parse_eps_global(args)?)
        .with_model(parse_model(args)?)
        .with_index(index)
        .with_threads(threads))
}

fn cmd_generate(raw: &[String]) -> CliResult {
    let args = Args::parse(raw, &["set", "seed", "n", "out", "truth"])?;
    no_positionals(&args)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let g = match args.require("set")? {
        "a" | "A" => match args.get("n") {
            Some(_) => dbdc_datagen::scaled_a(args.require_as("n")?, seed),
            None => dbdc_datagen::dataset_a(seed),
        },
        "b" | "B" => dbdc_datagen::dataset_b(seed),
        "c" | "C" => dbdc_datagen::dataset_c(seed),
        other => return Err(format!("--set expects a|b|c, got {other:?}").into()),
    };
    println!(
        "generated {} points, {} true clusters (suggested: --eps {} --min-pts {})",
        g.data.len(),
        g.truth.n_clusters(),
        g.suggested_eps,
        g.suggested_min_pts
    );
    // Truth labels are written only on request: the default output must be
    // directly consumable by `central`/`run`/`compare`.
    let truth = args.switch("truth").then_some(&g.truth);
    match args.get("out") {
        Some(path) => {
            let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            csv::write_dataset(BufWriter::new(file), &g.data, truth)?;
            println!("wrote {path}");
        }
        None => csv::write_dataset(std::io::stdout().lock(), &g.data, truth)?,
    }
    Ok(())
}

fn cmd_central(raw: &[String]) -> CliResult {
    let args = Args::parse(raw, &["input", "eps", "min-pts", "index", "threads", "out"])?;
    no_positionals(&args)?;
    let data = read_input(&args)?;
    let params = DbdcParams::new(args.require_as("eps")?, args.require_as("min-pts")?)
        .with_index(args.get_or("index", dbdc_index::IndexKind::RStar)?)
        .with_threads(args.get_or("threads", 1)?);
    let (result, elapsed) = central_dbscan(&data, &params);
    println!(
        "central DBSCAN: {} points -> {} clusters, {} noise in {:.1} ms",
        data.len(),
        result.clustering.n_clusters(),
        result.clustering.n_noise(),
        elapsed.as_secs_f64() * 1e3
    );
    write_output(&args, &data, &result.clustering)
}

fn cmd_run(raw: &[String]) -> CliResult {
    let args = Args::parse(
        raw,
        &[
            "input",
            "eps",
            "min-pts",
            "sites",
            "model",
            "eps-global",
            "partitioner",
            "seed",
            "threaded",
            "threads",
            "index",
            "out",
        ],
    )?;
    no_positionals(&args)?;
    let data = read_input(&args)?;
    let params = build_params(&args)?;
    let sites: usize = args.require_as("sites")?;
    let seed: u64 = args.get_or("seed", 42)?;
    let part = parse_partitioner(&args, seed)?;
    let outcome = if args.switch("threaded") {
        run_dbdc_threaded(&data, &params, part, sites)
    } else {
        run_dbdc(&data, &params, part, sites)
    };
    println!(
        "DBDC({}) over {sites} sites: {} clusters, {} noise",
        params.model.name(),
        outcome.assignment.n_clusters(),
        outcome.assignment.n_noise()
    );
    println!(
        "representatives: {} ({:.1}% of data); transfer: {} B up, {} B down",
        outcome.n_representatives,
        100.0 * outcome.representative_fraction(),
        outcome.bytes_up,
        outcome.bytes_down
    );
    println!(
        "timings: local max {:.1} ms, global {:.1} ms, total {:.1} ms",
        outcome.timings.local_max().as_secs_f64() * 1e3,
        outcome.timings.global.as_secs_f64() * 1e3,
        outcome.timings.dbdc_total().as_secs_f64() * 1e3
    );
    write_output(&args, &data, &outcome.assignment)
}

fn cmd_compare(raw: &[String]) -> CliResult {
    let args = Args::parse(
        raw,
        &[
            "input",
            "eps",
            "min-pts",
            "sites",
            "model",
            "eps-global",
            "seed",
            "threads",
            "index",
        ],
    )?;
    no_positionals(&args)?;
    let data = read_input(&args)?;
    let params = build_params(&args)?;
    let sites: usize = args.require_as("sites")?;
    let seed: u64 = args.get_or("seed", 42)?;
    let (central, central_time) = central_dbscan(&data, &params);
    let outcome = run_dbdc(&data, &params, Partitioner::RandomEqual { seed }, sites);
    let p1 = q_dbdc(
        &outcome.assignment,
        &central.clustering,
        ObjectQuality::PI {
            qp: params.min_pts_local,
        },
    );
    let p2 = q_dbdc(&outcome.assignment, &central.clustering, ObjectQuality::PII);
    println!(
        "central: {} clusters in {:.1} ms | DBDC({}): {} clusters in {:.1} ms (speedup {:.2}x)",
        central.clustering.n_clusters(),
        central_time.as_secs_f64() * 1e3,
        params.model.name(),
        outcome.assignment.n_clusters(),
        outcome.timings.dbdc_total().as_secs_f64() * 1e3,
        central_time.as_secs_f64() / outcome.timings.dbdc_total().as_secs_f64()
    );
    println!(
        "quality: P^I {:.1}%  P^II {:.1}%  | representatives {:.1}%  bytes up {}",
        100.0 * p1.q,
        100.0 * p2.q,
        100.0 * outcome.representative_fraction(),
        outcome.bytes_up
    );
    Ok(())
}

fn cmd_plot(raw: &[String]) -> CliResult {
    let args = Args::parse(raw, &["input", "out", "eps", "min-pts", "title", "index"])?;
    no_positionals(&args)?;
    let data = read_input(&args)?;
    if data.dim() != 2 {
        return Err("plot requires 2-d data".into());
    }
    let clustering = match (args.get("eps"), args.get("min-pts")) {
        (Some(_), Some(_)) => {
            let params = DbdcParams::new(args.require_as("eps")?, args.require_as("min-pts")?)
                .with_index(args.get_or("index", dbdc_index::IndexKind::RStar)?);
            let (result, _) = central_dbscan(&data, &params);
            println!(
                "clustered: {} clusters, {} noise",
                result.clustering.n_clusters(),
                result.clustering.n_noise()
            );
            Some(result.clustering)
        }
        (None, None) => None,
        _ => return Err("--eps and --min-pts must be given together".into()),
    };
    let svg = dbdc_geom::svg::scatter_svg(
        &data,
        clustering.as_ref(),
        &[],
        &dbdc_geom::svg::SvgOptions {
            title: args.get("title").unwrap_or_default().to_string(),
            ..Default::default()
        },
    );
    let path = args.require("out")?;
    std::fs::write(path, svg).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

fn cmd_suggest(raw: &[String]) -> CliResult {
    let args = Args::parse(raw, &["input", "k", "index"])?;
    no_positionals(&args)?;
    let data = read_input(&args)?;
    let k: usize = args.get_or("k", 4)?;
    let kind: dbdc_index::IndexKind = args.get_or("index", dbdc_index::IndexKind::RStar)?;
    let index = dbdc_index::build_index(kind, &data, dbdc_geom::Euclidean, 1.0);
    let kd = dbdc_cluster::k_distance(&data, index.as_ref(), k);
    println!("sorted {k}-distance curve: {}", kd.sparkline(60));
    println!(
        "max {:.4}  p10 {:.4}  median {:.4}  p90 {:.4}  min {:.4}",
        kd.quantile(0.0),
        kd.quantile(0.1),
        kd.quantile(0.5),
        kd.quantile(0.9),
        kd.quantile(1.0)
    );
    println!(
        "suggested: --eps {:.4} --min-pts {} (knee of the curve)",
        kd.knee(),
        k + 1
    );
    Ok(())
}

fn cmd_stream(raw: &[String]) -> CliResult {
    let args = Args::parse(
        raw,
        &["input", "eps", "min-pts", "sites", "batch", "drift", "seed"],
    )?;
    no_positionals(&args)?;
    let data = read_input(&args)?;
    let params = DbdcParams::new(args.require_as("eps")?, args.require_as("min-pts")?)
        .with_eps_global(EpsGlobal::MultipleOfLocal(2.0));
    let sites: usize = args.require_as("sites")?;
    let batch: usize = args.get_or("batch", 200)?;
    let drift_threshold: f64 = args.get_or("drift", 0.1)?;
    if sites == 0 {
        return Err("need at least one site".into());
    }
    let mut clients: Vec<dbdc::ClientSession> = (0..sites)
        .map(|s| dbdc::ClientSession::new(s as u32, data.dim(), params))
        .collect();
    let mut server = dbdc::ServerSession::new(data.dim(), 2.0 * params.eps_local, &params);
    let mut transmissions = 0usize;
    let mut batches = 0usize;
    for (i, p) in data.iter().enumerate() {
        clients[i % sites].insert(p);
        if (i + 1) % (batch * sites) == 0 || i + 1 == data.len() {
            batches += 1;
            for c in clients.iter_mut() {
                if c.drift() > drift_threshold {
                    server.ingest(&c.take_model());
                    transmissions += 1;
                }
            }
            let snap = server.snapshot();
            println!(
                "after {:>7} points: {} global clusters from {} representatives ({} transmissions)",
                i + 1,
                snap.n_clusters,
                server.n_representatives(),
                transmissions
            );
        }
    }
    let possible = batches * sites;
    println!(
        "drift gating sent {transmissions} of {possible} possible models ({:.0}% saved)",
        100.0 * (1.0 - transmissions as f64 / possible.max(1) as f64)
    );
    Ok(())
}
