//! `dbdc-cli` — run DBDC from the command line.
//!
//! ```text
//! dbdc-cli generate --set a --seed 42 --out points.csv
//! dbdc-cli central  --input points.csv --eps 1.0 --min-pts 5 --out labels.csv
//! dbdc-cli run      --input points.csv --eps 1.0 --min-pts 5 --sites 4 \
//!                   --model scor --eps-global 2.0 --out labels.csv
//! dbdc-cli compare  --input points.csv --eps 1.0 --min-pts 5 --sites 4
//! ```

use dbdc::observe::cluster_stats;
use dbdc::{
    central_dbscan_recorded, dbdc_run_report, q_dbdc, run_dbdc_recorded,
    run_dbdc_threaded_recorded, DbdcParams, EpsGlobal, ObjectQuality, Partitioner,
};
use dbdc_cli::args::Args;
use dbdc_cli::opts::{
    build_params, finish_report, no_positionals, parse_link, parse_partitioner, quality_stats,
    read_input, wants_report, CliResult,
};
use dbdc_cli::{csv, netcmd};
use dbdc_geom::Dataset;
use dbdc_obs::{fmt_ms, DatasetInfo, NoopRecorder, Recorder, RecordingRecorder, RunReport, Span};
use std::fs::File;
use std::io::BufWriter;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(rest),
        "central" => cmd_central(rest),
        "run" => cmd_run(rest),
        "compare" => cmd_compare(rest),
        "tune" => cmd_tune(rest),
        "plot" => cmd_plot(rest),
        "suggest" => cmd_suggest(rest),
        "stream" => cmd_stream(rest),
        "serve" => netcmd::cmd_serve(rest),
        "site" => netcmd::cmd_site(rest),
        "proxy" => netcmd::cmd_proxy(rest),
        "watch" => netcmd::cmd_watch(rest),
        "report" => cmd_report(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
dbdc-cli — Density Based Distributed Clustering (EDBT 2004)

commands:
  generate --set a|b|c --seed N [--n N] [--out FILE] [--truth]
      write a synthetic test data set as CSV (x,y; --truth appends labels)
  central --input FILE --eps E --min-pts M [--index KIND] [--threads T]
      [--out FILE]
      central DBSCAN over a CSV point file
  run --input FILE --eps E --min-pts M --sites K [--model scor|kmeans]
      [--eps-global MULT|max] [--partitioner random|roundrobin|stripes]
      [--seed N] [--threaded] [--threads T] [--partitions P]
      [--precision f64|f32] [--out FILE]
      the DBDC protocol over K simulated sites
  compare --input FILE --eps E --min-pts M --sites K [--model scor|kmeans]
      [--eps-global MULT|max] [--seed N] [--threads T] [--partitions P]
      [--precision f64|f32]
      run both and report the paper's quality measures
  tune --input FILE --eps E --min-pts M --sites K [--model scor|kmeans]
      [--candidates LIST] [--partitioner ...] [--seed N] [--threads T]
      sweep Eps_global candidates (multipliers or \"max\", default
      1.0,1.5,2.0,2.5,3.0,4.0,max), score each distributed run by its
      ground-truth-free DBCV, print the sweep table, select the argmax
  plot --input FILE --out FILE.svg [--eps E --min-pts M] [--title T]
      render a CSV point file as an SVG scatter plot, clustered with
      DBSCAN when --eps/--min-pts are given
  suggest --input FILE [--k K]
      suggest an Eps via the sorted k-distance knee (k defaults to 4)
  stream --input FILE --eps E --min-pts M --sites K [--batch N]
      [--drift D] [--seed S]
      replay the file as a stream into incremental client sessions and an
      incremental server; report transmissions saved by drift gating
  serve ... / site ...
      the DBDC protocol over real TCP — also built as the standalone
      dbdc-server and dbdc-site binaries; run `dbdc-cli serve --help`
      or `dbdc-cli site --help` for their flags; both take --run-id ID
      so their reports can be merged
  proxy ...
      a fault-injecting TCP forwarder between sites and server; run
      `dbdc-cli proxy --help` for its flags
  watch ADDR [ADDR...] [--interval MS] [--once]
      poll the fleet's --admin-addr /metrics endpoints and render a live
      table of frame/byte rates, retries, per-phase percentiles, and
      session state; run `dbdc-cli watch --help` for details
  report --input FILE [--require NAME,NAME,...]
      [--require-counter NAME,NAME,...] [--require-quality SCOPE,...]
      [--hist]
      render a --metrics-out JSON report; fail unless every --require'd
      name is present as a phase span or histogram scope, every
      --require-counter'd counter is nonzero in some scope, and every
      --require-quality'd scope (global, or a per-site name like
      site[0]) carries a finite DBCV; --hist prints only the histogram
      table
  report diff OLD NEW [--threshold FRACTION]
      [--quality-threshold DROP] [--only SUBSTR]
      compare two reports cell-by-cell (per-histogram p50/p99, plus
      quality/* cells) and exit nonzero on regression; histogram
      tolerance is max(FRACTION, baseline cell spread), FRACTION
      defaulting to 0.25; quality cells gate directionally — rises
      pass, drops beyond the absolute DROP (default 0.10) fail, and
      --threshold never loosens them; --only gates just the cells
      whose name contains SUBSTR
  report merge SERVER [SITE...] --out FILE
      join one server report with its site reports (matched by
      --run-id) into a single fleet report: counters summed, histograms
      bucket-merged, spans grafted under per-site subtrees; a lone
      server report merges into a degenerate fleet report (with a
      warning), which is what a killed fleet leaves behind
  report timeline REPORT --out trace.json
      render a (merged) report's span forest as Chrome trace_event
      JSON — one pid per process, clocks aligned via the handshake
      spans; open in chrome://tracing or ui.perfetto.dev

KIND: linear|grid|kdtree|rstar (default rstar)
T: DBSCAN worker threads; 1 = sequential (default), 0 = all cores.
   The clustering is identical for every value.
P: spatial partitions per site's local phase; 1 = one index over the
   whole shard (default), 0 = one partition per worker thread. Each
   partition is an ε-halo'd stripe along the shard's widest-spread axis
   with its own private index; labels are identical for every value.
--precision f32 stores index coordinates as f32 (half the scan
   bandwidth); approximate near the ε boundary, so `run` also executes
   the f64 oracle and reports label agreement plus the DBCV delta.

observability (every command):
  --trace              print the phase-span tree and counter scopes
  --metrics-out FILE   write the full RunReport as JSON
  --run-id ID          shared run identity stamped into the report
                       (run/compare/serve/site/proxy); `report merge`
                       matches fleet reports on it
  --link lan|wan|slow_uplink|BW:LAT_MS
                       link for the modeled upload/broadcast spans in
                       run/compare reports (default wan); custom links are
                       BYTES_PER_SEC:LATENCY_MS, e.g. 125000:250";

/// A minimal report for commands without a distributed run: one span,
/// the input dataset, and whatever scopes the recorder collected.
fn simple_report(
    command: &str,
    dataset: Option<DatasetInfo>,
    span: Span,
    rec: &RecordingRecorder,
) -> RunReport {
    let mut report = RunReport::new(command);
    report.dataset = dataset;
    report.spans = vec![span];
    report.scopes = rec.scopes();
    report.hists = rec.hist_scopes();
    report
}

fn write_output(
    args: &Args,
    data: &Dataset,
    labels: &dbdc_geom::Clustering,
) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(path) = args.get("out") {
        let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
        csv::write_dataset(BufWriter::new(file), data, Some(labels))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_generate(raw: &[String]) -> CliResult {
    let args = Args::parse(
        raw,
        &["set", "seed", "n", "out", "truth", "trace", "metrics-out"],
    )?;
    no_positionals(&args)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let t0 = Instant::now();
    let g = match args.require("set")? {
        "a" | "A" => match args.get("n") {
            Some(_) => dbdc_datagen::scaled_a(args.require_as("n")?, seed),
            None => dbdc_datagen::dataset_a(seed),
        },
        "b" | "B" => dbdc_datagen::dataset_b(seed),
        "c" | "C" => dbdc_datagen::dataset_c(seed),
        other => return Err(format!("--set expects a|b|c, got {other:?}").into()),
    };
    let gen_time = t0.elapsed();
    println!(
        "generated {} points, {} true clusters (suggested: --eps {} --min-pts {})",
        g.data.len(),
        g.truth.n_clusters(),
        g.suggested_eps,
        g.suggested_min_pts
    );
    // Truth labels are written only on request: the default output must be
    // directly consumable by `central`/`run`/`compare`.
    let truth = args.switch("truth").then_some(&g.truth);
    match args.get("out") {
        Some(path) => {
            let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            csv::write_dataset(BufWriter::new(file), &g.data, truth)?;
            println!("wrote {path}");
        }
        None => csv::write_dataset(std::io::stdout().lock(), &g.data, truth)?,
    }
    if wants_report(&args) {
        let report = simple_report(
            "generate",
            Some(DatasetInfo {
                points: g.data.len(),
                dim: g.data.dim(),
            }),
            Span::new("generate", gen_time),
            &RecordingRecorder::new(),
        )
        .with_param("set", args.require("set")?)
        .with_param("seed", seed);
        finish_report(&args, &report)?;
    }
    Ok(())
}

fn cmd_central(raw: &[String]) -> CliResult {
    let args = Args::parse(
        raw,
        &[
            "input",
            "eps",
            "min-pts",
            "index",
            "threads",
            "out",
            "trace",
            "metrics-out",
        ],
    )?;
    no_positionals(&args)?;
    let data = read_input(&args)?;
    let params = DbdcParams::new(args.require_as("eps")?, args.require_as("min-pts")?)
        .with_index(args.get_or("index", dbdc_index::IndexKind::RStar)?)
        .with_threads(args.get_or("threads", 1)?);
    let wants = wants_report(&args);
    let rec = RecordingRecorder::new();
    let recorder: &dyn Recorder = if wants { &rec } else { &NoopRecorder };
    let (result, elapsed) = central_dbscan_recorded(&data, &params, recorder);
    println!(
        "central DBSCAN: {} points -> {} clusters, {} noise in {}",
        data.len(),
        result.clustering.n_clusters(),
        result.clustering.n_noise(),
        fmt_ms(elapsed)
    );
    if wants {
        let mut report = RunReport::new("central")
            .with_param("eps_local", params.eps_local)
            .with_param("min_pts_local", params.min_pts_local)
            .with_param("index", params.index.name())
            .with_param("threads", params.threads);
        report.dataset = Some(DatasetInfo {
            points: data.len(),
            dim: data.dim(),
        });
        report.spans = rec.spans();
        report.scopes = rec.scopes();
        report.hists = rec.hist_scopes();
        report.clusters = Some(cluster_stats(
            result.clustering.n_clusters() as usize,
            result.clustering.labels(),
        ));
        finish_report(&args, &report)?;
    }
    write_output(&args, &data, &result.clustering)
}

fn cmd_run(raw: &[String]) -> CliResult {
    let args = Args::parse(
        raw,
        &[
            "input",
            "eps",
            "min-pts",
            "sites",
            "model",
            "eps-global",
            "partitioner",
            "seed",
            "threaded",
            "threads",
            "partitions",
            "precision",
            "index",
            "out",
            "trace",
            "metrics-out",
            "link",
            "run-id",
        ],
    )?;
    no_positionals(&args)?;
    let data = read_input(&args)?;
    let params = build_params(&args)?;
    let sites: usize = args.require_as("sites")?;
    let seed: u64 = args.get_or("seed", 42)?;
    let part = parse_partitioner(&args, seed)?;
    let link = parse_link(&args)?;
    let wants = wants_report(&args);
    let rec = RecordingRecorder::new();
    let recorder: &dyn Recorder = if wants { &rec } else { &NoopRecorder };
    let outcome = if args.switch("threaded") {
        run_dbdc_threaded_recorded(&data, &params, part, sites, recorder)
    } else {
        run_dbdc_recorded(&data, &params, part, sites, recorder)
    };
    println!(
        "DBDC({}) over {sites} sites: {} clusters, {} noise",
        params.model.name(),
        outcome.assignment.n_clusters(),
        outcome.assignment.n_noise()
    );
    println!(
        "representatives: {} ({:.1}% of data); transfer: {} B up, {} B down",
        outcome.n_representatives,
        100.0 * outcome.representative_fraction(),
        outcome.bytes_up,
        outcome.bytes_down
    );
    println!(
        "per-site upload bytes: {:?}; global model: {} B per site",
        outcome.per_site_bytes_up, outcome.global_model_bytes
    );
    println!(
        "timings: local max {}, global {}, total {}",
        fmt_ms(outcome.timings.local_max()),
        fmt_ms(outcome.timings.global),
        fmt_ms(outcome.timings.dbdc_total())
    );
    // --precision f32 is approximate near the ε boundary, so the run is
    // judged against the bit-exact f64 oracle: the same data, partitioner,
    // and parameters, with only the scan precision flipped back.
    let oracle = (params.precision == dbdc_index::Precision::F32).then(|| {
        let oracle_params = params.with_precision(dbdc_index::Precision::F64);
        if args.switch("threaded") {
            run_dbdc_threaded_recorded(&data, &oracle_params, part, sites, &NoopRecorder)
        } else {
            run_dbdc_recorded(&data, &oracle_params, part, sites, &NoopRecorder)
        }
    });
    let agreement = oracle
        .as_ref()
        .map(|o| label_agreement(&outcome.assignment, &o.assignment));
    if let Some(frac) = agreement {
        println!("f32 vs f64 oracle: {:.2}% label agreement", 100.0 * frac);
    }
    if wants {
        // DBCV is the ground-truth-free validity of the final labeling;
        // computed only when a report is requested (it reads the whole
        // dataset again).
        let quality = quality_stats(&data, &outcome.assignment, params.index, recorder);
        println!(
            "quality: DBCV {:+.4} over {} cluster(s), {} noise",
            quality.dbcv, quality.clusters, quality.noise
        );
        let mut report = dbdc_run_report(
            "run",
            data.dim(),
            &params,
            &outcome,
            &rec,
            Some(link),
            args.get("run-id").map(String::from),
        );
        if let (Some(frac), Some(o)) = (agreement, &oracle) {
            let oracle_q = quality_stats(&data, &o.assignment, params.index, &NoopRecorder);
            let delta = quality.dbcv - oracle_q.dbcv;
            println!(
                "f32 DBCV {:+.4} vs f64 oracle {:+.4} (delta {:+.4})",
                quality.dbcv, oracle_q.dbcv, delta
            );
            report
                .params
                .push(("f32_label_agreement".into(), format!("{frac:.6}")));
            report
                .params
                .push(("f32_dbcv_delta".into(), format!("{delta:+.6}")));
        }
        report.quality = Some(quality);
        finish_report(&args, &report)?;
    }
    write_output(&args, &data, &outcome.assignment)
}

/// Fraction of points on which two clusterings agree, under the greedy
/// first-occurrence bijection between their cluster ids: noise must map
/// to noise, and two clustered points agree only while the id mapping
/// stays one-to-one in both directions.
fn label_agreement(a: &dbdc_geom::Clustering, b: &dbdc_geom::Clustering) -> f64 {
    use std::collections::HashMap;
    assert_eq!(
        a.labels().len(),
        b.labels().len(),
        "clusterings must cover the same points"
    );
    if a.labels().is_empty() {
        return 1.0;
    }
    let mut fwd: HashMap<u32, u32> = HashMap::new();
    let mut rev: HashMap<u32, u32> = HashMap::new();
    let mut same = 0usize;
    for (la, lb) in a.labels().iter().zip(b.labels()) {
        match (la.cluster(), lb.cluster()) {
            (None, None) => same += 1,
            (Some(ca), Some(cb)) => {
                let f = *fwd.entry(ca).or_insert(cb);
                let r = *rev.entry(cb).or_insert(ca);
                if f == cb && r == ca {
                    same += 1;
                }
            }
            _ => {}
        }
    }
    same as f64 / a.labels().len() as f64
}

fn cmd_compare(raw: &[String]) -> CliResult {
    let args = Args::parse(
        raw,
        &[
            "input",
            "eps",
            "min-pts",
            "sites",
            "model",
            "eps-global",
            "seed",
            "threads",
            "partitions",
            "precision",
            "index",
            "trace",
            "metrics-out",
            "link",
            "run-id",
        ],
    )?;
    no_positionals(&args)?;
    let data = read_input(&args)?;
    let params = build_params(&args)?;
    let sites: usize = args.require_as("sites")?;
    let seed: u64 = args.get_or("seed", 42)?;
    let link = parse_link(&args)?;
    let wants = wants_report(&args);
    let rec = RecordingRecorder::new();
    let recorder: &dyn Recorder = if wants { &rec } else { &NoopRecorder };
    let (central, central_time) = central_dbscan_recorded(&data, &params, recorder);
    let outcome = run_dbdc_recorded(
        &data,
        &params,
        Partitioner::RandomEqual { seed },
        sites,
        recorder,
    );
    let p1 = q_dbdc(
        &outcome.assignment,
        &central.clustering,
        ObjectQuality::PI {
            qp: params.min_pts_local,
        },
    );
    let p2 = q_dbdc(&outcome.assignment, &central.clustering, ObjectQuality::PII);
    println!(
        "central: {} clusters in {} | DBDC({}): {} clusters in {} (speedup {:.2}x)",
        central.clustering.n_clusters(),
        fmt_ms(central_time),
        params.model.name(),
        outcome.assignment.n_clusters(),
        fmt_ms(outcome.timings.dbdc_total()),
        central_time.as_secs_f64() / outcome.timings.dbdc_total().as_secs_f64()
    );
    println!(
        "quality: P^I {:.1}%  P^II {:.1}%  | representatives {:.1}%  bytes up {}",
        100.0 * p1.q,
        100.0 * p2.q,
        100.0 * outcome.representative_fraction(),
        outcome.bytes_up
    );
    println!(
        "per-site upload bytes: {:?}; global model: {} B per site",
        outcome.per_site_bytes_up, outcome.global_model_bytes
    );
    if wants {
        // The paper's reference-based breakdown becomes counters so
        // `--metrics-out` captures what the stdout line above prints;
        // P^II is the finer measure, so its per-object breakdown is the
        // one recorded (the noise splits are identical under both).
        if let Some(sheet) = rec.sheet("quality") {
            sheet.add_quality_breakdown(
                p2.perfect as u64,
                p2.zero as u64,
                p2.noise_both as u64,
                p2.noise_distr_only as u64,
                p2.noise_central_only as u64,
            );
        }
        let mut quality = quality_stats(&data, &outcome.assignment, params.index, recorder);
        quality.q_dbdc_p1 = Some(p1.q);
        quality.q_dbdc_p2 = Some(p2.q);
        let mut report = dbdc_run_report(
            "compare",
            data.dim(),
            &params,
            &outcome,
            &rec,
            Some(link),
            args.get("run-id").map(String::from),
        );
        report.params.push(("p_i".into(), format!("{:.4}", p1.q)));
        report.params.push(("p_ii".into(), format!("{:.4}", p2.q)));
        report.quality = Some(quality);
        finish_report(&args, &report)?;
    }
    Ok(())
}

/// Default `tune` sweep grid. Includes the CLI's default Eps_global
/// (`x2.0`) so the selection can never score below the out-of-the-box
/// setting, plus the paper-motivated extreme (`max`).
const TUNE_CANDIDATES: &str = "1.0,1.5,2.0,2.5,3.0,4.0,max";

fn cmd_tune(raw: &[String]) -> CliResult {
    let args = Args::parse(
        raw,
        &[
            "input",
            "eps",
            "min-pts",
            "sites",
            "model",
            "candidates",
            "partitioner",
            "seed",
            "threads",
            "index",
            "trace",
            "metrics-out",
            "run-id",
        ],
    )?;
    no_positionals(&args)?;
    let data = read_input(&args)?;
    let base = build_params(&args)?;
    let sites: usize = args.require_as("sites")?;
    let seed: u64 = args.get_or("seed", 42)?;
    let part = parse_partitioner(&args, seed)?;
    let spec = args.get("candidates").unwrap_or(TUNE_CANDIDATES);
    let mut candidates: Vec<(String, EpsGlobal)> = Vec::new();
    for tok in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        let eg =
            match tok {
                "max" => EpsGlobal::MaxEpsRange,
                v => EpsGlobal::MultipleOfLocal(v.parse().map_err(|_| {
                    format!("--candidates expects multipliers or \"max\", got {v:?}")
                })?),
            };
        candidates.push((tok.to_string(), eg));
    }
    if candidates.is_empty() {
        return Err("--candidates is empty".into());
    }

    let wants = wants_report(&args);
    let rec = RecordingRecorder::new();
    let recorder: &dyn Recorder = if wants { &rec } else { &NoopRecorder };
    let t0 = Instant::now();
    let mut rows = Vec::with_capacity(candidates.len());
    let mut spans = Vec::with_capacity(candidates.len());
    println!(
        "{:<12} {:>8} {:>7} {:>7} {:>10} {:>8}",
        "eps_global", "clusters", "noise", "reps%", "bytes_up", "DBCV"
    );
    for (name, eg) in &candidates {
        let params = base.with_eps_global(*eg);
        let c0 = Instant::now();
        let outcome = run_dbdc_recorded(&data, &params, part, sites, &NoopRecorder);
        // The sweep is scored by DBCV alone: ground-truth-free, so the
        // same procedure works on unlabeled production data.
        let quality = quality_stats(&data, &outcome.assignment, params.index, recorder);
        spans.push(Span::new(format!("candidate[{name}]"), c0.elapsed()));
        println!(
            "{:<12} {:>8} {:>7} {:>6.1}% {:>10} {:>+8.4}",
            name,
            quality.clusters,
            quality.noise,
            100.0 * outcome.representative_fraction(),
            outcome.bytes_up,
            quality.dbcv
        );
        rows.push((name.clone(), quality));
    }
    // Argmax by DBCV; ties keep the earliest (smallest) candidate, so a
    // flat curve still picks the cheapest Eps_global.
    let best = rows
        .iter()
        .enumerate()
        .max_by(|(ia, (_, a)), (ib, (_, b))| {
            a.dbcv
                .partial_cmp(&b.dbcv)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(ib.cmp(ia))
        })
        .map(|(i, _)| i)
        .unwrap_or(0);
    let (best_name, best_quality) = &rows[best];
    println!(
        "selected --eps-global {best_name} (DBCV {:+.4})",
        best_quality.dbcv
    );

    if wants {
        let mut root = Span::new("tune", t0.elapsed());
        for s in spans {
            root.push(s);
        }
        let mut report = RunReport::new("tune")
            .with_identity("tune", args.get("run-id").map(String::from), "tune")
            .with_param("eps_local", base.eps_local)
            .with_param("min_pts_local", base.min_pts_local)
            .with_param("sites", sites)
            .with_param("candidates", spec)
            .with_param("selected_eps_global", best_name.as_str());
        report.dataset = Some(DatasetInfo {
            points: data.len(),
            dim: data.dim(),
        });
        for (name, q) in &rows {
            report
                .params
                .push((format!("dbcv[{name}]"), format!("{:.6}", q.dbcv)));
        }
        report.spans = vec![root];
        report.scopes = rec.scopes();
        report.hists = rec.hist_scopes();
        report.quality = Some(best_quality.clone());
        finish_report(&args, &report)?;
    }
    Ok(())
}

fn cmd_plot(raw: &[String]) -> CliResult {
    let args = Args::parse(
        raw,
        &[
            "input",
            "out",
            "eps",
            "min-pts",
            "title",
            "index",
            "trace",
            "metrics-out",
        ],
    )?;
    no_positionals(&args)?;
    let data = read_input(&args)?;
    if data.dim() != 2 {
        return Err("plot requires 2-d data".into());
    }
    let wants = wants_report(&args);
    let rec = RecordingRecorder::new();
    let recorder: &dyn Recorder = if wants { &rec } else { &NoopRecorder };
    let t0 = Instant::now();
    let clustering = match (args.get("eps"), args.get("min-pts")) {
        (Some(_), Some(_)) => {
            let params = DbdcParams::new(args.require_as("eps")?, args.require_as("min-pts")?)
                .with_index(args.get_or("index", dbdc_index::IndexKind::RStar)?);
            let (result, _) = central_dbscan_recorded(&data, &params, recorder);
            println!(
                "clustered: {} clusters, {} noise",
                result.clustering.n_clusters(),
                result.clustering.n_noise()
            );
            Some(result.clustering)
        }
        (None, None) => None,
        _ => return Err("--eps and --min-pts must be given together".into()),
    };
    let svg = dbdc_geom::svg::scatter_svg(
        &data,
        clustering.as_ref(),
        &[],
        &dbdc_geom::svg::SvgOptions {
            title: args.get("title").unwrap_or_default().to_string(),
            ..Default::default()
        },
    );
    let path = args.require("out")?;
    std::fs::write(path, svg).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("wrote {path}");
    if wants {
        let mut report = simple_report(
            "plot",
            Some(DatasetInfo {
                points: data.len(),
                dim: data.dim(),
            }),
            Span::new("plot", t0.elapsed()),
            &rec,
        );
        // The central span (if any) arrives from the recorder.
        report.spans.extend(rec.spans());
        if let Some(c) = &clustering {
            report.clusters = Some(cluster_stats(c.n_clusters() as usize, c.labels()));
        }
        finish_report(&args, &report)?;
    }
    Ok(())
}

fn cmd_suggest(raw: &[String]) -> CliResult {
    let args = Args::parse(raw, &["input", "k", "index", "trace", "metrics-out"])?;
    no_positionals(&args)?;
    let data = read_input(&args)?;
    let k: usize = args.get_or("k", 4)?;
    let kind: dbdc_index::IndexKind = args.get_or("index", dbdc_index::IndexKind::RStar)?;
    let wants = wants_report(&args);
    let rec = RecordingRecorder::new();
    let sheet = if wants { rec.sheet("suggest") } else { None };
    let t0 = Instant::now();
    let index =
        dbdc_index::build_index_observed(kind, &data, dbdc_geom::Euclidean, 1.0, sheet.as_ref());
    let kd = dbdc_cluster::k_distance(&data, index.as_ref(), k);
    let kd_time = t0.elapsed();
    println!("sorted {k}-distance curve: {}", kd.sparkline(60));
    println!(
        "max {:.4}  p10 {:.4}  median {:.4}  p90 {:.4}  min {:.4}",
        kd.quantile(0.0),
        kd.quantile(0.1),
        kd.quantile(0.5),
        kd.quantile(0.9),
        kd.quantile(1.0)
    );
    println!(
        "suggested: --eps {:.4} --min-pts {} (knee of the curve)",
        kd.knee(),
        k + 1
    );
    if wants {
        let report = simple_report(
            "suggest",
            Some(DatasetInfo {
                points: data.len(),
                dim: data.dim(),
            }),
            Span::new("suggest", kd_time),
            &rec,
        )
        .with_param("k", k)
        .with_param("index", kind.name());
        finish_report(&args, &report)?;
    }
    Ok(())
}

fn cmd_stream(raw: &[String]) -> CliResult {
    let args = Args::parse(
        raw,
        &[
            "input",
            "eps",
            "min-pts",
            "sites",
            "batch",
            "drift",
            "seed",
            "trace",
            "metrics-out",
        ],
    )?;
    no_positionals(&args)?;
    let data = read_input(&args)?;
    let params = DbdcParams::new(args.require_as("eps")?, args.require_as("min-pts")?)
        .with_eps_global(EpsGlobal::MultipleOfLocal(2.0));
    let sites: usize = args.require_as("sites")?;
    let batch: usize = args.get_or("batch", 200)?;
    let drift_threshold: f64 = args.get_or("drift", 0.1)?;
    if sites == 0 {
        return Err("need at least one site".into());
    }
    let t0 = Instant::now();
    let mut clients: Vec<dbdc::ClientSession> = (0..sites)
        .map(|s| dbdc::ClientSession::new(s as u32, data.dim(), params))
        .collect();
    let mut server = dbdc::ServerSession::new(data.dim(), 2.0 * params.eps_local, &params);
    let mut transmissions = 0usize;
    let mut batches = 0usize;
    for (i, p) in data.iter().enumerate() {
        clients[i % sites].insert(p);
        if (i + 1) % (batch * sites) == 0 || i + 1 == data.len() {
            batches += 1;
            for c in clients.iter_mut() {
                if c.drift() > drift_threshold {
                    server.ingest(&c.take_model());
                    transmissions += 1;
                }
            }
            let snap = server.snapshot();
            println!(
                "after {:>7} points: {} global clusters from {} representatives ({} transmissions)",
                i + 1,
                snap.n_clusters,
                server.n_representatives(),
                transmissions
            );
        }
    }
    let possible = batches * sites;
    println!(
        "drift gating sent {transmissions} of {possible} possible models ({:.0}% saved)",
        100.0 * (1.0 - transmissions as f64 / possible.max(1) as f64)
    );
    if wants_report(&args) {
        let report = simple_report(
            "stream",
            Some(DatasetInfo {
                points: data.len(),
                dim: data.dim(),
            }),
            Span::new("stream", t0.elapsed()),
            &RecordingRecorder::new(),
        )
        .with_param("sites", sites)
        .with_param("batch", batch)
        .with_param("transmissions", transmissions)
        .with_param("possible_transmissions", possible);
        finish_report(&args, &report)?;
    }
    Ok(())
}

fn load_report(path: &str) -> Result<RunReport, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    RunReport::parse(&text).map_err(|e| format!("{path}: {e}").into())
}

fn cmd_report(raw: &[String]) -> CliResult {
    let args = Args::parse(
        raw,
        &[
            "input",
            "require",
            "require-counter",
            "require-quality",
            "hist",
            "threshold",
            "quality-threshold",
            "only",
            "out",
        ],
    )?;
    // `report diff OLD NEW`, `report merge SERVER SITE...`, and
    // `report timeline REPORT` are positional sub-forms; everything
    // else is the single-report validator/renderer.
    match args.positional().first().map(String::as_str) {
        Some("diff") => return cmd_report_diff(&args),
        Some("merge") => return cmd_report_merge(&args),
        Some("timeline") => return cmd_report_timeline(&args),
        _ => {}
    }
    no_positionals(&args)?;
    let path = args.require("input")?;
    let report = load_report(path)?;
    if let Some(required) = args.get("require") {
        // A required name may be satisfied by a phase span *or* a
        // histogram scope: latency distributions like `net/session_ns`
        // have no span of their own.
        let missing: Vec<&str> = required
            .split(',')
            .map(str::trim)
            .filter(|name| {
                !name.is_empty()
                    && report.find_span(name).is_none()
                    && !report.hists.iter().any(|(n, _)| n == name)
            })
            .collect();
        if !missing.is_empty() {
            // Name what IS there: a failed gate is usually a typo or a
            // scope that moved, and the fix is picking from this list.
            let mut present: Vec<String> = Vec::new();
            for root in &report.spans {
                collect_span_names(root, &mut present);
            }
            present.extend(report.hists.iter().map(|(n, _)| n.clone()));
            return Err(format!(
                "{path}: report is missing required span(s)/histogram(s): {}\n\
                 present spans/histograms: {}",
                missing.join(", "),
                if present.is_empty() {
                    "(none)".to_string()
                } else {
                    present.join(", ")
                }
            )
            .into());
        }
    }
    if let Some(required) = args.get("require-counter") {
        // A counter "exists" when some scope recorded a nonzero value:
        // an all-zero counter means the instrumentation never fired,
        // which is exactly the wiring regression this flag guards.
        let missing: Vec<&str> = required
            .split(',')
            .map(str::trim)
            .filter(|name| !name.is_empty() && !report_counter_nonzero(&report, name))
            .collect();
        if !missing.is_empty() {
            return Err(format!(
                "{path}: required counter(s) absent or zero in every scope: {}",
                missing.join(", ")
            )
            .into());
        }
    }
    if let Some(required) = args.get("require-quality") {
        // `global` demands the report's own quality block; any other
        // name demands a per-site quality entry (as `report merge`
        // repopulates them). Either way the DBCV must be finite — a NaN
        // from a broken scorer must not pass a quality gate.
        let missing: Vec<&str> = required
            .split(',')
            .map(str::trim)
            .filter(|name| !name.is_empty() && !report_quality_present(&report, name))
            .collect();
        if !missing.is_empty() {
            return Err(format!(
                "{path}: report is missing finite quality for scope(s): {}",
                missing.join(", ")
            )
            .into());
        }
    }
    if args.switch("hist") {
        // Distributions only; the full render below would repeat them.
        print!("{}", dbdc_obs::report::render_hists(&report.hists));
        return Ok(());
    }
    print!("{}", report.render());
    Ok(())
}

/// Every span name in the tree, depth-first — the "what is actually in
/// this report" list a failed `--require` prints.
fn collect_span_names(span: &Span, out: &mut Vec<String>) {
    out.push(span.name.clone());
    for child in &span.children {
        collect_span_names(child, out);
    }
}

/// Whether the report carries a finite DBCV for the given quality
/// scope: `global` is the report's own quality block, anything else is
/// a per-site entry name.
fn report_quality_present(report: &RunReport, name: &str) -> bool {
    let Some(q) = &report.quality else {
        return false;
    };
    match name {
        "global" => q.dbcv.is_finite(),
        peer => q.per_site.iter().any(|(p, v)| p == peer && v.is_finite()),
    }
}

/// Whether `name` is a known counter field with a nonzero total across
/// the report's scopes.
fn report_counter_nonzero(report: &RunReport, name: &str) -> bool {
    let Some(idx) = dbdc_obs::Counters::FIELDS.iter().position(|f| *f == name) else {
        return false;
    };
    report.scopes.iter().any(|(_, c)| c.values()[idx] != 0)
}

/// `report merge SERVER [SITE...] --out FILE`: join one server report
/// with its site reports into a single fleet report. A server report
/// alone is accepted — the degenerate fleet a killed run leaves behind
/// — and merges with a warning.
fn cmd_report_merge(args: &Args) -> CliResult {
    let positional = args.positional();
    if positional.len() < 2 {
        return Err("usage: report merge SERVER [SITE...] --out FILE".into());
    }
    let out = args.require("out")?;
    let server = load_report(&positional[1])?;
    let sites: Vec<RunReport> = positional[2..]
        .iter()
        .map(|p| load_report(p))
        .collect::<Result<_, _>>()?;
    let site_refs: Vec<&RunReport> = sites.iter().collect();
    let (merged, warnings) =
        dbdc_obs::merge_reports(&server, &site_refs).map_err(|e| format!("report merge: {e}"))?;
    for w in &warnings {
        eprintln!("warning: {w}");
    }
    std::fs::write(out, merged.to_json_string()).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "merged 1 server + {} site report(s) into {out}{}",
        sites.len(),
        if warnings.is_empty() {
            String::new()
        } else {
            format!(" ({} warning(s))", warnings.len())
        }
    );
    Ok(())
}

/// `report timeline REPORT --out trace.json`: export the span forest as
/// Chrome trace_event JSON.
fn cmd_report_timeline(args: &Args) -> CliResult {
    let [_, path] = args.positional() else {
        return Err("usage: report timeline REPORT --out trace.json".into());
    };
    let out = args.require("out")?;
    let report = load_report(path)?;
    let trace = dbdc_obs::chrome_trace(&report).map_err(|e| format!("report timeline: {e}"))?;
    let events = trace
        .get("traceEvents")
        .and_then(dbdc_obs::Json::as_arr)
        .map(<[_]>::len)
        .unwrap_or(0);
    std::fs::write(out, trace.to_string_pretty())
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out} ({events} events); open in chrome://tracing or ui.perfetto.dev");
    Ok(())
}

fn cmd_report_diff(args: &Args) -> CliResult {
    let [_, old_path, new_path] = args.positional() else {
        return Err("usage: report diff OLD NEW [--threshold FRACTION] \
             [--quality-threshold DROP] [--only SUBSTR]"
            .into());
    };
    let threshold: f64 = args.get_or("threshold", dbdc_obs::diff::DEFAULT_THRESHOLD)?;
    if !(0.0..10.0).contains(&threshold) {
        return Err(format!("--threshold expects a fraction like 0.25, got {threshold}").into());
    }
    // Quality is gated separately and directionally: a rise always
    // passes, a drop beyond this absolute tolerance fails, and the
    // latency --threshold never loosens it.
    let quality_tolerance: f64 =
        args.get_or("quality-threshold", dbdc_obs::QUALITY_DROP_TOLERANCE)?;
    if !(0.0..=2.0).contains(&quality_tolerance) {
        return Err(format!(
            "--quality-threshold expects an absolute DBCV drop in 0..=2, got {quality_tolerance}"
        )
        .into());
    }
    let old = load_report(old_path)?;
    let new = load_report(new_path)?;
    let mut rows = dbdc_obs::diff_reports_with(&old, &new, threshold, quality_tolerance);
    // `--only SUBSTR` narrows the gate to matching cells (e.g. CI fails
    // on `eps_range_ns` regressions while the full diff stays advisory).
    if let Some(only) = args.get("only") {
        rows.retain(|r| r.cell.contains(only));
        if rows.is_empty() {
            return Err(format!("--only {only}: no cell matches").into());
        }
    }
    if rows.is_empty() {
        println!("no cells to compare (baseline has no hists or quality)");
        return Ok(());
    }
    for row in &rows {
        println!("{}", row.render());
    }
    let failures = rows.iter().filter(|r| r.outcome.is_failure()).count();
    if failures > 0 {
        return Err(format!(
            "{failures} regression(s) against {old_path} (threshold {:.0}%, widened by baseline spread)",
            threshold * 1e2
        )
        .into());
    }
    println!("ok: {} cell(s) within tolerance of {old_path}", rows.len());
    Ok(())
}
