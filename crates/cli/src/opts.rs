//! Flag parsing shared by every DBDC binary: protocol parameters,
//! partitioners, links, input files, and report emission.

use crate::args::Args;
use crate::csv;
use dbdc::{DbdcParams, EpsGlobal, LocalModelKind, Partitioner};
use dbdc_cluster::dbcv::{dbcv_with, CorePath};
use dbdc_geom::{Clustering, Dataset, Euclidean};
use dbdc_obs::{QualityStats, Recorder, RunReport};
use std::fs::File;
use std::io::BufReader;

/// Past this many points the exact `O(nᵢ²)` core-distance sum gives way
/// to the index-accelerated truncated path (still exact for clusters of
/// up to [`QUALITY_KNN_K`] objects).
const QUALITY_EXACT_LIMIT: usize = 4_096;

/// Within-cluster neighbours the truncated core-distance sum keeps.
const QUALITY_KNN_K: usize = 64;

/// Scores a clustering with the ground-truth-free DBCV index and packs
/// the result as the report's `quality` block. Every emitter (run,
/// compare, site, serve, tune) funnels through here so they all use the
/// same core-distance policy; the DBCV hot-loop counters land in the
/// recorder's `quality` scope.
pub fn quality_stats(
    data: &Dataset,
    labels: &Clustering,
    index: dbdc_index::IndexKind,
    rec: &dyn Recorder,
) -> QualityStats {
    let path = if data.len() <= QUALITY_EXACT_LIMIT {
        CorePath::Exact
    } else {
        CorePath::Knn {
            k: QUALITY_KNN_K,
            index,
        }
    };
    let out = dbcv_with(data, labels, Euclidean, path, rec);
    QualityStats::from_dbcv(out.value, out.n_clusters, out.n_noise, out.cluster_validity)
}

/// Every subcommand's result type.
pub type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Whether the command should assemble a [`RunReport`] at all.
pub fn wants_report(args: &Args) -> bool {
    args.switch("trace") || args.get("metrics-out").is_some()
}

/// Emits an assembled report: `--trace` prints the rendered form,
/// `--metrics-out FILE` writes the JSON.
pub fn finish_report(args: &Args, report: &RunReport) -> CliResult {
    if args.switch("trace") {
        print!("{}", report.render());
    }
    if let Some(path) = args.get("metrics-out") {
        std::fs::write(path, report.to_json_string())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// The modeled-transfer link for run/compare reports: a preset name or a
/// custom `BYTES_PER_SEC:LATENCY_MS` spec, validated here so a typo'd
/// link surfaces as a CLI error instead of a panic in the cost model.
pub fn parse_link(args: &Args) -> Result<&str, Box<dyn std::error::Error>> {
    let link = args.get("link").unwrap_or("wan");
    dbdc::NetworkModel::from_spec(link).map_err(|e| format!("--link: {e}"))?;
    Ok(link)
}

/// Rejects stray positional arguments — every subcommand is flag-driven.
pub fn no_positionals(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    match args.positional() {
        [] => Ok(()),
        extra => Err(format!("unexpected arguments: {extra:?}").into()),
    }
}

/// Loads the `--input` CSV point file.
pub fn read_input(args: &Args) -> Result<Dataset, Box<dyn std::error::Error>> {
    let path = args.require("input")?;
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    Ok(csv::read_dataset(BufReader::new(file))?)
}

/// Parses `--eps-global` (a multiplier of `--eps`, or `max`).
pub fn parse_eps_global(args: &Args) -> Result<EpsGlobal, Box<dyn std::error::Error>> {
    match args.get("eps-global") {
        None => Ok(EpsGlobal::MultipleOfLocal(2.0)),
        Some("max") => Ok(EpsGlobal::MaxEpsRange),
        Some(v) => {
            let mult: f64 = v
                .parse()
                .map_err(|_| format!("--eps-global expects a multiplier or \"max\", got {v:?}"))?;
            Ok(EpsGlobal::MultipleOfLocal(mult))
        }
    }
}

/// Parses `--model` (scor|kmeans).
pub fn parse_model(args: &Args) -> Result<LocalModelKind, Box<dyn std::error::Error>> {
    match args.get("model") {
        None | Some("scor") => Ok(LocalModelKind::Scor),
        Some("kmeans") => Ok(LocalModelKind::KMeans),
        Some(v) => Err(format!("--model expects scor|kmeans, got {v:?}").into()),
    }
}

/// Parses `--partitioner` (random|roundrobin|stripes).
pub fn parse_partitioner(
    args: &Args,
    seed: u64,
) -> Result<Partitioner, Box<dyn std::error::Error>> {
    match args.get("partitioner") {
        None | Some("random") => Ok(Partitioner::RandomEqual { seed }),
        Some("roundrobin") => Ok(Partitioner::RoundRobin),
        Some("stripes") => Ok(Partitioner::SpatialStripes { axis: 0 }),
        Some(v) => {
            Err(format!("--partitioner expects random|roundrobin|stripes, got {v:?}").into())
        }
    }
}

/// Builds the full [`DbdcParams`] from `--eps`, `--min-pts`, and the
/// optional model/index/threads/partitions/precision flags.
pub fn build_params(args: &Args) -> Result<DbdcParams, Box<dyn std::error::Error>> {
    let eps: f64 = args.require_as("eps")?;
    let min_pts: usize = args.require_as("min-pts")?;
    let index: dbdc_index::IndexKind = args.get_or("index", dbdc_index::IndexKind::RStar)?;
    let threads: usize = args.get_or("threads", 1)?;
    let partitions: usize = args.get_or("partitions", 1)?;
    let precision: dbdc_index::Precision = args.get_or("precision", dbdc_index::Precision::F64)?;
    Ok(DbdcParams::new(eps, min_pts)
        .with_eps_global(parse_eps_global(args)?)
        .with_model(parse_model(args)?)
        .with_index(index)
        .with_threads(threads)
        .with_partitions(partitions)
        .with_precision(precision))
}
