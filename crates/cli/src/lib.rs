//! Shared plumbing of the DBDC command-line tools.
//!
//! Three binaries are built on this library: `dbdc-cli` (the original
//! single-process driver), and the networked pair `dbdc-server` /
//! `dbdc-site` ([`netcmd`]), which run the same protocol over real TCP
//! via [`dbdc_net`].

pub mod args;
pub mod csv;
pub mod netcmd;
pub mod opts;
