//! The networked subcommands: `serve` (the DBDC server) and `site`
//! (one client site), also exposed as the standalone `dbdc-server` and
//! `dbdc-site` binaries.
//!
//! Together they run the exact protocol of `dbdc-cli run`, but over
//! real TCP: every site process loads the shared input file, derives
//! *its own* partition with the shared `--partitioner`/`--seed`
//! (deterministic, so no coordinator has to ship data around), runs
//! the local phase, and exchanges wire-encoded models with the server.
//! The resulting `--metrics-out` reports carry **measured**
//! `upload`/`broadcast` spans — real socket walls, where the
//! single-process runtime can only model them from byte counts.
//!
//! Rendezvous: the server binds (`--bind`, default an ephemeral
//! loopback port) and writes the bound address to `--addr-file`; sites
//! either poll that file (`--addr-file`, `--wait-ms`) or take an
//! explicit `--connect HOST:PORT`.

use crate::args::Args;
use crate::opts::{
    build_params, finish_report, no_positionals, parse_partitioner, quality_stats, read_input,
    wants_report, CliResult,
};
use dbdc_geom::{Clustering, Dataset, Label};
use dbdc_net::{run_site, serve, FaultPlan, FaultProxy, RetryPolicy, ServeOptions, SiteOptions};
use dbdc_obs::{
    fmt_ms, DatasetInfo, EnvFingerprint, NoopRecorder, Recorder, RecordingRecorder, RunReport,
    SiteStats, Span, TransferStats,
};
use std::io::Write;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Usage text of the `serve` subcommand / `dbdc-server` binary.
pub const SERVE_USAGE: &str = "\
dbdc-server — the DBDC server half over real TCP

usage: dbdc-server --sites K --eps E --min-pts M
    [--model scor|kmeans] [--eps-global MULT|max] [--index KIND]
    [--bind ADDR]          listen address (default 127.0.0.1:0)
    [--addr-file FILE]     write the bound address here (atomically) for
                           sites to poll
    [--read-timeout-ms N]  per-read socket timeout (default 2000); also
                           paces broadcast resends
    [--resend N]           broadcast resends per connection (default 3)
    [--deadline-ms N]      overall run ceiling (default 60000)
    [--drain-ms N]         replay window after all sites acked (default
                           1000; keep above the sites' backoff ceiling)
    [--run-id ID]          stamp the report with a shared run identity so
                           `report merge` can join it with site reports
    [--trace] [--metrics-out FILE]
      the report's upload/global/broadcast spans are measured socket
      walls, not cost-model output; wire traffic lands under net/server";

/// Usage text of the `site` subcommand / `dbdc-site` binary.
pub const SITE_USAGE: &str = "\
dbdc-site — one DBDC client site over real TCP

usage: dbdc-site --input FILE --site I --sites K --eps E --min-pts M
    (--connect ADDR | --addr-file FILE)   server rendezvous
    [--wait-ms N]          how long to poll --addr-file (default 10000)
    [--partitioner random|roundrobin|stripes] [--seed N]
                           must match every other site so the derived
                           partitions are disjoint and complete
    [--model scor|kmeans] [--eps-global MULT|max] [--index KIND]
    [--threads T]
    [--retries N]          session attempts (default 5)
    [--retry-base-ms N] [--retry-max-ms N]
                           backoff start/ceiling (default 50/800)
    [--connect-timeout-ms N] [--read-timeout-ms N]
    [--out FILE]           write this site's final labels as
                           `original_index,label` lines (-1 = noise)
    [--run-id ID]          stamp the report with a shared run identity so
                           `report merge` can join it with the server's
    [--trace] [--metrics-out FILE]";

/// Usage text of the `proxy` subcommand.
pub const PROXY_USAGE: &str = "\
dbdc-cli proxy — a fault-injecting TCP forwarder for torture runs

usage: dbdc-cli proxy (--connect ADDR | --addr-file FILE)
    [--wait-ms N]            how long to poll --addr-file (default 10000)
    [--proxy-addr-file FILE] write the proxy's listen address here for
                             sites to rendezvous on
    [--seed N]               deterministic fault schedule seed (default 1)
    [--drop P] [--truncate P] [--bitflip P]
                             per-frame fault probabilities (default 0)
    [--delay-p P] [--delay-ms N]
                             per-frame delay probability and length
    [--duration-ms N]        how long to forward before shutting down
                             (default 30000)
    [--run-id ID] [--trace] [--metrics-out FILE]
      the report carries the injected-fault ledger under proxy/c2s
      (site->server) and proxy/s2c (server->site)";

/// `serve` / `dbdc-server`: accept `--sites` connections, build and
/// broadcast the global model, report measured transfer walls.
pub fn cmd_serve(raw: &[String]) -> CliResult {
    if wants_help(raw) {
        println!("{SERVE_USAGE}");
        return Ok(());
    }
    let args = Args::parse(
        raw,
        &[
            "sites",
            "eps",
            "min-pts",
            "model",
            "eps-global",
            "index",
            "threads",
            "bind",
            "addr-file",
            "read-timeout-ms",
            "resend",
            "deadline-ms",
            "drain-ms",
            "run-id",
            "trace",
            "metrics-out",
        ],
    )?;
    no_positionals(&args)?;
    let params = build_params(&args)?;
    let n_sites: usize = args.require_as("sites")?;
    if n_sites == 0 {
        return Err("need at least one site".into());
    }
    let bind = args.get("bind").unwrap_or("127.0.0.1:0");
    let listener = TcpListener::bind(bind).map_err(|e| format!("cannot bind {bind}: {e}"))?;
    let addr = listener.local_addr()?;
    println!("dbdc-server listening on {addr} for {n_sites} site(s)");
    if let Some(path) = args.get("addr-file") {
        write_addr_file(path, addr)?;
    }

    let mut opts = ServeOptions::new(n_sites, params);
    opts.read_timeout = Duration::from_millis(args.get_or("read-timeout-ms", 2000u64)?);
    opts.resend_attempts = args.get_or("resend", 3u32)?;
    opts.deadline = Duration::from_millis(args.get_or("deadline-ms", 60_000u64)?);
    opts.drain_window = Duration::from_millis(args.get_or("drain-ms", 1000u64)?);

    let wants = wants_report(&args);
    let rec = RecordingRecorder::new();
    let recorder: &dyn Recorder = if wants { &rec } else { &NoopRecorder };
    let outcome = serve(listener, opts, recorder).map_err(|e| format!("serve: {e}"))?;

    let bytes_up: usize = outcome.per_site_bytes_up.iter().sum();
    println!(
        "served {n_sites} site(s): global model {} clusters from {} representatives",
        outcome.global.n_clusters, outcome.n_representatives
    );
    println!(
        "transfer: {} B up ({:?} per site), {} B down per site",
        bytes_up, outcome.per_site_bytes_up, outcome.global_model_bytes
    );
    println!(
        "measured walls: upload {}, global {}, broadcast {} ({} connection(s))",
        fmt_ms(outcome.upload_wall),
        fmt_ms(outcome.global_wall),
        fmt_ms(outcome.broadcast_wall),
        outcome.connections
    );

    if wants {
        let mut report = RunReport::new("serve")
            .with_identity("server", args.get("run-id").map(String::from), "server")
            .with_param("sites", n_sites)
            .with_param("connections", outcome.connections);
        // The server holds no dataset; the checksum slot says so rather
        // than aliasing some site's input.
        report.env = Some(env_fingerprint("none".into()));
        // Unlike `run`'s modeled transfer spans, these are measured
        // socket walls: Span::new leaves `modeled` false.
        // The root span carries the full serve wall (drain included):
        // in a merged timeline it is the window every site session must
        // nest inside, and the phase sum would cut off the drain tail.
        let mut root = Span::new("dbdc_serve", outcome.serve_wall);
        root.push(Span::new("upload", outcome.upload_wall));
        root.push(Span::new("global", outcome.global_wall));
        root.push(Span::new("broadcast", outcome.broadcast_wall));
        // Per-site handshake windows, explicitly placed at their offset
        // from serve start: `report timeline` pairs each with the
        // matching site's handshake span to align the process clocks.
        for (i, hs) in outcome.handshakes.iter().enumerate() {
            if let Some((start, wall)) = hs {
                root.push(Span::new(format!("handshake[{i}]"), *wall).with_start(*start));
            }
        }
        report.spans = vec![root];
        report.scopes = rec.scopes();
        report.hists = rec.hist_scopes();
        report.transfer = Some(TransferStats {
            bytes_up,
            bytes_down: outcome.global_model_bytes * n_sites,
            per_site_bytes_up: outcome.per_site_bytes_up.clone(),
            global_model_bytes: outcome.global_model_bytes,
            representatives: outcome.n_representatives,
        });
        // The server never sees raw points, so its quality signal is
        // the DBCV of the global model itself: the representatives,
        // labeled by their global cluster. `report merge` keeps this as
        // the fleet's global quality next to the sites' local scores.
        if !outcome.global.reps.is_empty() {
            let points: Vec<dbdc_geom::Point> = outcome
                .global
                .reps
                .iter()
                .map(|r| r.point.clone())
                .collect();
            let rep_data = Dataset::from_points(&points);
            let labels = Clustering::from_labels(
                outcome
                    .global
                    .reps
                    .iter()
                    .map(|r| Label::Cluster(r.global_cluster))
                    .collect(),
            );
            let quality = quality_stats(&rep_data, &labels, params.index, recorder);
            println!(
                "quality: global-model DBCV {:+.4} over {} cluster(s)",
                quality.dbcv, quality.clusters
            );
            report.scopes = rec.scopes();
            report.quality = Some(quality);
        }
        finish_report(&args, &report)?;
    }
    Ok(())
}

/// `site` / `dbdc-site`: derive this site's partition, run the client
/// protocol against the server, optionally write the final labels.
pub fn cmd_site(raw: &[String]) -> CliResult {
    if wants_help(raw) {
        println!("{SITE_USAGE}");
        return Ok(());
    }
    let args = Args::parse(
        raw,
        &[
            "input",
            "site",
            "sites",
            "eps",
            "min-pts",
            "model",
            "eps-global",
            "index",
            "threads",
            "partitioner",
            "seed",
            "connect",
            "addr-file",
            "wait-ms",
            "retries",
            "retry-base-ms",
            "retry-max-ms",
            "connect-timeout-ms",
            "read-timeout-ms",
            "out",
            "run-id",
            "trace",
            "metrics-out",
        ],
    )?;
    no_positionals(&args)?;
    let data = read_input(&args)?;
    let params = build_params(&args)?;
    let site: u32 = args.require_as("site")?;
    let n_sites: usize = args.require_as("sites")?;
    if n_sites == 0 || site as usize >= n_sites {
        return Err(format!("--site {site} out of range for --sites {n_sites}").into());
    }
    let seed: u64 = args.get_or("seed", 42)?;
    let partitioner = parse_partitioner(&args, seed)?;
    // Every site derives the same deterministic partitioning and keeps
    // its own slice — identical to the in-process runtime's split.
    let assignment = partitioner.assign(&data, n_sites);
    let (mut parts, back) = data.partition(n_sites, &assignment);
    let site_data = parts.swap_remove(site as usize);
    let origin_ids = &back[site as usize];

    let addr = resolve_addr(&args)?;
    let mut opts = SiteOptions::new(site, n_sites as u32, params);
    opts.connect_timeout = Duration::from_millis(args.get_or("connect-timeout-ms", 2000u64)?);
    opts.read_timeout = Duration::from_millis(args.get_or("read-timeout-ms", 3000u64)?);
    opts.retry = RetryPolicy {
        attempts: args.get_or("retries", RetryPolicy::standard().attempts)?,
        base_delay: Duration::from_millis(args.get_or("retry-base-ms", 50u64)?),
        max_delay: Duration::from_millis(args.get_or("retry-max-ms", 800u64)?),
    };

    let wants = wants_report(&args);
    let rec = RecordingRecorder::new();
    let recorder: &dyn Recorder = if wants { &rec } else { &NoopRecorder };
    let outcome =
        run_site(addr, &site_data, &opts, recorder).map_err(|e| format!("site {site}: {e}"))?;

    println!(
        "site {site}/{n_sites}: {} points, {} B up, {} B down, {} attempt(s)",
        site_data.len(),
        outcome.bytes_up,
        outcome.bytes_down,
        outcome.attempts
    );
    println!(
        "measured walls: local {}, session {}, relabel {}",
        fmt_ms(outcome.local_wall),
        fmt_ms(outcome.session_wall),
        fmt_ms(outcome.relabel_wall)
    );

    if let Some(path) = args.get("out") {
        write_labels(path, origin_ids, &outcome.labels)?;
        println!("wrote {path}");
    }

    if wants {
        let mut report = RunReport::new("site")
            .with_identity(
                "site",
                args.get("run-id").map(String::from),
                format!("site[{site}]"),
            )
            .with_param("site", site)
            .with_param("sites", n_sites)
            .with_param("attempts", outcome.attempts);
        report.env = Some(env_fingerprint(dataset_checksum(&data)));
        report.dataset = Some(DatasetInfo {
            points: site_data.len(),
            dim: data.dim(),
        });
        let mut root = Span::new(
            "dbdc_site",
            outcome.local_wall + outcome.session_wall + outcome.relabel_wall,
        );
        root.push(Span::new(format!("local[{site}]"), outcome.local_wall));
        // The session wall covers upload + broadcast receipt: a
        // measured span where the in-process report splices modeled
        // `upload`/`broadcast` durations. Its children are the measured
        // sub-phases of the *successful* attempt, explicitly placed at
        // their offset from that attempt's connect call (on a retried
        // session, earlier failed attempts and backoff also live inside
        // the session wall but carry no spans of their own).
        let mut session = Span::new("session", outcome.session_wall);
        let p = outcome.session_phases;
        session.push(Span::new("handshake", p.handshake).with_start(p.handshake_start));
        session.push(Span::new("upload", p.upload).with_start(p.upload_start));
        session.push(Span::new("download", p.download).with_start(p.download_start));
        root.push(session);
        root.push(Span::new(format!("relabel[{site}]"), outcome.relabel_wall));
        report.spans = vec![root];
        report.scopes = rec.scopes();
        report.hists = rec.hist_scopes();
        report.sites = vec![SiteStats {
            site: site as usize,
            points: site_data.len(),
            representatives: rec.counters(&format!("local[{site}]")).representatives as usize,
            bytes_up: outcome.bytes_up,
            local: outcome.local_wall,
            relabel: outcome.relabel_wall,
            counters: rec.counters(&format!("local[{site}]")),
        }];
        report.transfer = Some(TransferStats {
            bytes_up: outcome.bytes_up,
            bytes_down: outcome.bytes_down,
            per_site_bytes_up: vec![outcome.bytes_up],
            global_model_bytes: outcome.bytes_down,
            representatives: outcome.global.reps.len(),
        });
        // Local DBCV of this site's final (relabeled) clustering over
        // its own partition — the per-site quality `report merge`
        // collects into the fleet report's per_site list.
        let quality = quality_stats(&site_data, &outcome.labels, params.index, recorder);
        println!(
            "quality: local DBCV {:+.4} over {} cluster(s), {} noise",
            quality.dbcv, quality.clusters, quality.noise
        );
        report.scopes = rec.scopes();
        report.quality = Some(quality);
        finish_report(&args, &report)?;
    }
    Ok(())
}

/// `proxy`: a standalone fault-injecting forwarder so shell walkthroughs
/// and CI can run the server/site fleet through an adversarial link
/// without writing Rust.
pub fn cmd_proxy(raw: &[String]) -> CliResult {
    if wants_help(raw) {
        println!("{PROXY_USAGE}");
        return Ok(());
    }
    let args = Args::parse(
        raw,
        &[
            "connect",
            "addr-file",
            "wait-ms",
            "proxy-addr-file",
            "seed",
            "drop",
            "delay-p",
            "delay-ms",
            "truncate",
            "bitflip",
            "duration-ms",
            "run-id",
            "trace",
            "metrics-out",
        ],
    )?;
    no_positionals(&args)?;
    let upstream = resolve_addr(&args)?;
    let plan = FaultPlan {
        seed: args.get_or("seed", 1u64)?,
        drop: args.get_or("drop", 0.0)?,
        delay_p: args.get_or("delay-p", 0.0)?,
        delay: Duration::from_millis(args.get_or("delay-ms", 10u64)?),
        truncate: args.get_or("truncate", 0.0)?,
        bitflip: args.get_or("bitflip", 0.0)?,
    };
    let wants = wants_report(&args);
    let rec = RecordingRecorder::new();
    let t0 = Instant::now();
    let mut proxy = if wants {
        FaultProxy::spawn_observed(upstream, plan, &rec)
    } else {
        FaultProxy::spawn(upstream, plan)
    }
    .map_err(|e| format!("proxy: {e}"))?;
    println!("dbdc proxy forwarding {} -> {upstream}", proxy.addr());
    if let Some(path) = args.get("proxy-addr-file") {
        write_addr_file(path, proxy.addr())?;
    }
    std::thread::sleep(Duration::from_millis(
        args.get_or("duration-ms", 30_000u64)?,
    ));
    proxy.shutdown();
    let wall = t0.elapsed();
    let stats = proxy.stats();
    println!(
        "proxy: forwarded {}, dropped {}, delayed {}, truncated {}, bitflipped {}",
        stats.forwarded.load(Ordering::Relaxed),
        stats.dropped.load(Ordering::Relaxed),
        stats.delayed.load(Ordering::Relaxed),
        stats.truncated.load(Ordering::Relaxed),
        stats.bitflipped.load(Ordering::Relaxed),
    );
    if wants {
        let mut report = RunReport::new("proxy")
            .with_identity("proxy", args.get("run-id").map(String::from), "proxy")
            .with_param("seed", plan.seed)
            .with_param("drop", plan.drop)
            .with_param("forwarded", stats.forwarded.load(Ordering::Relaxed));
        report.env = Some(env_fingerprint("none".into()));
        report.spans = vec![Span::new("dbdc_proxy", wall)];
        report.scopes = rec.scopes();
        finish_report(&args, &report)?;
    }
    Ok(())
}

/// FNV-1a over the dataset's shape and exact coordinate bit patterns —
/// the same checksum the bench harness stamps, so merged fleet reports
/// can confirm every site loaded the identical input.
fn dataset_checksum(data: &Dataset) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    eat(&(data.dim() as u64).to_le_bytes());
    eat(&(data.len() as u64).to_le_bytes());
    for p in data.iter() {
        for &c in p {
            eat(&c.to_bits().to_le_bytes());
        }
    }
    format!("{h:016x}")
}

/// The producing environment, mirroring the bench harness's fingerprint
/// so `report merge` can cross-check toolchain drift across the fleet.
/// Undeterminable fields hold `"unknown"` rather than failing the run.
fn env_fingerprint(dataset_checksum: String) -> EnvFingerprint {
    let run = |cmd: &str, cmd_args: &[&str]| -> Option<String> {
        let out = std::process::Command::new(cmd)
            .args(cmd_args)
            .output()
            .ok()?;
        if !out.status.success() {
            return None;
        }
        let s = String::from_utf8(out.stdout).ok()?;
        let s = s.trim();
        (!s.is_empty()).then(|| s.to_string())
    };
    EnvFingerprint {
        nproc: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        rustc: run("rustc", &["--version"]).unwrap_or_else(|| "unknown".into()),
        git_rev: run("git", &["rev-parse", "--short=12", "HEAD"])
            .unwrap_or_else(|| "unknown".into()),
        dataset_checksum,
    }
}

fn wants_help(raw: &[String]) -> bool {
    raw.iter()
        .any(|a| a == "--help" || a == "-h" || a == "help")
}

/// Writes the server address atomically (write + rename) so a polling
/// site can never observe a half-written file.
fn write_addr_file(path: &str, addr: SocketAddr) -> CliResult {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, addr.to_string()).map_err(|e| format!("cannot write {tmp}: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("cannot rename {tmp} to {path}: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

/// The server address: `--connect HOST:PORT`, or poll `--addr-file`
/// until it appears (the server writes it after binding).
fn resolve_addr(args: &Args) -> Result<SocketAddr, Box<dyn std::error::Error>> {
    if let Some(spec) = args.get("connect") {
        return spec
            .parse()
            .map_err(|e| format!("--connect {spec}: {e}").into());
    }
    let Some(path) = args.get("addr-file") else {
        return Err("need --connect ADDR or --addr-file FILE".into());
    };
    let wait = Duration::from_millis(args.get_or("wait-ms", 10_000u64)?);
    let t0 = Instant::now();
    loop {
        if let Ok(text) = std::fs::read_to_string(path) {
            if let Ok(addr) = text.trim().parse() {
                return Ok(addr);
            }
        }
        if t0.elapsed() > wait {
            return Err(format!("no server address in {path} after {wait:?}").into());
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Writes `original_index,label` lines (label `-1` = noise) for this
/// site's points, in partition order.
fn write_labels(path: &str, origin_ids: &[u32], labels: &dbdc_geom::Clustering) -> CliResult {
    let file = std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    let mut w = std::io::BufWriter::new(file);
    for (pos, &orig) in origin_ids.iter().enumerate() {
        let label = match labels.label(pos as u32) {
            Label::Noise => -1i64,
            Label::Cluster(c) => c as i64,
        };
        writeln!(w, "{orig},{label}")?;
    }
    w.flush()?;
    Ok(())
}
