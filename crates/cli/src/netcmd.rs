//! The networked subcommands: `serve` (the DBDC server) and `site`
//! (one client site), also exposed as the standalone `dbdc-server` and
//! `dbdc-site` binaries.
//!
//! Together they run the exact protocol of `dbdc-cli run`, but over
//! real TCP: every site process loads the shared input file, derives
//! *its own* partition with the shared `--partitioner`/`--seed`
//! (deterministic, so no coordinator has to ship data around), runs
//! the local phase, and exchanges wire-encoded models with the server.
//! The resulting `--metrics-out` reports carry **measured**
//! `upload`/`broadcast` spans — real socket walls, where the
//! single-process runtime can only model them from byte counts.
//!
//! Rendezvous: the server binds (`--bind`, default an ephemeral
//! loopback port) and writes the bound address to `--addr-file`; sites
//! either poll that file (`--addr-file`, `--wait-ms`) or take an
//! explicit `--connect HOST:PORT`.

use crate::args::Args;
use crate::opts::{
    build_params, finish_report, no_positionals, parse_partitioner, quality_stats, read_input,
    wants_report, CliResult,
};
use dbdc_geom::{Clustering, Dataset, Label};
use dbdc_net::http_get;
use dbdc_net::{
    run_site, serve, AdminServer, AdminState, FaultPlan, FaultProxy, RetryPolicy, ServeOptions,
    SiteOptions,
};
use dbdc_obs::{
    delta, fmt_ms, fmt_sample, DatasetInfo, EnvFingerprint, NoopRecorder, Recorder,
    RecordingRecorder, RunReport, SiteStats, SnapshotEngine, Span, TelemetrySnapshot,
    TransferStats,
};
use std::io::Write;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Usage text of the `serve` subcommand / `dbdc-server` binary.
pub const SERVE_USAGE: &str = "\
dbdc-server — the DBDC server half over real TCP

usage: dbdc-server --sites K --eps E --min-pts M
    [--model scor|kmeans] [--eps-global MULT|max] [--index KIND]
    [--bind ADDR]          listen address (default 127.0.0.1:0)
    [--addr-file FILE]     write the bound address here (atomically) for
                           sites to poll
    [--read-timeout-ms N]  per-read socket timeout (default 2000); also
                           paces broadcast resends
    [--resend N]           broadcast resends per connection (default 3)
    [--deadline-ms N]      overall run ceiling (default 60000)
    [--drain-ms N]         replay window after all sites acked (default
                           1000; keep above the sites' backoff ceiling)
    [--run-id ID]          stamp the report with a shared run identity so
                           `report merge` can join it with site reports
    [--admin-addr ADDR]    serve live telemetry over HTTP while running:
                           /metrics (Prometheus), /healthz, /readyz,
                           /report (partial RunReport JSON); implies
                           recording even without --trace/--metrics-out
    [--trace] [--metrics-out FILE]
      the report's upload/global/broadcast spans are measured socket
      walls, not cost-model output; wire traffic lands under net/server.
      On a deadline or protocol error the partial report is still
      written, marked with param clean=false";

/// Usage text of the `site` subcommand / `dbdc-site` binary.
pub const SITE_USAGE: &str = "\
dbdc-site — one DBDC client site over real TCP

usage: dbdc-site --input FILE --site I --sites K --eps E --min-pts M
    (--connect ADDR | --addr-file FILE)   server rendezvous
    [--wait-ms N]          how long to poll --addr-file (default 10000)
    [--partitioner random|roundrobin|stripes] [--seed N]
                           must match every other site so the derived
                           partitions are disjoint and complete
    [--model scor|kmeans] [--eps-global MULT|max] [--index KIND]
    [--threads T] [--partitions P] [--precision f64|f32]
    [--retries N]          session attempts (default 5)
    [--retry-base-ms N] [--retry-max-ms N]
                           backoff start/ceiling (default 50/800)
    [--connect-timeout-ms N] [--read-timeout-ms N]
    [--out FILE]           write this site's final labels as
                           `original_index,label` lines (-1 = noise)
    [--run-id ID]          stamp the report with a shared run identity so
                           `report merge` can join it with the server's
    [--admin-addr ADDR]    live telemetry endpoints (/readyz turns 200
                           once the session handshake has completed)
    [--trace] [--metrics-out FILE]";

/// Usage text of the `proxy` subcommand.
pub const PROXY_USAGE: &str = "\
dbdc-cli proxy — a fault-injecting TCP forwarder for torture runs

usage: dbdc-cli proxy (--connect ADDR | --addr-file FILE)
    [--wait-ms N]            how long to poll --addr-file (default 10000)
    [--proxy-addr-file FILE] write the proxy's listen address here for
                             sites to rendezvous on
    [--seed N]               deterministic fault schedule seed (default 1)
    [--drop P] [--truncate P] [--bitflip P]
                             per-frame fault probabilities (default 0)
    [--delay-p P] [--delay-ms N]
                             per-frame delay probability and length
    [--duration-ms N]        how long to forward before shutting down
                             (default 30000)
    [--run-id ID] [--trace] [--metrics-out FILE]
    [--admin-addr ADDR]      expose the injected-fault ledger live on
                             /metrics while the proxy forwards
      the report carries the injected-fault ledger under proxy/c2s
      (site->server) and proxy/s2c (server->site)";

/// Usage text of the `watch` subcommand.
pub const WATCH_USAGE: &str = "\
dbdc-cli watch — live fleet telemetry from --admin-addr endpoints

usage: dbdc-cli watch ADDR [ADDR...]
    [--interval MS]   poll period (default 1000)
    [--once]          scrape once, print the table, exit (no screen
                      clearing — for scripts and CI)

Each ADDR is a process's --admin-addr. Every tick polls /metrics and
/readyz, computes deltas against the previous scrape, and renders
frame/byte rates, retry and fault totals, per-phase latency
percentiles, and session state for the whole fleet. The first tick
(and --once) shows process-lifetime averages. Continuous mode exits on
its own once every peer has been unreachable for three ticks (the
fleet exited).";

/// `serve` / `dbdc-server`: accept `--sites` connections, build and
/// broadcast the global model, report measured transfer walls.
pub fn cmd_serve(raw: &[String]) -> CliResult {
    if wants_help(raw) {
        println!("{SERVE_USAGE}");
        return Ok(());
    }
    let args = Args::parse(
        raw,
        &[
            "sites",
            "eps",
            "min-pts",
            "model",
            "eps-global",
            "index",
            "threads",
            "bind",
            "addr-file",
            "read-timeout-ms",
            "resend",
            "deadline-ms",
            "drain-ms",
            "run-id",
            "admin-addr",
            "trace",
            "metrics-out",
        ],
    )?;
    no_positionals(&args)?;
    let params = build_params(&args)?;
    let n_sites: usize = args.require_as("sites")?;
    if n_sites == 0 {
        return Err("need at least one site".into());
    }
    let bind = args.get("bind").unwrap_or("127.0.0.1:0");
    let listener = TcpListener::bind(bind).map_err(|e| format!("cannot bind {bind}: {e}"))?;
    let addr = listener.local_addr()?;
    println!("dbdc-server listening on {addr} for {n_sites} site(s)");
    if let Some(path) = args.get("addr-file") {
        write_addr_file(path, addr)?;
    }

    let mut opts = ServeOptions::new(n_sites, params);
    opts.read_timeout = Duration::from_millis(args.get_or("read-timeout-ms", 2000u64)?);
    opts.resend_attempts = args.get_or("resend", 3u32)?;
    opts.deadline = Duration::from_millis(args.get_or("deadline-ms", 60_000u64)?);
    opts.drain_window = Duration::from_millis(args.get_or("drain-ms", 1000u64)?);

    let wants = wants_report(&args);
    let run_id = args.get("run-id").map(String::from);
    let rec = Arc::new(RecordingRecorder::new());
    let recording = wants || args.get("admin-addr").is_some();
    let recorder: &dyn Recorder = if recording { &*rec } else { &NoopRecorder };
    // The protocol listener is already accepting by the time the admin
    // plane comes up, so the server's readiness predicate is constant.
    let _admin = spawn_admin(
        &args,
        "serve",
        "server",
        run_id.clone(),
        "server".into(),
        Arc::clone(&rec),
        Box::new(|| true),
    )?;

    let t0 = Instant::now();
    let outcome = match serve(listener, opts, recorder) {
        Ok(outcome) => outcome,
        Err(e) => {
            // A deadline or protocol failure loses the run, not the
            // telemetry: flush everything the recorder holds as a
            // partial report marked clean=false before surfacing the
            // error, so post-mortems of killed fleets have data.
            if wants {
                let mut report =
                    partial_report("serve", "server", run_id.clone(), "server".into(), &rec);
                report.spans = vec![Span::new("dbdc_serve", t0.elapsed())];
                finish_report(&args, &report)?;
            }
            return Err(format!("serve: {e}").into());
        }
    };

    let bytes_up: usize = outcome.per_site_bytes_up.iter().sum();
    println!(
        "served {n_sites} site(s): global model {} clusters from {} representatives",
        outcome.global.n_clusters, outcome.n_representatives
    );
    println!(
        "transfer: {} B up ({:?} per site), {} B down per site",
        bytes_up, outcome.per_site_bytes_up, outcome.global_model_bytes
    );
    println!(
        "measured walls: upload {}, global {}, broadcast {} ({} connection(s))",
        fmt_ms(outcome.upload_wall),
        fmt_ms(outcome.global_wall),
        fmt_ms(outcome.broadcast_wall),
        outcome.connections
    );

    if wants {
        let mut report = RunReport::new("serve")
            .with_identity("server", run_id, "server")
            .with_param("sites", n_sites)
            .with_param("connections", outcome.connections)
            .with_param("clean", true);
        // The server holds no dataset; the checksum slot says so rather
        // than aliasing some site's input.
        report.env = Some(env_fingerprint("none".into()));
        // Unlike `run`'s modeled transfer spans, these are measured
        // socket walls: Span::new leaves `modeled` false.
        // The root span carries the full serve wall (drain included):
        // in a merged timeline it is the window every site session must
        // nest inside, and the phase sum would cut off the drain tail.
        let mut root = Span::new("dbdc_serve", outcome.serve_wall);
        root.push(Span::new("upload", outcome.upload_wall));
        root.push(Span::new("global", outcome.global_wall));
        root.push(Span::new("broadcast", outcome.broadcast_wall));
        // Per-site handshake windows, explicitly placed at their offset
        // from serve start: `report timeline` pairs each with the
        // matching site's handshake span to align the process clocks.
        for (i, hs) in outcome.handshakes.iter().enumerate() {
            if let Some((start, wall)) = hs {
                root.push(Span::new(format!("handshake[{i}]"), *wall).with_start(*start));
            }
        }
        report.spans = vec![root];
        report.scopes = rec.scopes();
        report.hists = rec.hist_scopes();
        report.transfer = Some(TransferStats {
            bytes_up,
            bytes_down: outcome.global_model_bytes * n_sites,
            per_site_bytes_up: outcome.per_site_bytes_up.clone(),
            global_model_bytes: outcome.global_model_bytes,
            representatives: outcome.n_representatives,
        });
        // The server never sees raw points, so its quality signal is
        // the DBCV of the global model itself: the representatives,
        // labeled by their global cluster. `report merge` keeps this as
        // the fleet's global quality next to the sites' local scores.
        if !outcome.global.reps.is_empty() {
            let points: Vec<dbdc_geom::Point> = outcome
                .global
                .reps
                .iter()
                .map(|r| r.point.clone())
                .collect();
            let rep_data = Dataset::from_points(&points);
            let labels = Clustering::from_labels(
                outcome
                    .global
                    .reps
                    .iter()
                    .map(|r| Label::Cluster(r.global_cluster))
                    .collect(),
            );
            let quality = quality_stats(&rep_data, &labels, params.index, recorder);
            println!(
                "quality: global-model DBCV {:+.4} over {} cluster(s)",
                quality.dbcv, quality.clusters
            );
            report.scopes = rec.scopes();
            report.quality = Some(quality);
        }
        finish_report(&args, &report)?;
    }
    Ok(())
}

/// `site` / `dbdc-site`: derive this site's partition, run the client
/// protocol against the server, optionally write the final labels.
pub fn cmd_site(raw: &[String]) -> CliResult {
    if wants_help(raw) {
        println!("{SITE_USAGE}");
        return Ok(());
    }
    let args = Args::parse(
        raw,
        &[
            "input",
            "site",
            "sites",
            "eps",
            "min-pts",
            "model",
            "eps-global",
            "index",
            "threads",
            "partitions",
            "precision",
            "partitioner",
            "seed",
            "connect",
            "addr-file",
            "wait-ms",
            "retries",
            "retry-base-ms",
            "retry-max-ms",
            "connect-timeout-ms",
            "read-timeout-ms",
            "out",
            "run-id",
            "admin-addr",
            "trace",
            "metrics-out",
        ],
    )?;
    no_positionals(&args)?;
    let data = read_input(&args)?;
    let params = build_params(&args)?;
    let site: u32 = args.require_as("site")?;
    let n_sites: usize = args.require_as("sites")?;
    if n_sites == 0 || site as usize >= n_sites {
        return Err(format!("--site {site} out of range for --sites {n_sites}").into());
    }
    let seed: u64 = args.get_or("seed", 42)?;
    let partitioner = parse_partitioner(&args, seed)?;
    // Every site derives the same deterministic partitioning and keeps
    // its own slice — identical to the in-process runtime's split.
    let assignment = partitioner.assign(&data, n_sites);
    let (mut parts, back) = data.partition(n_sites, &assignment);
    let site_data = parts.swap_remove(site as usize);
    let origin_ids = &back[site as usize];

    let addr = resolve_addr(&args)?;
    let mut opts = SiteOptions::new(site, n_sites as u32, params);
    opts.connect_timeout = Duration::from_millis(args.get_or("connect-timeout-ms", 2000u64)?);
    opts.read_timeout = Duration::from_millis(args.get_or("read-timeout-ms", 3000u64)?);
    opts.retry = RetryPolicy {
        attempts: args.get_or("retries", RetryPolicy::standard().attempts)?,
        base_delay: Duration::from_millis(args.get_or("retry-base-ms", 50u64)?),
        max_delay: Duration::from_millis(args.get_or("retry-max-ms", 800u64)?),
    };

    let wants = wants_report(&args);
    let run_id = args.get("run-id").map(String::from);
    let rec = Arc::new(RecordingRecorder::new());
    let recording = wants || args.get("admin-addr").is_some();
    let recorder: &dyn Recorder = if recording { &*rec } else { &NoopRecorder };
    // A site is ready once its handshake has completed: the wire
    // metrics count the HELLO_ACK under its own per-kind subscope, so
    // readiness is a plain counter probe against the live recorder.
    let ready_rec = Arc::clone(&rec);
    let hello_ack_scope = format!("net/site[{site}]/HELLO_ACK");
    let _admin = spawn_admin(
        &args,
        "site",
        "site",
        run_id.clone(),
        format!("site[{site}]"),
        Arc::clone(&rec),
        Box::new(move || ready_rec.counters(&hello_ack_scope).frames_received >= 1),
    )?;

    let outcome = match run_site(addr, &site_data, &opts, recorder) {
        Ok(outcome) => outcome,
        Err(e) => {
            // Mirror the server: a failed session still flushes the
            // partial report (local-phase counters, attempted wire
            // traffic) marked clean=false.
            if wants {
                let report = partial_report(
                    "site",
                    "site",
                    run_id.clone(),
                    format!("site[{site}]"),
                    &rec,
                );
                finish_report(&args, &report)?;
            }
            return Err(format!("site {site}: {e}").into());
        }
    };

    println!(
        "site {site}/{n_sites}: {} points, {} B up, {} B down, {} attempt(s)",
        site_data.len(),
        outcome.bytes_up,
        outcome.bytes_down,
        outcome.attempts
    );
    println!(
        "measured walls: local {}, session {}, relabel {}",
        fmt_ms(outcome.local_wall),
        fmt_ms(outcome.session_wall),
        fmt_ms(outcome.relabel_wall)
    );

    if let Some(path) = args.get("out") {
        write_labels(path, origin_ids, &outcome.labels)?;
        println!("wrote {path}");
    }

    if wants {
        let mut report = RunReport::new("site")
            .with_identity("site", run_id, format!("site[{site}]"))
            .with_param("site", site)
            .with_param("sites", n_sites)
            .with_param("attempts", outcome.attempts)
            .with_param("clean", true);
        report.env = Some(env_fingerprint(dataset_checksum(&data)));
        report.dataset = Some(DatasetInfo {
            points: site_data.len(),
            dim: data.dim(),
        });
        let mut root = Span::new(
            "dbdc_site",
            outcome.local_wall + outcome.session_wall + outcome.relabel_wall,
        );
        root.push(Span::new(format!("local[{site}]"), outcome.local_wall));
        // The session wall covers upload + broadcast receipt: a
        // measured span where the in-process report splices modeled
        // `upload`/`broadcast` durations. Its children are the measured
        // sub-phases of the *successful* attempt, explicitly placed at
        // their offset from that attempt's connect call (on a retried
        // session, earlier failed attempts and backoff also live inside
        // the session wall but carry no spans of their own).
        let mut session = Span::new("session", outcome.session_wall);
        let p = outcome.session_phases;
        session.push(Span::new("handshake", p.handshake).with_start(p.handshake_start));
        session.push(Span::new("upload", p.upload).with_start(p.upload_start));
        session.push(Span::new("download", p.download).with_start(p.download_start));
        root.push(session);
        root.push(Span::new(format!("relabel[{site}]"), outcome.relabel_wall));
        report.spans = vec![root];
        report.scopes = rec.scopes();
        report.hists = rec.hist_scopes();
        report.sites = vec![SiteStats {
            site: site as usize,
            points: site_data.len(),
            representatives: rec.counters(&format!("local[{site}]")).representatives as usize,
            bytes_up: outcome.bytes_up,
            local: outcome.local_wall,
            relabel: outcome.relabel_wall,
            counters: rec.counters(&format!("local[{site}]")),
        }];
        report.transfer = Some(TransferStats {
            bytes_up: outcome.bytes_up,
            bytes_down: outcome.bytes_down,
            per_site_bytes_up: vec![outcome.bytes_up],
            global_model_bytes: outcome.bytes_down,
            representatives: outcome.global.reps.len(),
        });
        // Local DBCV of this site's final (relabeled) clustering over
        // its own partition — the per-site quality `report merge`
        // collects into the fleet report's per_site list.
        let quality = quality_stats(&site_data, &outcome.labels, params.index, recorder);
        println!(
            "quality: local DBCV {:+.4} over {} cluster(s), {} noise",
            quality.dbcv, quality.clusters, quality.noise
        );
        report.scopes = rec.scopes();
        report.quality = Some(quality);
        finish_report(&args, &report)?;
    }
    Ok(())
}

/// `proxy`: a standalone fault-injecting forwarder so shell walkthroughs
/// and CI can run the server/site fleet through an adversarial link
/// without writing Rust.
pub fn cmd_proxy(raw: &[String]) -> CliResult {
    if wants_help(raw) {
        println!("{PROXY_USAGE}");
        return Ok(());
    }
    let args = Args::parse(
        raw,
        &[
            "connect",
            "addr-file",
            "wait-ms",
            "proxy-addr-file",
            "seed",
            "drop",
            "delay-p",
            "delay-ms",
            "truncate",
            "bitflip",
            "duration-ms",
            "run-id",
            "admin-addr",
            "trace",
            "metrics-out",
        ],
    )?;
    no_positionals(&args)?;
    let upstream = resolve_addr(&args)?;
    let plan = FaultPlan {
        seed: args.get_or("seed", 1u64)?,
        drop: args.get_or("drop", 0.0)?,
        delay_p: args.get_or("delay-p", 0.0)?,
        delay: Duration::from_millis(args.get_or("delay-ms", 10u64)?),
        truncate: args.get_or("truncate", 0.0)?,
        bitflip: args.get_or("bitflip", 0.0)?,
    };
    let wants = wants_report(&args);
    let run_id = args.get("run-id").map(String::from);
    let rec = Arc::new(RecordingRecorder::new());
    let recording = wants || args.get("admin-addr").is_some();
    let t0 = Instant::now();
    let mut proxy = if recording {
        FaultProxy::spawn_observed(upstream, plan, &*rec)
    } else {
        FaultProxy::spawn(upstream, plan)
    }
    .map_err(|e| format!("proxy: {e}"))?;
    // The proxy is forwarding as soon as spawn returns; the admin plane
    // exposes the injected-fault ledger (proxy/c2s, proxy/s2c) live.
    let _admin = spawn_admin(
        &args,
        "proxy",
        "proxy",
        run_id.clone(),
        "proxy".into(),
        Arc::clone(&rec),
        Box::new(|| true),
    )?;
    println!("dbdc proxy forwarding {} -> {upstream}", proxy.addr());
    if let Some(path) = args.get("proxy-addr-file") {
        write_addr_file(path, proxy.addr())?;
    }
    std::thread::sleep(Duration::from_millis(
        args.get_or("duration-ms", 30_000u64)?,
    ));
    proxy.shutdown();
    let wall = t0.elapsed();
    let stats = proxy.stats();
    println!(
        "proxy: forwarded {}, dropped {}, delayed {}, truncated {}, bitflipped {}",
        stats.forwarded.load(Ordering::Relaxed),
        stats.dropped.load(Ordering::Relaxed),
        stats.delayed.load(Ordering::Relaxed),
        stats.truncated.load(Ordering::Relaxed),
        stats.bitflipped.load(Ordering::Relaxed),
    );
    if wants {
        let mut report = RunReport::new("proxy")
            .with_identity("proxy", run_id, "proxy")
            .with_param("seed", plan.seed)
            .with_param("drop", plan.drop)
            .with_param("forwarded", stats.forwarded.load(Ordering::Relaxed));
        report.env = Some(env_fingerprint("none".into()));
        report.spans = vec![Span::new("dbdc_proxy", wall)];
        report.scopes = rec.scopes();
        finish_report(&args, &report)?;
    }
    Ok(())
}

/// `watch`: poll the fleet's `--admin-addr` endpoints, diff consecutive
/// snapshots, and render a live rates table.
pub fn cmd_watch(raw: &[String]) -> CliResult {
    if wants_help(raw) {
        println!("{WATCH_USAGE}");
        return Ok(());
    }
    let args = Args::parse(raw, &["interval", "once"])?;
    let addrs: Vec<String> = args.positional().to_vec();
    if addrs.is_empty() {
        return Err("usage: dbdc-cli watch ADDR [ADDR...] [--interval MS] [--once]".into());
    }
    let interval = Duration::from_millis(args.get_or("interval", 1000u64)?);
    let once = args.switch("once");
    let timeout = Duration::from_secs(2);

    let mut prev: Vec<Option<TelemetrySnapshot>> = (0..addrs.len()).map(|_| None).collect();
    let mut all_down_ticks = 0u32;
    loop {
        let mut frame = String::new();
        let mut up = 0usize;
        for (i, addr) in addrs.iter().enumerate() {
            match scrape(addr, timeout) {
                Ok((snap, ready)) => {
                    up += 1;
                    frame.push_str(&render_peer(addr, &snap, prev[i].as_ref(), ready));
                    prev[i] = Some(snap);
                }
                Err(e) => {
                    frame.push_str(&format!("{addr}  DOWN ({e})\n"));
                    prev[i] = None;
                }
            }
        }
        if once {
            print!("{frame}");
            if up == 0 {
                return Err("watch: no admin endpoint reachable".into());
            }
            return Ok(());
        }
        // Continuous mode repaints in place (clear screen, home cursor).
        print!(
            "\x1b[2J\x1b[Hdbdc watch — {up}/{} peer(s) up, every {:?}\n\n{frame}",
            addrs.len(),
            interval
        );
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        if up == 0 {
            all_down_ticks += 1;
            if all_down_ticks >= 3 {
                println!("all peers unreachable for {all_down_ticks} ticks; fleet has exited");
                return Ok(());
            }
        } else {
            all_down_ticks = 0;
        }
        std::thread::sleep(interval);
    }
}

/// One poll of a peer: `/metrics` parsed into a snapshot, plus its
/// `/readyz` verdict.
fn scrape(addr: &str, timeout: Duration) -> Result<(TelemetrySnapshot, bool), String> {
    let (status, body) = http_get(addr, "/metrics", timeout).map_err(|e| format!("{e}"))?;
    if status != 200 {
        return Err(format!("/metrics returned {status}"));
    }
    let snap = TelemetrySnapshot::from_prometheus(&body)?;
    let ready = matches!(http_get(addr, "/readyz", timeout), Ok((200, _)));
    Ok((snap, ready))
}

/// Renders one peer's block: an identity/rates line from the delta
/// window, then per-phase percentile lines from the cumulative
/// histograms. With no previous scrape the window is the whole process
/// lifetime, so the "rates" are lifetime averages — exactly right for
/// `--once`.
fn render_peer(
    addr: &str,
    snap: &TelemetrySnapshot,
    prev: Option<&TelemetrySnapshot>,
    ready: bool,
) -> String {
    let window = match prev {
        Some(p) => delta(p, snap),
        None => delta(&TelemetrySnapshot::default(), snap),
    };
    let secs = (window.uptime_us as f64 / 1e6).max(1e-9);
    let d = window.total();
    let totals = snap.total();
    let peer = snap.identity.peer.as_deref().unwrap_or("?");
    let role = snap.identity.role.as_deref().unwrap_or("?");
    let state = if ready { "ready" } else { "wait" };
    let mut out = format!(
        "{addr}  {peer} ({role})  {state}  up {:.1}s\n  \
         tx {:.1} fr/s {:.0} B/s   rx {:.1} fr/s {:.0} B/s   \
         retries {}   faults {}   rejects {}\n",
        snap.uptime_us as f64 / 1e6,
        d.frames_sent as f64 / secs,
        d.wire_bytes_sent as f64 / secs,
        d.frames_received as f64 / secs,
        d.wire_bytes_received as f64 / secs,
        totals.retries,
        totals.faults_dropped
            + totals.faults_delayed
            + totals.faults_truncated
            + totals.faults_bitflipped,
        totals.checksum_failures
            + totals.truncated_rejects
            + totals.oversize_rejects
            + totals.handshake_rejections,
    );
    for (scope, h) in &snap.hists {
        if h.count() == 0 {
            continue;
        }
        out.push_str(&format!(
            "  {scope}: n={} p50 {} p90 {}\n",
            h.count(),
            fmt_sample(scope, h.percentile(50.0)),
            fmt_sample(scope, h.percentile(90.0)),
        ));
    }
    out
}

/// The partial report a live `/report` scrape or an abnormal exit can
/// assemble: identity plus everything the recorder holds right now.
/// Outcome-derived sections (transfer, quality, measured phase spans)
/// don't exist until the run completes, so they are absent; the
/// `clean=false` param marks the report as a mid-run or failed-run view
/// (the normal exit path stamps `clean=true`).
fn partial_report(
    command: &str,
    role: &str,
    run_id: Option<String>,
    peer: String,
    rec: &RecordingRecorder,
) -> RunReport {
    let mut report = RunReport::new(command)
        .with_identity(role, run_id, peer)
        .with_param("clean", false);
    report.env = Some(env_fingerprint("none".into()));
    report.scopes = rec.scopes();
    report.hists = rec.hist_scopes();
    report
}

/// Binds the `--admin-addr` telemetry plane when requested: `/metrics`
/// snapshots the recorder, `/readyz` answers from the role-specific
/// predicate, `/report` serves the current partial report. Returns the
/// handle to keep alive for the duration of the run (`None` when the
/// flag is absent — the admin plane then costs nothing at all).
fn spawn_admin(
    args: &Args,
    command: &'static str,
    role: &'static str,
    run_id: Option<String>,
    peer: String,
    rec: Arc<RecordingRecorder>,
    ready: Box<dyn Fn() -> bool + Send + Sync>,
) -> Result<Option<AdminServer>, Box<dyn std::error::Error>> {
    let Some(addr) = args.get("admin-addr") else {
        return Ok(None);
    };
    let engine = SnapshotEngine::new(Arc::clone(&rec)).with_identity(role, run_id.clone(), &peer);
    let state = AdminState {
        engine,
        ready,
        report: Box::new(move || {
            partial_report(command, role, run_id.clone(), peer.clone(), &rec).to_json_string()
        }),
    };
    let admin = AdminServer::spawn(addr, state)
        .map_err(|e| format!("cannot bind admin address {addr}: {e}"))?;
    println!("admin telemetry on http://{}/metrics", admin.addr());
    Ok(Some(admin))
}

/// FNV-1a over the dataset's shape and exact coordinate bit patterns —
/// the same checksum the bench harness stamps, so merged fleet reports
/// can confirm every site loaded the identical input.
fn dataset_checksum(data: &Dataset) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    eat(&(data.dim() as u64).to_le_bytes());
    eat(&(data.len() as u64).to_le_bytes());
    for p in data.iter() {
        for &c in p {
            eat(&c.to_bits().to_le_bytes());
        }
    }
    format!("{h:016x}")
}

/// The producing environment, mirroring the bench harness's fingerprint
/// so `report merge` can cross-check toolchain drift across the fleet.
/// Undeterminable fields hold `"unknown"` rather than failing the run.
fn env_fingerprint(dataset_checksum: String) -> EnvFingerprint {
    let run = |cmd: &str, cmd_args: &[&str]| -> Option<String> {
        let out = std::process::Command::new(cmd)
            .args(cmd_args)
            .output()
            .ok()?;
        if !out.status.success() {
            return None;
        }
        let s = String::from_utf8(out.stdout).ok()?;
        let s = s.trim();
        (!s.is_empty()).then(|| s.to_string())
    };
    EnvFingerprint {
        nproc: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        rustc: run("rustc", &["--version"]).unwrap_or_else(|| "unknown".into()),
        git_rev: run("git", &["rev-parse", "--short=12", "HEAD"])
            .unwrap_or_else(|| "unknown".into()),
        dataset_checksum,
    }
}

fn wants_help(raw: &[String]) -> bool {
    raw.iter()
        .any(|a| a == "--help" || a == "-h" || a == "help")
}

/// Writes the server address atomically (write + rename) so a polling
/// site can never observe a half-written file.
fn write_addr_file(path: &str, addr: SocketAddr) -> CliResult {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, addr.to_string()).map_err(|e| format!("cannot write {tmp}: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("cannot rename {tmp} to {path}: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

/// The server address: `--connect HOST:PORT`, or poll `--addr-file`
/// until it appears (the server writes it after binding).
fn resolve_addr(args: &Args) -> Result<SocketAddr, Box<dyn std::error::Error>> {
    if let Some(spec) = args.get("connect") {
        return spec
            .parse()
            .map_err(|e| format!("--connect {spec}: {e}").into());
    }
    let Some(path) = args.get("addr-file") else {
        return Err("need --connect ADDR or --addr-file FILE".into());
    };
    let wait = Duration::from_millis(args.get_or("wait-ms", 10_000u64)?);
    let t0 = Instant::now();
    loop {
        if let Ok(text) = std::fs::read_to_string(path) {
            if let Ok(addr) = text.trim().parse() {
                return Ok(addr);
            }
        }
        if t0.elapsed() > wait {
            return Err(format!("no server address in {path} after {wait:?}").into());
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Writes `original_index,label` lines (label `-1` = noise) for this
/// site's points, in partition order.
fn write_labels(path: &str, origin_ids: &[u32], labels: &dbdc_geom::Clustering) -> CliResult {
    let file = std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    let mut w = std::io::BufWriter::new(file);
    for (pos, &orig) in origin_ids.iter().enumerate() {
        let label = match labels.label(pos as u32) {
            Label::Noise => -1i64,
            Label::Cluster(c) => c as i64,
        };
        writeln!(w, "{orig},{label}")?;
    }
    w.flush()?;
    Ok(())
}
