//! Minimal CSV reading/writing for point data and cluster labels.
//!
//! Format: one point per line, coordinates separated by commas. An optional
//! header line is detected (any non-numeric first field) and skipped on
//! read; labels are written as an extra final column where requested
//! (`noise` for unclustered points).

use dbdc_geom::{Clustering, Dataset, Label};
use std::io::{BufRead, Write};

/// Errors from CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line (1-based line number, message).
    Parse(usize, String),
    /// The file contained no data rows.
    Empty,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "i/o error: {e}"),
            CsvError::Parse(line, msg) => write!(f, "line {line}: {msg}"),
            CsvError::Empty => write!(f, "no data rows"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Reads a dataset from CSV. All rows must have the same number of numeric
/// columns; a single leading header row is skipped automatically.
pub fn read_dataset(reader: impl BufRead) -> Result<Dataset, CsvError> {
    let mut data: Option<Dataset> = None;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        let parsed: Result<Vec<f64>, _> = fields.iter().map(|f| f.parse::<f64>()).collect();
        match parsed {
            Err(_) if i == 0 && data.is_none() => continue, // header
            Err(e) => {
                return Err(CsvError::Parse(i + 1, format!("bad number: {e}")));
            }
            Ok(coords) => {
                if coords.is_empty() {
                    return Err(CsvError::Parse(i + 1, "empty row".into()));
                }
                if !coords.iter().all(|c| c.is_finite()) {
                    return Err(CsvError::Parse(i + 1, "non-finite coordinate".into()));
                }
                let d = data.get_or_insert_with(|| Dataset::new(coords.len()));
                if coords.len() != d.dim() {
                    return Err(CsvError::Parse(
                        i + 1,
                        format!("expected {} columns, got {}", d.dim(), coords.len()),
                    ));
                }
                d.push(&coords);
            }
        }
    }
    data.ok_or(CsvError::Empty)
}

/// Writes a dataset (optionally with labels) as CSV.
pub fn write_dataset(
    mut out: impl Write,
    data: &Dataset,
    labels: Option<&Clustering>,
) -> std::io::Result<()> {
    if let Some(l) = labels {
        assert_eq!(l.len(), data.len(), "labels must cover the dataset");
    }
    for (i, p) in data.iter().enumerate() {
        let coords: Vec<String> = p.iter().map(|c| format!("{c}")).collect();
        match labels.map(|l| l.label(i as u32)) {
            Some(Label::Cluster(c)) => writeln!(out, "{},{c}", coords.join(","))?,
            Some(Label::Noise) => writeln!(out, "{},noise", coords.join(","))?,
            None => writeln!(out, "{}", coords.join(","))?,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbdc_geom::Label;

    #[test]
    fn round_trip() {
        let d = Dataset::from_flat(2, vec![1.0, 2.0, 3.5, -4.25]);
        let mut buf = Vec::new();
        write_dataset(&mut buf, &d, None).unwrap();
        let back = read_dataset(&buf[..]).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn skips_header() {
        let input = "x,y\n1.0,2.0\n3.0,4.0\n";
        let d = read_dataset(input.as_bytes()).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.point(1), &[3.0, 4.0]);
    }

    #[test]
    fn rejects_ragged_rows() {
        let input = "1.0,2.0\n3.0\n";
        let err = read_dataset(input.as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Parse(2, _)), "{err}");
    }

    #[test]
    fn rejects_bad_numbers_mid_file() {
        let input = "1.0,2.0\nfoo,4.0\n";
        let err = read_dataset(input.as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Parse(2, _)), "{err}");
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(read_dataset("".as_bytes()), Err(CsvError::Empty)));
        assert!(matches!(
            read_dataset("x,y\n".as_bytes()),
            Err(CsvError::Empty)
        ));
    }

    #[test]
    fn writes_labels() {
        let d = Dataset::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]);
        let labels = Clustering::from_labels(vec![Label::Cluster(0), Label::Noise]);
        let mut buf = Vec::new();
        write_dataset(&mut buf, &d, Some(&labels)).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, "1,2,0\n3,4,noise\n");
    }

    #[test]
    fn blank_lines_are_skipped() {
        let input = "1.0,2.0\n\n3.0,4.0\n\n";
        let d = read_dataset(input.as_bytes()).unwrap();
        assert_eq!(d.len(), 2);
    }
}
