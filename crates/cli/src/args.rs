//! Tiny flag parser for the CLI — `--key value` pairs plus positional
//! arguments, with typed accessors. Hand-rolled to keep the sanctioned
//! dependency set.

use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
    /// Flags seen without a value (`--verbose`).
    switches: Vec<String>,
}

/// Parse failures and typed-access errors.
#[derive(Debug, PartialEq, Eq)]
pub enum ArgError {
    /// A required flag was not supplied.
    Missing(String),
    /// A flag's value failed to parse (flag, value, expected type).
    Invalid(String, String, &'static str),
    /// An unknown flag was supplied.
    Unknown(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::Missing(k) => write!(f, "missing required flag --{k}"),
            ArgError::Invalid(k, v, ty) => {
                write!(f, "flag --{k}: {v:?} is not a valid {ty}")
            }
            ArgError::Unknown(k) => write!(f, "unknown flag --{k}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments, validating flag names against `allowed`.
    pub fn parse<S: AsRef<str>>(
        raw: impl IntoIterator<Item = S>,
        allowed: &[&str],
    ) -> Result<Self, ArgError> {
        let mut args = Args::default();
        let raw: Vec<String> = raw.into_iter().map(|s| s.as_ref().to_string()).collect();
        let mut i = 0;
        while i < raw.len() {
            let a = &raw[i];
            if let Some(key) = a.strip_prefix("--") {
                if !allowed.contains(&key) {
                    return Err(ArgError::Unknown(key.to_string()));
                }
                if i + 1 < raw.len() && !raw[i + 1].starts_with("--") {
                    args.flags.insert(key.to_string(), raw[i + 1].clone());
                    i += 2;
                } else {
                    args.switches.push(key.to_string());
                    i += 1;
                }
            } else {
                args.positional.push(a.clone());
                i += 1;
            }
        }
        Ok(args)
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// A string flag, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// A required string flag.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key).ok_or_else(|| ArgError::Missing(key.into()))
    }

    /// A typed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError::Invalid(key.into(), v.into(), std::any::type_name::<T>())),
        }
    }

    /// A required typed flag.
    pub fn require_as<T: std::str::FromStr>(&self, key: &str) -> Result<T, ArgError> {
        let v = self.require(key)?;
        v.parse()
            .map_err(|_| ArgError::Invalid(key.into(), v.into(), std::any::type_name::<T>()))
    }

    /// Whether a valueless switch was passed.
    pub fn switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALLOWED: &[&str] = &["eps", "sites", "out", "verbose"];

    #[test]
    fn parses_flags_and_positionals() {
        let a = Args::parse(["input.csv", "--eps", "1.5", "--sites", "4"], ALLOWED).unwrap();
        assert_eq!(a.positional(), &["input.csv".to_string()]);
        assert_eq!(a.get("eps"), Some("1.5"));
        assert_eq!(a.require_as::<usize>("sites").unwrap(), 4);
        assert_eq!(a.get_or("out", "default".to_string()).unwrap(), "default");
    }

    #[test]
    fn unknown_flag_rejected() {
        let err = Args::parse(["--nope", "1"], ALLOWED).unwrap_err();
        assert_eq!(err, ArgError::Unknown("nope".into()));
    }

    #[test]
    fn missing_required() {
        let a = Args::parse(["x"], ALLOWED).unwrap();
        assert_eq!(
            a.require("eps").unwrap_err(),
            ArgError::Missing("eps".into())
        );
    }

    #[test]
    fn invalid_typed_value() {
        let a = Args::parse(["--eps", "abc"], ALLOWED).unwrap();
        assert!(matches!(
            a.require_as::<f64>("eps").unwrap_err(),
            ArgError::Invalid(..)
        ));
    }

    #[test]
    fn switches() {
        let a = Args::parse(["--verbose", "--eps", "1.0"], ALLOWED).unwrap();
        assert!(a.switch("verbose"));
        assert!(!a.switch("eps")); // has a value, not a switch
        assert_eq!(a.get_or("sites", 2).unwrap(), 2);
    }

    #[test]
    fn trailing_switch() {
        let a = Args::parse(["--eps", "1.0", "--verbose"], ALLOWED).unwrap();
        assert!(a.switch("verbose"));
    }
}
