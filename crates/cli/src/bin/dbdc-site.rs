//! `dbdc-site` — one DBDC client site over real TCP. A thin wrapper
//! around the same code as `dbdc-cli site`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match dbdc_cli::netcmd::cmd_site(&raw) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
