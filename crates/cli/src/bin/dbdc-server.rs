//! `dbdc-server` — the DBDC server half over real TCP. A thin wrapper
//! around the same code as `dbdc-cli serve`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match dbdc_cli::netcmd::cmd_serve(&raw) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
