//! Process-level end-to-end: the real `dbdc-server` and `dbdc-site`
//! binaries, as separate OS processes over loopback TCP, produce
//! exactly the labels of the in-process `run_dbdc` — on a clean link
//! and through an adversarial fault proxy.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::{Duration, Instant};

use dbdc::{run_dbdc, DbdcParams, EpsGlobal, Partitioner};
use dbdc_cli::csv;
use dbdc_geom::{Clustering, Dataset, Label};
use dbdc_net::{FaultPlan, FaultProxy};

const N_SITES: usize = 4;
const EPS: &str = "1.6";
const MIN_PTS: &str = "5";
const SEED: &str = "7";

fn params() -> DbdcParams {
    DbdcParams::new(1.6, 5).with_eps_global(EpsGlobal::MultipleOfLocal(2.0))
}

/// A scratch directory unique to this test invocation.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dbdc-net-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Writes the dataset as CSV and reads it back, so the reference run
/// uses byte-for-byte what the site processes will parse.
fn write_points(dir: &Path) -> (PathBuf, Dataset) {
    let g = dbdc_datagen::dataset_c(31);
    let path = dir.join("points.csv");
    let file = File::create(&path).expect("create points.csv");
    csv::write_dataset(BufWriter::new(file), &g.data, None).expect("write points.csv");
    let file = File::open(&path).expect("reopen points.csv");
    let data = csv::read_dataset(BufReader::new(file)).expect("reparse points.csv");
    (path, data)
}

fn spawn_server(dir: &Path, extra: &[&str]) -> (Child, PathBuf) {
    let addr_file = dir.join("addr.txt");
    let child = Command::new(env!("CARGO_BIN_EXE_dbdc-server"))
        .args([
            "--sites",
            &N_SITES.to_string(),
            "--eps",
            EPS,
            "--min-pts",
            MIN_PTS,
            "--addr-file",
            addr_file.to_str().unwrap(),
            "--deadline-ms",
            "120000",
        ])
        .args(extra)
        .spawn()
        .expect("spawn dbdc-server");
    (child, addr_file)
}

fn await_addr(addr_file: &Path) -> String {
    let t0 = Instant::now();
    loop {
        if let Ok(text) = std::fs::read_to_string(addr_file) {
            let text = text.trim();
            if !text.is_empty() {
                return text.to_string();
            }
        }
        assert!(t0.elapsed() < Duration::from_secs(20), "server never bound");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn spawn_site(points: &Path, dir: &Path, site: usize, connect: &str, extra: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_dbdc-site"))
        .args([
            "--input",
            points.to_str().unwrap(),
            "--site",
            &site.to_string(),
            "--sites",
            &N_SITES.to_string(),
            "--eps",
            EPS,
            "--min-pts",
            MIN_PTS,
            "--seed",
            SEED,
            "--connect",
            connect,
            "--out",
            dir.join(format!("labels-{site}.csv")).to_str().unwrap(),
        ])
        .args(extra)
        .spawn()
        .expect("spawn dbdc-site")
}

/// Merges the sites' `original_index,label` files into one clustering.
/// Site labels already share the global id space, so dense renumbering
/// mirrors the in-process assembly exactly.
fn merge_labels(dir: &Path, n: usize) -> Clustering {
    let mut full = vec![Label::Noise; n];
    let mut seen = 0usize;
    for site in 0..N_SITES {
        let path = dir.join(format!("labels-{site}.csv"));
        let text = std::fs::read_to_string(&path).expect("read site labels");
        for line in text.lines() {
            let (orig, label) = line.split_once(',').expect("orig,label line");
            let orig: usize = orig.parse().expect("original index");
            let label: i64 = label.parse().expect("label id");
            full[orig] = match label {
                -1 => Label::Noise,
                c => Label::Cluster(u32::try_from(c).expect("cluster id fits u32")),
            };
            seen += 1;
        }
    }
    assert_eq!(seen, n, "sites covered every point exactly once");
    Clustering::from_labels(full)
}

fn wait_ok(mut child: Child, what: &str) {
    let status = child.wait().expect("wait for child");
    assert!(status.success(), "{what} failed: {status}");
}

#[test]
fn separate_processes_match_in_process_runtime() {
    let dir = scratch("clean");
    let (points, data) = write_points(&dir);
    let reference = run_dbdc(
        &data,
        &params(),
        Partitioner::RandomEqual { seed: 7 },
        N_SITES,
    );

    let (server, addr_file) = spawn_server(&dir, &["--drain-ms", "400"]);
    let addr = await_addr(&addr_file);
    let sites: Vec<Child> = (0..N_SITES)
        .map(|s| spawn_site(&points, &dir, s, &addr, &[]))
        .collect();
    for (s, child) in sites.into_iter().enumerate() {
        wait_ok(child, &format!("site {s}"));
    }
    wait_ok(server, "server");

    let merged = merge_labels(&dir, data.len());
    assert_eq!(
        merged, reference.assignment,
        "process-level labels differ from in-process run_dbdc"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn separate_processes_converge_through_fault_proxy() {
    let dir = scratch("lossy");
    let (points, data) = write_points(&dir);
    let reference = run_dbdc(
        &data,
        &params(),
        Partitioner::RandomEqual { seed: 7 },
        N_SITES,
    );

    // Give the server generous timeouts: with drops and delays in the
    // way, sessions replay until the GOODBYE lands.
    let (server, addr_file) =
        spawn_server(&dir, &["--drain-ms", "1200", "--read-timeout-ms", "500"]);
    let server_addr: std::net::SocketAddr = await_addr(&addr_file).parse().expect("server addr");
    let proxy = FaultProxy::spawn(server_addr, FaultPlan::lossy(0xE2E)).expect("spawn proxy");
    let via = proxy.addr().to_string();

    let site_extra = [
        "--retries",
        "25",
        "--retry-base-ms",
        "25",
        "--retry-max-ms",
        "400",
        "--read-timeout-ms",
        "800",
    ];
    let sites: Vec<Child> = (0..N_SITES)
        .map(|s| spawn_site(&points, &dir, s, &via, &site_extra))
        .collect();
    for (s, child) in sites.into_iter().enumerate() {
        wait_ok(child, &format!("site {s}"));
    }
    wait_ok(server, "server");

    let merged = merge_labels(&dir, data.len());
    assert_eq!(
        merged, reference.assignment,
        "labels diverged through the fault proxy"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
