//! Process-level end-to-end: the real `dbdc-server` and `dbdc-site`
//! binaries, as separate OS processes over loopback TCP, produce
//! exactly the labels of the in-process `run_dbdc` — on a clean link
//! and through an adversarial fault proxy.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::{Duration, Instant};

use dbdc::{run_dbdc, DbdcParams, EpsGlobal, Partitioner};
use dbdc_cli::csv;
use dbdc_geom::{Clustering, Dataset, Label};
use dbdc_net::{FaultPlan, FaultProxy};
use dbdc_obs::{Counters, Json, RecordingRecorder, RunReport};

const N_SITES: usize = 4;
const EPS: &str = "1.6";
const MIN_PTS: &str = "5";
const SEED: &str = "7";

fn params() -> DbdcParams {
    DbdcParams::new(1.6, 5).with_eps_global(EpsGlobal::MultipleOfLocal(2.0))
}

/// A scratch directory unique to this test invocation.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dbdc-net-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Writes the dataset as CSV and reads it back, so the reference run
/// uses byte-for-byte what the site processes will parse.
fn write_points(dir: &Path) -> (PathBuf, Dataset) {
    let g = dbdc_datagen::dataset_c(31);
    let path = dir.join("points.csv");
    let file = File::create(&path).expect("create points.csv");
    csv::write_dataset(BufWriter::new(file), &g.data, None).expect("write points.csv");
    let file = File::open(&path).expect("reopen points.csv");
    let data = csv::read_dataset(BufReader::new(file)).expect("reparse points.csv");
    (path, data)
}

fn spawn_server(dir: &Path, extra: &[&str]) -> (Child, PathBuf) {
    let addr_file = dir.join("addr.txt");
    let child = Command::new(env!("CARGO_BIN_EXE_dbdc-server"))
        .args([
            "--sites",
            &N_SITES.to_string(),
            "--eps",
            EPS,
            "--min-pts",
            MIN_PTS,
            "--addr-file",
            addr_file.to_str().unwrap(),
            "--deadline-ms",
            "120000",
        ])
        .args(extra)
        .spawn()
        .expect("spawn dbdc-server");
    (child, addr_file)
}

fn await_addr(addr_file: &Path) -> String {
    let t0 = Instant::now();
    loop {
        if let Ok(text) = std::fs::read_to_string(addr_file) {
            let text = text.trim();
            if !text.is_empty() {
                return text.to_string();
            }
        }
        assert!(t0.elapsed() < Duration::from_secs(20), "server never bound");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn spawn_site(points: &Path, dir: &Path, site: usize, connect: &str, extra: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_dbdc-site"))
        .args([
            "--input",
            points.to_str().unwrap(),
            "--site",
            &site.to_string(),
            "--sites",
            &N_SITES.to_string(),
            "--eps",
            EPS,
            "--min-pts",
            MIN_PTS,
            "--seed",
            SEED,
            "--connect",
            connect,
            "--out",
            dir.join(format!("labels-{site}.csv")).to_str().unwrap(),
        ])
        .args(extra)
        .spawn()
        .expect("spawn dbdc-site")
}

/// Merges the sites' `original_index,label` files into one clustering.
/// Site labels already share the global id space, so dense renumbering
/// mirrors the in-process assembly exactly.
fn merge_labels(dir: &Path, n: usize) -> Clustering {
    let mut full = vec![Label::Noise; n];
    let mut seen = 0usize;
    for site in 0..N_SITES {
        let path = dir.join(format!("labels-{site}.csv"));
        let text = std::fs::read_to_string(&path).expect("read site labels");
        for line in text.lines() {
            let (orig, label) = line.split_once(',').expect("orig,label line");
            let orig: usize = orig.parse().expect("original index");
            let label: i64 = label.parse().expect("label id");
            full[orig] = match label {
                -1 => Label::Noise,
                c => Label::Cluster(u32::try_from(c).expect("cluster id fits u32")),
            };
            seen += 1;
        }
    }
    assert_eq!(seen, n, "sites covered every point exactly once");
    Clustering::from_labels(full)
}

fn wait_ok(mut child: Child, what: &str) {
    let status = child.wait().expect("wait for child");
    assert!(status.success(), "{what} failed: {status}");
}

/// Runs the `dbdc-cli` binary and asserts it exits cleanly.
fn run_cli(args: &[&str]) {
    let status = Command::new(env!("CARGO_BIN_EXE_dbdc-cli"))
        .args(args)
        .status()
        .expect("run dbdc-cli");
    assert!(status.success(), "dbdc-cli {args:?} failed: {status}");
}

fn load_report(path: &Path) -> RunReport {
    let text = std::fs::read_to_string(path).expect("read report file");
    RunReport::parse(&text).expect("parse report JSON")
}

fn scope<'a>(report: &'a RunReport, name: &str) -> &'a Counters {
    report
        .scopes
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, c)| c)
        .unwrap_or_else(|| panic!("scope {name} missing from report"))
}

/// Paths for the per-process `--metrics-out` reports plus the merged one.
fn report_paths(dir: &Path) -> (PathBuf, Vec<PathBuf>, PathBuf) {
    let server = dir.join("server-report.json");
    let sites = (0..N_SITES)
        .map(|s| dir.join(format!("site-report-{s}.json")))
        .collect();
    (server, sites, dir.join("merged.json"))
}

/// Merges the per-process reports through the real CLI and loads the result.
fn merge_reports_via_cli(server: &Path, sites: &[PathBuf], merged: &Path) -> RunReport {
    let mut args = vec!["report", "merge", server.to_str().unwrap()];
    for s in sites {
        args.push(s.to_str().unwrap());
    }
    args.extend(["--out", merged.to_str().unwrap()]);
    run_cli(&args);
    load_report(merged)
}

#[test]
fn separate_processes_match_in_process_runtime() {
    let dir = scratch("clean");
    let (points, data) = write_points(&dir);
    let reference = run_dbdc(
        &data,
        &params(),
        Partitioner::RandomEqual { seed: 7 },
        N_SITES,
    );

    let (server_report, site_reports, merged_path) = report_paths(&dir);
    let (server, addr_file) = spawn_server(
        &dir,
        &[
            "--drain-ms",
            "400",
            "--run-id",
            "e2e-clean",
            "--metrics-out",
            server_report.to_str().unwrap(),
        ],
    );
    let addr = await_addr(&addr_file);
    let sites: Vec<Child> = (0..N_SITES)
        .map(|s| {
            let extra = [
                "--run-id",
                "e2e-clean",
                "--metrics-out",
                site_reports[s].to_str().unwrap(),
            ];
            spawn_site(&points, &dir, s, &addr, &extra)
        })
        .collect();
    for (s, child) in sites.into_iter().enumerate() {
        wait_ok(child, &format!("site {s}"));
    }
    wait_ok(server, "server");

    let merged = merge_labels(&dir, data.len());
    assert_eq!(
        merged, reference.assignment,
        "process-level labels differ from in-process run_dbdc"
    );

    // --- distributed telemetry: merge the five reports via the CLI ---
    let report = merge_reports_via_cli(&server_report, &site_reports, &merged_path);
    assert_eq!(report.schema_version, 5, "merged report is schema v5");
    assert_eq!(report.role.as_deref(), Some("merged"));
    assert_eq!(report.run_id.as_deref(), Some("e2e-clean"));

    // Fleet quality: the server's global-model DBCV wins the global
    // slot, and every site's local DBCV survives the merge by peer name.
    let quality = report
        .quality
        .as_ref()
        .expect("merged fleet report carries a quality block");
    assert!(
        quality.dbcv.is_finite() && (-1.0..=1.0).contains(&quality.dbcv),
        "global DBCV out of range: {}",
        quality.dbcv
    );
    for s in 0..N_SITES {
        let peer = format!("site[{s}]");
        let (_, local) = quality
            .per_site
            .iter()
            .find(|(p, _)| *p == peer)
            .unwrap_or_else(|| panic!("merged quality lost {peer}"));
        assert!(
            local.is_finite() && (-1.0..=1.0).contains(local),
            "{peer}: local DBCV out of range: {local}"
        );
    }

    // Wire-byte identity per site: the aggregate byte counter must equal
    // frame arithmetic over the per-kind counters. A clean session sends
    // HELLO (10 B payload), LOCAL_MODEL (bytes_up payload) and one or
    // more GLOBAL_ACKs (empty payload); each frame adds 13 B of framing.
    const WIRE: u64 = 13;
    let mut site_sent_total = 0u64;
    let mut site_recv_total = 0u64;
    for s in 0..N_SITES {
        let agg = scope(&report, &format!("net/site[{s}]"));
        let hello = scope(&report, &format!("net/site[{s}]/HELLO")).frames_sent;
        let model = scope(&report, &format!("net/site[{s}]/LOCAL_MODEL")).frames_sent;
        let ack = scope(&report, &format!("net/site[{s}]/GLOBAL_ACK")).frames_sent;
        let bytes_up = report
            .sites
            .iter()
            .find(|st| st.site == s)
            .unwrap_or_else(|| panic!("merged report lost site {s} stats"))
            .bytes_up as u64;
        assert_eq!(hello, 1, "site {s}: clean run needs exactly one HELLO");
        assert_eq!(model, 1, "site {s}: clean run uploads its model once");
        assert!(ack >= 1, "site {s}: at least one GLOBAL_ACK");
        assert_eq!(
            agg.wire_bytes_sent,
            (10 + WIRE) * hello + (bytes_up + WIRE) * model + WIRE * ack,
            "site {s}: aggregate wire bytes disagree with frame arithmetic"
        );
        assert_eq!(agg.frames_sent, hello + model + ack);
        assert_eq!(agg.retries, 0, "site {s}: clean link must not retry");
        assert_eq!(agg.checksum_failures, 0);
        site_sent_total += agg.wire_bytes_sent;
        site_recv_total += agg.wire_bytes_received;
    }

    // Conservation across the loopback link: every byte a site put on the
    // wire is a byte the server took off it, and vice versa.
    let server_agg = scope(&report, "net/server");
    assert_eq!(server_agg.wire_bytes_received, site_sent_total);
    assert_eq!(server_agg.wire_bytes_sent, site_recv_total);
    assert_eq!(
        scope(&report, "net/server/HELLO").frames_received,
        N_SITES as u64
    );

    // Session histogram: only site attempts record it, one per site.
    let (_, session_hist) = report
        .hists
        .iter()
        .find(|(n, _)| n == "net/session_ns")
        .expect("merged report carries net/session_ns");
    assert_eq!(session_hist.count(), N_SITES as u64);

    // --- and the causal timeline: 5 pids, sites nested in the serve window ---
    let trace_path = dir.join("trace.json");
    run_cli(&[
        "report",
        "timeline",
        merged_path.to_str().unwrap(),
        "--out",
        trace_path.to_str().unwrap(),
    ]);
    let trace = Json::parse(&std::fs::read_to_string(&trace_path).expect("read trace.json"))
        .expect("trace.json is valid JSON");
    let events = trace
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    let pid_of = |e: &Json| e.get("pid").and_then(Json::as_u64).expect("pid");
    let name_of = |e: &Json| {
        e.get("name")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string()
    };
    let is_x = |e: &Json| e.get("ph").and_then(Json::as_str) == Some("X");

    let mut pids: Vec<u64> = events.iter().filter(|e| is_x(e)).map(pid_of).collect();
    pids.sort_unstable();
    pids.dedup();
    assert_eq!(
        pids,
        [1, 2, 3, 4, 5],
        "one pid per process: server + 4 sites"
    );

    let serve = events
        .iter()
        .find(|e| is_x(e) && name_of(e) == "dbdc_serve")
        .expect("server serve span in trace");
    let ts = |e: &Json| e.get("ts").and_then(Json::as_u64).expect("ts");
    let dur = |e: &Json| e.get("dur").and_then(Json::as_u64).expect("dur");
    let (serve_start, serve_end) = (ts(serve), ts(serve) + dur(serve));
    for pid in 2..=5u64 {
        let upload = events
            .iter()
            .find(|e| is_x(e) && pid_of(e) == pid && name_of(e) == "upload")
            .unwrap_or_else(|| panic!("pid {pid}: no upload span in trace"));
        assert!(
            ts(upload) >= serve_start && ts(upload) + dur(upload) <= serve_end,
            "pid {pid}: upload [{}, {}] escapes serve window [{serve_start}, {serve_end}]",
            ts(upload),
            ts(upload) + dur(upload),
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// A fleet that dies mid-run must not die silently: the server's
/// deadline exit still flushes its partial `--metrics-out` report
/// (marked `clean=false`), and while it waits the admin plane serves
/// live telemetry that `dbdc-cli watch --once` can render.
#[test]
fn killed_fleet_still_leaves_server_report() {
    let dir = scratch("killed");
    let server_report = dir.join("server-report.json");
    let addr_file = dir.join("addr.txt");
    let mut server = Command::new(env!("CARGO_BIN_EXE_dbdc-server"))
        .args([
            "--sites",
            &N_SITES.to_string(),
            "--eps",
            EPS,
            "--min-pts",
            MIN_PTS,
            "--addr-file",
            addr_file.to_str().unwrap(),
            "--deadline-ms",
            "2500",
            "--run-id",
            "e2e-killed",
            "--metrics-out",
            server_report.to_str().unwrap(),
            "--admin-addr",
            "127.0.0.1:0",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn dbdc-server");

    // The ephemeral admin port is announced on stdout before serving
    // starts; read lines until it appears.
    let stdout = server.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufRead::lines(BufReader::new(stdout));
    let admin_addr = loop {
        let line = lines
            .next()
            .expect("server stdout closed before admin line")
            .expect("read server stdout");
        if let Some(rest) = line.strip_prefix("admin telemetry on http://") {
            break rest.trim_end_matches("/metrics").to_string();
        }
    };
    await_addr(&addr_file);

    // No sites ever connect. While the server waits out its deadline,
    // watch a single scrape through the real CLI.
    let watch = Command::new(env!("CARGO_BIN_EXE_dbdc-cli"))
        .args(["watch", &admin_addr, "--once"])
        .output()
        .expect("run dbdc-cli watch");
    assert!(watch.status.success(), "watch --once failed: {watch:?}");
    let table = String::from_utf8_lossy(&watch.stdout);
    assert!(
        table.contains("server (server)"),
        "watch table lacks the server identity line: {table}"
    );

    // Deadline expiry: nonzero exit, but the partial report is on disk.
    let status = server.wait().expect("wait for server");
    assert!(
        !status.success(),
        "server should fail its deadline with no sites"
    );
    let report = load_report(&server_report);
    assert_eq!(report.role.as_deref(), Some("server"));
    assert_eq!(report.run_id.as_deref(), Some("e2e-killed"));
    assert_eq!(
        report.params.iter().find(|(k, _)| k == "clean"),
        Some(&("clean".to_string(), "false".to_string())),
        "partial report must be marked clean=false"
    );

    // The degenerate fleet still merges: server report alone.
    let merged_path = dir.join("merged.json");
    run_cli(&[
        "report",
        "merge",
        server_report.to_str().unwrap(),
        "--out",
        merged_path.to_str().unwrap(),
    ]);
    let merged = load_report(&merged_path);
    assert_eq!(merged.role.as_deref(), Some("merged"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn separate_processes_converge_through_fault_proxy() {
    let dir = scratch("lossy");
    let (points, data) = write_points(&dir);
    let reference = run_dbdc(
        &data,
        &params(),
        Partitioner::RandomEqual { seed: 7 },
        N_SITES,
    );

    // Give the server generous timeouts: with drops and delays in the
    // way, sessions replay until the GOODBYE lands.
    let (server_report, site_reports, merged_path) = report_paths(&dir);
    let (server, addr_file) = spawn_server(
        &dir,
        &[
            "--drain-ms",
            "1200",
            "--read-timeout-ms",
            "500",
            "--run-id",
            "e2e-lossy",
            "--metrics-out",
            server_report.to_str().unwrap(),
        ],
    );
    let server_addr: std::net::SocketAddr = await_addr(&addr_file).parse().expect("server addr");
    let rec = RecordingRecorder::new();
    let proxy = FaultProxy::spawn_observed(server_addr, FaultPlan::lossy(0xE2E), &rec)
        .expect("spawn proxy");
    let via = proxy.addr().to_string();

    let sites: Vec<Child> = (0..N_SITES)
        .map(|s| {
            let site_extra = [
                "--retries",
                "25",
                "--retry-base-ms",
                "25",
                "--retry-max-ms",
                "400",
                "--read-timeout-ms",
                "800",
                "--run-id",
                "e2e-lossy",
                "--metrics-out",
                site_reports[s].to_str().unwrap(),
            ];
            spawn_site(&points, &dir, s, &via, &site_extra)
        })
        .collect();
    for (s, child) in sites.into_iter().enumerate() {
        wait_ok(child, &format!("site {s}"));
    }
    wait_ok(server, "server");

    let merged = merge_labels(&dir, data.len());
    assert_eq!(
        merged, reference.assignment,
        "labels diverged through the fault proxy"
    );

    // The merged report's retry counters must account for the injected
    // faults. Drops, truncations and bitflips each stall one session
    // attempt (delays do not), so whenever the proxy injected any of
    // them, some site must have retried.
    let report = merge_reports_via_cli(&server_report, &site_reports, &merged_path);
    let total_retries: u64 = (0..N_SITES)
        .map(|s| scope(&report, &format!("net/site[{s}]")).retries)
        .sum();
    let c2s = rec.counters("proxy/c2s");
    let s2c = rec.counters("proxy/s2c");
    let stalls = c2s.faults_dropped
        + s2c.faults_dropped
        + c2s.faults_truncated
        + s2c.faults_truncated
        + c2s.faults_bitflipped
        + s2c.faults_bitflipped;
    assert!(
        total_retries >= 1 || stalls == 0,
        "proxy injected {stalls} stalling fault(s) but no site retried"
    );
    // Every attempt — first tries and retries alike — lands one sample
    // in the shared session histogram.
    let (_, session_hist) = report
        .hists
        .iter()
        .find(|(n, _)| n == "net/session_ns")
        .expect("merged report carries net/session_ns");
    assert_eq!(session_hist.count(), N_SITES as u64 + total_retries);

    let _ = std::fs::remove_dir_all(&dir);
}
