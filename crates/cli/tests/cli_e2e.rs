//! End-to-end tests of the `dbdc-cli` binary: real process, real files.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dbdc-cli"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dbdc_cli_e2e_{}_{name}", std::process::id()));
    p
}

#[test]
fn generate_compare_run_round_trip() {
    let csv = tmp("pts.csv");
    let labels = tmp("labels.csv");

    let out = bin()
        .args(["generate", "--set", "c", "--seed", "5", "--out"])
        .arg(&csv)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "generate failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1021 points"), "{stdout}");

    let out = bin()
        .args(["compare", "--input"])
        .arg(&csv)
        .args(["--eps", "1.2", "--min-pts", "5", "--sites", "4"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "compare failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("P^II"), "{stdout}");

    let out = bin()
        .args(["run", "--input"])
        .arg(&csv)
        .args(["--eps", "1.2", "--min-pts", "5", "--sites", "3", "--out"])
        .arg(&labels)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "run failed: {out:?}");
    let text = std::fs::read_to_string(&labels).expect("labels written");
    assert_eq!(text.lines().count(), 1021);
    // Every line ends in a cluster id or "noise".
    assert!(text.lines().all(|l| l
        .rsplit(',')
        .next()
        .map(|f| f == "noise" || f.parse::<u32>().is_ok())
        == Some(true)));

    let _ = std::fs::remove_file(&csv);
    let _ = std::fs::remove_file(&labels);
}

#[test]
fn suggest_reports_knee() {
    let csv = tmp("suggest.csv");
    assert!(bin()
        .args(["generate", "--set", "c", "--seed", "9", "--out"])
        .arg(&csv)
        .status()
        .expect("binary runs")
        .success());
    let out = bin()
        .args(["suggest", "--input"])
        .arg(&csv)
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("suggested: --eps"), "{stdout}");
    let _ = std::fs::remove_file(&csv);
}

#[test]
fn plot_writes_svg() {
    let csv = tmp("plot.csv");
    let svg = tmp("plot.svg");
    assert!(bin()
        .args(["generate", "--set", "c", "--seed", "2", "--out"])
        .arg(&csv)
        .status()
        .expect("binary runs")
        .success());
    let out = bin()
        .args(["plot", "--input"])
        .arg(&csv)
        .args(["--eps", "1.2", "--min-pts", "5", "--out"])
        .arg(&svg)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "plot failed: {out:?}");
    let text = std::fs::read_to_string(&svg).expect("svg written");
    assert!(text.starts_with("<svg"));
    assert!(text.contains("<circle"));
    let _ = std::fs::remove_file(&csv);
    let _ = std::fs::remove_file(&svg);
}

#[test]
fn bad_usage_exits_nonzero_with_message() {
    // Unknown command.
    let out = bin().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing required flag.
    let out = bin()
        .args(["central", "--eps", "1.0", "--min-pts", "3"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--input"));

    // Unknown flag.
    let out = bin()
        .args(["generate", "--set", "c", "--bogus", "1"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));

    // Nonexistent input file.
    let out = bin()
        .args([
            "central",
            "--input",
            "/nonexistent/nope.csv",
            "--eps",
            "1.0",
            "--min-pts",
            "3",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot open"));
}

#[test]
fn metrics_out_report_round_trip() {
    let csv = tmp("metrics.csv");
    let json = tmp("metrics.json");
    assert!(bin()
        .args(["generate", "--set", "c", "--seed", "6", "--out"])
        .arg(&csv)
        .status()
        .expect("binary runs")
        .success());

    // A recorded run writes JSON and prints the trace.
    let out = bin()
        .args(["run", "--input"])
        .arg(&csv)
        .args(["--eps", "1.2", "--min-pts", "5", "--sites", "3", "--trace"])
        .args(["--metrics-out"])
        .arg(&json)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "run failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("== run report"), "{stdout}");
    assert!(stdout.contains("per-site upload bytes"), "{stdout}");
    assert!(stdout.contains("(modeled)"), "{stdout}");

    // The JSON is a valid RunReport carrying all protocol phases.
    let text = std::fs::read_to_string(&json).expect("json written");
    assert!(text.starts_with('{'));
    for key in ["\"schema_version\"", "\"counters\"", "\"local[0]\""] {
        assert!(text.contains(key), "missing {key} in {text}");
    }

    // `report` validates the phase set and renders it; a missing span
    // name fails with a nonzero exit.
    let out = bin()
        .args(["report", "--input"])
        .arg(&json)
        .args([
            "--require",
            "local[0],cluster,extract,encode,upload,global,broadcast,relabel[0]",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "report failed: {out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("== run report"));

    let out = bin()
        .args(["report", "--input"])
        .arg(&json)
        .args(["--require", "relabel[99]"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("relabel[99]"));
    // The error names what IS in the report, so a typo'd gate is
    // fixable from the message alone.
    assert!(
        stderr.contains("present spans/histograms:"),
        "error must list present scopes: {stderr}"
    );
    assert!(stderr.contains("local[0]"), "{stderr}");

    let _ = std::fs::remove_file(&csv);
    let _ = std::fs::remove_file(&json);
}

/// A minimal v2 report with one histogram cell built from `values`.
fn hist_report(values: &[u64]) -> dbdc_obs::RunReport {
    let mut r = dbdc_obs::RunReport::new("bench");
    r.hists = vec![(
        "c/kdtree/t1/total_ns".to_string(),
        dbdc_obs::Histogram::from_values(values.iter().copied()),
    )];
    r
}

fn write_report(name: &str, r: &dbdc_obs::RunReport) -> PathBuf {
    let path = tmp(name);
    std::fs::write(&path, r.to_json_string()).expect("report written");
    path
}

#[test]
fn report_diff_passes_within_tolerance_and_fails_on_regression() {
    let baseline = write_report(
        "diff_base.json",
        &hist_report(&[1_000_000, 1_050_000, 1_100_000, 1_150_000]),
    );
    // Same distribution, slightly shifted: inside the 25% floor.
    let steady = write_report(
        "diff_steady.json",
        &hist_report(&[1_020_000, 1_070_000, 1_110_000, 1_160_000]),
    );
    let out = bin()
        .arg("report")
        .arg("diff")
        .args([&baseline, &steady])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "clean diff failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ok"), "{stdout}");
    assert!(stdout.contains("within tolerance"), "{stdout}");

    // Everything 10x slower (the doctored-report shape): nonzero exit.
    let doctored = write_report(
        "diff_doctored.json",
        &hist_report(&[10_000_000, 10_500_000, 11_000_000, 11_500_000]),
    );
    let out = bin()
        .arg("report")
        .arg("diff")
        .args([&baseline, &doctored])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "doctored diff must fail");
    assert!(String::from_utf8_lossy(&out.stdout).contains("REGRESS"));
    assert!(String::from_utf8_lossy(&out.stderr).contains("regression"));

    // A wider --threshold waves the same report through.
    let out = bin()
        .arg("report")
        .arg("diff")
        .args([&baseline, &doctored])
        .args(["--threshold", "9.5"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "wide threshold should pass: {out:?}");

    for p in [&baseline, &steady, &doctored] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn report_diff_only_narrows_the_gate() {
    // Baseline with two cells; only one regresses in the new report.
    let mut base = dbdc_obs::RunReport::new("bench");
    base.hists = vec![
        (
            "c/kdtree/t1/eps_range_ns".to_string(),
            dbdc_obs::Histogram::from_values([1_000_000, 1_050_000, 1_100_000]),
        ),
        (
            "c/kdtree/t1/total_ns".to_string(),
            dbdc_obs::Histogram::from_values([1_000_000, 1_050_000, 1_100_000]),
        ),
    ];
    let mut new = base.clone();
    new.hists[1].1 = dbdc_obs::Histogram::from_values([9_000_000, 9_500_000, 9_900_000]);
    let base_path = write_report("diff_only_base.json", &base);
    let new_path = write_report("diff_only_new.json", &new);

    // Ungated: the total_ns regression fails the diff.
    let out = bin()
        .arg("report")
        .arg("diff")
        .args([&base_path, &new_path])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "full diff must fail: {out:?}");

    // --only eps_range_ns: the regressed cell is filtered out.
    let out = bin()
        .arg("report")
        .arg("diff")
        .args([&base_path, &new_path])
        .args(["--only", "eps_range_ns"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "gated diff should pass: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("total_ns"), "{stdout}");

    // A substring matching nothing is an error, not a silent pass.
    let out = bin()
        .arg("report")
        .arg("diff")
        .args([&base_path, &new_path])
        .args(["--only", "no_such_cell"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "empty --only match must fail");
    assert!(String::from_utf8_lossy(&out.stderr).contains("no_such_cell"));

    for p in [&base_path, &new_path] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn report_diff_rejects_missing_cells() {
    let baseline = write_report("diff_cells_base.json", &hist_report(&[1_000, 2_000]));
    let mut empty = dbdc_obs::RunReport::new("bench");
    empty.hists = vec![(
        "other/cell_ns".to_string(),
        dbdc_obs::Histogram::from_values([5]),
    )];
    let shrunk = write_report("diff_cells_new.json", &empty);
    let out = bin()
        .arg("report")
        .arg("diff")
        .args([&baseline, &shrunk])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "missing cell must fail");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("MISSING"), "{stdout}");
    assert!(stdout.contains("informational"), "{stdout}");
    let _ = std::fs::remove_file(&baseline);
    let _ = std::fs::remove_file(&shrunk);
}

#[test]
fn report_require_counter_and_hist_rendering() {
    let csv = tmp("reqctr.csv");
    let json = tmp("reqctr.json");
    assert!(bin()
        .args(["generate", "--set", "c", "--seed", "4", "--out"])
        .arg(&csv)
        .status()
        .expect("binary runs")
        .success());
    assert!(bin()
        .args(["run", "--input"])
        .arg(&csv)
        .args([
            "--eps",
            "1.2",
            "--min-pts",
            "5",
            "--sites",
            "3",
            "--metrics-out"
        ])
        .arg(&json)
        .status()
        .expect("binary runs")
        .success());

    // The instrumentation fired: range queries were counted.
    let out = bin()
        .args(["report", "--input"])
        .arg(&json)
        .args(["--require-counter", "range_queries,bytes_sent"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "require-counter failed: {out:?}");

    // A sequential run performs no DSU unions; the guard trips.
    let out = bin()
        .args(["report", "--input"])
        .arg(&json)
        .args(["--require-counter", "dsu_unions"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("dsu_unions"));

    // Unknown counter names also trip rather than silently passing.
    let out = bin()
        .args(["report", "--input"])
        .arg(&json)
        .args(["--require-counter", "no_such_counter"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());

    // --hist prints the distribution rows and only them.
    let out = bin()
        .args(["report", "--input"])
        .arg(&json)
        .arg("--hist")
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "--hist failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("eps_range_ns"), "{stdout}");
    assert!(stdout.contains("p99="), "{stdout}");
    assert!(!stdout.contains("== run report"), "{stdout}");

    let _ = std::fs::remove_file(&csv);
    let _ = std::fs::remove_file(&json);
}

#[test]
fn central_trace_prints_counters() {
    let csv = tmp("central_trace.csv");
    assert!(bin()
        .args(["generate", "--set", "c", "--seed", "8", "--out"])
        .arg(&csv)
        .status()
        .expect("binary runs")
        .success());
    let out = bin()
        .args(["central", "--input"])
        .arg(&csv)
        .args(["--eps", "1.2", "--min-pts", "5", "--trace"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "central failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("== central report"), "{stdout}");
    assert!(stdout.contains("range_queries="), "{stdout}");
    let _ = std::fs::remove_file(&csv);
}

#[test]
fn stream_command_reports_transmissions() {
    let csv = tmp("stream.csv");
    assert!(bin()
        .args(["generate", "--set", "c", "--seed", "3", "--out"])
        .arg(&csv)
        .status()
        .expect("binary runs")
        .success());
    let out = bin()
        .args(["stream", "--input"])
        .arg(&csv)
        .args([
            "--eps",
            "1.2",
            "--min-pts",
            "5",
            "--sites",
            "2",
            "--batch",
            "150",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stream failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("global clusters"), "{stdout}");
    assert!(stdout.contains("drift gating sent"), "{stdout}");
    let _ = std::fs::remove_file(&csv);
}

#[test]
fn quality_block_gates_end_to_end() {
    let csv = tmp("quality.csv");
    let json = tmp("quality.json");
    assert!(bin()
        .args(["generate", "--set", "c", "--seed", "8", "--out"])
        .arg(&csv)
        .status()
        .expect("binary runs")
        .success());

    // `run --metrics-out` emits a schema-v5 report with a finite DBCV.
    let out = bin()
        .args(["run", "--input"])
        .arg(&csv)
        .args(["--eps", "1.2", "--min-pts", "5", "--sites", "3"])
        .args(["--metrics-out"])
        .arg(&json)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "run failed: {out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("quality: DBCV"),
        "run must print its DBCV"
    );
    let report = dbdc_obs::RunReport::parse(&std::fs::read_to_string(&json).expect("json written"))
        .expect("report parses");
    assert_eq!(report.schema_version, 5);
    let quality = report.quality.clone().expect("run report carries quality");
    assert!(
        quality.dbcv.is_finite() && (-1.0..=1.0).contains(&quality.dbcv),
        "DBCV out of range: {}",
        quality.dbcv
    );

    // `--require-quality global` passes; an absent per-site scope fails.
    assert!(bin()
        .args(["report", "--input"])
        .arg(&json)
        .args(["--require-quality", "global"])
        .status()
        .expect("binary runs")
        .success());
    let out = bin()
        .args(["report", "--input"])
        .arg(&json)
        .args(["--require-quality", "site[9]"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("site[9]"));

    // A doctored DBCV drop beyond tolerance fails the directional diff;
    // the identical report passes it.
    let mut doctored = report.clone();
    doctored.quality.as_mut().unwrap().dbcv -= 0.2;
    let bad = write_report("quality_bad.json", &doctored);
    let out = bin()
        .args(["report", "diff"])
        .arg(&json)
        .arg(&bad)
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "0.2 DBCV drop must fail the diff");
    assert!(String::from_utf8_lossy(&out.stdout).contains("quality/dbcv"));
    assert!(bin()
        .args(["report", "diff"])
        .arg(&json)
        .arg(&json)
        .status()
        .expect("binary runs")
        .success());
    // A rise never fails, however large.
    let mut improved = report.clone();
    improved.quality.as_mut().unwrap().dbcv += 0.5;
    let good = write_report("quality_good.json", &improved);
    assert!(bin()
        .args(["report", "diff"])
        .arg(&json)
        .arg(&good)
        .status()
        .expect("binary runs")
        .success());

    let _ = std::fs::remove_file(&csv);
    let _ = std::fs::remove_file(&json);
    let _ = std::fs::remove_file(&bad);
    let _ = std::fs::remove_file(&good);
}

#[test]
fn tune_selects_at_least_the_default_eps_global() {
    let csv = tmp("tune.csv");
    assert!(bin()
        .args(["generate", "--set", "c", "--seed", "4", "--out"])
        .arg(&csv)
        .status()
        .expect("binary runs")
        .success());
    let out = bin()
        .args(["tune", "--input"])
        .arg(&csv)
        .args(["--eps", "1.2", "--min-pts", "5", "--sites", "3"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "tune failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("selected --eps-global"), "{stdout}");

    // The default grid contains the CLI default (x2.0), so the argmax's
    // DBCV can never fall below the default setting's score.
    let row_dbcv = |name: &str| -> f64 {
        stdout
            .lines()
            .find(|l| l.split_whitespace().next() == Some(name))
            .and_then(|l| l.split_whitespace().last())
            .unwrap_or_else(|| panic!("no sweep row for {name} in {stdout}"))
            .parse()
            .expect("DBCV column parses")
    };
    let selected = stdout
        .lines()
        .find(|l| l.contains("selected --eps-global"))
        .and_then(|l| l.split_whitespace().nth(2))
        .expect("selection line names a candidate")
        .to_string();
    assert!(row_dbcv(&selected) >= row_dbcv("2.0"));

    let _ = std::fs::remove_file(&csv);
}
