//! Synthetic data set generators for the DBDC reproduction.
//!
//! The paper evaluates on three 2-dimensional point sets (Figure 6):
//!
//! * **A** — 8 700 objects, randomly generated clusters,
//! * **B** — 4 000 objects, very noisy data,
//! * **C** — 1 021 objects, 3 clusters,
//!
//! plus cardinality-scaled variants (up to 203 000 points) for the
//! efficiency experiments. The original point sets are not published, so
//! this crate regenerates statistically similar sets from seeded mixtures
//! of uniform-density ellipses (with an optional Gaussian profile) over a
//! uniform noise floor (the substitution is documented in DESIGN.md).
//! Cardinalities match the paper exactly; every generator is deterministic
//! in its seed. [`hyper`] extends the generators to arbitrary dimension.
//!
//! Each generated set carries its ground-truth labels (which the paper does
//! not use, but which the extended evaluation uses for ARI/NMI baselines)
//! and suggested DBSCAN parameters tuned to the generator's geometry.

use dbdc_geom::{Clustering, Dataset, Label};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod hyper;
pub mod normal;

use normal::Normal;

pub use hyper::{hyper_blobs, HyperCluster, HyperMixtureSpec};

/// The radial density profile of a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Profile {
    /// Uniform density inside the ellipse — crisp edges, like the blobs in
    /// the paper's Figure 6 scatter plots. Uniform clusters keep their
    /// boundary when the data is thinned across sites, which is what lets
    /// DBDC hold its quality up to many sites.
    #[default]
    Uniform,
    /// Gaussian falloff (the radii act as standard deviations) — soft
    /// fringes that erode under partitioning; used by robustness tests.
    Gaussian,
}

/// One cluster of a mixture: a rotated ellipse filled with `n` points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Cluster center.
    pub center: [f64; 2],
    /// Semi-axes (uniform) or standard deviations (Gaussian) along the
    /// pre-rotation x and y axes.
    pub radii: [f64; 2],
    /// Rotation angle in radians.
    pub angle: f64,
    /// Number of points to draw.
    pub n: usize,
    /// Density profile.
    pub profile: Profile,
}

/// A full mixture specification: clusters plus a uniform noise floor over
/// `bounds`.
#[derive(Debug, Clone, PartialEq)]
pub struct MixtureSpec {
    /// The clusters.
    pub clusters: Vec<ClusterSpec>,
    /// Number of uniform noise points.
    pub noise: usize,
    /// Noise bounding box `[lo, hi]` per dimension.
    pub bounds: [[f64; 2]; 2],
}

impl MixtureSpec {
    /// Total number of points the spec will generate.
    pub fn total(&self) -> usize {
        self.clusters.iter().map(|c| c.n).sum::<usize>() + self.noise
    }

    /// Draws the dataset. Points are emitted in shuffled order so that the
    /// visit order of clustering algorithms is not correlated with the
    /// ground truth.
    pub fn generate(&self, seed: u64) -> GeneratedData {
        let mut rng = StdRng::seed_from_u64(seed);
        let normal = Normal::new();
        let mut points: Vec<([f64; 2], Label)> = Vec::with_capacity(self.total());
        for (ci, c) in self.clusters.iter().enumerate() {
            let (sin, cos) = c.angle.sin_cos();
            for _ in 0..c.n {
                let (dx, dy) = match c.profile {
                    Profile::Uniform => {
                        // Uniform in the unit disk, stretched to the ellipse.
                        let r = rng.random_range(0.0..1.0f64).sqrt();
                        let theta = rng.random_range(0.0..std::f64::consts::TAU);
                        (r * theta.cos() * c.radii[0], r * theta.sin() * c.radii[1])
                    }
                    Profile::Gaussian => (
                        normal.sample(&mut rng) * c.radii[0],
                        normal.sample(&mut rng) * c.radii[1],
                    ),
                };
                let x = c.center[0] + dx * cos - dy * sin;
                let y = c.center[1] + dx * sin + dy * cos;
                points.push(([x, y], Label::Cluster(ci as u32)));
            }
        }
        for _ in 0..self.noise {
            let x = rng.random_range(self.bounds[0][0]..self.bounds[0][1]);
            let y = rng.random_range(self.bounds[1][0]..self.bounds[1][1]);
            points.push(([x, y], Label::Noise));
        }
        // Fisher-Yates shuffle with the same rng.
        for i in (1..points.len()).rev() {
            let j = rng.random_range(0..=i);
            points.swap(i, j);
        }
        let mut data = Dataset::with_capacity(2, points.len());
        let mut labels = Vec::with_capacity(points.len());
        for (p, l) in points {
            data.push(&p);
            labels.push(l);
        }
        GeneratedData {
            data,
            truth: Clustering::from_labels(labels),
            suggested_eps: 0.0,
            suggested_min_pts: 0,
        }
    }
}

/// A generated dataset with its ground truth and suggested DBSCAN
/// parameters.
#[derive(Debug, Clone)]
pub struct GeneratedData {
    /// The points.
    pub data: Dataset,
    /// Ground-truth labels (noise for the uniform floor).
    pub truth: Clustering,
    /// A reasonable `Eps_local` for this geometry.
    pub suggested_eps: f64,
    /// A reasonable `MinPts_local` for this geometry.
    pub suggested_min_pts: usize,
}

impl GeneratedData {
    fn with_params(mut self, eps: f64, min_pts: usize) -> Self {
        self.suggested_eps = eps;
        self.suggested_min_pts = min_pts;
        self
    }
}

/// Test data set **A**: 8 700 objects, randomly generated clusters
/// (Figure 6a). Cluster count, placement, shape and size are drawn from the
/// seed, mimicking "randomly generated data/cluster".
pub fn dataset_a(seed: u64) -> GeneratedData {
    spec_a(seed, 8_700).generate(seed ^ 0xA).with_params(1.0, 5)
}

/// The mixture specification behind data set A, scaled to `total` points.
/// Used directly by the cardinality sweeps of Figures 7 and 8.
pub fn spec_a(seed: u64, total: usize) -> MixtureSpec {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let n_clusters = rng.random_range(8..=12);
    let noise = total / 20; // 5% noise
    let cluster_total = total - noise;
    // Random relative weights.
    let weights: Vec<f64> = (0..n_clusters)
        .map(|_| rng.random_range(0.5..2.0))
        .collect();
    let wsum: f64 = weights.iter().sum();
    let mut clusters: Vec<ClusterSpec> = Vec::with_capacity(n_clusters);
    let mut assigned = 0usize;
    for (i, w) in weights.iter().enumerate() {
        let n = if i + 1 == n_clusters {
            cluster_total - assigned
        } else {
            ((w / wsum) * cluster_total as f64) as usize
        };
        assigned += n;
        // Clusters in the paper's Figure 6 are visibly separated; rejection-
        // sample centers with a minimum pairwise distance so that distinct
        // clusters neither touch (max radii sum is 9) nor merge at moderate
        // Eps_global, while close pairs still exist to punish extreme
        // Eps_global values.
        const MIN_SEPARATION: f64 = 12.0;
        let mut center = [0.0f64; 2];
        for attempt in 0..1000 {
            center = [rng.random_range(8.0..92.0), rng.random_range(8.0..92.0)];
            let ok = clusters.iter().all(|c: &ClusterSpec| {
                let dx = c.center[0] - center[0];
                let dy = c.center[1] - center[1];
                (dx * dx + dy * dy).sqrt() >= MIN_SEPARATION
            });
            if ok || attempt == 999 {
                break;
            }
        }
        clusters.push(ClusterSpec {
            center,
            radii: [rng.random_range(2.5..4.5), rng.random_range(2.5..4.5)],
            angle: rng.random_range(0.0..std::f64::consts::PI),
            n,
            profile: Profile::Uniform,
        });
    }
    MixtureSpec {
        clusters,
        noise,
        bounds: [[0.0, 100.0], [0.0, 100.0]],
    }
}

/// Test data set **B**: 4 000 objects, very noisy (Figure 6b) — a handful
/// of clusters drowning in ~35% uniform noise.
pub fn dataset_b(seed: u64) -> GeneratedData {
    let noise = 1_400;
    let per = (4_000 - noise) / 5;
    let rem = (4_000 - noise) - per * 5;
    let centers = [
        [20.0, 25.0],
        [70.0, 20.0],
        [50.0, 55.0],
        [20.0, 80.0],
        [80.0, 75.0],
    ];
    let clusters = centers
        .iter()
        .enumerate()
        .map(|(i, &center)| ClusterSpec {
            center,
            radii: [4.0, 4.0],
            angle: 0.0,
            n: per + if i == 0 { rem } else { 0 },
            profile: Profile::Uniform,
        })
        .collect();
    MixtureSpec {
        clusters,
        noise,
        bounds: [[0.0, 100.0], [0.0, 100.0]],
    }
    .generate(seed ^ 0xB)
    .with_params(1.0, 6)
}

/// Test data set **C**: 1 021 objects in 3 well-separated clusters
/// (Figure 6c).
pub fn dataset_c(seed: u64) -> GeneratedData {
    let clusters = vec![
        ClusterSpec {
            center: [25.0, 30.0],
            radii: [5.0, 3.0],
            angle: 0.5,
            n: 400,
            profile: Profile::Uniform,
        },
        ClusterSpec {
            center: [70.0, 30.0],
            radii: [4.0, 4.0],
            angle: 0.0,
            n: 350,
            profile: Profile::Uniform,
        },
        ClusterSpec {
            center: [48.0, 75.0],
            radii: [3.0, 6.0],
            angle: 1.2,
            n: 250,
            profile: Profile::Uniform,
        },
    ];
    MixtureSpec {
        clusters,
        noise: 21,
        bounds: [[0.0, 100.0], [0.0, 100.0]],
    }
    .generate(seed ^ 0xC)
    .with_params(1.2, 5)
}

/// A dataset-A-like mixture scaled to exactly `n` points, for the
/// cardinality sweeps of Figure 7 and the 203 000-point site sweep of
/// Figure 8. The paper grows the number of points in a fixed domain
/// (clusters get denser as `n` grows); we match that by keeping the
/// dataset-A geometry fixed and scaling only the counts.
pub fn scaled_a(n: usize, seed: u64) -> GeneratedData {
    spec_a(seed, n)
        .generate(seed ^ n as u64)
        .with_params(1.0, 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_a_cardinality_and_shape() {
        let g = dataset_a(42);
        assert_eq!(g.data.len(), 8_700);
        assert_eq!(g.data.dim(), 2);
        assert_eq!(g.truth.len(), 8_700);
        let k = g.truth.n_clusters();
        assert!((8..=12).contains(&(k as usize)), "clusters: {k}");
        // ~5% noise.
        assert_eq!(g.truth.n_noise(), 8_700 / 20);
        assert!(g.suggested_eps > 0.0);
    }

    #[test]
    fn dataset_b_is_noisy() {
        let g = dataset_b(42);
        assert_eq!(g.data.len(), 4_000);
        assert_eq!(g.truth.n_clusters(), 5);
        let frac = g.truth.n_noise() as f64 / 4_000.0;
        assert!(frac > 0.3, "noise fraction {frac}");
    }

    #[test]
    fn dataset_c_exact_cardinality() {
        let g = dataset_c(42);
        assert_eq!(g.data.len(), 1_021);
        assert_eq!(g.truth.n_clusters(), 3);
        // Cluster ids are renumbered by first appearance after the shuffle,
        // so compare sizes as a multiset.
        let mut sizes = g.truth.cluster_sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![250, 350, 400]);
    }

    #[test]
    fn generators_are_deterministic() {
        let a1 = dataset_a(7);
        let a2 = dataset_a(7);
        assert_eq!(a1.data, a2.data);
        assert_eq!(a1.truth, a2.truth);
        let b1 = dataset_b(7);
        let b2 = dataset_b(7);
        assert_eq!(b1.data, b2.data);
    }

    #[test]
    fn different_seeds_differ() {
        let a1 = dataset_a(1);
        let a2 = dataset_a(2);
        assert_ne!(a1.data, a2.data);
    }

    #[test]
    fn scaled_a_hits_exact_n() {
        for n in [1_000, 10_000, 203_000] {
            let g = scaled_a(n, 3);
            assert_eq!(g.data.len(), n, "scaled_a({n})");
        }
    }

    #[test]
    fn points_mostly_inside_domain() {
        let g = dataset_a(11);
        let inside = g
            .data
            .iter()
            .filter(|p| (-10.0..110.0).contains(&p[0]) && (-10.0..110.0).contains(&p[1]))
            .count();
        // Gaussians can leak past the box but only in the extreme tails.
        assert!(inside as f64 > 0.999 * g.data.len() as f64);
    }

    #[test]
    fn shuffle_decorrelates_truth_from_order() {
        // The first 100 points must not all stem from the same cluster.
        let g = dataset_a(13);
        let first: std::collections::HashSet<_> = (0..100u32).map(|i| g.truth.label(i)).collect();
        assert!(first.len() > 2, "labels of first points: {first:?}");
    }

    #[test]
    fn ground_truth_is_recoverable_by_dbscan_geometry() {
        // Sanity: on data set C most cluster points have >= min_pts
        // neighbors within suggested_eps (i.e. the suggested parameters are
        // usable). Checked by brute force on a subsample.
        let g = dataset_c(17);
        let mut dense = 0usize;
        let mut total = 0usize;
        for i in (0..g.data.len() as u32).step_by(10) {
            if g.truth.label(i).is_noise() {
                continue;
            }
            total += 1;
            let p = g.data.point(i);
            let count = g
                .data
                .iter()
                .filter(|q| {
                    let dx = p[0] - q[0];
                    let dy = p[1] - q[1];
                    (dx * dx + dy * dy).sqrt() <= g.suggested_eps
                })
                .count();
            if count >= g.suggested_min_pts {
                dense += 1;
            }
        }
        // Uniform clusters are dense throughout; only points right at the
        // ellipse edge can fall below the core threshold.
        assert!(
            dense as f64 > 0.9 * total as f64,
            "only {dense}/{total} sampled cluster points are dense"
        );
    }
}
