//! d-dimensional mixture generator.
//!
//! The paper evaluates on 2-d data, but nothing in DBDC is specific to two
//! dimensions — the whole stack (indexes, DBSCAN, models, relabeling) is
//! dimension-generic. This module generates uniform-density hyperballs (and
//! Gaussian blobs) in arbitrary dimension so the integration tests can
//! exercise the pipeline in 3-d and beyond.

use crate::normal::Normal;
use crate::GeneratedData;
use dbdc_geom::{Clustering, Dataset, Label};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One spherical cluster in `dim` dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperCluster {
    /// Cluster center (defines the dimensionality).
    pub center: Vec<f64>,
    /// Ball radius (uniform profile) or standard deviation (Gaussian).
    pub radius: f64,
    /// Number of points.
    pub n: usize,
    /// Uniform ball (true) or isotropic Gaussian (false).
    pub uniform: bool,
}

/// A d-dimensional mixture: clusters plus uniform noise in a hyperbox.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperMixtureSpec {
    /// The clusters (all centers must share dimensionality).
    pub clusters: Vec<HyperCluster>,
    /// Number of uniform noise points.
    pub noise: usize,
    /// Noise bounds, `[lo, hi]` applied to every dimension.
    pub bounds: [f64; 2],
}

impl HyperMixtureSpec {
    /// Generates the dataset with ground truth, shuffled.
    ///
    /// # Panics
    /// Panics if there are no clusters or the centers disagree on
    /// dimensionality.
    pub fn generate(&self, seed: u64) -> GeneratedData {
        assert!(!self.clusters.is_empty(), "need at least one cluster");
        let dim = self.clusters[0].center.len();
        assert!(dim > 0, "dimensionality must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let normal = Normal::new();
        let total: usize = self.clusters.iter().map(|c| c.n).sum::<usize>() + self.noise;
        let mut points: Vec<(Vec<f64>, Label)> = Vec::with_capacity(total);
        for (ci, c) in self.clusters.iter().enumerate() {
            assert_eq!(c.center.len(), dim, "cluster centers disagree on dim");
            for _ in 0..c.n {
                // Direction: normalized Gaussian vector (uniform on the
                // sphere); length: r·u^(1/d) for uniform balls.
                let mut v: Vec<f64> = (0..dim).map(|_| normal.sample(&mut rng)).collect();
                let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-300);
                let len = if c.uniform {
                    c.radius * rng.random_range(0.0..1.0f64).powf(1.0 / dim as f64)
                } else {
                    // For a Gaussian profile keep the Gaussian vector as-is
                    // (scaled), rather than projecting onto the sphere.
                    c.radius
                };
                if c.uniform {
                    for (x, cc) in v.iter_mut().zip(c.center.iter()) {
                        *x = cc + *x / norm * len;
                    }
                } else {
                    for (x, cc) in v.iter_mut().zip(c.center.iter()) {
                        *x = cc + *x * len;
                    }
                }
                points.push((v, Label::Cluster(ci as u32)));
            }
        }
        for _ in 0..self.noise {
            let v: Vec<f64> = (0..dim)
                .map(|_| rng.random_range(self.bounds[0]..self.bounds[1]))
                .collect();
            points.push((v, Label::Noise));
        }
        for i in (1..points.len()).rev() {
            let j = rng.random_range(0..=i);
            points.swap(i, j);
        }
        let mut data = Dataset::with_capacity(dim, points.len());
        let mut labels = Vec::with_capacity(points.len());
        for (p, l) in points {
            data.push(&p);
            labels.push(l);
        }
        GeneratedData {
            data,
            truth: Clustering::from_labels(labels),
            suggested_eps: 0.0,
            suggested_min_pts: 0,
        }
    }
}

/// A convenience d-dimensional test mixture: `k` well-separated uniform
/// balls on a diagonal lattice plus 5% noise, with DBSCAN parameters sized
/// so the core condition holds per cluster.
pub fn hyper_blobs(dim: usize, k: usize, per_cluster: usize, seed: u64) -> GeneratedData {
    assert!(dim > 0 && k > 0 && per_cluster > 0);
    let radius = 3.0;
    let spacing = 14.0;
    let clusters = (0..k)
        .map(|i| HyperCluster {
            center: (0..dim)
                .map(|d| {
                    if d % 2 == 0 {
                        (i as f64 + 1.0) * spacing
                    } else {
                        ((k - i) as f64) * spacing
                    }
                })
                .collect(),
            radius,
            n: per_cluster,
            uniform: true,
        })
        .collect();
    let mut g = HyperMixtureSpec {
        clusters,
        noise: (k * per_cluster) / 20,
        bounds: [0.0, (k as f64 + 1.0) * spacing],
    }
    .generate(seed);
    // Size eps so an eps-ball inside a cluster holds comfortably more than
    // min_pts points: per-point volume share = V_ball(eps)/V_ball(radius) =
    // (eps/radius)^dim; ask for ~4·min_pts expected neighbors.
    let min_pts = 2 * dim + 1; // a common DBSCAN rule of thumb
    let frac = (4.0 * min_pts as f64 / per_cluster as f64).min(0.9);
    g.suggested_eps = radius * frac.powf(1.0 / dim as f64);
    g.suggested_min_pts = min_pts;
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_counts() {
        let g = hyper_blobs(3, 4, 200, 1);
        assert_eq!(g.data.dim(), 3);
        assert_eq!(g.data.len(), 4 * 200 + 40);
        assert_eq!(g.truth.n_clusters(), 4);
        assert_eq!(g.truth.n_noise(), 40);
        assert!(g.suggested_eps > 0.0);
    }

    #[test]
    fn uniform_ball_points_stay_in_radius() {
        let spec = HyperMixtureSpec {
            clusters: vec![HyperCluster {
                center: vec![5.0, 5.0, 5.0, 5.0],
                radius: 2.0,
                n: 500,
                uniform: true,
            }],
            noise: 0,
            bounds: [0.0, 10.0],
        };
        let g = spec.generate(3);
        for p in g.data.iter() {
            let d2: f64 = p.iter().map(|&x| (x - 5.0) * (x - 5.0)).sum();
            assert!(d2.sqrt() <= 2.0 + 1e-9, "point escapes ball: {p:?}");
        }
    }

    #[test]
    fn ball_is_roughly_uniform_not_center_heavy() {
        // In a uniform d-ball, the median distance from the center is
        // R·(1/2)^(1/d) — far from 0. Check the 3-d case.
        let spec = HyperMixtureSpec {
            clusters: vec![HyperCluster {
                center: vec![0.0, 0.0, 0.0],
                radius: 1.0,
                n: 4000,
                uniform: true,
            }],
            noise: 0,
            bounds: [-1.0, 1.0],
        };
        let g = spec.generate(5);
        let mut dists: Vec<f64> = g
            .data
            .iter()
            .map(|p| p.iter().map(|x| x * x).sum::<f64>().sqrt())
            .collect();
        dists.sort_by(f64::total_cmp);
        let median = dists[dists.len() / 2];
        let expect = 0.5f64.powf(1.0 / 3.0); // ≈ 0.794
        assert!(
            (median - expect).abs() < 0.03,
            "median {median}, expect {expect}"
        );
    }

    #[test]
    fn deterministic() {
        let a = hyper_blobs(5, 3, 100, 9);
        let b = hyper_blobs(5, 3, 100, 9);
        assert_eq!(a.data, b.data);
    }

    #[test]
    #[should_panic(expected = "disagree on dim")]
    fn rejects_mixed_dims() {
        let spec = HyperMixtureSpec {
            clusters: vec![
                HyperCluster {
                    center: vec![0.0, 0.0],
                    radius: 1.0,
                    n: 1,
                    uniform: true,
                },
                HyperCluster {
                    center: vec![0.0],
                    radius: 1.0,
                    n: 1,
                    uniform: true,
                },
            ],
            noise: 0,
            bounds: [0.0, 1.0],
        };
        let _ = spec.generate(0);
    }
}
