//! Standard-normal sampling via the Marsaglia polar method.
//!
//! The sanctioned dependency set includes `rand` but not `rand_distr`, so
//! this tiny module provides the Gaussian draws the mixture generators need.

use rand::Rng;
use std::cell::Cell;

/// A standard normal (mean 0, variance 1) sampler.
///
/// The polar method produces samples in pairs; the spare is cached, so
/// consecutive calls cost one RNG round-trip on average.
#[derive(Debug, Default)]
pub struct Normal {
    spare: Cell<Option<f64>>,
}

impl Normal {
    /// Creates a sampler with an empty spare cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws one standard-normal sample.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        loop {
            let u = rng.random_range(-1.0..1.0f64);
            let v = rng.random_range(-1.0..1.0f64);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.spare.set(Some(v * factor));
                return u * factor;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_are_standard_normal() {
        let normal = Normal::new();
        let mut rng = StdRng::seed_from_u64(123);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }

    #[test]
    fn tail_mass_is_plausible() {
        let normal = Normal::new();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let beyond_2 = (0..n)
            .filter(|_| normal.sample(&mut rng).abs() > 2.0)
            .count() as f64
            / n as f64;
        // P(|Z| > 2) ≈ 0.0455.
        assert!((beyond_2 - 0.0455).abs() < 0.01, "tail mass {beyond_2}");
    }

    #[test]
    fn deterministic_for_seeded_rng() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let na = Normal::new();
        let nb = Normal::new();
        for _ in 0..100 {
            assert_eq!(na.sample(&mut a), nb.sample(&mut b));
        }
    }
}
