//! Golden-file test pinning the `RunReport` JSON schema.
//!
//! The report JSON is a contract: the CI metrics job, the bench
//! harness's `BENCH_*.json`, and any external tooling parse it. This
//! test compares a handcrafted deterministic report byte-for-byte
//! against `tests/golden/run_report.json`. If a schema change is
//! intentional, bump `SCHEMA_VERSION` and re-bless the file with
//! `DBDC_BLESS=1 cargo test -p dbdc-obs --test golden_report`.

use std::time::Duration;

use dbdc_obs::{
    ClusterStats, Counters, DatasetInfo, EnvFingerprint, Histogram, NetworkCost, QualityStats,
    RunReport, SiteStats, Span, TransferStats,
};

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/run_report.json")
}

fn golden_v1_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/run_report_v1.json")
}

fn golden_v2_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/run_report_v2.json")
}

fn golden_v3_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/run_report_v3.json")
}

/// A fully populated report with fixed, hand-picked values — every
/// section present, so the golden file exercises the whole schema.
fn sample_report() -> RunReport {
    let site_counters = [
        Counters {
            range_queries: 25,
            distance_evals: 500,
            representatives: 4,
            bytes_sent: 196,
            ..Counters::default()
        },
        Counters {
            range_queries: 22,
            knn_queries: 1,
            distance_evals: 440,
            node_visits: 63,
            dsu_unions: 17,
            dsu_finds: 54,
            representatives: 3,
            bytes_sent: 152,
            bytes_received: 6,
            ..Counters::default()
        },
    ];

    let mut root = Span::new("dbdc", Duration::from_micros(9_470));
    for (i, (local_us, threads)) in [(3_200u64, 1usize), (2_900, 2)].iter().enumerate() {
        let mut local = Span::new(format!("local[{i}]"), Duration::from_micros(*local_us))
            .with_threads(*threads);
        local.push(Span::new("cluster", Duration::from_micros(local_us - 450)));
        local.push(Span::new("extract", Duration::from_micros(300)));
        local.push(Span::new("encode", Duration::from_micros(150)));
        root.push(local);
    }
    root.push(Span::modeled("upload", Duration::from_micros(210)));
    root.push(Span::new("global", Duration::from_micros(640)));
    root.push(Span::modeled("broadcast", Duration::from_micros(90)));
    root.push(Span::new("relabel[0]", Duration::from_micros(410)));
    root.push(Span::new("relabel[1]", Duration::from_micros(380)));

    let mut r = RunReport::new("run");
    {
        r.params = vec![
            ("eps".into(), "1.2".into()),
            ("min_pts".into(), "5".into()),
            ("sites".into(), "2".into()),
            ("model".into(), "REP_Scor".into()),
            ("index".into(), "rstar".into()),
        ];
        r.env = Some(EnvFingerprint {
            nproc: 8,
            rustc: "rustc 1.75.0 (82e1608df 2023-12-21)".into(),
            git_rev: "0123456789ab".into(),
            dataset_checksum: "47ab12cd34ef56aa".into(),
        });
        r.dataset = Some(DatasetInfo { points: 47, dim: 2 });
        r.spans = vec![root];
        r.scopes = vec![
            ("local[0]".into(), site_counters[0]),
            ("local[1]".into(), site_counters[1]),
            (
                "global".into(),
                Counters {
                    range_queries: 7,
                    distance_evals: 49,
                    bytes_sent: 740,
                    bytes_received: 348,
                    ..Counters::default()
                },
            ),
            (
                "relabel[0]".into(),
                Counters {
                    range_queries: 24,
                    distance_evals: 96,
                    node_visits: 40,
                    bytes_received: 370,
                    ..Counters::default()
                },
            ),
        ];
        r.hists = vec![
            (
                "local[0]/eps_range_ns".into(),
                Histogram::from_values([850, 900, 1_100, 1_250, 2_300, 38_000]),
            ),
            (
                "local[1]/dsu_batch_ops".into(),
                Histogram::from_values([3, 17, 54]),
            ),
        ];
        r.sites = vec![
            SiteStats {
                site: 0,
                points: 24,
                representatives: 4,
                bytes_up: 196,
                local: Duration::from_micros(3_200),
                relabel: Duration::from_micros(410),
                counters: site_counters[0],
            },
            SiteStats {
                site: 1,
                points: 23,
                representatives: 3,
                bytes_up: 152,
                local: Duration::from_micros(2_900),
                relabel: Duration::from_micros(380),
                counters: site_counters[1],
            },
        ];
        r.transfer = Some(TransferStats {
            bytes_up: 348,
            bytes_down: 740,
            per_site_bytes_up: vec![196, 152],
            global_model_bytes: 370,
            representatives: 7,
        });
        r.network = vec![
            NetworkCost {
                link: "lan".into(),
                upload: Duration::from_micros(210),
                broadcast: Duration::from_micros(90),
                total: Duration::from_micros(9_770),
            },
            NetworkCost {
                link: "wan".into(),
                upload: Duration::from_micros(30_031),
                broadcast: Duration::from_micros(30_059),
                total: Duration::from_micros(69_560),
            },
        ];
        r.clusters = Some(ClusterStats {
            clusters: 3,
            noise: 5,
        });
        // Hand-picked dyadic fractions so the JSON floats round-trip
        // with short decimal forms.
        r.quality = Some(QualityStats {
            dbcv: 0.8125,
            clusters: 3,
            noise: 5,
            cluster_validity: vec![0.875, 0.8125, 0.75],
            q_dbdc_p1: Some(0.96875),
            q_dbdc_p2: Some(0.9375),
            per_site: vec![("site[0]".into(), 0.78125), ("site[1]".into(), 0.84375)],
        });
    }
    r
}

#[test]
fn run_report_matches_golden_file() {
    let report = sample_report();
    let text = report.to_json_string();
    let path = golden_path();
    if std::env::var_os("DBDC_BLESS").is_some() {
        std::fs::write(&path, &text).expect("write golden file");
        return;
    }
    let golden =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    assert_eq!(
        text, golden,
        "RunReport JSON drifted from the golden file; if intentional, bump \
         SCHEMA_VERSION and re-bless with DBDC_BLESS=1"
    );
}

#[test]
fn golden_file_parses_back_to_the_same_report() {
    let golden = std::fs::read_to_string(golden_path()).expect("read golden file");
    let parsed = RunReport::parse(&golden).expect("golden file validates");
    assert_eq!(parsed, sample_report());
    // Writing the parsed report reproduces the file byte-for-byte.
    assert_eq!(parsed.to_json_string(), golden);
}

/// The checked-in v1 golden file (the schema before `env`/`hists`
/// existed) must keep parsing, so `report diff` can compare across the
/// schema bump. This file is frozen history — never re-bless it.
#[test]
fn v1_golden_file_still_parses() {
    let golden = std::fs::read_to_string(golden_v1_path()).expect("read v1 golden file");
    let parsed = RunReport::parse(&golden).expect("v1 golden validates");
    assert_eq!(parsed.schema_version, 1);
    assert!(parsed.env.is_none());
    assert!(parsed.hists.is_empty());
    // The sections v1 did carry match the current sample (which reuses
    // the same handpicked values).
    let now = sample_report();
    assert_eq!(parsed.scopes, now.scopes);
    assert_eq!(parsed.sites, now.sites);
    assert_eq!(parsed.transfer, now.transfer);
    assert_eq!(parsed.network, now.network);
    assert_eq!(parsed.clusters, now.clusters);
    assert_eq!(parsed.spans, now.spans);
}

/// The checked-in v2 golden file (pre-identity, pre-wire-counter,
/// five-key spans) must keep parsing. Frozen history — never re-bless.
#[test]
fn v2_golden_file_still_parses() {
    let golden = std::fs::read_to_string(golden_v2_path()).expect("read v2 golden file");
    let parsed = RunReport::parse(&golden).expect("v2 golden validates");
    assert_eq!(parsed.schema_version, 2);
    assert!(parsed.role.is_none() && parsed.run_id.is_none() && parsed.peer.is_none());
    // Everything v2 carried matches the current sample, which keeps the
    // same handpicked values (the v3 additions default to None/zero).
    let now = sample_report();
    assert_eq!(parsed.env, now.env);
    assert_eq!(parsed.hists, now.hists);
    assert_eq!(parsed.scopes, now.scopes);
    assert_eq!(parsed.sites, now.sites);
    assert_eq!(parsed.spans, now.spans);
    assert_eq!(parsed.transfer, now.transfer);
    assert_eq!(parsed.clusters, now.clusters);
}

/// The checked-in v3 golden file (pre-quality, 23-field counter
/// objects) must keep parsing. Frozen history — never re-bless.
#[test]
fn v3_golden_file_still_parses() {
    let golden = std::fs::read_to_string(golden_v3_path()).expect("read v3 golden file");
    let parsed = RunReport::parse(&golden).expect("v3 golden validates");
    assert_eq!(parsed.schema_version, 3);
    assert!(parsed.quality.is_none());
    // Everything v3 carried matches the current sample, which keeps the
    // same handpicked values (the v4 additions default to None/zero).
    let now = sample_report();
    assert_eq!(parsed.env, now.env);
    assert_eq!(parsed.hists, now.hists);
    assert_eq!(parsed.scopes, now.scopes);
    assert_eq!(parsed.sites, now.sites);
    assert_eq!(parsed.spans, now.spans);
    assert_eq!(parsed.transfer, now.transfer);
    assert_eq!(parsed.clusters, now.clusters);
}

#[test]
fn golden_file_contains_every_protocol_phase() {
    let golden = std::fs::read_to_string(golden_path()).expect("read golden file");
    let parsed = RunReport::parse(&golden).expect("golden file validates");
    for phase in [
        "local[0]",
        "local[1]",
        "cluster",
        "extract",
        "encode",
        "upload",
        "global",
        "broadcast",
        "relabel[0]",
        "relabel[1]",
    ] {
        assert!(parsed.find_span(phase).is_some(), "missing phase {phase}");
    }
    assert!(parsed.find_span("upload").unwrap().modeled);
    assert!(!parsed.find_span("global").unwrap().modeled);
}
