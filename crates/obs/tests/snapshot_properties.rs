//! Properties of the live telemetry plane: the Prometheus exposition
//! encoder is exactly invertible, and snapshot deltas taken in order
//! from one live recorder are non-negative in every cell.

use std::sync::Arc;

use dbdc_obs::snapshot::{delta, SnapshotEngine, TelemetrySnapshot};
use dbdc_obs::{Recorder, RecordingRecorder};
use proptest::prelude::*;

/// A small fixed pool of scope names shaped like the real ones,
/// including characters the label escaper must handle.
const SCOPES: [&str; 5] = [
    "net/server",
    "net/site[0]/LOCAL_MODEL",
    "local[3]",
    "shared",
    "odd\"name\\with/escapes",
];

const HIST_SCOPES: [&str; 3] = ["net/frame_write_ns", "net/session_ns", "dsu_batch_ops"];

/// One recorded operation: which scope, and what to add where.
type Op = (usize, usize, u64, u64);

/// Applies `ops` to a live recorder the way instrumented code would:
/// counter adds spread over several accessor kinds, plus histogram
/// samples.
fn apply_ops(rec: &dyn Recorder, ops: &[Op]) {
    for &(scope, kind, a, b) in ops {
        let sheet = rec.sheet(SCOPES[scope % SCOPES.len()]).unwrap();
        match kind % 4 {
            0 => sheet.add_frame_sent(a, b.min(a)),
            1 => sheet.record_range(a, b),
            2 => sheet.add_retry(std::time::Duration::from_nanos(a)),
            _ => sheet.add_faults(a % 3, b % 3, a % 2, b % 2),
        }
        if kind % 3 == 0 {
            rec.hist(HIST_SCOPES[scope % HIST_SCOPES.len()])
                .unwrap()
                .record(a.wrapping_mul(31) % 1_000_000);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rendering a snapshot to Prometheus text and parsing it back
    /// reproduces the snapshot exactly: every counter cell, the scope
    /// order, every histogram bucket, identity, and uptime.
    #[test]
    fn exposition_round_trip_is_exact(
        ops in prop::collection::vec((0usize..8, 0usize..8, 0u64..100_000, 0u64..1_000), 0..60),
        with_identity in prop::bool::ANY,
    ) {
        let rec = Arc::new(RecordingRecorder::new());
        apply_ops(&*rec, &ops);
        let engine = if with_identity {
            SnapshotEngine::new(rec).with_identity("server", Some("run-7".into()), "server")
        } else {
            SnapshotEngine::new(rec)
        };
        let snap = engine.snapshot();
        let text = snap.to_prometheus();
        let back = TelemetrySnapshot::from_prometheus(&text).expect("parse own output");
        prop_assert_eq!(&back.counters, &snap.counters);
        prop_assert_eq!(&back.hists, &snap.hists);
        prop_assert_eq!(&back.identity, &snap.identity);
        prop_assert_eq!(back.uptime_us, snap.uptime_us);
    }

    /// Snapshots of one live engine taken in order only ever grow:
    /// `delta(a, b)` is non-negative per cell for ANY ordered pair from
    /// the sequence, not just adjacent ones — the per-location
    /// monotonicity guarantee the watch renderer's rates rely on.
    #[test]
    fn delta_is_non_negative_per_cell(
        batches in prop::collection::vec(
            prop::collection::vec((0usize..8, 0usize..8, 0u64..100_000, 0u64..1_000), 0..10),
            1..8,
        ),
        pick in (0usize..64, 0usize..64),
    ) {
        let rec = Arc::new(RecordingRecorder::new());
        let engine = SnapshotEngine::new(Arc::clone(&rec));
        let mut snaps = vec![engine.snapshot()];
        for batch in &batches {
            apply_ops(&*rec, batch);
            snaps.push(engine.snapshot());
        }
        let i = pick.0 % snaps.len();
        let j = pick.1 % snaps.len();
        let (i, j) = (i.min(j), i.max(j));
        let d = delta(&snaps[i], &snaps[j]);
        // Saturating subtraction can only mask a violation by producing
        // zero where the true difference was negative — so check the
        // cells really are cur - prev, per scope and field.
        for (scope, dc) in &d.counters {
            let cur = snaps[j].counters_for(scope).expect("scope in cur");
            let prev = snaps[i].counters_for(scope).copied().unwrap_or_default();
            for ((dv, cv), pv) in dc.values().iter().zip(cur.values()).zip(prev.values()) {
                prop_assert!(cv >= pv, "cell went backwards in {}", scope);
                prop_assert_eq!(*dv, cv - pv);
            }
        }
        prop_assert!(d.uptime_us <= snaps[j].uptime_us);
        // Histogram windows shrink to exactly the samples in between.
        for (scope, dh) in &d.hists {
            let cur = snaps[j].hist_for(scope).expect("hist in cur");
            let prev_count = snaps[i].hist_for(scope).map(|h| h.count()).unwrap_or(0);
            prop_assert_eq!(dh.count(), cur.count() - prev_count);
        }
        // Adjacent deltas telescope: summing the windows reproduces the
        // endpoints' difference in every counter cell.
        if snaps.len() >= 2 {
            let mut acc = vec![0u64; 30];
            for w in snaps.windows(2) {
                let d = delta(&w[0], &w[1]);
                for (cell, v) in acc.iter_mut().zip(d.total().values()) {
                    *cell += v;
                }
            }
            let full = delta(&snaps[0], &snaps[snaps.len() - 1]);
            prop_assert_eq!(acc, full.total().values().to_vec());
        }
    }
}
