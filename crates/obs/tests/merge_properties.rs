//! Properties of `report merge`: the merged report is a function of the
//! *set* of site reports (argument order never matters), and identity
//! validation catches the classic operator mistakes — passing the same
//! report twice, or mixing reports from different runs.

use std::time::Duration;

use dbdc_obs::merge::merge_reports;
use dbdc_obs::{Counters, Histogram, RunReport, SiteStats, Span};
use proptest::prelude::*;

/// A deterministic server report for run `run_id`.
fn server_report(run_id: &str) -> RunReport {
    let mut r = RunReport::new("serve").with_identity("server", Some(run_id.to_string()), "server");
    let mut root = Span::new("dbdc_serve", Duration::from_micros(50_000));
    root.push(Span::new("upload", Duration::from_micros(20_000)));
    root.push(Span::new("global", Duration::from_micros(5_000)));
    r.spans = vec![root];
    r.scopes = vec![(
        "net/server".into(),
        Counters {
            frames_received: 12,
            wire_bytes_received: 900,
            ..Counters::default()
        },
    )];
    r.hists = vec![(
        "net/frame_read_ns".into(),
        Histogram::from_values([1_000, 2_000, 3_000]),
    )];
    r
}

/// A site report whose every section is derived from `(i, salt)`, so
/// different generated sites carry genuinely different numbers.
fn site_report(i: u64, salt: u64) -> RunReport {
    let mut r =
        RunReport::new("site").with_identity("site", Some("run".into()), format!("site[{i}]"));
    let mut root = Span::new("dbdc_site", Duration::from_micros(10_000 + salt % 5_000));
    root.push(Span::new(
        format!("local[{i}]"),
        Duration::from_micros(4_000 + salt % 1_000),
    ));
    r.spans = vec![root];
    r.scopes = vec![
        (
            format!("net/site[{i}]"),
            Counters {
                frames_sent: 3 + salt % 7,
                wire_bytes_sent: 100 + salt % 997,
                retries: salt % 3,
                ..Counters::default()
            },
        ),
        (
            // A scope shared by every site, so merging must *sum*.
            "shared".into(),
            Counters {
                range_queries: 1 + salt % 11,
                ..Counters::default()
            },
        ),
    ];
    r.hists = vec![
        (
            "net/frame_write_ns".into(),
            Histogram::from_values([500 + salt % 10_000, 700 + (salt / 3) % 10_000]),
        ),
        (
            "net/session_ns".into(),
            Histogram::from_values([1_000_000 + salt % 1_000_000]),
        ),
    ];
    r.sites = vec![SiteStats {
        site: i as usize,
        points: 50 + (salt % 50) as usize,
        representatives: 4,
        bytes_up: 200 + (salt % 100) as usize,
        local: Duration::from_micros(4_000),
        relabel: Duration::from_micros(900),
        counters: Counters::default(),
    }];
    r
}

proptest! {
    /// Merging is order-insensitive: any permutation of the site
    /// reports yields the identical merged report (counters, hists,
    /// spans, site stats — everything).
    #[test]
    fn merge_is_order_insensitive(
        salts in prop::collection::vec(0u64..1_000_000, 2..6),
        swaps in prop::collection::vec((0usize..6, 0usize..6), 0..8),
    ) {
        let server = server_report("run");
        let sites: Vec<RunReport> = salts
            .iter()
            .enumerate()
            .map(|(i, &salt)| site_report(i as u64, salt))
            .collect();

        let sorted: Vec<&RunReport> = sites.iter().collect();
        let mut shuffled = sorted.clone();
        for &(a, b) in &swaps {
            let (a, b) = (a % shuffled.len(), b % shuffled.len());
            shuffled.swap(a, b);
        }

        let (merged_a, warn_a) = merge_reports(&server, &sorted).expect("sorted order merges");
        let (merged_b, warn_b) = merge_reports(&server, &shuffled).expect("shuffled order merges");
        prop_assert_eq!(&merged_a, &merged_b);
        prop_assert_eq!(warn_a, warn_b);

        // Shared scopes really did sum across all sites.
        let shared = merged_a.scopes.iter().find(|(n, _)| n == "shared").expect("shared scope");
        let expected: u64 = salts.iter().map(|s| 1 + s % 11).sum();
        prop_assert_eq!(shared.1.range_queries, expected);
    }

    /// Merging a report with itself is rejected: duplicated site
    /// reports trip the duplicate-peer check no matter where the copy
    /// sits in the argument list.
    #[test]
    fn self_merge_is_rejected(
        n in 1usize..5,
        dup in 0usize..5,
        insert_at in 0usize..6,
    ) {
        let server = server_report("run");
        let sites: Vec<RunReport> = (0..n as u64).map(|i| site_report(i, i * 31)).collect();
        let mut refs: Vec<&RunReport> = sites.iter().collect();
        let copy = &sites[dup % n];
        refs.insert(insert_at % (refs.len() + 1), copy);

        let err = merge_reports(&server, &refs).expect_err("duplicate must be rejected");
        prop_assert!(err.contains("duplicate peer"), "unexpected error: {}", err);
    }
}

/// Passing a *server* report in a site slot (the literal "merge a
/// report with itself" CLI mistake) is rejected by role validation.
#[test]
fn server_report_in_site_slot_is_rejected() {
    let server = server_report("run");
    let err = merge_reports(&server, &[&server]).expect_err("must reject");
    assert!(err.contains("role"), "unexpected error: {err}");
}

/// Reports from different runs never merge silently.
#[test]
fn cross_run_merge_is_rejected() {
    let server = server_report("tuesday");
    let site = site_report(0, 17); // run id "run"
    let err = merge_reports(&server, &[&site]).expect_err("must reject");
    assert!(err.contains("run_id mismatch"), "unexpected error: {err}");
}
