//! Work counters for the DBDC hot paths.
//!
//! Two forms of the same numbers:
//!
//! * [`Counters`] — a plain value: copyable, addable, serializable.
//!   This is what reports store and tests assert against.
//! * [`CounterSheet`] — the shared, lock-free accumulator handed to
//!   instrumented code. Index backends, the DSU merge phase, and the
//!   wire layer add into it from any thread; a snapshot turns it back
//!   into a [`Counters`].
//!
//! Producers are expected to count into plain `u64` locals inside their
//! hot loops and flush **once per operation** (one `range()` call, one
//! merge phase, one encoded message), so the per-element cost of
//! instrumentation is a register increment whether or not a sheet is
//! attached. All atomics use relaxed ordering: the counters carry no
//! synchronization duty — readers snapshot after the producing phase
//! has been joined.

use std::sync::atomic::{AtomicU64, Ordering};

/// A snapshot of protocol work, in occurrence counts and bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// ε-range queries answered by an index.
    pub range_queries: u64,
    /// k-nearest-neighbour queries answered by an index.
    pub knn_queries: u64,
    /// Point-to-point distance evaluations (surrogate or exact) spent
    /// verifying candidates inside index queries.
    pub distance_evals: u64,
    /// Index nodes inspected: tree nodes whose bounding box was tested
    /// (kd-tree), nodes descended into (R*-tree), or occupied grid
    /// cells probed (grid). Zero for the linear scan.
    pub node_visits: u64,
    /// Successful DSU merges in the parallel DBSCAN merge phase.
    pub dsu_unions: u64,
    /// DSU `find` invocations (including the two inside each `union`).
    pub dsu_finds: u64,
    /// Representatives emitted into a local model.
    pub representatives: u64,
    /// Wire bytes sent by the observed party.
    pub bytes_sent: u64,
    /// Wire bytes received by the observed party.
    pub bytes_received: u64,
    /// Frames written to a TCP stream.
    pub frames_sent: u64,
    /// Frames successfully read (and checksum-verified) from a stream.
    pub frames_received: u64,
    /// Bytes put on the wire by frame writes: length prefix + kind +
    /// payload + checksum. Always ≥ the payload bytes in `bytes_sent`.
    pub wire_bytes_sent: u64,
    /// Bytes consumed off the wire by successful frame reads.
    pub wire_bytes_received: u64,
    /// Frames rejected because their checksum did not verify.
    pub checksum_failures: u64,
    /// Frames rejected as truncated: short length prefix, short body,
    /// or an unknown kind byte (corruption indistinguishable from
    /// truncation at this layer).
    pub truncated_rejects: u64,
    /// Frames rejected for exceeding the configured size limit.
    pub oversize_rejects: u64,
    /// Sessions refused during the HELLO exchange (version or topology
    /// mismatch), counted by whichever side observed the refusal.
    pub handshake_rejections: u64,
    /// Whole-session retry attempts beyond the first.
    pub retries: u64,
    /// Total nanoseconds slept in retry backoff.
    pub backoff_wait_ns: u64,
    /// Frames deliberately dropped by a fault proxy.
    pub faults_dropped: u64,
    /// Frames deliberately delayed by a fault proxy.
    pub faults_delayed: u64,
    /// Frames deliberately truncated by a fault proxy.
    pub faults_truncated: u64,
    /// Frames deliberately bit-flipped by a fault proxy.
    pub faults_bitflipped: u64,
    /// MST edges accepted while computing the DBCV validity index.
    pub mst_edges: u64,
    /// Objects with perfect quality (P = 1) in a Q_DBDC comparison.
    pub quality_perfect: u64,
    /// Objects with zero quality (P = 0) in a Q_DBDC comparison.
    pub quality_zero: u64,
    /// Objects flagged noise by both clusterings under comparison.
    pub quality_noise_both: u64,
    /// Objects flagged noise only by the distributed clustering.
    pub quality_noise_distr_only: u64,
    /// Objects flagged noise only by the central reference clustering.
    pub quality_noise_central_only: u64,
    /// Halo points replicated across partition borders by the
    /// partitioned local phase (sum over partitions).
    pub halo_points: u64,
}

impl Counters {
    /// The original nine fields every schema version has carried; the
    /// wire/fault fields after them were added in schema v3 and parse
    /// as zero when absent.
    pub const CORE_FIELDS: usize = 9;

    /// Stable field names, in serialization order.
    pub const FIELDS: [&'static str; 30] = [
        "range_queries",
        "knn_queries",
        "distance_evals",
        "node_visits",
        "dsu_unions",
        "dsu_finds",
        "representatives",
        "bytes_sent",
        "bytes_received",
        "frames_sent",
        "frames_received",
        "wire_bytes_sent",
        "wire_bytes_received",
        "checksum_failures",
        "truncated_rejects",
        "oversize_rejects",
        "handshake_rejections",
        "retries",
        "backoff_wait_ns",
        "faults_dropped",
        "faults_delayed",
        "faults_truncated",
        "faults_bitflipped",
        "mst_edges",
        "quality_perfect",
        "quality_zero",
        "quality_noise_both",
        "quality_noise_distr_only",
        "quality_noise_central_only",
        "halo_points",
    ];

    /// Field values in [`Counters::FIELDS`] order.
    pub fn values(&self) -> [u64; 30] {
        [
            self.range_queries,
            self.knn_queries,
            self.distance_evals,
            self.node_visits,
            self.dsu_unions,
            self.dsu_finds,
            self.representatives,
            self.bytes_sent,
            self.bytes_received,
            self.frames_sent,
            self.frames_received,
            self.wire_bytes_sent,
            self.wire_bytes_received,
            self.checksum_failures,
            self.truncated_rejects,
            self.oversize_rejects,
            self.handshake_rejections,
            self.retries,
            self.backoff_wait_ns,
            self.faults_dropped,
            self.faults_delayed,
            self.faults_truncated,
            self.faults_bitflipped,
            self.mst_edges,
            self.quality_perfect,
            self.quality_zero,
            self.quality_noise_both,
            self.quality_noise_distr_only,
            self.quality_noise_central_only,
            self.halo_points,
        ]
    }

    /// Rebuilds a snapshot from values in [`Counters::FIELDS`] order —
    /// the inverse of [`Counters::values`]. Used by the telemetry
    /// snapshot delta and the exposition parser.
    pub fn from_values(v: [u64; 30]) -> Counters {
        Counters {
            range_queries: v[0],
            knn_queries: v[1],
            distance_evals: v[2],
            node_visits: v[3],
            dsu_unions: v[4],
            dsu_finds: v[5],
            representatives: v[6],
            bytes_sent: v[7],
            bytes_received: v[8],
            frames_sent: v[9],
            frames_received: v[10],
            wire_bytes_sent: v[11],
            wire_bytes_received: v[12],
            checksum_failures: v[13],
            truncated_rejects: v[14],
            oversize_rejects: v[15],
            handshake_rejections: v[16],
            retries: v[17],
            backoff_wait_ns: v[18],
            faults_dropped: v[19],
            faults_delayed: v[20],
            faults_truncated: v[21],
            faults_bitflipped: v[22],
            mst_edges: v[23],
            quality_perfect: v[24],
            quality_zero: v[25],
            quality_noise_both: v[26],
            quality_noise_distr_only: v[27],
            quality_noise_central_only: v[28],
            halo_points: v[29],
        }
    }

    /// Whether every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.values().iter().all(|&v| v == 0)
    }

    /// Adds `other` into `self`, field by field.
    pub fn add(&mut self, other: &Counters) {
        self.range_queries += other.range_queries;
        self.knn_queries += other.knn_queries;
        self.distance_evals += other.distance_evals;
        self.node_visits += other.node_visits;
        self.dsu_unions += other.dsu_unions;
        self.dsu_finds += other.dsu_finds;
        self.representatives += other.representatives;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.frames_sent += other.frames_sent;
        self.frames_received += other.frames_received;
        self.wire_bytes_sent += other.wire_bytes_sent;
        self.wire_bytes_received += other.wire_bytes_received;
        self.checksum_failures += other.checksum_failures;
        self.truncated_rejects += other.truncated_rejects;
        self.oversize_rejects += other.oversize_rejects;
        self.handshake_rejections += other.handshake_rejections;
        self.retries += other.retries;
        self.backoff_wait_ns += other.backoff_wait_ns;
        self.faults_dropped += other.faults_dropped;
        self.faults_delayed += other.faults_delayed;
        self.faults_truncated += other.faults_truncated;
        self.faults_bitflipped += other.faults_bitflipped;
        self.mst_edges += other.mst_edges;
        self.quality_perfect += other.quality_perfect;
        self.quality_zero += other.quality_zero;
        self.quality_noise_both += other.quality_noise_both;
        self.quality_noise_distr_only += other.quality_noise_distr_only;
        self.quality_noise_central_only += other.quality_noise_central_only;
        self.halo_points += other.halo_points;
    }

    /// Field-wise sum of many snapshots.
    pub fn sum<'a>(iter: impl IntoIterator<Item = &'a Counters>) -> Counters {
        let mut acc = Counters::default();
        for c in iter {
            acc.add(c);
        }
        acc
    }
}

/// A shared, lock-free accumulator for [`Counters`].
///
/// Cheap to share (`Arc<CounterSheet>`), safe to add into from many
/// threads, snapshot once the producing phase is done.
#[derive(Debug, Default)]
pub struct CounterSheet {
    range_queries: AtomicU64,
    knn_queries: AtomicU64,
    distance_evals: AtomicU64,
    node_visits: AtomicU64,
    dsu_unions: AtomicU64,
    dsu_finds: AtomicU64,
    representatives: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    wire_bytes_sent: AtomicU64,
    wire_bytes_received: AtomicU64,
    checksum_failures: AtomicU64,
    truncated_rejects: AtomicU64,
    oversize_rejects: AtomicU64,
    handshake_rejections: AtomicU64,
    retries: AtomicU64,
    backoff_wait_ns: AtomicU64,
    faults_dropped: AtomicU64,
    faults_delayed: AtomicU64,
    faults_truncated: AtomicU64,
    faults_bitflipped: AtomicU64,
    mst_edges: AtomicU64,
    quality_perfect: AtomicU64,
    quality_zero: AtomicU64,
    quality_noise_both: AtomicU64,
    quality_noise_distr_only: AtomicU64,
    quality_noise_central_only: AtomicU64,
    halo_points: AtomicU64,
}

impl CounterSheet {
    /// A fresh all-zero sheet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed ε-range query with its per-query work.
    pub fn record_range(&self, distance_evals: u64, node_visits: u64) {
        self.range_queries.fetch_add(1, Ordering::Relaxed);
        self.distance_evals
            .fetch_add(distance_evals, Ordering::Relaxed);
        self.node_visits.fetch_add(node_visits, Ordering::Relaxed);
    }

    /// Records one completed knn query with its per-query work.
    pub fn record_knn(&self, distance_evals: u64, node_visits: u64) {
        self.knn_queries.fetch_add(1, Ordering::Relaxed);
        self.distance_evals
            .fetch_add(distance_evals, Ordering::Relaxed);
        self.node_visits.fetch_add(node_visits, Ordering::Relaxed);
    }

    /// Records a finished DSU phase.
    pub fn add_dsu(&self, unions: u64, finds: u64) {
        self.dsu_unions.fetch_add(unions, Ordering::Relaxed);
        self.dsu_finds.fetch_add(finds, Ordering::Relaxed);
    }

    /// Records representatives emitted into a local model.
    pub fn add_representatives(&self, n: u64) {
        self.representatives.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one sent message of `bytes`.
    pub fn add_bytes_sent(&self, bytes: u64) {
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one received message of `bytes`.
    pub fn add_bytes_received(&self, bytes: u64) {
        self.bytes_received.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one frame written to the wire: `wire` is the full
    /// on-the-wire size (prefix + kind + payload + checksum), `payload`
    /// the payload portion alone.
    pub fn add_frame_sent(&self, wire: u64, payload: u64) {
        self.frames_sent.fetch_add(1, Ordering::Relaxed);
        self.wire_bytes_sent.fetch_add(wire, Ordering::Relaxed);
        self.bytes_sent.fetch_add(payload, Ordering::Relaxed);
    }

    /// Records one checksum-verified frame read off the wire.
    pub fn add_frame_received(&self, wire: u64, payload: u64) {
        self.frames_received.fetch_add(1, Ordering::Relaxed);
        self.wire_bytes_received.fetch_add(wire, Ordering::Relaxed);
        self.bytes_received.fetch_add(payload, Ordering::Relaxed);
    }

    /// Records a frame rejected for a bad checksum.
    pub fn add_checksum_failure(&self) {
        self.checksum_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a frame rejected as truncated or structurally invalid.
    pub fn add_truncated_reject(&self) {
        self.truncated_rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a frame rejected for exceeding the size limit.
    pub fn add_oversize_reject(&self) {
        self.oversize_rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a session refused during the HELLO exchange.
    pub fn add_handshake_rejection(&self) {
        self.handshake_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one retry attempt and the backoff slept before it.
    pub fn add_retry(&self, backoff: std::time::Duration) {
        self.retries.fetch_add(1, Ordering::Relaxed);
        self.backoff_wait_ns.fetch_add(
            backoff.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
    }

    /// Records faults injected by an adversarial proxy.
    pub fn add_faults(&self, dropped: u64, delayed: u64, truncated: u64, bitflipped: u64) {
        self.faults_dropped.fetch_add(dropped, Ordering::Relaxed);
        self.faults_delayed.fetch_add(delayed, Ordering::Relaxed);
        self.faults_truncated
            .fetch_add(truncated, Ordering::Relaxed);
        self.faults_bitflipped
            .fetch_add(bitflipped, Ordering::Relaxed);
    }

    /// Records MST edges accepted by a DBCV computation.
    pub fn add_mst_edges(&self, n: u64) {
        self.mst_edges.fetch_add(n, Ordering::Relaxed);
    }

    /// Records halo points replicated by the partitioned local phase.
    pub fn add_halo_points(&self, n: u64) {
        self.halo_points.fetch_add(n, Ordering::Relaxed);
    }

    /// Records distance evaluations performed outside an index query
    /// (e.g. the DBCV mutual-reachability loops).
    pub fn add_distance_evals(&self, n: u64) {
        self.distance_evals.fetch_add(n, Ordering::Relaxed);
    }

    /// Records the object breakdown of one Q_DBDC comparison.
    pub fn add_quality_breakdown(
        &self,
        perfect: u64,
        zero: u64,
        noise_both: u64,
        noise_distr_only: u64,
        noise_central_only: u64,
    ) {
        self.quality_perfect.fetch_add(perfect, Ordering::Relaxed);
        self.quality_zero.fetch_add(zero, Ordering::Relaxed);
        self.quality_noise_both
            .fetch_add(noise_both, Ordering::Relaxed);
        self.quality_noise_distr_only
            .fetch_add(noise_distr_only, Ordering::Relaxed);
        self.quality_noise_central_only
            .fetch_add(noise_central_only, Ordering::Relaxed);
    }

    /// Adds a whole snapshot at once.
    pub fn add(&self, c: &Counters) {
        self.range_queries
            .fetch_add(c.range_queries, Ordering::Relaxed);
        self.knn_queries.fetch_add(c.knn_queries, Ordering::Relaxed);
        self.distance_evals
            .fetch_add(c.distance_evals, Ordering::Relaxed);
        self.node_visits.fetch_add(c.node_visits, Ordering::Relaxed);
        self.dsu_unions.fetch_add(c.dsu_unions, Ordering::Relaxed);
        self.dsu_finds.fetch_add(c.dsu_finds, Ordering::Relaxed);
        self.representatives
            .fetch_add(c.representatives, Ordering::Relaxed);
        self.bytes_sent.fetch_add(c.bytes_sent, Ordering::Relaxed);
        self.bytes_received
            .fetch_add(c.bytes_received, Ordering::Relaxed);
        self.frames_sent.fetch_add(c.frames_sent, Ordering::Relaxed);
        self.frames_received
            .fetch_add(c.frames_received, Ordering::Relaxed);
        self.wire_bytes_sent
            .fetch_add(c.wire_bytes_sent, Ordering::Relaxed);
        self.wire_bytes_received
            .fetch_add(c.wire_bytes_received, Ordering::Relaxed);
        self.checksum_failures
            .fetch_add(c.checksum_failures, Ordering::Relaxed);
        self.truncated_rejects
            .fetch_add(c.truncated_rejects, Ordering::Relaxed);
        self.oversize_rejects
            .fetch_add(c.oversize_rejects, Ordering::Relaxed);
        self.handshake_rejections
            .fetch_add(c.handshake_rejections, Ordering::Relaxed);
        self.retries.fetch_add(c.retries, Ordering::Relaxed);
        self.backoff_wait_ns
            .fetch_add(c.backoff_wait_ns, Ordering::Relaxed);
        self.faults_dropped
            .fetch_add(c.faults_dropped, Ordering::Relaxed);
        self.faults_delayed
            .fetch_add(c.faults_delayed, Ordering::Relaxed);
        self.faults_truncated
            .fetch_add(c.faults_truncated, Ordering::Relaxed);
        self.faults_bitflipped
            .fetch_add(c.faults_bitflipped, Ordering::Relaxed);
        self.mst_edges.fetch_add(c.mst_edges, Ordering::Relaxed);
        self.quality_perfect
            .fetch_add(c.quality_perfect, Ordering::Relaxed);
        self.quality_zero
            .fetch_add(c.quality_zero, Ordering::Relaxed);
        self.quality_noise_both
            .fetch_add(c.quality_noise_both, Ordering::Relaxed);
        self.quality_noise_distr_only
            .fetch_add(c.quality_noise_distr_only, Ordering::Relaxed);
        self.quality_noise_central_only
            .fetch_add(c.quality_noise_central_only, Ordering::Relaxed);
        self.halo_points.fetch_add(c.halo_points, Ordering::Relaxed);
    }

    /// The current totals as a plain value.
    pub fn snapshot(&self) -> Counters {
        Counters {
            range_queries: self.range_queries.load(Ordering::Relaxed),
            knn_queries: self.knn_queries.load(Ordering::Relaxed),
            distance_evals: self.distance_evals.load(Ordering::Relaxed),
            node_visits: self.node_visits.load(Ordering::Relaxed),
            dsu_unions: self.dsu_unions.load(Ordering::Relaxed),
            dsu_finds: self.dsu_finds.load(Ordering::Relaxed),
            representatives: self.representatives.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            frames_received: self.frames_received.load(Ordering::Relaxed),
            wire_bytes_sent: self.wire_bytes_sent.load(Ordering::Relaxed),
            wire_bytes_received: self.wire_bytes_received.load(Ordering::Relaxed),
            checksum_failures: self.checksum_failures.load(Ordering::Relaxed),
            truncated_rejects: self.truncated_rejects.load(Ordering::Relaxed),
            oversize_rejects: self.oversize_rejects.load(Ordering::Relaxed),
            handshake_rejections: self.handshake_rejections.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            backoff_wait_ns: self.backoff_wait_ns.load(Ordering::Relaxed),
            faults_dropped: self.faults_dropped.load(Ordering::Relaxed),
            faults_delayed: self.faults_delayed.load(Ordering::Relaxed),
            faults_truncated: self.faults_truncated.load(Ordering::Relaxed),
            faults_bitflipped: self.faults_bitflipped.load(Ordering::Relaxed),
            mst_edges: self.mst_edges.load(Ordering::Relaxed),
            quality_perfect: self.quality_perfect.load(Ordering::Relaxed),
            quality_zero: self.quality_zero.load(Ordering::Relaxed),
            quality_noise_both: self.quality_noise_both.load(Ordering::Relaxed),
            quality_noise_distr_only: self.quality_noise_distr_only.load(Ordering::Relaxed),
            quality_noise_central_only: self.quality_noise_central_only.load(Ordering::Relaxed),
            halo_points: self.halo_points.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn snapshot_reflects_recorded_work() {
        let s = CounterSheet::new();
        s.record_range(100, 7);
        s.record_range(50, 3);
        s.record_knn(10, 2);
        s.add_dsu(4, 11);
        s.add_representatives(6);
        s.add_bytes_sent(300);
        s.add_bytes_received(40);
        let c = s.snapshot();
        assert_eq!(c.range_queries, 2);
        assert_eq!(c.knn_queries, 1);
        assert_eq!(c.distance_evals, 160);
        assert_eq!(c.node_visits, 12);
        assert_eq!(c.dsu_unions, 4);
        assert_eq!(c.dsu_finds, 11);
        assert_eq!(c.representatives, 6);
        assert_eq!(c.bytes_sent, 300);
        assert_eq!(c.bytes_received, 40);
        assert!(!c.is_zero());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let s = Arc::new(CounterSheet::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        s.record_range(3, 1);
                    }
                });
            }
        });
        let c = s.snapshot();
        assert_eq!(c.range_queries, 4000);
        assert_eq!(c.distance_evals, 12000);
        assert_eq!(c.node_visits, 4000);
    }

    #[test]
    fn counters_add_and_sum() {
        let mut a = Counters {
            range_queries: 1,
            bytes_sent: 10,
            ..Counters::default()
        };
        let b = Counters {
            range_queries: 2,
            distance_evals: 5,
            ..Counters::default()
        };
        a.add(&b);
        assert_eq!(a.range_queries, 3);
        assert_eq!(a.distance_evals, 5);
        assert_eq!(a.bytes_sent, 10);
        let total = Counters::sum([&a, &b]);
        assert_eq!(total.range_queries, 5);
        assert_eq!(total.distance_evals, 10);
    }

    #[test]
    fn fields_and_values_stay_aligned() {
        let c = Counters {
            range_queries: 1,
            bytes_received: 9,
            ..Default::default()
        };
        let values = c.values();
        assert_eq!(Counters::FIELDS.len(), values.len());
        assert_eq!(values[0], 1);
        assert_eq!(values[8], 9);
        assert!(Counters::default().is_zero());
    }

    #[test]
    fn wire_and_fault_accessors_land_in_their_fields() {
        let s = CounterSheet::new();
        s.add_frame_sent(23, 10);
        s.add_frame_sent(13, 0);
        s.add_frame_received(13, 0);
        s.add_checksum_failure();
        s.add_truncated_reject();
        s.add_oversize_reject();
        s.add_handshake_rejection();
        s.add_retry(std::time::Duration::from_nanos(1_500));
        s.add_retry(std::time::Duration::from_nanos(500));
        s.add_faults(3, 2, 1, 4);
        let c = s.snapshot();
        assert_eq!(c.frames_sent, 2);
        assert_eq!(c.wire_bytes_sent, 36);
        assert_eq!(c.bytes_sent, 10);
        assert_eq!(c.frames_received, 1);
        assert_eq!(c.wire_bytes_received, 13);
        assert_eq!(c.bytes_received, 0);
        assert_eq!(c.checksum_failures, 1);
        assert_eq!(c.truncated_rejects, 1);
        assert_eq!(c.oversize_rejects, 1);
        assert_eq!(c.handshake_rejections, 1);
        assert_eq!(c.retries, 2);
        assert_eq!(c.backoff_wait_ns, 2_000);
        assert_eq!(c.faults_dropped, 3);
        assert_eq!(c.faults_delayed, 2);
        assert_eq!(c.faults_truncated, 1);
        assert_eq!(c.faults_bitflipped, 4);

        // add() and sum() carry the new fields too.
        let mut doubled = c;
        doubled.add(&c);
        assert_eq!(doubled.retries, 4);
        assert_eq!(doubled.faults_bitflipped, 8);
        assert_eq!(Counters::sum([&c, &c]).wire_bytes_sent, 72);

        // And a sheet absorbs whole snapshots including them.
        let t = CounterSheet::new();
        t.add(&c);
        assert_eq!(t.snapshot(), c);
    }

    #[test]
    fn quality_accessors_land_in_their_fields() {
        let s = CounterSheet::new();
        s.add_mst_edges(17);
        s.add_distance_evals(42);
        s.add_quality_breakdown(100, 3, 5, 2, 1);
        let c = s.snapshot();
        assert_eq!(c.mst_edges, 17);
        assert_eq!(c.distance_evals, 42);
        assert_eq!(c.quality_perfect, 100);
        assert_eq!(c.quality_zero, 3);
        assert_eq!(c.quality_noise_both, 5);
        assert_eq!(c.quality_noise_distr_only, 2);
        assert_eq!(c.quality_noise_central_only, 1);

        // add(), sum() and sheet absorption carry the new fields.
        let mut doubled = c;
        doubled.add(&c);
        assert_eq!(doubled.mst_edges, 34);
        assert_eq!(doubled.quality_perfect, 200);
        assert_eq!(Counters::sum([&c, &c]).quality_noise_both, 10);
        let t = CounterSheet::new();
        t.add(&c);
        assert_eq!(t.snapshot(), c);
    }

    #[test]
    fn whole_snapshot_add() {
        let s = CounterSheet::new();
        let c = Counters {
            range_queries: 2,
            dsu_finds: 3,
            ..Counters::default()
        };
        s.add(&c);
        s.add(&c);
        let got = s.snapshot();
        assert_eq!(got.range_queries, 4);
        assert_eq!(got.dsu_finds, 6);
    }
}
