//! Phase-scoped wall-time spans.
//!
//! A [`Span`] is one node of the DBDC phase tree: `dbdc` at the root,
//! `local[i]` (with `cluster`/`extract`/`encode` children), `upload`,
//! `global`, `broadcast`, and `relabel[i]` below it. Each node carries
//! its wall time, the number of worker threads that produced it, and
//! whether the duration was *measured* on this machine or *modeled*
//! from the network cost model (uploads and broadcasts are modeled —
//! all sites run in one process here, so no bytes actually cross a
//! wire).
//!
//! Wall time serializes as integer microseconds (`wall_us`) so a report
//! round-trips bit-exactly through JSON; sub-microsecond phases exist
//! only below timer resolution anyway.

use std::time::Duration;

use crate::fmt_ms;
use crate::json::Json;

/// One node of the phase tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Phase name, e.g. `local[3]` or `global`.
    pub name: String,
    /// Wall time spent in this phase (includes children).
    pub wall: Duration,
    /// Worker threads active in this phase.
    pub threads: usize,
    /// `true` when the duration comes from the network cost model
    /// rather than a measurement.
    pub modeled: bool,
    /// When this phase began, as an offset from the start of its
    /// *parent* span. `None` (the common case) means "sequential":
    /// the phase is laid out after its previous sibling. Concurrent
    /// phases — per-connection handshakes on the server, the session
    /// sub-phases on a site — carry explicit offsets so the timeline
    /// exporter can place them truthfully.
    pub start: Option<Duration>,
    /// Nested sub-phases, in execution order.
    pub children: Vec<Span>,
}

impl Span {
    /// A measured single-threaded span.
    pub fn new(name: impl Into<String>, wall: Duration) -> Span {
        Span {
            name: name.into(),
            wall,
            threads: 1,
            modeled: false,
            start: None,
            children: Vec::new(),
        }
    }

    /// A modeled span (network cost model, not a measurement).
    pub fn modeled(name: impl Into<String>, wall: Duration) -> Span {
        Span {
            modeled: true,
            ..Span::new(name, wall)
        }
    }

    /// Sets the thread count, builder-style.
    pub fn with_threads(mut self, threads: usize) -> Span {
        self.threads = threads;
        self
    }

    /// Sets the explicit start offset (relative to the parent span),
    /// builder-style.
    pub fn with_start(mut self, start: Duration) -> Span {
        self.start = Some(start);
        self
    }

    /// Appends a child phase.
    pub fn push(&mut self, child: Span) {
        self.children.push(child);
    }

    /// Runs `f`, returning its result in a span timing the call.
    pub fn timed<T>(name: impl Into<String>, f: impl FnOnce() -> T) -> (Span, T) {
        let t0 = std::time::Instant::now();
        let value = f();
        (Span::new(name, t0.elapsed()), value)
    }

    /// Finds the first span named `name` in this subtree (pre-order).
    pub fn find(&self, name: &str) -> Option<&Span> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Total number of spans in this subtree, including `self`.
    pub fn count(&self) -> usize {
        1 + self.children.iter().map(Span::count).sum::<usize>()
    }

    /// Renders the subtree as an indented text block.
    ///
    /// ```text
    /// dbdc                    12.3 ms
    ///   local[0]               4.0 ms  (2 threads)
    ///     cluster              3.1 ms
    ///   upload                 0.4 ms  (modeled)
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let indent = "  ".repeat(depth);
        let label = format!("{indent}{}", self.name);
        out.push_str(&format!("{label:<28} {:>10}", fmt_ms(self.wall)));
        if self.threads > 1 {
            out.push_str(&format!("  ({} threads)", self.threads));
        }
        if self.modeled {
            out.push_str("  (modeled)");
        }
        out.push('\n');
        for child in &self.children {
            child.render_into(out, depth + 1);
        }
    }

    /// The span as a JSON object: `name`, `wall_us`, `threads`,
    /// `modeled`, `start_us`, `children` — always all six keys, for a
    /// stable schema. `start_us` is `null` for sequential spans.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(&self.name)),
            ("wall_us", Json::num_u64(self.wall.as_micros() as u64)),
            ("threads", Json::num_u64(self.threads as u64)),
            ("modeled", Json::Bool(self.modeled)),
            (
                "start_us",
                match self.start {
                    Some(s) => Json::num_u64(s.as_micros() as u64),
                    None => Json::Null,
                },
            ),
            (
                "children",
                Json::Arr(self.children.iter().map(Span::to_json).collect()),
            ),
        ])
    }

    /// Rebuilds a span from [`Span::to_json`] output.
    pub fn from_json(v: &Json) -> Result<Span, String> {
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("span missing \"name\"")?
            .to_string();
        let wall_us = v
            .get("wall_us")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("span {name:?} missing \"wall_us\""))?;
        let threads =
            v.get("threads")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("span {name:?} missing \"threads\""))? as usize;
        let modeled = v
            .get("modeled")
            .and_then(Json::as_bool)
            .ok_or_else(|| format!("span {name:?} missing \"modeled\""))?;
        // Absent or null in pre-v3 reports: sequential layout.
        let start = v
            .get("start_us")
            .and_then(Json::as_u64)
            .map(Duration::from_micros);
        let children = v
            .get("children")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("span {name:?} missing \"children\""))?
            .iter()
            .map(Span::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Span {
            name,
            wall: Duration::from_micros(wall_us),
            threads,
            modeled,
            start,
            children,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Span {
        let mut root = Span::new("dbdc", Duration::from_micros(12_300));
        let mut local = Span::new("local[0]", Duration::from_micros(4_000)).with_threads(2);
        local.push(Span::new("cluster", Duration::from_micros(3_100)));
        local.push(Span::new("encode", Duration::from_micros(200)));
        root.push(local);
        root.push(Span::modeled("upload", Duration::from_micros(400)));
        root.push(
            Span::new("global", Duration::from_micros(900))
                .with_start(Duration::from_micros(4_400)),
        );
        root
    }

    #[test]
    fn nesting_and_find() {
        let root = sample();
        assert_eq!(root.count(), 6);
        assert_eq!(
            root.find("cluster").map(|s| s.wall),
            Some(Duration::from_micros(3_100))
        );
        assert!(root.find("upload").unwrap().modeled);
        assert_eq!(root.find("local[0]").unwrap().threads, 2);
        assert!(root.find("relabel[0]").is_none());
        // find() prefers self.
        assert_eq!(root.find("dbdc").unwrap().count(), 6);
    }

    #[test]
    fn render_shows_threads_and_modeled() {
        let text = sample().render();
        assert!(text.contains("dbdc"), "{text}");
        assert!(text.contains("  local[0]"), "{text}");
        assert!(text.contains("(2 threads)"), "{text}");
        assert!(text.contains("(modeled)"), "{text}");
        assert!(text.contains("3.1 ms"), "{text}");
        assert_eq!(text.lines().count(), 6);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let root = sample();
        let back = Span::from_json(&root.to_json()).expect("round trip");
        assert_eq!(back, root);
    }

    #[test]
    fn missing_or_null_start_parses_as_sequential() {
        // Pre-v3 span objects have no start_us key at all.
        let mut v = sample().to_json();
        if let Json::Obj(pairs) = &mut v {
            pairs.retain(|(k, _)| k != "start_us");
        }
        let span = Span::from_json(&v).expect("five-key span parses");
        assert_eq!(span.start, None);
        // And v3 serializes sequential spans with an explicit null.
        let seq = Span::new("x", Duration::from_micros(1));
        assert!(seq
            .to_json()
            .to_string_pretty()
            .contains("\"start_us\": null"));
        assert_eq!(
            Span::from_json(&seq.to_json()).expect("round trip").start,
            None
        );
    }

    #[test]
    fn from_json_rejects_missing_fields() {
        let mut v = sample().to_json();
        if let Json::Obj(pairs) = &mut v {
            pairs.retain(|(k, _)| k != "wall_us");
        }
        let err = Span::from_json(&v).unwrap_err();
        assert!(err.contains("wall_us"), "{err}");
    }

    #[test]
    fn timed_measures_the_closure() {
        let (span, value) = Span::timed("work", || 41 + 1);
        assert_eq!(value, 42);
        assert_eq!(span.name, "work");
        assert!(!span.modeled);
    }
}
