//! Cell-by-cell regression comparison of two [`RunReport`]s.
//!
//! `dbdc-cli report diff OLD NEW` drives this to gate CI: `OLD` is the
//! checked-in baseline, `NEW` is the fresh harness run. Every histogram
//! scope in the baseline is a *cell*; for each cell the p50, p90, and
//! p99 of the new report must stay within a noise tolerance of the
//! baseline.
//!
//! The tolerance is derived from the **baseline's own spread**
//! (`(max - min) / p50` across its interleaved repetitions), floored at
//! a configurable threshold. Deriving it only from the baseline — never
//! from the incoming report — means a doctored new report cannot widen
//! its own acceptance window: an inflated tail is judged against the
//! baseline's variance, not its own.
//!
//! p50 and p90 are hard gates. At bench repetition counts (tens of
//! samples) p99 degenerates to the max sample, and the max of a
//! handful of millisecond-scale runs swings by whole milliseconds with
//! host scheduling noise — so an exceeded p99 is printed as a `tail!`
//! drift row but does not fail the diff on its own. Inflating the tail
//! of a histogram necessarily shifts bucket mass, which moves p90 and
//! trips the hard gate; only a lone outlier sample — indistinguishable
//! from one scheduler hiccup — stays soft.
//!
//! A cell present in the baseline but missing from the new report is a
//! failure (the matrix shrank); new cells absent from the baseline are
//! reported as informational rows and do not fail the diff (the matrix
//! grew, which the next baseline refresh picks up).
//!
//! Reports carrying a `quality` section additionally contribute
//! *quality cells* (`quality/dbcv`, `quality/q_dbdc_p1`, …) with
//! **directional** tolerance: quality may rise freely, but a drop of
//! more than the quality tolerance (absolute, the indices are already
//! bounded) fails the diff. Latency noise windows never apply to
//! quality — a doctored slow report cannot buy itself quality headroom.

use crate::hist::fmt_sample;
use crate::report::{QualityStats, RunReport};

/// Default noise floor for the per-cell tolerance: a cell regresses
/// only when it is at least this fraction slower than the baseline,
/// even for baselines with zero recorded spread.
pub const DEFAULT_THRESHOLD: f64 = 0.25;

/// A p99 past its tolerance limit by more than this factor stops being
/// soft drift and fails the diff: harness samples are min-of-K runs, so
/// host hiccups overshoot the limit by fractions, not multiples — a
/// multiple-of-the-limit p99 means the tail itself moved (or the report
/// was doctored).
pub const TAIL_HARD_FACTOR: f64 = 4.0;

/// Default directional tolerance for quality cells: the new report's
/// quality may drop at most this much (absolute, on indices bounded by
/// 1) below the baseline before the diff fails. Rises never fail.
pub const QUALITY_DROP_TOLERANCE: f64 = 0.1;

/// Verdict for one compared quantile of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffOutcome {
    /// Within tolerance (or improved).
    Ok,
    /// Slower than the baseline by more than the tolerance.
    Regression,
    /// The p99 exceeded its tolerance, but by less than
    /// [`TAIL_HARD_FACTOR`]× the limit. Printed as a warning, not a
    /// failure: at bench repetition counts p99 is the max sample, which
    /// host scheduling noise moves by itself.
    TailDrift,
    /// Cell exists in the baseline but not in the new report.
    Missing,
    /// Cell exists only in the new report; informational.
    New,
}

impl DiffOutcome {
    /// Whether this outcome fails the diff.
    pub fn is_failure(self) -> bool {
        matches!(self, DiffOutcome::Regression | DiffOutcome::Missing)
    }
}

/// One comparison row: a cell × quantile with both values and the
/// applied tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Histogram scope name (the cell).
    pub cell: String,
    /// Which statistic was compared (`p50`, `p90`, `p99`) — empty for
    /// [`DiffOutcome::Missing`] / [`DiffOutcome::New`] rows.
    pub stat: &'static str,
    /// Baseline value (0 for `New` rows).
    pub old: u64,
    /// New value (0 for `Missing` rows).
    pub new: u64,
    /// Relative tolerance applied to this cell (absolute drop
    /// tolerance for quality cells).
    pub tolerance: f64,
    /// Verdict.
    pub outcome: DiffOutcome,
    /// For quality cells, the raw `(old, new)` values — quality is
    /// compared directionally on floats, not on histogram quantiles.
    pub quality: Option<(f64, f64)>,
}

impl DiffRow {
    /// Renders the row the way `report diff` prints it.
    pub fn render(&self) -> String {
        match self.outcome {
            DiffOutcome::Missing => format!("MISSING  {} (cell absent from new report)", self.cell),
            DiffOutcome::New => format!("new      {} (no baseline; informational)", self.cell),
            _ if self.quality.is_some() => {
                let (old, new) = self.quality.unwrap();
                let tag = match self.outcome {
                    DiffOutcome::Regression => "REGRESS",
                    _ => "ok",
                };
                format!(
                    "{tag:<8} {}: {old:+.4} -> {new:+.4} ({:+.4}, drop tol {:.2})",
                    self.cell,
                    new - old,
                    self.tolerance,
                )
            }
            _ => {
                let tag = match self.outcome {
                    DiffOutcome::Regression => "REGRESS",
                    DiffOutcome::TailDrift => "tail!",
                    _ => "ok",
                };
                let ratio = if self.old == 0 {
                    f64::from(u32::from(self.new > 0))
                } else {
                    self.new as f64 / self.old as f64 - 1.0
                };
                format!(
                    "{tag:<8} {} {}: {} -> {} ({:+.1}%, tol {:.0}%)",
                    self.cell,
                    self.stat,
                    fmt_sample(&self.cell, self.old),
                    fmt_sample(&self.cell, self.new),
                    ratio * 1e2,
                    self.tolerance * 1e2,
                )
            }
        }
    }
}

/// Compares every histogram cell of `old` against `new`.
///
/// `threshold` is the noise floor; pass [`DEFAULT_THRESHOLD`] unless
/// the caller overrides it. The effective per-cell tolerance is
/// `max(threshold, old_cell.rel_spread())`, so noisier baseline cells
/// get proportionally wider windows. p50 and p90 beyond tolerance are
/// regressions; p99 beyond tolerance is a soft [`DiffOutcome::TailDrift`]
/// (see module docs). Returns rows in baseline order, then
/// informational rows for cells only the new report has.
pub fn diff_reports(old: &RunReport, new: &RunReport, threshold: f64) -> Vec<DiffRow> {
    diff_reports_with(old, new, threshold, QUALITY_DROP_TOLERANCE)
}

/// [`diff_reports`] with an explicit quality-drop tolerance (the CLI's
/// `--quality-threshold`). The latency `threshold` never loosens the
/// quality gate: widening the timing window for a noisy host must not
/// buy a clustering-quality regression a pass.
pub fn diff_reports_with(
    old: &RunReport,
    new: &RunReport,
    threshold: f64,
    quality_tolerance: f64,
) -> Vec<DiffRow> {
    let mut rows = Vec::new();
    for (cell, old_hist) in &old.hists {
        let Some((_, new_hist)) = new.hists.iter().find(|(name, _)| name == cell) else {
            rows.push(DiffRow {
                cell: cell.clone(),
                stat: "",
                old: 0,
                new: 0,
                tolerance: threshold,
                outcome: DiffOutcome::Missing,
                quality: None,
            });
            continue;
        };
        // Tolerance from the baseline's spread only; see module docs.
        let tolerance = threshold.max(old_hist.rel_spread());
        for (stat, old_v, new_v) in [
            ("p50", old_hist.p50(), new_hist.p50()),
            ("p90", old_hist.p90(), new_hist.p90()),
            ("p99", old_hist.p99(), new_hist.p99()),
        ] {
            let limit = old_v as f64 * (1.0 + tolerance);
            let outcome = if (new_v as f64) <= limit {
                DiffOutcome::Ok
            } else if stat == "p99" && (new_v as f64) <= limit * TAIL_HARD_FACTOR {
                DiffOutcome::TailDrift
            } else {
                DiffOutcome::Regression
            };
            rows.push(DiffRow {
                cell: cell.clone(),
                stat,
                old: old_v,
                new: new_v,
                tolerance,
                outcome,
                quality: None,
            });
        }
    }
    for (cell, _) in &new.hists {
        if !old.hists.iter().any(|(name, _)| name == cell) {
            rows.push(DiffRow {
                cell: cell.clone(),
                stat: "",
                old: 0,
                new: 0,
                tolerance: threshold,
                outcome: DiffOutcome::New,
                quality: None,
            });
        }
    }
    let old_q = quality_cells(old);
    let new_q = quality_cells(new);
    for (cell, old_v) in &old_q {
        let Some((_, new_v)) = new_q.iter().find(|(name, _)| name == cell) else {
            rows.push(DiffRow {
                cell: cell.clone(),
                stat: "",
                old: 0,
                new: 0,
                tolerance: quality_tolerance,
                outcome: DiffOutcome::Missing,
                quality: None,
            });
            continue;
        };
        // Directional: rises are free, drops gate on the absolute
        // tolerance (the indices are bounded by 1, so relative windows
        // would explode near zero).
        let outcome = if *new_v >= old_v - quality_tolerance {
            DiffOutcome::Ok
        } else {
            DiffOutcome::Regression
        };
        rows.push(DiffRow {
            cell: cell.clone(),
            stat: "value",
            old: 0,
            new: 0,
            tolerance: quality_tolerance,
            outcome,
            quality: Some((*old_v, *new_v)),
        });
    }
    for (cell, _) in &new_q {
        if !old_q.iter().any(|(name, _)| name == cell) {
            rows.push(DiffRow {
                cell: cell.clone(),
                stat: "",
                old: 0,
                new: 0,
                tolerance: quality_tolerance,
                outcome: DiffOutcome::New,
                quality: None,
            });
        }
    }
    rows
}

/// Flattens a report's quality section into named diff cells.
fn quality_cells(report: &RunReport) -> Vec<(String, f64)> {
    let Some(QualityStats {
        dbcv,
        q_dbdc_p1,
        q_dbdc_p2,
        per_site,
        ..
    }) = &report.quality
    else {
        return Vec::new();
    };
    let mut cells = vec![("quality/dbcv".to_string(), *dbcv)];
    if let Some(p1) = q_dbdc_p1 {
        cells.push(("quality/q_dbdc_p1".to_string(), *p1));
    }
    if let Some(p2) = q_dbdc_p2 {
        cells.push(("quality/q_dbdc_p2".to_string(), *p2));
    }
    for (peer, v) in per_site {
        cells.push((format!("quality/{peer}/dbcv"), *v));
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    fn report_with(hists: Vec<(&str, Histogram)>) -> RunReport {
        let mut r = RunReport::new("bench");
        r.hists = hists.into_iter().map(|(n, h)| (n.to_string(), h)).collect();
        r
    }

    fn cell(values: impl IntoIterator<Item = u64>) -> Histogram {
        Histogram::from_values(values)
    }

    #[test]
    fn identical_reports_diff_clean() {
        let old = report_with(vec![("A/kd/t1/total_ns", cell([1000, 1100, 1200]))]);
        let rows = diff_reports(&old, &old.clone(), DEFAULT_THRESHOLD);
        assert_eq!(rows.len(), 3); // p50 + p90 + p99
        assert!(rows.iter().all(|r| r.outcome == DiffOutcome::Ok));
        assert!(!rows.iter().any(|r| r.outcome.is_failure()));
    }

    #[test]
    fn inflated_tail_regresses() {
        let old = report_with(vec![("A/kd/t1/total_ns", cell([1000, 1050, 1100]))]);
        // p50 unchanged, the tail doctored 10x: p90 and p99 both land on
        // the inflated sample.
        let new = report_with(vec![("A/kd/t1/total_ns", cell([1000, 1050, 11_000]))]);
        let rows = diff_reports(&old, &new, DEFAULT_THRESHOLD);
        let p90 = rows.iter().find(|r| r.stat == "p90").unwrap();
        assert_eq!(p90.outcome, DiffOutcome::Regression);
        assert!(p90.render().starts_with("REGRESS"));
        assert!(rows.iter().any(|r| r.outcome.is_failure()));
        let p50 = rows.iter().find(|r| r.stat == "p50").unwrap();
        assert_eq!(p50.outcome, DiffOutcome::Ok);
    }

    #[test]
    fn lone_p99_outlier_is_soft_tail_drift() {
        // Ten baseline reps; the new run matches except one sample — a
        // scheduler hiccup — lands moderately past tolerance. p90 still
        // gates on the 9th sample, so only the soft tail row fires.
        let base: Vec<u64> = (0..10).map(|i| 1000 + i * 10).collect();
        let mut spiky = base.clone();
        spiky[9] = 2_500;
        let old = report_with(vec![("c_ns", cell(base))]);
        let new = report_with(vec![("c_ns", cell(spiky))]);
        let rows = diff_reports(&old, &new, DEFAULT_THRESHOLD);
        let p99 = rows.iter().find(|r| r.stat == "p99").unwrap();
        assert_eq!(p99.outcome, DiffOutcome::TailDrift);
        assert!(p99.render().starts_with("tail!"));
        assert!(!rows.iter().any(|r| r.outcome.is_failure()));
    }

    #[test]
    fn egregious_p99_inflation_fails_hard() {
        // A p99 many multiples past the limit — the doctored-report
        // case — is a hard regression even though only the top sample
        // moved.
        let base: Vec<u64> = (0..50).map(|i| 1000 + i).collect();
        let mut doctored = base.clone();
        doctored[49] = 50_000;
        let old = report_with(vec![("c_ns", cell(base))]);
        let new = report_with(vec![("c_ns", cell(doctored))]);
        let rows = diff_reports(&old, &new, DEFAULT_THRESHOLD);
        let p99 = rows.iter().find(|r| r.stat == "p99").unwrap();
        assert_eq!(p99.outcome, DiffOutcome::Regression);
        assert!(rows.iter().any(|r| r.outcome.is_failure()));
    }

    #[test]
    fn tolerance_comes_from_baseline_spread_not_new_report() {
        // Noisy baseline: spread (2000-1000)/p50 ≈ 97% > 25% floor.
        let old = report_with(vec![("c_ns", cell([1000, 1030, 2000]))]);
        let widened = diff_reports(&old, &old.clone(), DEFAULT_THRESHOLD);
        assert!(widened[0].tolerance > 0.9, "{}", widened[0].tolerance);

        // A wildly-spread *new* report gains no extra tolerance: the
        // tight baseline keeps its 25% floor and the doctored max
        // regresses.
        let tight = report_with(vec![("c_ns", cell([1000, 1010, 1020]))]);
        let doctored = report_with(vec![("c_ns", cell([100, 1010, 50_000]))]);
        let rows = diff_reports(&tight, &doctored, DEFAULT_THRESHOLD);
        assert!((rows[0].tolerance - DEFAULT_THRESHOLD).abs() < 1e-9);
        assert!(rows.iter().any(|r| r.outcome == DiffOutcome::Regression));
    }

    #[test]
    fn missing_cell_fails_and_new_cell_informs() {
        let old = report_with(vec![("gone_ns", cell([100]))]);
        let new = report_with(vec![("added_ns", cell([100]))]);
        let rows = diff_reports(&old, &new, DEFAULT_THRESHOLD);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].outcome, DiffOutcome::Missing);
        assert!(rows[0].outcome.is_failure());
        assert!(rows[0].render().contains("MISSING"));
        assert_eq!(rows[1].outcome, DiffOutcome::New);
        assert!(!rows[1].outcome.is_failure());
        assert!(rows[1].render().contains("informational"));
    }

    #[test]
    fn faster_is_never_a_regression() {
        let old = report_with(vec![("c_ns", cell([10_000, 11_000]))]);
        let new = report_with(vec![("c_ns", cell([100, 110]))]);
        let rows = diff_reports(&old, &new, DEFAULT_THRESHOLD);
        assert!(rows.iter().all(|r| r.outcome == DiffOutcome::Ok));
    }

    fn quality_report(dbcv: f64, p1: Option<f64>) -> RunReport {
        let mut r = RunReport::new("run");
        r.quality = Some(crate::report::QualityStats {
            dbcv,
            clusters: 3,
            noise: 2,
            cluster_validity: vec![],
            q_dbdc_p1: p1,
            q_dbdc_p2: None,
            per_site: vec![("site[0]".into(), dbcv - 0.05)],
        });
        r
    }

    #[test]
    fn quality_drop_beyond_tolerance_fails() {
        let old = quality_report(0.85, Some(0.95));
        let new = quality_report(0.65, Some(0.95)); // DBCV doctored down 0.2
        let rows = diff_reports(&old, &new, DEFAULT_THRESHOLD);
        let dbcv = rows.iter().find(|r| r.cell == "quality/dbcv").unwrap();
        assert_eq!(dbcv.outcome, DiffOutcome::Regression);
        assert!(dbcv.outcome.is_failure());
        assert!(dbcv.render().starts_with("REGRESS"), "{}", dbcv.render());
        // The per-site cell dropped by the same 0.2 and fails too.
        let site = rows
            .iter()
            .find(|r| r.cell == "quality/site[0]/dbcv")
            .unwrap();
        assert_eq!(site.outcome, DiffOutcome::Regression);
    }

    #[test]
    fn quality_may_rise_freely_and_small_drops_pass() {
        let old = quality_report(0.70, Some(0.90));
        // A large rise and a sub-tolerance dip both pass.
        for new_v in [0.99, 0.65] {
            let rows = diff_reports(&old, &quality_report(new_v, Some(0.90)), DEFAULT_THRESHOLD);
            let dbcv = rows.iter().find(|r| r.cell == "quality/dbcv").unwrap();
            assert_eq!(dbcv.outcome, DiffOutcome::Ok, "new dbcv {new_v}");
            assert!(
                !rows.iter().any(|r| r.outcome.is_failure()),
                "new dbcv {new_v}"
            );
        }
        // Identical reports are always clean.
        let rows = diff_reports(&old, &old.clone(), DEFAULT_THRESHOLD);
        assert!(!rows.iter().any(|r| r.outcome.is_failure()));
    }

    #[test]
    fn latency_threshold_does_not_loosen_the_quality_gate() {
        let old = quality_report(0.85, None);
        let new = quality_report(0.65, None);
        // Even a sky-high latency threshold keeps the 0.1 quality gate.
        assert!(diff_reports(&old, &new, 5.0)
            .iter()
            .any(|r| r.outcome.is_failure()));
        // But the explicit quality tolerance can widen it.
        assert!(!diff_reports_with(&old, &new, 5.0, 0.3)
            .iter()
            .any(|r| r.outcome.is_failure()));
    }

    #[test]
    fn vanished_quality_cell_fails_and_new_one_informs() {
        let old = quality_report(0.85, Some(0.95));
        let new = quality_report(0.85, None); // q_dbdc_p1 vanished
        let rows = diff_reports(&old, &new, DEFAULT_THRESHOLD);
        let gone = rows.iter().find(|r| r.cell == "quality/q_dbdc_p1").unwrap();
        assert_eq!(gone.outcome, DiffOutcome::Missing);
        assert!(gone.outcome.is_failure());

        let rows = diff_reports(&new, &old, DEFAULT_THRESHOLD);
        let added = rows.iter().find(|r| r.cell == "quality/q_dbdc_p1").unwrap();
        assert_eq!(added.outcome, DiffOutcome::New);
        assert!(!added.outcome.is_failure());

        // A baseline with no quality section at all contributes no
        // quality rows against itself.
        let bare = report_with(vec![("c_ns", cell([100]))]);
        assert!(diff_reports(&bare, &bare.clone(), DEFAULT_THRESHOLD)
            .iter()
            .all(|r| r.quality.is_none()));
    }

    #[test]
    fn custom_threshold_is_respected() {
        let old = report_with(vec![("c_ns", cell([1000, 1000, 1000]))]);
        let new = report_with(vec![("c_ns", cell([1400, 1400, 1400]))]);
        // 40% slower: fails at 25%, passes at 50%.
        assert!(diff_reports(&old, &new, 0.25)
            .iter()
            .any(|r| r.outcome.is_failure()));
        assert!(!diff_reports(&old, &new, 0.50)
            .iter()
            .any(|r| r.outcome.is_failure()));
    }
}
