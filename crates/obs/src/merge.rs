//! Cross-process [`RunReport`] merging.
//!
//! A distributed run leaves one report per process: the server's and
//! one per site, each self-contained but blind to the others. This
//! module joins them into a single schema-v3 report:
//!
//! * counters are summed per scope name (scopes are process-prefixed —
//!   `net/server`, `net/site[2]` — so nothing collides by accident),
//! * histograms are bucket-merged exactly (the bucket scheme is shared,
//!   so merging is associative and commutative),
//! * span trees are grafted under one `dbdc_distributed` root: the
//!   server's tree first, then one `site[i]` subtree per site, sorted
//!   by site index so the merged report is independent of the order
//!   the site reports were given in,
//! * per-site statistics are concatenated (sorted the same way), and
//! * environment fingerprints are cross-checked — toolchain or
//!   revision drift between processes produces warnings, not errors,
//!   because a heterogeneous fleet is legal but worth flagging.
//!
//! Identity rules: every input must carry a `peer` and the expected
//! `role`; duplicate peers are an error (this is how merging a report
//! with itself is caught), and disagreeing `run_id`s are an error
//! (reports from different runs must never silently merge). A missing
//! `run_id` merges but warns.

use crate::counters::Counters;
use crate::hist::Histogram;
use crate::report::{RunReport, SiteStats};
use crate::span::Span;

/// Joins one server report and N site reports into a single
/// distributed report. Returns the merged report plus any warnings
/// (env drift, missing run ids) worth surfacing to the operator.
pub fn merge_reports(
    server: &RunReport,
    sites: &[&RunReport],
) -> Result<(RunReport, Vec<String>), String> {
    let mut warnings = Vec::new();

    if server.role.as_deref() != Some("server") {
        return Err(format!(
            "first report must have role \"server\", got {:?} (command {:?})",
            server.role, server.command
        ));
    }
    // Zero site reports is a degenerate but legal fleet: a server whose
    // sites all died (or a partial `/report` snapshot scraped before any
    // site connected) still merges — the result is the server's view
    // re-rooted under `dbdc_distributed`.
    if sites.is_empty() {
        warnings.push("merging a server report with zero site reports".into());
    }

    // Every process needs a unique identity; a repeated peer means the
    // same report (or the same process's report) was passed twice.
    let server_peer = server
        .peer
        .clone()
        .ok_or("server report carries no \"peer\"")?;
    let mut seen = vec![server_peer.clone()];
    for s in sites {
        if s.role.as_deref() != Some("site") {
            return Err(format!(
                "site report must have role \"site\", got {:?} (peer {:?})",
                s.role, s.peer
            ));
        }
        let peer = s
            .peer
            .clone()
            .ok_or_else(|| format!("site report (command {:?}) carries no \"peer\"", s.command))?;
        if seen.contains(&peer) {
            return Err(format!(
                "duplicate peer {peer:?}: same report passed twice?"
            ));
        }
        seen.push(peer);
    }

    // All reports must agree on the run they describe. A missing id is
    // tolerated (the operator may not have passed --run-id) but noted.
    let run_id = server.run_id.clone();
    for s in sites {
        match (&run_id, &s.run_id) {
            (Some(a), Some(b)) if a != b => {
                return Err(format!(
                    "run_id mismatch: server has {a:?}, {} has {b:?}",
                    s.peer.as_deref().unwrap_or("?")
                ));
            }
            (_, None) | (None, _) => warnings.push(format!(
                "report {} carries no run_id; cross-run merges cannot be detected",
                s.peer.as_deref().unwrap_or("?")
            )),
            _ => {}
        }
    }
    if run_id.is_none() {
        warnings.push("server report carries no run_id".into());
    }

    // Order-insensitivity: everything per-site is laid out by site
    // index, not argument order.
    let mut ordered: Vec<&RunReport> = sites.to_vec();
    ordered.sort_by_key(|s| peer_index(s.peer.as_deref().unwrap_or("")));

    // Counters: sum per scope name, first-appearance order.
    let mut scopes: Vec<(String, Counters)> = Vec::new();
    for report in std::iter::once(&server).chain(ordered.iter()) {
        for (name, c) in &report.scopes {
            match scopes.iter_mut().find(|(n, _)| n == name) {
                Some((_, acc)) => acc.add(c),
                None => scopes.push((name.clone(), *c)),
            }
        }
    }

    // Histograms: exact bucket merge per scope name.
    let mut hists: Vec<(String, Histogram)> = Vec::new();
    for report in std::iter::once(&server).chain(ordered.iter()) {
        for (name, h) in &report.hists {
            match hists.iter_mut().find(|(n, _)| n == name) {
                Some((_, acc)) => acc.merge(h),
                None => hists.push((name.clone(), h.clone())),
            }
        }
    }

    // Spans: one synthetic root holding the server's tree and one
    // wrapper subtree per site, so the timeline exporter (and human
    // readers) can tell the processes apart.
    let server_wall = server
        .spans
        .iter()
        .map(|s| s.wall)
        .max()
        .unwrap_or_default();
    let mut root = Span::new("dbdc_distributed", server_wall);
    for span in &server.spans {
        root.push(span.clone());
    }
    for s in &ordered {
        let peer = s.peer.clone().unwrap_or_else(|| "site[?]".into());
        let wall = s.spans.iter().map(|sp| sp.wall).max().unwrap_or_default();
        let mut wrapper = Span::new(peer, wall);
        for span in &s.spans {
            wrapper.push(span.clone());
        }
        root.push(wrapper);
    }

    // Env fingerprints: the merged report keeps the server's, but any
    // drift across the fleet is called out. Dataset checksums are
    // expected to differ (each site holds its own partition).
    if let Some(se) = &server.env {
        for s in &ordered {
            let peer = s.peer.as_deref().unwrap_or("?");
            match &s.env {
                None => warnings.push(format!("{peer} carries no env fingerprint")),
                Some(e) => {
                    if e.rustc != se.rustc {
                        warnings.push(format!(
                            "{peer} built with {:?}, server with {:?}",
                            e.rustc, se.rustc
                        ));
                    }
                    if e.git_rev != se.git_rev {
                        warnings.push(format!(
                            "{peer} at revision {:?}, server at {:?}",
                            e.git_rev, se.git_rev
                        ));
                    }
                }
            }
        }
    } else {
        warnings.push("server carries no env fingerprint; fleet drift unchecked".into());
    }

    // Per-site statistics: one entry per site report, sorted.
    let mut site_stats: Vec<SiteStats> = Vec::new();
    for s in &ordered {
        site_stats.extend(s.sites.iter().cloned());
    }
    site_stats.sort_by_key(|s| s.site);

    let mut merged = RunReport::new("merge");
    merged.role = Some("merged".into());
    merged.run_id = run_id;
    merged.peer = None;
    merged.params = server.params.clone();
    merged.env = server.env.clone();
    merged.dataset = server.dataset;
    merged.spans = vec![root];
    merged.scopes = scopes;
    merged.hists = hists;
    merged.sites = site_stats;
    merged.transfer = server.transfer.clone();
    merged.network = server.network.clone();
    merged.clusters = server.clusters;

    // Quality: the server's global view, annotated with every site's
    // local DBCV so the fleet's quality spread survives the merge. A
    // server report without a quality block (an older binary, say)
    // falls back to the mean of the site values so the section still
    // exists whenever any process measured quality.
    let site_quality: Vec<(String, &crate::report::QualityStats)> = ordered
        .iter()
        .filter_map(|s| {
            s.quality
                .as_ref()
                .map(|q| (s.peer.clone().unwrap_or_else(|| "site[?]".into()), q))
        })
        .collect();
    let mut quality = server.quality.clone();
    if quality.is_none() && !site_quality.is_empty() {
        let mean =
            site_quality.iter().map(|(_, q)| q.dbcv).sum::<f64>() / site_quality.len() as f64;
        let clusters = site_quality.iter().map(|(_, q)| q.clusters).sum();
        let noise = site_quality.iter().map(|(_, q)| q.noise).sum();
        quality = Some(crate::report::QualityStats::from_dbcv(
            mean,
            clusters,
            noise,
            vec![],
        ));
        warnings.push("server report carries no quality; merged DBCV is the site mean".into());
    }
    if let Some(q) = &mut quality {
        q.per_site = site_quality
            .into_iter()
            .map(|(peer, sq)| (peer, sq.dbcv))
            .collect();
    }
    merged.quality = quality;
    Ok((merged, warnings))
}

/// The numeric index inside a `site[i]` peer name, for sorting;
/// unparsable peers sort last in name order.
fn peer_index(peer: &str) -> (u64, String) {
    let idx = peer
        .strip_prefix("site[")
        .and_then(|rest| rest.strip_suffix(']'))
        .and_then(|n| n.parse::<u64>().ok());
    match idx {
        Some(i) => (i, String::new()),
        None => (u64::MAX, peer.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn env(checksum: &str) -> crate::report::EnvFingerprint {
        crate::report::EnvFingerprint {
            nproc: 8,
            rustc: "rustc 1.75.0".into(),
            git_rev: "aaa".into(),
            dataset_checksum: checksum.into(),
        }
    }

    fn server() -> RunReport {
        let mut r = RunReport::new("serve").with_identity("server", Some("r1".into()), "server");
        r.env = Some(env("srv"));
        let mut root = Span::new("dbdc_serve", Duration::from_micros(10_000));
        root.push(Span::new("upload", Duration::from_micros(4_000)));
        r.spans = vec![root];
        r.scopes = vec![(
            "net/server".into(),
            Counters {
                frames_received: 8,
                ..Counters::default()
            },
        )];
        r.hists = vec![(
            "net/frame_read_ns".into(),
            Histogram::from_values([100, 200]),
        )];
        r
    }

    fn site(i: usize) -> RunReport {
        let mut r =
            RunReport::new("site").with_identity("site", Some("r1".into()), format!("site[{i}]"));
        r.env = Some(env("part"));
        let mut root = Span::new("dbdc_site", Duration::from_micros(8_000));
        root.push(Span::new(
            format!("local[{i}]"),
            Duration::from_micros(3_000),
        ));
        r.spans = vec![root];
        r.scopes = vec![
            (
                format!("net/site[{i}]"),
                Counters {
                    frames_sent: 4,
                    retries: i as u64,
                    ..Counters::default()
                },
            ),
            (
                "shared".into(),
                Counters {
                    range_queries: 10,
                    ..Counters::default()
                },
            ),
        ];
        r.hists = vec![(
            "net/frame_write_ns".into(),
            Histogram::from_values([50 * (i as u64 + 1)]),
        )];
        r.sites = vec![SiteStats {
            site: i,
            points: 100,
            representatives: 5,
            bytes_up: 40,
            local: Duration::from_micros(3_000),
            relabel: Duration::from_micros(1_000),
            counters: Counters::default(),
        }];
        r
    }

    #[test]
    fn merge_carries_per_site_and_global_quality() {
        let mut sv = server();
        sv.quality = Some(crate::report::QualityStats::from_dbcv(0.75, 3, 5, vec![]));
        let mut s0 = site(0);
        s0.quality = Some(crate::report::QualityStats::from_dbcv(0.5, 2, 1, vec![]));
        let mut s1 = site(1);
        s1.quality = Some(crate::report::QualityStats::from_dbcv(0.25, 1, 2, vec![]));
        let (m, warnings) = merge_reports(&sv, &[&s1, &s0]).expect("merge");
        assert!(warnings.is_empty(), "{warnings:?}");
        let q = m.quality.expect("merged quality");
        assert_eq!(q.dbcv, 0.75); // the server's global view wins
        assert_eq!(
            q.per_site,
            vec![("site[0]".to_string(), 0.5), ("site[1]".to_string(), 0.25)]
        );
    }

    #[test]
    fn merge_without_server_quality_falls_back_to_site_mean() {
        let sv = server();
        let mut s0 = site(0);
        s0.quality = Some(crate::report::QualityStats::from_dbcv(0.5, 2, 1, vec![]));
        let mut s1 = site(1);
        s1.quality = Some(crate::report::QualityStats::from_dbcv(0.25, 1, 2, vec![]));
        let (m, warnings) = merge_reports(&sv, &[&s0, &s1]).expect("merge");
        assert!(
            warnings.iter().any(|w| w.contains("site mean")),
            "{warnings:?}"
        );
        let q = m.quality.expect("merged quality");
        assert_eq!(q.dbcv, 0.375);
        assert_eq!(q.clusters, 3);
        assert_eq!(q.noise, 3);
        assert_eq!(q.per_site.len(), 2);
    }

    #[test]
    fn merges_scopes_hists_spans_and_sites() {
        let sv = server();
        let (s0, s1) = (site(0), site(1));
        let (m, warnings) = merge_reports(&sv, &[&s1, &s0]).expect("merge");
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(m.role.as_deref(), Some("merged"));
        assert_eq!(m.run_id.as_deref(), Some("r1"));

        // Shared scopes summed, per-process scopes kept distinct.
        let shared = m.scopes.iter().find(|(n, _)| n == "shared").unwrap();
        assert_eq!(shared.1.range_queries, 20);
        assert!(m.scopes.iter().any(|(n, _)| n == "net/server"));
        assert!(m.scopes.iter().any(|(n, _)| n == "net/site[0]"));

        // Histograms bucket-merged.
        let h = m
            .hists
            .iter()
            .find(|(n, _)| n == "net/frame_write_ns")
            .unwrap();
        assert_eq!(h.1.count(), 2);

        // Span forest: server tree then site[0], site[1] — sorted by
        // index even though the arguments came reversed.
        let root = &m.spans[0];
        assert_eq!(root.name, "dbdc_distributed");
        let names: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["dbdc_serve", "site[0]", "site[1]"]);
        assert!(root.find("local[1]").is_some());

        // SiteStats concatenated in site order.
        let idx: Vec<usize> = m.sites.iter().map(|s| s.site).collect();
        assert_eq!(idx, [0, 1]);
    }

    #[test]
    fn server_only_fleet_merges_cleanly() {
        let sv = server();
        let (m, warnings) = merge_reports(&sv, &[]).expect("server-only merge");
        assert!(
            warnings.iter().any(|w| w.contains("zero site")),
            "{warnings:?}"
        );
        assert_eq!(m.role.as_deref(), Some("merged"));
        assert_eq!(m.run_id.as_deref(), Some("r1"));
        assert_eq!(m.scopes, sv.scopes);
        assert_eq!(m.hists, sv.hists);
        assert!(m.sites.is_empty());
        let root = &m.spans[0];
        assert_eq!(root.name, "dbdc_distributed");
        let names: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["dbdc_serve"]);
    }

    #[test]
    fn snapshot_derived_report_merges_identically_when_quiescent() {
        // A report assembled from a live TelemetrySnapshot (what the
        // `/report` endpoint serves) must merge exactly like the
        // exit-time report when the run is quiescent — both read the
        // same sheets, so this is an identity check on the plumbing.
        use crate::recorder::Recorder;
        use crate::snapshot::SnapshotEngine;
        use std::sync::Arc;

        let rec = Arc::new(crate::recorder::RecordingRecorder::new());
        {
            let r: &dyn Recorder = &*rec;
            r.sheet("net/server").unwrap().add_frame_sent(23, 10);
            r.hist("net/session_ns").unwrap().record(4_000);
        }
        let mut exit_time =
            RunReport::new("serve").with_identity("server", Some("r1".into()), "server");
        exit_time.scopes = rec.scopes();
        exit_time.hists = rec.hist_scopes();

        let snap = SnapshotEngine::new(Arc::clone(&rec))
            .with_identity("server", Some("r1".into()), "server")
            .snapshot();
        let mut from_snapshot =
            RunReport::new("serve").with_identity("server", Some("r1".into()), "server");
        from_snapshot.scopes = snap.counters;
        from_snapshot.hists = snap.hists;

        let (a, _) = merge_reports(&exit_time, &[]).expect("exit-time merge");
        let (b, _) = merge_reports(&from_snapshot, &[]).expect("snapshot merge");
        assert_eq!(a, b);
    }

    #[test]
    fn merge_is_order_insensitive() {
        let sv = server();
        let (s0, s1, s2) = (site(0), site(1), site(2));
        let (a, _) = merge_reports(&sv, &[&s0, &s1, &s2]).expect("merge");
        let (b, _) = merge_reports(&sv, &[&s2, &s0, &s1]).expect("merge");
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_peer_is_rejected() {
        let sv = server();
        let s0 = site(0);
        let err = merge_reports(&sv, &[&s0, &s0]).unwrap_err();
        assert!(err.contains("duplicate peer"), "{err}");
        // Self-merge via the server slot is a role error.
        let err = merge_reports(&s0, &[&s0]).unwrap_err();
        assert!(err.contains("role"), "{err}");
    }

    #[test]
    fn run_id_mismatch_is_rejected_and_missing_id_warns() {
        let sv = server();
        let mut other = site(0);
        other.run_id = Some("r2".into());
        let err = merge_reports(&sv, &[&other]).unwrap_err();
        assert!(err.contains("run_id mismatch"), "{err}");

        let mut anon = site(0);
        anon.run_id = None;
        let (_, warnings) = merge_reports(&sv, &[&anon]).expect("merges with warning");
        assert!(
            warnings.iter().any(|w| w.contains("no run_id")),
            "{warnings:?}"
        );
    }

    #[test]
    fn env_drift_warns_but_merges() {
        let mut sv = server();
        sv.env = Some(crate::report::EnvFingerprint {
            nproc: 8,
            rustc: "rustc 1.75.0".into(),
            git_rev: "aaa".into(),
            dataset_checksum: "x".into(),
        });
        let mut s0 = site(0);
        s0.env = Some(crate::report::EnvFingerprint {
            nproc: 4,
            rustc: "rustc 1.80.0".into(),
            git_rev: "bbb".into(),
            dataset_checksum: "y".into(),
        });
        let (m, warnings) = merge_reports(&sv, &[&s0]).expect("merge");
        assert_eq!(m.env.as_ref().unwrap().git_rev, "aaa");
        assert!(
            warnings.iter().any(|w| w.contains("1.80.0")),
            "{warnings:?}"
        );
        assert!(
            warnings.iter().any(|w| w.contains("revision")),
            "{warnings:?}"
        );
    }
}
