//! Mergeable log-bucketed latency histograms.
//!
//! Mean timings hide exactly what the paper's efficiency story (and any
//! production latency budget) lives on: the tail. A [`Histogram`] captures
//! a full distribution of `u64` samples — ε-range query nanoseconds,
//! per-site phase walls, DSU batch sizes — in a **fixed bucket scheme**
//! shared by every histogram ever recorded, so two histograms merge by
//! plain bucket-wise addition: merging is exact, associative, and
//! commutative, which is what lets per-site and per-repetition captures
//! combine into one distribution without re-recording.
//!
//! The bucket scheme is HDR-style log-linear: values `0..16` get one
//! exact bucket each; above that, each power-of-two octave is split into
//! 16 linear sub-buckets ([`SUBS`]). A bucket's width is therefore at
//! most 1/16 of its lower bound, bounding the relative quantile error at
//! ~6% while covering the whole `u64` range in [`N_BUCKETS`] = 976
//! buckets. `min`/`max`/`count`/`sum` are tracked exactly on the side,
//! so `max` (and any percentile that lands in the top bucket) is not
//! subject to bucket rounding.
//!
//! Histograms are unit-agnostic: the *scope name* a histogram is
//! recorded under carries the unit suffix (`_ns` for nanoseconds,
//! `_ops` for operation counts), and renderers key their formatting off
//! that suffix.
//!
//! [`HistSheet`] is the shared accumulator form (relaxed atomics, like
//! [`CounterSheet`](crate::CounterSheet)): instrumented code records
//! into it from any thread, a snapshot turns it back into a plain
//! [`Histogram`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::json::Json;

/// Linear sub-buckets per power-of-two octave.
pub const SUBS: u64 = 16;
const SUB_BITS: u32 = 4;

/// Total buckets in the fixed scheme (covers all of `u64`).
pub const N_BUCKETS: usize = ((64 - SUB_BITS as usize) * SUBS as usize) + SUBS as usize;

/// The bucket index a value lands in.
pub fn bucket_of(v: u64) -> usize {
    if v < SUBS {
        return v as usize;
    }
    let e = 63 - v.leading_zeros();
    let m = v >> (e - SUB_BITS);
    (((e - SUB_BITS) as u64 * SUBS) + m) as usize
}

/// The inclusive `[lo, hi]` value range of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    let i = i as u64;
    if i < SUBS {
        return (i, i);
    }
    let octave = (i / SUBS - 1) as u32;
    let sub = i % SUBS;
    let lo = (SUBS + sub) << octave;
    let width = 1u64 << octave;
    (lo, lo + (width - 1))
}

/// A plain-value distribution over the fixed bucket scheme.
///
/// `count`/`sum`/`min`/`max` are exact; percentiles are bucket upper
/// bounds clamped to the exact extremes, so `percentile(q)` is always
/// within one bucket width (≤ 1/16 relative) above the true quantile
/// and never outside `[min, max]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; N_BUCKETS],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.min = if self.count == 0 { v } else { self.min.min(v) };
        self.max = self.max.max(v);
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Records a duration in nanoseconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A histogram of all the given samples.
    pub fn from_values(values: impl IntoIterator<Item = u64>) -> Histogram {
        let mut h = Histogram::new();
        for v in values {
            h.record(v);
        }
        h
    }

    /// Merges `other` into `self`: bucket-wise addition plus exact
    /// `count`/`sum`/`min`/`max` combination. Exact, associative, and
    /// commutative — the merged histogram equals the one that would
    /// have recorded both sample streams directly.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Exact largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) as a bucket upper bound
    /// clamped to `[min, max]`. 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, hi) = bucket_bounds(i);
                return hi.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Relative spread of the samples, `(max - min) / p50` — the
    /// noise estimate `report diff` derives its default tolerance from.
    /// 0.0 when empty or when the median is 0.
    pub fn rel_spread(&self) -> f64 {
        let p50 = self.p50();
        if p50 == 0 {
            0.0
        } else {
            (self.max - self.min) as f64 / p50 as f64
        }
    }

    /// The distribution recorded between `prev` and `self`, assuming
    /// both are snapshots of the **same live sheet** taken in that
    /// order: bucket-wise saturating subtraction, with `count`/`sum`
    /// subtracted the same way. Because the sheet's atomics are relaxed
    /// and loaded independently, a concurrent recorder can leave the
    /// difference's bucket total one ahead of (or behind) its `count`;
    /// the result therefore bypasses the `from_parts` invariant check
    /// and is meant for rate display, not for re-merging. `min`/`max`
    /// are not tracked per window — the result carries `self`'s exact
    /// extremes as bounds for the window's.
    pub fn diff_from(&self, prev: &Histogram) -> Histogram {
        let mut d = Histogram::new();
        for ((b, cur), old) in d.buckets.iter_mut().zip(&self.buckets).zip(&prev.buckets) {
            *b = cur.saturating_sub(*old);
        }
        d.count = self.count.saturating_sub(prev.count);
        d.sum = self.sum.saturating_sub(prev.sum);
        d.min = if d.count == 0 { 0 } else { self.min };
        d.max = if d.count == 0 { 0 } else { self.max };
        d
    }

    /// Occupied buckets as `(index, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (i, c))
    }

    /// The histogram as a JSON object. Buckets serialize sparsely as
    /// `[index, count]` pairs; `count`/`sum`/`min`/`max` are explicit so
    /// readers need not re-derive them.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::num_u64(self.count)),
            ("sum", Json::num_u64(self.sum)),
            ("min", Json::num_u64(self.min)),
            ("max", Json::num_u64(self.max)),
            (
                "buckets",
                Json::Arr(
                    self.nonzero_buckets()
                        .map(|(i, c)| Json::Arr(vec![Json::num_u64(i as u64), Json::num_u64(c)]))
                        .collect(),
                ),
            ),
        ])
    }

    /// Reassembles a histogram from its exact parts: the side-tracked
    /// `count`/`sum`/`min`/`max` plus sparse `(index, count)` bucket
    /// pairs. Validates that the bucket counts sum to `count` — the one
    /// internal invariant a deserializer could otherwise violate. Shared
    /// by [`Histogram::from_json`] and the Prometheus exposition parser.
    pub fn from_parts(
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        buckets: impl IntoIterator<Item = (usize, u64)>,
    ) -> Result<Histogram, String> {
        let mut h = Histogram::new();
        h.count = count;
        h.sum = sum;
        h.min = min;
        h.max = max;
        let mut total = 0u64;
        for (i, c) in buckets {
            if i >= N_BUCKETS {
                return Err("histogram bucket index out of range".into());
            }
            h.buckets[i] += c;
            total += c;
        }
        if total != h.count {
            return Err(format!(
                "histogram bucket counts sum to {total}, \"count\" says {}",
                h.count
            ));
        }
        Ok(h)
    }

    /// Rebuilds a histogram from [`Histogram::to_json`] output.
    pub fn from_json(v: &Json) -> Result<Histogram, String> {
        let field = |name: &str| {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("histogram missing {name:?}"))
        };
        let buckets = v
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or("histogram missing \"buckets\"")?;
        let mut pairs = Vec::with_capacity(buckets.len());
        for pair in buckets {
            let pair = pair
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or("histogram bucket entry is not an [index, count] pair")?;
            let i = pair[0]
                .as_u64()
                .filter(|&i| (i as usize) < N_BUCKETS)
                .ok_or("histogram bucket index out of range")? as usize;
            let c = pair[1]
                .as_u64()
                .ok_or("histogram bucket count not an integer")?;
            pairs.push((i, c));
        }
        Histogram::from_parts(
            field("count")?,
            field("sum")?,
            field("min")?,
            field("max")?,
            pairs,
        )
    }
}

/// A shared, lock-free accumulator for one [`Histogram`].
///
/// Like [`CounterSheet`](crate::CounterSheet), all atomics are relaxed:
/// recorders carry no synchronization duty, readers snapshot after the
/// producing phase has been joined.
#[derive(Debug)]
pub struct HistSheet {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistSheet {
    fn default() -> Self {
        HistSheet::new()
    }
}

impl HistSheet {
    /// A fresh empty sheet.
    pub fn new() -> HistSheet {
        HistSheet {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// The current totals as a plain histogram.
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        for (b, a) in h.buckets.iter_mut().zip(&self.buckets) {
            *b = a.load(Ordering::Relaxed);
        }
        h.count = self.count.load(Ordering::Relaxed);
        h.sum = self.sum.load(Ordering::Relaxed);
        h.max = self.max.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        h.min = if h.count == 0 { 0 } else { min };
        h
    }
}

/// Formats a sample value for humans: nanoseconds (scope suffix `_ns`)
/// auto-scale to the largest unit that keeps the value >= 1 (per-query
/// latencies are microseconds, phase walls milliseconds — a fixed unit
/// would flatten one of them to 0.0), anything else prints raw.
pub fn fmt_sample(scope: &str, v: u64) -> String {
    if scope.ends_with("_ns") {
        match v {
            0..=999 => format!("{v} ns"),
            1_000..=999_999 => format!("{:.1} us", v as f64 / 1e3),
            1_000_000..=999_999_999 => format!("{:.1} ms", v as f64 / 1e6),
            _ => format!("{:.2} s", v as f64 / 1e9),
        }
    } else {
        v.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* stream for the property tests — spans
    /// many orders of magnitude so every bucket regime is exercised.
    fn samples(seed: u64, n: usize) -> Vec<u64> {
        let mut s = seed.wrapping_mul(2685821657736338717).max(1);
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                // Random magnitude 0..2^k, k in 0..=40.
                let k = (s >> 58) % 41;
                (s.wrapping_mul(2685821657736338717)) >> (63 - k)
            })
            .collect()
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        for seed in 1..=8u64 {
            let a = Histogram::from_values(samples(seed, 97));
            let b = Histogram::from_values(samples(seed + 100, 31));
            let c = Histogram::from_values(samples(seed + 200, 63));

            // (a ∪ b) ∪ c == a ∪ (b ∪ c)
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            assert_eq!(left, right, "associativity, seed {seed}");

            // a ∪ b == b ∪ a
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ab, ba, "commutativity, seed {seed}");

            // Both equal recording the concatenated stream.
            let mut all = samples(seed, 97);
            all.extend(samples(seed + 100, 31));
            assert_eq!(ab, Histogram::from_values(all), "merge = concat");
        }
    }

    #[test]
    fn percentile_bounds_vs_sorted_oracle() {
        for seed in 1..=8u64 {
            let mut vals = samples(seed * 7, 201);
            let h = Histogram::from_values(vals.iter().copied());
            vals.sort_unstable();
            for q in [0.01, 0.10, 0.50, 0.90, 0.99, 1.0] {
                let rank = ((q * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
                let oracle = vals[rank - 1];
                let got = h.percentile(q);
                // Never below the exact order statistic; above it by at
                // most one bucket width (≤ 1/SUBS relative, +1 for the
                // integer boundary).
                assert!(got >= oracle, "q={q} got={got} oracle={oracle}");
                assert!(
                    got as f64 <= oracle as f64 * (1.0 + 1.0 / SUBS as f64) + 1.0,
                    "q={q} got={got} oracle={oracle}"
                );
                assert!(got <= h.max());
            }
        }
    }

    #[test]
    fn bucket_scheme_is_contiguous_and_monotone() {
        // Every bucket's range starts right after the previous one ends.
        let mut expected_lo = 0u64;
        for i in 0..N_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expected_lo, "bucket {i}");
            assert!(hi >= lo);
            if hi == u64::MAX {
                assert_eq!(i, N_BUCKETS - 1);
                break;
            }
            expected_lo = hi + 1;
        }
        assert_eq!(bucket_bounds(N_BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn values_land_in_their_own_bucket() {
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            1000,
            123_456_789,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let i = bucket_of(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "v={v} bucket={i} range=[{lo},{hi}]");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::from_values([0, 3, 3, 7, 15]);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.p50(), 3);
        assert_eq!(h.percentile(1.0), 15);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.sum(), 28);
    }

    #[test]
    fn percentiles_clamp_to_exact_extremes() {
        // 1000 lands in a bucket whose upper bound exceeds 1000, but the
        // exact max clamps the reported quantile.
        let h = Histogram::from_values([1000]);
        assert_eq!(h.p50(), 1000);
        assert_eq!(h.p99(), 1000);
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p50(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.rel_spread(), 0.0);
    }

    #[test]
    fn merge_equals_recording_both_streams() {
        let a_vals = [5u64, 900, 17, 0, 64_000];
        let b_vals = [3u64, 3, 1_000_000, 80];
        let mut a = Histogram::from_values(a_vals);
        let b = Histogram::from_values(b_vals);
        a.merge(&b);
        let direct = Histogram::from_values(a_vals.into_iter().chain(b_vals));
        assert_eq!(a, direct);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let h = Histogram::from_values([10, 20, 30]);
        let mut lhs = h.clone();
        lhs.merge(&Histogram::new());
        assert_eq!(lhs, h);
        let mut empty = Histogram::new();
        empty.merge(&h);
        assert_eq!(empty, h);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let h = Histogram::from_values([0, 1, 16, 17, 1_000, 123_456_789]);
        let back = Histogram::from_json(&h.to_json()).expect("round trip");
        assert_eq!(back, h);
        let empty = Histogram::new();
        assert_eq!(Histogram::from_json(&empty.to_json()).unwrap(), empty);
    }

    #[test]
    fn json_rejects_inconsistent_counts() {
        let mut v = Histogram::from_values([5, 5]).to_json();
        if let Json::Obj(pairs) = &mut v {
            pairs[0].1 = Json::num_u64(99);
        }
        let err = Histogram::from_json(&v).unwrap_err();
        assert!(err.contains("sum to 2"), "{err}");
    }

    #[test]
    fn sheet_snapshot_matches_plain_recording() {
        let sheet = HistSheet::new();
        let vals = [7u64, 7, 250, 80_000, 3];
        for v in vals {
            sheet.record(v);
        }
        assert_eq!(sheet.snapshot(), Histogram::from_values(vals));
        assert_eq!(HistSheet::new().snapshot(), Histogram::new());
    }

    #[test]
    fn concurrent_sheet_recording_loses_nothing() {
        let sheet = std::sync::Arc::new(HistSheet::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let sheet = std::sync::Arc::clone(&sheet);
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        sheet.record(t * 1000 + i);
                    }
                });
            }
        });
        let h = sheet.snapshot();
        assert_eq!(h.count(), 4000);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 3999);
    }

    #[test]
    fn fmt_sample_keys_off_the_scope_suffix() {
        assert_eq!(fmt_sample("local[0]/eps_range_ns", 1_500_000), "1.5 ms");
        assert_eq!(fmt_sample("dsu_batch_ops", 42), "42");
    }

    #[test]
    fn fmt_sample_scales_ns_to_the_readable_unit() {
        assert_eq!(fmt_sample("x_ns", 750), "750 ns");
        assert_eq!(fmt_sample("x_ns", 1_200), "1.2 us");
        assert_eq!(fmt_sample("x_ns", 4_500_000_000), "4.50 s");
    }
}
