//! Minimal JSON tree, writer, and parser.
//!
//! The workspace builds offline — the vendored `serde` stand-in is an
//! empty shim (see `vendor/README.md`) — so the [`RunReport`] schema is
//! serialized by hand through this module. The subset is exactly what
//! the reports need: objects preserve insertion order (the schema is
//! stable down to key order, which makes golden-file tests trivial),
//! numbers are `f64` with integers written without a fractional part,
//! and the parser accepts standard JSON so externally edited reports
//! can be validated by `dbdc-cli report`.
//!
//! [`RunReport`]: crate::report::RunReport

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// A parse error with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// An object from key/value pairs, preserving order.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An unsigned integer value (exact up to 2^53, plenty for counters).
    pub fn num_u64(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if numeric and whole.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline —
    /// the exact bytes `--metrics-out` writes (and golden files pin).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses one JSON document; trailing content (other than whitespace)
    /// is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content after the document"));
        }
        Ok(value)
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; reports never produce them, but a
        // defensive null beats emitting an unparsable token.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's shortest-roundtrip Display keeps this deterministic.
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(format!("unexpected character {:?}", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a following \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(code)
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            // hex4 advanced past the digits; compensate the
                            // unconditional advance below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are sound).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_stable_pretty_output() {
        let v = Json::obj([
            ("name", Json::str("dbdc")),
            ("n", Json::num_u64(3)),
            ("frac", Json::Num(0.5)),
            ("ok", Json::Bool(true)),
            ("items", Json::Arr(vec![Json::num_u64(1), Json::Null])),
            ("empty", Json::Obj(vec![])),
        ]);
        let text = v.to_string_pretty();
        assert_eq!(
            text,
            "{\n  \"name\": \"dbdc\",\n  \"n\": 3,\n  \"frac\": 0.5,\n  \"ok\": true,\n  \"items\": [\n    1,\n    null\n  ],\n  \"empty\": {}\n}\n"
        );
    }

    #[test]
    fn round_trips_through_parse() {
        let v = Json::obj([
            (
                "s",
                Json::str("a \"quoted\"\nline\twith \\ unicode: ünïcødé"),
            ),
            ("neg", Json::Num(-12.25)),
            ("big", Json::num_u64(1 << 50)),
            ("arr", Json::Arr(vec![Json::Bool(false), Json::str("")])),
        ]);
        let text = v.to_string_pretty();
        let back = Json::parse(&text).expect("own output parses");
        assert_eq!(back, v);
        // Idempotent at the byte level too.
        assert_eq!(back.to_string_pretty(), text);
    }

    #[test]
    fn parses_standard_json_forms() {
        let v = Json::parse(r#" { "a" : [ 1 , 2.5e2 , -3 ] , "b" : null } "#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_f64(),
            Some(250.0)
        );
        assert_eq!(v.get("b"), Some(&Json::Null));
        let esc = Json::parse(r#""Aé😀""#).unwrap();
        assert_eq!(esc.as_str(), Some("Aé😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\" 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
        let err = Json::parse("[1, x]").unwrap_err();
        assert!(err.to_string().contains("byte 4"), "{err}");
    }

    #[test]
    fn accessors() {
        let v = Json::obj([("n", Json::num_u64(7)), ("s", Json::str("x"))]);
        assert_eq!(v.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
    }
}
