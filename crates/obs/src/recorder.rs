//! The capture policy: who gets counter sheets, and where spans go.
//!
//! Instrumented code takes a `&dyn Recorder` and asks it for a
//! [`CounterSheet`] per named scope (`local[0]`, `global`,
//! `relabel[2]`, …). The [`NoopRecorder`] answers `None` for every
//! scope — the hot paths then skip all atomic traffic, which is what
//! keeps uninstrumented runs at full speed. The [`RecordingRecorder`]
//! hands out one shared sheet per scope (the same `Arc` for repeated
//! requests) and collects finished span trees for the report emitters.

use std::sync::{Arc, Mutex};

use crate::counters::{CounterSheet, Counters};
use crate::hist::{HistSheet, Histogram};
use crate::span::Span;

/// Decides whether observability data is captured.
///
/// The default method bodies implement the no-op policy, so a recorder
/// only has to override what it actually captures.
pub trait Recorder: Send + Sync {
    /// Whether this recorder captures anything at all. Callers may use
    /// this to skip report assembly entirely.
    fn is_enabled(&self) -> bool {
        false
    }

    /// The counter sheet for a named scope, or `None` to disable
    /// counting in that scope. Repeated calls with the same scope must
    /// return the same sheet.
    fn sheet(&self, _scope: &str) -> Option<Arc<CounterSheet>> {
        None
    }

    /// The latency/size histogram sheet for a named scope (by
    /// convention suffixed with its unit, e.g. `local[0]/eps_range_ns`),
    /// or `None` to disable distribution capture in that scope.
    /// Repeated calls with the same scope must return the same sheet.
    fn hist(&self, _scope: &str) -> Option<Arc<HistSheet>> {
        None
    }

    /// Accepts a finished span tree.
    fn record_span(&self, _span: Span) {}
}

/// Captures nothing; every instrumented path sees `None` sheets.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// Captures counter scopes and span trees for report assembly.
///
/// Scopes are few (a handful per site), so a scanned `Vec` keyed by
/// name — which also preserves first-request order for reports — beats
/// a map here.
#[derive(Debug, Default)]
pub struct RecordingRecorder {
    sheets: Mutex<Vec<(String, Arc<CounterSheet>)>>,
    hists: Mutex<Vec<(String, Arc<HistSheet>)>>,
    spans: Mutex<Vec<Span>>,
}

impl RecordingRecorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// All scopes with their counter snapshots, in first-request order.
    pub fn scopes(&self) -> Vec<(String, Counters)> {
        self.sheets
            .lock()
            .expect("recorder lock")
            .iter()
            .map(|(name, sheet)| (name.clone(), sheet.snapshot()))
            .collect()
    }

    /// The counter snapshot for one scope; zero if never requested.
    pub fn counters(&self, scope: &str) -> Counters {
        self.sheets
            .lock()
            .expect("recorder lock")
            .iter()
            .find(|(name, _)| name == scope)
            .map(|(_, sheet)| sheet.snapshot())
            .unwrap_or_default()
    }

    /// All histogram scopes with their snapshots, in first-request
    /// order, skipping scopes that never recorded a sample.
    pub fn hist_scopes(&self) -> Vec<(String, Histogram)> {
        self.hists
            .lock()
            .expect("recorder lock")
            .iter()
            .map(|(name, sheet)| (name.clone(), sheet.snapshot()))
            .filter(|(_, h)| !h.is_empty())
            .collect()
    }

    /// The histogram snapshot for one scope; empty if never requested.
    pub fn histogram(&self, scope: &str) -> Histogram {
        self.hists
            .lock()
            .expect("recorder lock")
            .iter()
            .find(|(name, _)| name == scope)
            .map(|(_, sheet)| sheet.snapshot())
            .unwrap_or_default()
    }

    /// The span trees recorded so far, in arrival order.
    pub fn spans(&self) -> Vec<Span> {
        self.spans.lock().expect("recorder lock").clone()
    }
}

impl Recorder for RecordingRecorder {
    fn is_enabled(&self) -> bool {
        true
    }

    fn sheet(&self, scope: &str) -> Option<Arc<CounterSheet>> {
        let mut sheets = self.sheets.lock().expect("recorder lock");
        if let Some((_, sheet)) = sheets.iter().find(|(name, _)| name == scope) {
            return Some(Arc::clone(sheet));
        }
        let sheet = Arc::new(CounterSheet::new());
        sheets.push((scope.to_string(), Arc::clone(&sheet)));
        Some(sheet)
    }

    fn hist(&self, scope: &str) -> Option<Arc<HistSheet>> {
        let mut hists = self.hists.lock().expect("recorder lock");
        if let Some((_, sheet)) = hists.iter().find(|(name, _)| name == scope) {
            return Some(Arc::clone(sheet));
        }
        let sheet = Arc::new(HistSheet::new());
        hists.push((scope.to_string(), Arc::clone(&sheet)));
        Some(sheet)
    }

    fn record_span(&self, span: Span) {
        self.spans.lock().expect("recorder lock").push(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn noop_hands_out_nothing() {
        let rec = NoopRecorder;
        assert!(!rec.is_enabled());
        assert!(rec.sheet("local[0]").is_none());
        assert!(rec.hist("local[0]/eps_range_ns").is_none());
        rec.record_span(Span::new("dbdc", Duration::ZERO)); // silently dropped
    }

    #[test]
    fn hist_scopes_share_sheets_and_skip_idle_scopes() {
        let rec = RecordingRecorder::new();
        let a = rec.hist("local[0]/eps_range_ns").unwrap();
        let b = rec.hist("local[0]/eps_range_ns").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        a.record(100);
        b.record(300);
        rec.hist("never_recorded_ns").unwrap(); // requested but idle
        let scopes = rec.hist_scopes();
        assert_eq!(scopes.len(), 1);
        assert_eq!(scopes[0].0, "local[0]/eps_range_ns");
        assert_eq!(scopes[0].1.count(), 2);
        assert_eq!(rec.histogram("local[0]/eps_range_ns").max(), 300);
        assert!(rec.histogram("missing").is_empty());
    }

    #[test]
    fn same_scope_shares_one_sheet() {
        let rec = RecordingRecorder::new();
        let a = rec.sheet("local[0]").unwrap();
        let b = rec.sheet("local[0]").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        a.add_bytes_sent(10);
        b.add_bytes_sent(5);
        assert_eq!(rec.counters("local[0]").bytes_sent, 15);
    }

    #[test]
    fn scopes_keep_first_request_order() {
        let rec = RecordingRecorder::new();
        for scope in ["local[0]", "local[1]", "global", "local[0]"] {
            rec.sheet(scope).unwrap().record_range(1, 0);
        }
        let scopes = rec.scopes();
        let names: Vec<&str> = scopes.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["local[0]", "local[1]", "global"]);
        assert_eq!(scopes[0].1.range_queries, 2);
        assert_eq!(rec.counters("missing"), Counters::default());
    }

    #[test]
    fn spans_arrive_in_order() {
        let rec = RecordingRecorder::new();
        assert!(rec.is_enabled());
        rec.record_span(Span::new("a", Duration::from_micros(1)));
        rec.record_span(Span::new("b", Duration::from_micros(2)));
        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "a");
        assert_eq!(spans[1].name, "b");
    }

    #[test]
    fn dyn_recorder_dispatch_works_across_threads() {
        let rec = RecordingRecorder::new();
        let r: &dyn Recorder = &rec;
        std::thread::scope(|scope| {
            for i in 0..3 {
                scope.spawn(move || {
                    let sheet = r.sheet(&format!("local[{i}]")).unwrap();
                    sheet.record_range(i as u64, 0);
                });
            }
        });
        assert_eq!(rec.scopes().len(), 3);
    }
}
