//! Chrome-trace (`trace_event`) export of a report's span forest.
//!
//! `chrome://tracing` and Perfetto both read the "JSON Array Format":
//! an object with a `traceEvents` array of `"ph": "X"` complete events
//! (microsecond `ts`/`dur`) plus `"ph": "M"` metadata naming each
//! process. This module renders a [`RunReport`]'s spans in that shape,
//! one pid per process, so a distributed run opens as a causally
//! ordered flame timeline.
//!
//! Spans only carry durations plus (since schema v3) an optional
//! explicit start offset, so absolute times are *derived*: sequential
//! children are laid out one after another from the parent's start,
//! and explicit-start children are placed at `parent_start + start`
//! without advancing the sequential cursor (they ran concurrently —
//! server-side per-connection handshakes, site session sub-phases).
//!
//! For a merged report (root `dbdc_distributed`, see
//! [`crate::merge`]), each process first gets its own local timeline
//! starting at 0, then site timelines are shifted so each site's
//! `handshake` span starts when the server's matching `handshake[i]`
//! span starts. The two windows are not the same physical interval —
//! the site's runs HELLO-write→ACK-read, the server's HELLO-read→ACK-
//! write, so the alignment is off by roughly one network latency and
//! inherits whatever clock skew the measurement had; it is a causal
//! anchor, not NTP. Finally every timestamp is normalized so the
//! earliest event sits at 0 (offsets may be negative before this).

use crate::json::Json;
use crate::report::RunReport;
use crate::span::Span;

/// One flattened `"ph": "X"` event, timestamps in signed µs until the
/// final normalization.
struct Event {
    name: String,
    ts: i64,
    dur: u64,
    pid: u64,
    tid: u64,
    threads: usize,
    modeled: bool,
}

/// Renders the report's span forest as Chrome `trace_event` JSON.
/// Errors only when the report carries no spans at all.
pub fn chrome_trace(report: &RunReport) -> Result<Json, String> {
    if report.spans.is_empty() {
        return Err("report has no spans to export".into());
    }

    // Split the forest into processes. A merged report declares them
    // via the dbdc_distributed root; any other report is one process.
    let mut processes: Vec<(String, Vec<&Span>)> = Vec::new();
    let root = &report.spans[0];
    if root.name == "dbdc_distributed" && report.spans.len() == 1 {
        for child in &root.children {
            if child.name.starts_with("site[") {
                // The wrapper is bookkeeping, not a phase: export its
                // children (the site's real tree) under the site pid.
                processes.push((child.name.clone(), child.children.iter().collect()));
            } else {
                processes.push(("server".into(), vec![child]));
            }
        }
    } else {
        let name = report
            .peer
            .clone()
            .unwrap_or_else(|| report.command.clone());
        processes.push((name, report.spans.iter().collect()));
    }

    // Lay out every process on its own local clock first.
    let mut per_proc: Vec<(String, Vec<Event>)> = Vec::new();
    for (pid0, (name, trees)) in processes.into_iter().enumerate() {
        let pid = pid0 as u64 + 1;
        let mut events = Vec::new();
        let mut cursor = 0i64;
        for tree in trees {
            layout(tree, cursor, pid, 1, &mut events);
            cursor += tree.wall.as_micros() as i64;
        }
        per_proc.push((name, events));
    }

    // Clock alignment: shift each site so its handshake start matches
    // the server's handshake[i] start. Without a matching pair the
    // site stays on the server's zero — still viewable, just unanchored.
    let server_handshakes: Vec<(String, i64)> = per_proc
        .first()
        .map(|(_, events)| {
            events
                .iter()
                .filter(|e| e.name.starts_with("handshake["))
                .map(|e| (e.name.clone(), e.ts))
                .collect()
        })
        .unwrap_or_default();
    for (name, events) in per_proc.iter_mut().skip(1) {
        let idx = name
            .strip_prefix("site[")
            .and_then(|r| r.strip_suffix(']'))
            .unwrap_or("");
        let anchor = server_handshakes
            .iter()
            .find(|(n, _)| n == &format!("handshake[{idx}]"))
            .map(|&(_, ts)| ts);
        let local = events.iter().find(|e| e.name == "handshake").map(|e| e.ts);
        if let (Some(server_ts), Some(site_ts)) = (anchor, local) {
            let offset = server_ts - site_ts;
            for e in events.iter_mut() {
                e.ts += offset;
            }
        }
    }

    // Normalize so the earliest event is t=0 (alignment offsets can
    // push site-local prologues before the server's zero).
    let min_ts = per_proc
        .iter()
        .flat_map(|(_, ev)| ev.iter().map(|e| e.ts))
        .min()
        .unwrap_or(0);

    let mut trace = Vec::new();
    for (pid0, (name, events)) in per_proc.iter().enumerate() {
        let pid = pid0 as u64 + 1;
        trace.push(Json::obj([
            ("name", Json::str("process_name")),
            ("ph", Json::str("M")),
            ("pid", Json::num_u64(pid)),
            ("tid", Json::num_u64(0)),
            ("args", Json::obj([("name", Json::str(name))])),
        ]));
        for e in events {
            trace.push(Json::obj([
                ("name", Json::str(&e.name)),
                ("cat", Json::str("dbdc")),
                ("ph", Json::str("X")),
                ("ts", Json::num_u64((e.ts - min_ts) as u64)),
                ("dur", Json::num_u64(e.dur)),
                ("pid", Json::num_u64(e.pid)),
                ("tid", Json::num_u64(e.tid)),
                (
                    "args",
                    Json::obj([
                        ("threads", Json::num_u64(e.threads as u64)),
                        ("modeled", Json::Bool(e.modeled)),
                    ]),
                ),
            ]));
        }
    }
    Ok(Json::obj([
        ("traceEvents", Json::Arr(trace)),
        ("displayTimeUnit", Json::str("ms")),
    ]))
}

/// Emits `span` at absolute time `ts` and derives its children's
/// positions: sequential children advance a cursor, explicit-start
/// children sit at `ts + start` on their own track.
fn layout(span: &Span, ts: i64, pid: u64, tid: u64, out: &mut Vec<Event>) {
    out.push(Event {
        name: span.name.clone(),
        ts,
        dur: span.wall.as_micros() as u64,
        pid,
        tid,
        threads: span.threads,
        modeled: span.modeled,
    });
    let mut cursor = ts;
    for child in &span.children {
        match child.start {
            Some(start) => {
                let child_ts = ts + start.as_micros() as i64;
                layout(child, child_ts, pid, track_for(child).unwrap_or(tid), out);
            }
            None => {
                layout(child, cursor, pid, tid, out);
                cursor += child.wall.as_micros() as i64;
            }
        }
    }
}

/// Concurrent spans named `name[k]` (the server's per-connection
/// handshakes) get their own track `2 + k`, mirroring the
/// thread-per-connection reality and keeping same-track complete
/// events from partially overlapping, which trace viewers render
/// badly.
fn track_for(span: &Span) -> Option<u64> {
    let open = span.name.rfind('[')?;
    let idx: u64 = span.name[open + 1..].strip_suffix(']')?.parse().ok()?;
    Some(2 + idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::merge_reports;
    use std::time::Duration;

    fn event_list(trace: &Json) -> &[Json] {
        trace.get("traceEvents").and_then(Json::as_arr).unwrap()
    }

    fn find<'a>(events: &'a [Json], name: &str) -> &'a Json {
        events
            .iter()
            .find(|e| {
                e.get("name").and_then(Json::as_str) == Some(name)
                    && e.get("ph").and_then(Json::as_str) == Some("X")
            })
            .unwrap_or_else(|| panic!("no X event named {name}"))
    }

    fn u(e: &Json, key: &str) -> u64 {
        e.get(key).and_then(Json::as_u64).unwrap()
    }

    fn site_report(i: usize, handshake_at: u64) -> RunReport {
        let mut r =
            RunReport::new("site").with_identity("site", Some("r".into()), format!("site[{i}]"));
        let mut session = Span::new("session", Duration::from_micros(5_000));
        session.push(
            Span::new("handshake", Duration::from_micros(400))
                .with_start(Duration::from_micros(handshake_at)),
        );
        session.push(
            Span::new("upload", Duration::from_micros(1_000))
                .with_start(Duration::from_micros(handshake_at + 400)),
        );
        let mut root = Span::new("dbdc_site", Duration::from_micros(8_000));
        root.push(Span::new(
            format!("local[{i}]"),
            Duration::from_micros(3_000),
        ));
        root.push(session);
        r.spans = vec![root];
        r
    }

    fn server_report(n: usize) -> RunReport {
        let mut r = RunReport::new("serve").with_identity("server", Some("r".into()), "server");
        let mut root = Span::new("dbdc_serve", Duration::from_micros(20_000));
        for i in 0..n {
            root.push(
                Span::new(format!("handshake[{i}]"), Duration::from_micros(300))
                    .with_start(Duration::from_micros(1_000 + 500 * i as u64)),
            );
        }
        root.push(Span::new("upload", Duration::from_micros(9_000)));
        root.push(Span::new("global", Duration::from_micros(2_000)));
        r.spans = vec![root];
        r
    }

    #[test]
    fn sequential_layout_packs_siblings_back_to_back() {
        let mut r = RunReport::new("run");
        let mut root = Span::new("dbdc", Duration::from_micros(1_000));
        root.push(Span::new("a", Duration::from_micros(300)));
        root.push(Span::new("b", Duration::from_micros(200)));
        r.spans = vec![root];
        let trace = chrome_trace(&r).expect("trace");
        let events = event_list(&trace);
        assert_eq!(u(find(events, "a"), "ts"), 0);
        assert_eq!(u(find(events, "b"), "ts"), 300);
        assert_eq!(u(find(events, "b"), "dur"), 200);
        // Single process: every event is pid 1.
        assert!(events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .all(|e| u(e, "pid") == 1));
    }

    #[test]
    fn merged_report_gets_one_pid_per_process_and_aligned_clocks() {
        let server = server_report(2);
        let sites = [site_report(0, 100), site_report(1, 250)];
        let (merged, _) = merge_reports(&server, &[&sites[0], &sites[1]]).expect("merge");
        let trace = chrome_trace(&merged).expect("trace");
        let events = event_list(&trace);

        // One pid per process, named.
        let mut pids: Vec<u64> = events.iter().map(|e| u(e, "pid")).collect();
        pids.sort_unstable();
        pids.dedup();
        assert_eq!(pids, [1, 2, 3]);
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("name")
                    .and_then(Json::as_str)
                    .unwrap()
            })
            .collect();
        assert_eq!(names, ["server", "site[0]", "site[1]"]);

        // The site handshake is pinned to the server's handshake[i].
        assert_eq!(
            u(find(events, "handshake[0]"), "ts"),
            u(
                events
                    .iter()
                    .find(
                        |e| e.get("name").and_then(Json::as_str) == Some("handshake")
                            && u(e, "pid") == 2
                    )
                    .unwrap(),
                "ts"
            ),
        );

        // Site upload spans land inside the server's serve window.
        let serve = find(events, "dbdc_serve");
        let (s0, s1) = (u(serve, "ts"), u(serve, "ts") + u(serve, "dur"));
        for pid in [2u64, 3] {
            let up = events
                .iter()
                .find(|e| {
                    e.get("name").and_then(Json::as_str) == Some("upload") && u(e, "pid") == pid
                })
                .expect("site upload event");
            assert!(u(up, "ts") >= s0 && u(up, "ts") + u(up, "dur") <= s1);
        }

        // Concurrent handshakes sit on their own server tracks.
        assert_eq!(u(find(events, "handshake[0]"), "tid"), 2);
        assert_eq!(u(find(events, "handshake[1]"), "tid"), 3);
    }

    #[test]
    fn negative_offsets_normalize_to_zero_based_time() {
        // Site 0's handshake happens late on its local clock (long
        // local phase), so alignment shifts its prologue before the
        // server's zero; normalization must keep all ts unsigned.
        let server = server_report(1);
        let site = site_report(0, 4_000);
        let (merged, _) = merge_reports(&server, &[&site]).expect("merge");
        let trace = chrome_trace(&merged).expect("trace");
        let events = event_list(&trace);
        let min = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .map(|e| u(e, "ts"))
            .min()
            .unwrap();
        assert_eq!(min, 0);
        // The server root no longer sits at 0: the site's prologue does.
        assert!(u(find(events, "dbdc_serve"), "ts") > 0);
    }

    #[test]
    fn empty_report_is_an_error() {
        assert!(chrome_trace(&RunReport::new("x")).is_err());
    }
}
