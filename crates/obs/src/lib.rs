//! Observability for the DBDC reproduction.
//!
//! The paper's entire evaluation (Figures 9-13) is built on *measured*
//! quantities — per-phase runtimes, representative counts, transmitted
//! bytes — so the reproduction needs a first-class way to capture them.
//! This crate provides the three pieces the rest of the workspace wires
//! together:
//!
//! * [`Span`] — a phase-scoped wall-time tree (`local[site]` with
//!   `cluster`/`extract`/`encode` children, `upload`, `global`,
//!   `broadcast`, `relabel[site]`), each node carrying its thread count
//!   and whether the duration was measured or modeled;
//! * [`CounterSheet`] / [`Counters`] — lock-free work counters for the
//!   hot paths (ε-range queries, distance evaluations, index-node
//!   visits, DSU unions/finds, representatives, wire bytes). Producers
//!   accumulate into plain locals and flush once per operation, so the
//!   uninstrumented path stays at full speed;
//! * [`Histogram`] / [`HistSheet`] — mergeable log-bucketed latency
//!   and batch-size distributions (p50/p90/p99/max) for the quantities
//!   where a mean hides the story: per-query ε-range latency, per-site
//!   phase walls, DSU op batches;
//! * [`Recorder`] — the capture policy. [`NoopRecorder`] hands out no
//!   sheets (instrumented code sees `None` and skips all atomics);
//!   [`RecordingRecorder`] collects named counter scopes, histogram
//!   scopes, and span trees for the report emitters.
//!
//! The emitters produce either a human-readable phase tree
//! ([`Span::render`], [`RunReport::render`]) or the stable
//! [`RunReport`] JSON schema ([`RunReport::to_json_string`]) consumed
//! by `--metrics-out`, the CI validation job, and the bench harness's
//! `BENCH_*.json` files. JSON is hand-rolled in [`json`] because the
//! workspace builds offline with no serde.
//!
//! This crate sits at the bottom of the dependency graph (no
//! dependencies at all) so every layer — index, cluster, core, cli,
//! bench — can report into it.

pub mod counters;
pub mod diff;
pub mod hist;
pub mod json;
pub mod merge;
pub mod recorder;
pub mod report;
pub mod snapshot;
pub mod span;
pub mod timeline;

pub use counters::{CounterSheet, Counters};
pub use diff::{diff_reports, diff_reports_with, DiffOutcome, DiffRow, QUALITY_DROP_TOLERANCE};
pub use hist::{fmt_sample, HistSheet, Histogram};
pub use json::{Json, JsonError};
pub use merge::merge_reports;
pub use recorder::{NoopRecorder, Recorder, RecordingRecorder};
pub use report::{
    ClusterStats, DatasetInfo, EnvFingerprint, NetworkCost, QualityStats, RunReport, SiteStats,
    TransferStats, MIN_SCHEMA_VERSION, SCHEMA_VERSION,
};
pub use snapshot::{delta, SnapshotEngine, SnapshotIdentity, TelemetrySnapshot};
pub use span::Span;
pub use timeline::chrome_trace;

/// Formats a duration as fractional milliseconds, the workspace's one
/// human-facing duration format (replaces the hand-rolled
/// `as_secs_f64() * 1e3` sites that used to be scattered over the CLI).
pub fn fmt_ms(d: std::time::Duration) -> String {
    format!("{:.1} ms", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fmt_ms_is_fractional_milliseconds() {
        assert_eq!(fmt_ms(Duration::from_micros(1500)), "1.5 ms");
        assert_eq!(fmt_ms(Duration::ZERO), "0.0 ms");
        assert_eq!(fmt_ms(Duration::from_secs(2)), "2000.0 ms");
    }
}
