//! The stable `RunReport` schema and its emitters.
//!
//! A [`RunReport`] is the single artifact a DBDC run leaves behind: the
//! phase-span tree, every counter scope, per-site statistics, transfer
//! sizes, modeled network cost, and clustering outcome. The CLI writes
//! it via `--metrics-out`, prints [`RunReport::render`] via `--trace`,
//! the bench harness writes `BENCH_*.json` in the same format, and CI
//! validates it with `dbdc-cli report`.
//!
//! Schema stability rules: key order is fixed (objects serialize in
//! declaration order), every duration is integer microseconds
//! (`*_us`), absent optional sections serialize as `null`, and any
//! shape change must bump [`SCHEMA_VERSION`]. [`RunReport::from_json`]
//! reads every version back to [`MIN_SCHEMA_VERSION`] — sections a past
//! version lacked default to empty — and refuses versions newer than
//! this build.
//!
//! Version history: v1 had no `env` and no `hists`; v2 added both.
//! v3 added distributed-run identity (`role`/`run_id`/`peer`), the
//! optional per-span `start_us` offset, and the wire/fault counter
//! fields. v4 added the optional `quality` section (DBCV, Q_DBDC,
//! per-cluster validity) and the quality counter fields. v5 added the
//! `halo_points` counter field for the partitioned local phase — all
//! of which parse as absent/zero from older reports, so v1-v4 files
//! remain readable.

use std::time::Duration;

use crate::counters::Counters;
use crate::fmt_ms;
use crate::hist::{fmt_sample, Histogram};
use crate::json::Json;
use crate::span::Span;

/// Version of the JSON shape. Bump on any schema change.
pub const SCHEMA_VERSION: u32 = 5;

/// Oldest schema version [`RunReport::from_json`] still reads.
pub const MIN_SCHEMA_VERSION: u32 = 1;

/// Fingerprint of the environment a report was produced in, so two
/// reports can be compared knowing whether the hardware or toolchain
/// moved underneath them. Producers fill in what they can determine;
/// unknown fields hold `"unknown"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvFingerprint {
    /// Available hardware parallelism (`nproc`).
    pub nproc: usize,
    /// `rustc --version` of the producing build.
    pub rustc: String,
    /// Git revision of the producing tree.
    pub git_rev: String,
    /// Checksum of the input dataset(s) the run consumed.
    pub dataset_checksum: String,
}

/// Size and dimensionality of the input dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetInfo {
    /// Number of points.
    pub points: usize,
    /// Dimensionality.
    pub dim: usize,
}

/// Per-site outcome: sizes, phase walls, and that site's counters
/// (local clustering plus relabeling, merged).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteStats {
    /// Site index.
    pub site: usize,
    /// Points held by this site.
    pub points: usize,
    /// Representatives in the site's local model.
    pub representatives: usize,
    /// Encoded local-model bytes uploaded by this site.
    pub bytes_up: usize,
    /// Wall time of the local phase (cluster + extract + encode).
    pub local: Duration,
    /// Wall time of the relabel phase.
    pub relabel: Duration,
    /// Work counters across both phases.
    pub counters: Counters,
}

/// Protocol transfer sizes (real encoded bytes, not modeled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferStats {
    /// Total upload bytes across sites.
    pub bytes_up: usize,
    /// Total broadcast bytes across sites.
    pub bytes_down: usize,
    /// Upload bytes per site.
    pub per_site_bytes_up: Vec<usize>,
    /// Encoded global model size (one copy).
    pub global_model_bytes: usize,
    /// Representatives in the global model.
    pub representatives: usize,
}

/// Modeled cost of the transfers on one link preset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkCost {
    /// Link preset name (`lan`, `wan`, `slow_uplink`).
    pub link: String,
    /// Modeled concurrent-upload time (slowest site).
    pub upload: Duration,
    /// Modeled broadcast time of the global model.
    pub broadcast: Duration,
    /// End-to-end run time including compute and both transfers.
    pub total: Duration,
}

/// Clustering outcome summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterStats {
    /// Number of clusters found.
    pub clusters: usize,
    /// Number of noise points.
    pub noise: usize,
}

/// Clustering quality, measured rather than printed (schema v4).
///
/// DBCV (Moulavi et al., SDM 2014) is always present — it needs no
/// ground truth — while the paper's `Q_DBDC` fields are filled only
/// when a central reference clustering was available to compare
/// against. Merged fleet reports additionally carry each site's local
/// DBCV keyed by peer name.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityStats {
    /// DBCV validity index of the reported clustering, in `[-1, 1]`.
    pub dbcv: f64,
    /// Clusters DBCV scored (size ≥ 2 after singleton demotion).
    pub clusters: usize,
    /// Objects DBCV counted as noise (including singleton clusters).
    pub noise: usize,
    /// Per-cluster DBCV validity, indexed by cluster id.
    pub cluster_validity: Vec<f64>,
    /// `Q_DBDC` under `P^I`, when a central reference exists.
    pub q_dbdc_p1: Option<f64>,
    /// `Q_DBDC` under `P^II`, when a central reference exists.
    pub q_dbdc_p2: Option<f64>,
    /// Local DBCV per site (`peer name → value`), for merged reports.
    pub per_site: Vec<(String, f64)>,
}

impl QualityStats {
    /// A quality block carrying only a DBCV evaluation.
    pub fn from_dbcv(dbcv: f64, clusters: usize, noise: usize, validity: Vec<f64>) -> QualityStats {
        QualityStats {
            dbcv,
            clusters,
            noise,
            cluster_validity: validity,
            q_dbdc_p1: None,
            q_dbdc_p2: None,
            per_site: Vec::new(),
        }
    }
}

/// Everything one run reports. See the module docs for the schema
/// rules.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Schema version ([`SCHEMA_VERSION`] when produced by this build).
    pub schema_version: u32,
    /// CLI subcommand or harness name that produced the report.
    pub command: String,
    /// Which side of a distributed run produced this: `"server"`,
    /// `"site"`, or `"merged"`. `None` for single-process commands.
    pub role: Option<String>,
    /// Operator-chosen identifier shared by every process of one
    /// distributed run; `report merge` refuses to join reports whose
    /// run ids disagree.
    pub run_id: Option<String>,
    /// This process's identity within the run (`"server"`,
    /// `"site[3]"`), unique per run — duplicate peers are how merging
    /// a report with itself is detected.
    pub peer: Option<String>,
    /// Echoed parameters, in display order.
    pub params: Vec<(String, String)>,
    /// Environment fingerprint, when the producer captured one.
    pub env: Option<EnvFingerprint>,
    /// Input dataset, when there is one.
    pub dataset: Option<DatasetInfo>,
    /// Recorded span trees, in arrival order (usually one root).
    pub spans: Vec<Span>,
    /// Counter scopes, in first-request order.
    pub scopes: Vec<(String, Counters)>,
    /// Histogram scopes (latency/size distributions), in first-request
    /// order. Scope names carry the unit suffix (`_ns`, `_ops`).
    pub hists: Vec<(String, Histogram)>,
    /// Per-site statistics (empty for non-distributed commands).
    pub sites: Vec<SiteStats>,
    /// Transfer sizes, for distributed runs.
    pub transfer: Option<TransferStats>,
    /// Modeled network cost per link preset.
    pub network: Vec<NetworkCost>,
    /// Clustering outcome, when the command clusters.
    pub clusters: Option<ClusterStats>,
    /// Measured clustering quality, when the command evaluates it.
    pub quality: Option<QualityStats>,
}

impl RunReport {
    /// An empty report for `command` at the current schema version.
    pub fn new(command: impl Into<String>) -> RunReport {
        RunReport {
            schema_version: SCHEMA_VERSION,
            command: command.into(),
            role: None,
            run_id: None,
            peer: None,
            params: Vec::new(),
            env: None,
            dataset: None,
            spans: Vec::new(),
            scopes: Vec::new(),
            hists: Vec::new(),
            sites: Vec::new(),
            transfer: None,
            network: Vec::new(),
            clusters: None,
            quality: None,
        }
    }

    /// Adds an echoed parameter, builder-style.
    pub fn with_param(mut self, key: impl Into<String>, value: impl ToString) -> RunReport {
        self.params.push((key.into(), value.to_string()));
        self
    }

    /// Sets the distributed-run identity, builder-style. `run_id` may
    /// be `None` when the operator did not pass `--run-id`.
    pub fn with_identity(
        mut self,
        role: impl Into<String>,
        run_id: Option<String>,
        peer: impl Into<String>,
    ) -> RunReport {
        self.role = Some(role.into());
        self.run_id = run_id;
        self.peer = Some(peer.into());
        self
    }

    /// The report as a JSON tree.
    pub fn to_json(&self) -> Json {
        let opt_str = |s: &Option<String>| match s {
            Some(s) => Json::str(s),
            None => Json::Null,
        };
        Json::obj([
            ("schema_version", Json::num_u64(self.schema_version as u64)),
            ("command", Json::str(&self.command)),
            ("role", opt_str(&self.role)),
            ("run_id", opt_str(&self.run_id)),
            ("peer", opt_str(&self.peer)),
            (
                "params",
                Json::Obj(
                    self.params
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::str(v)))
                        .collect(),
                ),
            ),
            (
                "env",
                match &self.env {
                    Some(e) => Json::obj([
                        ("nproc", Json::num_u64(e.nproc as u64)),
                        ("rustc", Json::str(&e.rustc)),
                        ("git_rev", Json::str(&e.git_rev)),
                        ("dataset_checksum", Json::str(&e.dataset_checksum)),
                    ]),
                    None => Json::Null,
                },
            ),
            (
                "dataset",
                match &self.dataset {
                    Some(d) => Json::obj([
                        ("points", Json::num_u64(d.points as u64)),
                        ("dim", Json::num_u64(d.dim as u64)),
                    ]),
                    None => Json::Null,
                },
            ),
            (
                "spans",
                Json::Arr(self.spans.iter().map(Span::to_json).collect()),
            ),
            (
                "counters",
                Json::Obj(
                    self.scopes
                        .iter()
                        .map(|(name, c)| (name.clone(), counters_to_json(c)))
                        .collect(),
                ),
            ),
            (
                "hists",
                Json::Obj(
                    self.hists
                        .iter()
                        .map(|(name, h)| (name.clone(), h.to_json()))
                        .collect(),
                ),
            ),
            (
                "sites",
                Json::Arr(
                    self.sites
                        .iter()
                        .map(|s| {
                            Json::obj([
                                ("site", Json::num_u64(s.site as u64)),
                                ("points", Json::num_u64(s.points as u64)),
                                ("representatives", Json::num_u64(s.representatives as u64)),
                                ("bytes_up", Json::num_u64(s.bytes_up as u64)),
                                ("local_us", Json::num_u64(s.local.as_micros() as u64)),
                                ("relabel_us", Json::num_u64(s.relabel.as_micros() as u64)),
                                ("counters", counters_to_json(&s.counters)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "transfer",
                match &self.transfer {
                    Some(t) => Json::obj([
                        ("bytes_up", Json::num_u64(t.bytes_up as u64)),
                        ("bytes_down", Json::num_u64(t.bytes_down as u64)),
                        (
                            "per_site_bytes_up",
                            Json::Arr(
                                t.per_site_bytes_up
                                    .iter()
                                    .map(|&b| Json::num_u64(b as u64))
                                    .collect(),
                            ),
                        ),
                        (
                            "global_model_bytes",
                            Json::num_u64(t.global_model_bytes as u64),
                        ),
                        ("representatives", Json::num_u64(t.representatives as u64)),
                    ]),
                    None => Json::Null,
                },
            ),
            (
                "network",
                Json::Arr(
                    self.network
                        .iter()
                        .map(|n| {
                            Json::obj([
                                ("link", Json::str(&n.link)),
                                ("upload_us", Json::num_u64(n.upload.as_micros() as u64)),
                                (
                                    "broadcast_us",
                                    Json::num_u64(n.broadcast.as_micros() as u64),
                                ),
                                ("total_us", Json::num_u64(n.total.as_micros() as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "clusters",
                match &self.clusters {
                    Some(c) => Json::obj([
                        ("clusters", Json::num_u64(c.clusters as u64)),
                        ("noise", Json::num_u64(c.noise as u64)),
                    ]),
                    None => Json::Null,
                },
            ),
            (
                "quality",
                match &self.quality {
                    Some(q) => {
                        let opt_num = |v: &Option<f64>| match v {
                            Some(v) => Json::Num(*v),
                            None => Json::Null,
                        };
                        Json::obj([
                            ("dbcv", Json::Num(q.dbcv)),
                            ("clusters", Json::num_u64(q.clusters as u64)),
                            ("noise", Json::num_u64(q.noise as u64)),
                            (
                                "cluster_validity",
                                Json::Arr(
                                    q.cluster_validity.iter().map(|&v| Json::Num(v)).collect(),
                                ),
                            ),
                            ("q_dbdc_p1", opt_num(&q.q_dbdc_p1)),
                            ("q_dbdc_p2", opt_num(&q.q_dbdc_p2)),
                            (
                                "per_site",
                                Json::Obj(
                                    q.per_site
                                        .iter()
                                        .map(|(peer, v)| (peer.clone(), Json::Num(*v)))
                                        .collect(),
                                ),
                            ),
                        ])
                    }
                    None => Json::Null,
                },
            ),
        ])
    }

    /// The report as the exact bytes `--metrics-out` writes.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Rebuilds and validates a report from parsed JSON. Accepts every
    /// schema version from [`MIN_SCHEMA_VERSION`] to [`SCHEMA_VERSION`]
    /// — sections an older version lacked (v1: `env`, `hists`) default
    /// to empty — and rejects unknown *future* versions and malformed
    /// sections with a message naming the offending field.
    pub fn from_json(v: &Json) -> Result<RunReport, String> {
        let schema_version = v
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("report missing \"schema_version\"")? as u32;
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&schema_version) {
            return Err(format!(
                "unsupported schema_version {schema_version} \
                 (this build reads {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION})"
            ));
        }
        let command = v
            .get("command")
            .and_then(Json::as_str)
            .ok_or("report missing \"command\"")?
            .to_string();
        // Distributed identity arrived in v3; missing or null in older
        // reports simply means "not a distributed process".
        let opt_str = |key: &str| v.get(key).and_then(Json::as_str).map(str::to_string);
        let role = opt_str("role");
        let run_id = opt_str("run_id");
        let peer = opt_str("peer");
        let params = match v.get("params") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(k, val)| {
                    val.as_str()
                        .map(|s| (k.clone(), s.to_string()))
                        .ok_or_else(|| format!("param {k:?} is not a string"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("report missing \"params\" object".into()),
        };
        let env = match v.get("env") {
            Some(Json::Null) | None => None,
            Some(e) => Some(EnvFingerprint {
                nproc: req_usize(e, "nproc", "env")?,
                rustc: req_str(e, "rustc", "env")?,
                git_rev: req_str(e, "git_rev", "env")?,
                dataset_checksum: req_str(e, "dataset_checksum", "env")?,
            }),
        };
        let dataset = match v.get("dataset") {
            Some(Json::Null) | None => None,
            Some(d) => Some(DatasetInfo {
                points: req_usize(d, "points", "dataset")?,
                dim: req_usize(d, "dim", "dataset")?,
            }),
        };
        let spans = v
            .get("spans")
            .and_then(Json::as_arr)
            .ok_or("report missing \"spans\" array")?
            .iter()
            .map(Span::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let scopes = match v.get("counters") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(name, c)| counters_from_json(c).map(|c| (name.clone(), c)))
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("report missing \"counters\" object".into()),
        };
        // v1 reports predate histograms; absence means "none recorded".
        let hists = match v.get("hists") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(name, h)| {
                    Histogram::from_json(h)
                        .map(|h| (name.clone(), h))
                        .map_err(|e| format!("hist {name:?}: {e}"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            Some(Json::Null) | None => Vec::new(),
            Some(_) => return Err("report \"hists\" is not an object".into()),
        };
        let sites = v
            .get("sites")
            .and_then(Json::as_arr)
            .ok_or("report missing \"sites\" array")?
            .iter()
            .map(|s| {
                Ok(SiteStats {
                    site: req_usize(s, "site", "site entry")?,
                    points: req_usize(s, "points", "site entry")?,
                    representatives: req_usize(s, "representatives", "site entry")?,
                    bytes_up: req_usize(s, "bytes_up", "site entry")?,
                    local: req_duration(s, "local_us", "site entry")?,
                    relabel: req_duration(s, "relabel_us", "site entry")?,
                    counters: counters_from_json(
                        s.get("counters").ok_or("site entry missing \"counters\"")?,
                    )?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let transfer = match v.get("transfer") {
            Some(Json::Null) | None => None,
            Some(t) => Some(TransferStats {
                bytes_up: req_usize(t, "bytes_up", "transfer")?,
                bytes_down: req_usize(t, "bytes_down", "transfer")?,
                per_site_bytes_up: t
                    .get("per_site_bytes_up")
                    .and_then(Json::as_arr)
                    .ok_or("transfer missing \"per_site_bytes_up\"")?
                    .iter()
                    .map(|b| {
                        b.as_u64()
                            .map(|b| b as usize)
                            .ok_or_else(|| "per_site_bytes_up entry not an integer".to_string())
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                global_model_bytes: req_usize(t, "global_model_bytes", "transfer")?,
                representatives: req_usize(t, "representatives", "transfer")?,
            }),
        };
        let network = v
            .get("network")
            .and_then(Json::as_arr)
            .ok_or("report missing \"network\" array")?
            .iter()
            .map(|n| {
                Ok(NetworkCost {
                    link: n
                        .get("link")
                        .and_then(Json::as_str)
                        .ok_or("network entry missing \"link\"")?
                        .to_string(),
                    upload: req_duration(n, "upload_us", "network entry")?,
                    broadcast: req_duration(n, "broadcast_us", "network entry")?,
                    total: req_duration(n, "total_us", "network entry")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let clusters = match v.get("clusters") {
            Some(Json::Null) | None => None,
            Some(c) => Some(ClusterStats {
                clusters: req_usize(c, "clusters", "clusters")?,
                noise: req_usize(c, "noise", "clusters")?,
            }),
        };
        // The quality section arrived in v4; missing or null in older
        // reports means "quality was not measured".
        let quality = match v.get("quality") {
            Some(Json::Null) | None => None,
            Some(q) => {
                let opt_num = |key: &str| match q.get(key) {
                    Some(Json::Null) | None => Ok(None),
                    Some(v) => v
                        .as_f64()
                        .map(Some)
                        .ok_or_else(|| format!("quality {key:?} is not a number")),
                };
                Some(QualityStats {
                    dbcv: q
                        .get("dbcv")
                        .and_then(Json::as_f64)
                        .ok_or("quality missing \"dbcv\"")?,
                    clusters: req_usize(q, "clusters", "quality")?,
                    noise: req_usize(q, "noise", "quality")?,
                    cluster_validity: q
                        .get("cluster_validity")
                        .and_then(Json::as_arr)
                        .ok_or("quality missing \"cluster_validity\"")?
                        .iter()
                        .map(|v| {
                            v.as_f64()
                                .ok_or_else(|| "cluster_validity entry not a number".to_string())
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                    q_dbdc_p1: opt_num("q_dbdc_p1")?,
                    q_dbdc_p2: opt_num("q_dbdc_p2")?,
                    per_site: match q.get("per_site") {
                        Some(Json::Obj(pairs)) => pairs
                            .iter()
                            .map(|(peer, v)| {
                                v.as_f64().map(|v| (peer.clone(), v)).ok_or_else(|| {
                                    format!("per_site quality {peer:?} is not a number")
                                })
                            })
                            .collect::<Result<Vec<_>, _>>()?,
                        Some(Json::Null) | None => Vec::new(),
                        Some(_) => return Err("quality \"per_site\" is not an object".into()),
                    },
                })
            }
        };
        Ok(RunReport {
            schema_version,
            command,
            role,
            run_id,
            peer,
            params,
            env,
            dataset,
            spans,
            scopes,
            hists,
            sites,
            transfer,
            network,
            clusters,
            quality,
        })
    }

    /// Parses and validates a report from JSON text.
    pub fn parse(text: &str) -> Result<RunReport, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        RunReport::from_json(&v)
    }

    /// Finds a span by name across all recorded trees.
    pub fn find_span(&self, name: &str) -> Option<&Span> {
        self.spans.iter().find_map(|s| s.find(name))
    }

    /// Renders the human-readable report `--trace` prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== {} report (schema v{}) ==\n",
            self.command, self.schema_version
        ));
        if self.role.is_some() || self.run_id.is_some() || self.peer.is_some() {
            let unset = "-".to_string();
            out.push_str(&format!(
                "identity: role {}, run {}, peer {}\n",
                self.role.as_ref().unwrap_or(&unset),
                self.run_id.as_ref().unwrap_or(&unset),
                self.peer.as_ref().unwrap_or(&unset),
            ));
        }
        if !self.params.is_empty() {
            let echoed: Vec<String> = self
                .params
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            out.push_str(&format!("params: {}\n", echoed.join(" ")));
        }
        if let Some(e) = &self.env {
            out.push_str(&format!(
                "env: nproc {}, {}, rev {}, data {}\n",
                e.nproc, e.rustc, e.git_rev, e.dataset_checksum
            ));
        }
        if let Some(d) = &self.dataset {
            out.push_str(&format!("dataset: {} points, dim {}\n", d.points, d.dim));
        }
        if !self.spans.is_empty() {
            out.push_str("phases:\n");
            for span in &self.spans {
                for line in span.render().lines() {
                    out.push_str(&format!("  {line}\n"));
                }
            }
        }
        if !self.scopes.is_empty() {
            out.push_str("counters:\n");
            for (name, c) in &self.scopes {
                let nonzero: Vec<String> = Counters::FIELDS
                    .iter()
                    .zip(c.values())
                    .filter(|(_, v)| *v != 0)
                    .map(|(f, v)| format!("{f}={v}"))
                    .collect();
                let body = if nonzero.is_empty() {
                    "(idle)".to_string()
                } else {
                    nonzero.join(" ")
                };
                out.push_str(&format!("  {name:<12} {body}\n"));
            }
        }
        if !self.hists.is_empty() {
            out.push_str(&render_hists(&self.hists));
        }
        if !self.sites.is_empty() {
            out.push_str("sites:\n");
            for s in &self.sites {
                out.push_str(&format!(
                    "  site {}: {} points, {} reps, {} B up, local {}, relabel {}\n",
                    s.site,
                    s.points,
                    s.representatives,
                    s.bytes_up,
                    fmt_ms(s.local),
                    fmt_ms(s.relabel),
                ));
            }
        }
        if let Some(t) = &self.transfer {
            out.push_str(&format!(
                "transfer: up {} B {:?}, global model {} B, down {} B, {} representatives\n",
                t.bytes_up,
                t.per_site_bytes_up,
                t.global_model_bytes,
                t.bytes_down,
                t.representatives,
            ));
        }
        if !self.network.is_empty() {
            out.push_str("network (modeled):\n");
            for n in &self.network {
                out.push_str(&format!(
                    "  {:<12} upload {} + broadcast {} -> total {}\n",
                    n.link,
                    fmt_ms(n.upload),
                    fmt_ms(n.broadcast),
                    fmt_ms(n.total),
                ));
            }
        }
        if let Some(c) = &self.clusters {
            out.push_str(&format!(
                "clusters: {} clusters, {} noise points\n",
                c.clusters, c.noise
            ));
        }
        if let Some(q) = &self.quality {
            out.push_str(&format!(
                "quality: DBCV {:+.4} over {} clusters, {} noise",
                q.dbcv, q.clusters, q.noise
            ));
            if let (Some(p1), Some(p2)) = (q.q_dbdc_p1, q.q_dbdc_p2) {
                out.push_str(&format!(", Q_DBDC P^I {p1:.4} P^II {p2:.4}"));
            }
            out.push('\n');
            for (peer, v) in &q.per_site {
                out.push_str(&format!("  {peer}: local DBCV {v:+.4}\n"));
            }
        }
        out
    }
}

/// Renders histogram scopes as the table `render` and the CLI `--hist`
/// flag print: one row per scope with count, p50/p90/p99, and max,
/// formatted by the scope's unit suffix via [`fmt_sample`].
pub fn render_hists(hists: &[(String, Histogram)]) -> String {
    let mut out = String::new();
    out.push_str("hists:\n");
    let width = hists.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    for (name, h) in hists {
        out.push_str(&format!(
            "  {name:<width$}  n={} p50={} p90={} p99={} max={}\n",
            h.count(),
            fmt_sample(name, h.p50()),
            fmt_sample(name, h.p90()),
            fmt_sample(name, h.p99()),
            fmt_sample(name, h.max()),
        ));
    }
    out
}

/// Counters as a JSON object, all fields in [`Counters::FIELDS`]
/// order.
pub fn counters_to_json(c: &Counters) -> Json {
    Json::Obj(
        Counters::FIELDS
            .iter()
            .zip(c.values())
            .map(|(name, v)| (name.to_string(), Json::num_u64(v)))
            .collect(),
    )
}

/// Rebuilds counters from [`counters_to_json`] output. The nine
/// original fields are required; the wire/fault fields (added in
/// schema v3) default to zero when absent, so v1/v2 counter objects
/// still parse.
pub fn counters_from_json(v: &Json) -> Result<Counters, String> {
    let field = |name: &str| {
        v.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("counters missing {name:?}"))
    };
    let opt = |name: &str| v.get(name).and_then(Json::as_u64).unwrap_or(0);
    Ok(Counters {
        range_queries: field("range_queries")?,
        knn_queries: field("knn_queries")?,
        distance_evals: field("distance_evals")?,
        node_visits: field("node_visits")?,
        dsu_unions: field("dsu_unions")?,
        dsu_finds: field("dsu_finds")?,
        representatives: field("representatives")?,
        bytes_sent: field("bytes_sent")?,
        bytes_received: field("bytes_received")?,
        frames_sent: opt("frames_sent"),
        frames_received: opt("frames_received"),
        wire_bytes_sent: opt("wire_bytes_sent"),
        wire_bytes_received: opt("wire_bytes_received"),
        checksum_failures: opt("checksum_failures"),
        truncated_rejects: opt("truncated_rejects"),
        oversize_rejects: opt("oversize_rejects"),
        handshake_rejections: opt("handshake_rejections"),
        retries: opt("retries"),
        backoff_wait_ns: opt("backoff_wait_ns"),
        faults_dropped: opt("faults_dropped"),
        faults_delayed: opt("faults_delayed"),
        faults_truncated: opt("faults_truncated"),
        faults_bitflipped: opt("faults_bitflipped"),
        mst_edges: opt("mst_edges"),
        quality_perfect: opt("quality_perfect"),
        quality_zero: opt("quality_zero"),
        quality_noise_both: opt("quality_noise_both"),
        quality_noise_distr_only: opt("quality_noise_distr_only"),
        quality_noise_central_only: opt("quality_noise_central_only"),
        halo_points: opt("halo_points"),
    })
}

fn req_usize(v: &Json, key: &str, what: &str) -> Result<usize, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .map(|n| n as usize)
        .ok_or_else(|| format!("{what} missing {key:?}"))
}

fn req_str(v: &Json, key: &str, what: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("{what} missing {key:?}"))
}

fn req_duration(v: &Json, key: &str, what: &str) -> Result<Duration, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .map(Duration::from_micros)
        .ok_or_else(|| format!("{what} missing {key:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        let mut root = Span::new("dbdc", Duration::from_micros(10_000));
        let mut local = Span::new("local[0]", Duration::from_micros(4_000));
        local.push(Span::new("cluster", Duration::from_micros(3_000)));
        local.push(Span::new("extract", Duration::from_micros(700)));
        local.push(Span::new("encode", Duration::from_micros(300)));
        root.push(local);
        root.push(Span::modeled("upload", Duration::from_micros(120)));
        root.push(Span::new("global", Duration::from_micros(800)));
        root.push(Span::modeled("broadcast", Duration::from_micros(60)));
        root.push(Span::new("relabel[0]", Duration::from_micros(500)));

        let local_counters = Counters {
            range_queries: 40,
            distance_evals: 1600,
            representatives: 6,
            bytes_sent: 280,
            ..Counters::default()
        };
        RunReport {
            schema_version: SCHEMA_VERSION,
            command: "run".into(),
            role: Some("server".into()),
            run_id: Some("run-7".into()),
            peer: Some("server".into()),
            params: vec![("eps".into(), "1.2".into()), ("sites".into(), "1".into())],
            env: Some(EnvFingerprint {
                nproc: 8,
                rustc: "rustc 1.75.0".into(),
                git_rev: "abc1234".into(),
                dataset_checksum: "11deadbeef".into(),
            }),
            dataset: Some(DatasetInfo { points: 40, dim: 2 }),
            spans: vec![root],
            scopes: vec![
                ("local[0]".into(), local_counters),
                (
                    "global".into(),
                    Counters {
                        range_queries: 6,
                        distance_evals: 36,
                        bytes_received: 280,
                        bytes_sent: 300,
                        ..Counters::default()
                    },
                ),
            ],
            hists: vec![(
                "local[0]/eps_range_ns".into(),
                Histogram::from_values([900, 1_200, 1_500, 40_000]),
            )],
            sites: vec![SiteStats {
                site: 0,
                points: 40,
                representatives: 6,
                bytes_up: 280,
                local: Duration::from_micros(4_000),
                relabel: Duration::from_micros(500),
                counters: local_counters,
            }],
            transfer: Some(TransferStats {
                bytes_up: 280,
                bytes_down: 300,
                per_site_bytes_up: vec![280],
                global_model_bytes: 300,
                representatives: 6,
            }),
            network: vec![NetworkCost {
                link: "lan".into(),
                upload: Duration::from_micros(120),
                broadcast: Duration::from_micros(60),
                total: Duration::from_micros(10_180),
            }],
            clusters: Some(ClusterStats {
                clusters: 2,
                noise: 3,
            }),
            quality: Some(QualityStats {
                dbcv: 0.8125,
                clusters: 2,
                noise: 3,
                cluster_validity: vec![0.875, 0.75],
                q_dbdc_p1: Some(0.96875),
                q_dbdc_p2: Some(0.9375),
                per_site: vec![("site[0]".into(), 0.78125)],
            }),
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let report = sample();
        let text = report.to_json_string();
        let back = RunReport::parse(&text).expect("own output parses");
        assert_eq!(back, report);
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn minimal_report_round_trips() {
        let report = RunReport::new("generate").with_param("set", "a");
        let back = RunReport::parse(&report.to_json_string()).unwrap();
        assert_eq!(back, report);
        assert!(back.dataset.is_none());
        assert!(back.transfer.is_none());
        assert!(back.clusters.is_none());
        assert!(back.quality.is_none());
    }

    #[test]
    fn rejects_other_schema_versions() {
        let mut v = sample().to_json();
        if let Json::Obj(pairs) = &mut v {
            pairs[0].1 = Json::num_u64(99);
        }
        let err = RunReport::from_json(&v).unwrap_err();
        assert!(err.contains("schema_version 99"), "{err}");
    }

    #[test]
    fn reads_v1_reports_without_env_or_hists() {
        // A v1 report has no "env" and no "hists" keys at all.
        let mut v = sample().to_json();
        if let Json::Obj(pairs) = &mut v {
            pairs[0].1 = Json::num_u64(1);
            pairs.retain(|(k, _)| {
                k != "env"
                    && k != "hists"
                    && k != "role"
                    && k != "run_id"
                    && k != "peer"
                    && k != "quality"
            });
        }
        let back = RunReport::from_json(&v).expect("v1 still parses");
        assert_eq!(back.schema_version, 1);
        assert!(back.env.is_none());
        assert!(back.hists.is_empty());
        assert!(back.role.is_none() && back.run_id.is_none() && back.peer.is_none());
        // Everything a v1 report did carry survives.
        assert_eq!(back.scopes.len(), 2);
        assert_eq!(back.sites.len(), 1);
    }

    #[test]
    fn reads_v2_reports_without_identity_or_wire_counters() {
        // A v2 report: no role/run_id/peer, nine-field counter
        // objects, five-key spans.
        let mut v = sample().to_json();
        if let Json::Obj(pairs) = &mut v {
            pairs[0].1 = Json::num_u64(2);
            pairs.retain(|(k, _)| k != "role" && k != "run_id" && k != "peer" && k != "quality");
            for (k, val) in pairs.iter_mut() {
                if k == "counters" {
                    if let Json::Obj(scopes) = val {
                        for (_, c) in scopes.iter_mut() {
                            if let Json::Obj(fields) = c {
                                fields.truncate(Counters::CORE_FIELDS);
                            }
                        }
                    }
                }
            }
        }
        let back = RunReport::from_json(&v).expect("v2 still parses");
        assert_eq!(back.schema_version, 2);
        assert!(back.role.is_none());
        assert_eq!(back.scopes[0].1.range_queries, 40);
        assert_eq!(back.scopes[0].1.frames_sent, 0);
        assert!(back.quality.is_none());
    }

    #[test]
    fn reads_v3_reports_without_quality() {
        // A v3 report: no "quality" key, 23-field counter objects.
        let mut v = sample().to_json();
        if let Json::Obj(pairs) = &mut v {
            pairs[0].1 = Json::num_u64(3);
            pairs.retain(|(k, _)| k != "quality");
            for (k, val) in pairs.iter_mut() {
                if k == "counters" {
                    if let Json::Obj(scopes) = val {
                        for (_, c) in scopes.iter_mut() {
                            if let Json::Obj(fields) = c {
                                fields.retain(|(f, _)| {
                                    !f.starts_with("quality_") && f != "mst_edges"
                                });
                            }
                        }
                    }
                }
            }
        }
        let back = RunReport::from_json(&v).expect("v3 still parses");
        assert_eq!(back.schema_version, 3);
        assert!(back.quality.is_none());
        assert_eq!(back.scopes[0].1.range_queries, 40);
        assert_eq!(back.scopes[0].1.quality_perfect, 0);
    }

    #[test]
    fn rejects_malformed_sections() {
        let mut v = sample().to_json();
        if let Json::Obj(pairs) = &mut v {
            pairs.retain(|(k, _)| k != "spans");
        }
        let err = RunReport::from_json(&v).unwrap_err();
        assert!(err.contains("spans"), "{err}");
    }

    #[test]
    fn find_span_searches_all_trees() {
        let report = sample();
        assert!(report.find_span("encode").is_some());
        assert!(report.find_span("broadcast").unwrap().modeled);
        assert!(report.find_span("nope").is_none());
    }

    #[test]
    fn render_mentions_every_section() {
        let text = sample().render();
        for needle in [
            "== run report (schema v5) ==",
            "identity: role server, run run-7, peer server",
            "eps=1.2",
            "env: nproc 8, rustc 1.75.0, rev abc1234, data 11deadbeef",
            "dataset: 40 points, dim 2",
            "phases:",
            "local[0]",
            "counters:",
            "range_queries=40",
            "hists:",
            "local[0]/eps_range_ns",
            "n=4",
            "site 0: 40 points",
            "transfer: up 280 B [280]",
            "network (modeled):",
            "lan",
            "clusters: 2 clusters, 3 noise points",
            "quality: DBCV +0.8125 over 2 clusters, 3 noise, Q_DBDC P^I 0.9688 P^II 0.9375",
            "site[0]: local DBCV +0.7812",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
