//! Live telemetry snapshots over a running [`RecordingRecorder`].
//!
//! Everything else in this crate is post-mortem: reports are assembled
//! after the run ends. A [`TelemetrySnapshot`] is the live counterpart —
//! one point-in-time reading of every counter scope and histogram a
//! recorder holds, plus process identity and uptime, taken with the same
//! relaxed atomic loads the exit-time report uses. Instrumented code is
//! untouched: the snapshot engine only *reads* the sheets the recorder
//! already hands out, and a process running with [`NoopRecorder`]
//! (no `--trace`/`--metrics-out`/`--admin-addr`) never allocates a sheet
//! at all, so the zero-cost-when-off property is preserved.
//!
//! Two consumers sit on top:
//!
//! * the `/metrics` admin endpoint renders a snapshot in Prometheus
//!   text exposition format ([`TelemetrySnapshot::to_prometheus`]) —
//!   counters as monotonic `_total` series, histograms as cumulative
//!   `le`-buckets plus `_sum`/`_count`;
//! * `dbdc-cli watch` scrapes that text, parses it back
//!   ([`TelemetrySnapshot::from_prometheus`], an exact inverse), and
//!   derives rates via [`delta`].
//!
//! **Monotonicity.** Counter sheets only ever `fetch_add` non-negative
//! amounts with relaxed ordering. Relaxed atomics still guarantee a
//! single-location modification order, and loads from one location never
//! travel backwards along it — so two snapshots of the same live sheet
//! taken in order satisfy `prev[cell] <= cur[cell]` for every cell, and
//! [`delta`] is non-negative per cell without any cross-location
//! synchronization. What relaxed ordering does *not* guarantee is
//! cross-cell consistency: a snapshot may see a frame counted in
//! `frames_sent` before its bytes land in `wire_bytes_sent`. Deltas are
//! therefore exact per cell but only approximately simultaneous across
//! cells — fine for rates, which is all they feed.
//!
//! [`NoopRecorder`]: crate::NoopRecorder

use std::sync::Arc;
use std::time::Instant;

use crate::counters::Counters;
use crate::hist::{bucket_bounds, bucket_of, Histogram};
use crate::recorder::RecordingRecorder;

/// Who the snapshotting process is, mirroring the RunReport identity
/// triple (`role`/`run_id`/`peer`) so a scraped snapshot can be joined
/// with exit-time reports from the same fleet.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SnapshotIdentity {
    /// `"server"`, `"site"`, or `"proxy"`.
    pub role: Option<String>,
    /// The fleet-shared `--run-id`, if one was given.
    pub run_id: Option<String>,
    /// The per-process peer name (`"server"`, `"site[3]"`, …).
    pub peer: Option<String>,
}

/// One point-in-time reading of a recorder: all counter scopes, all
/// non-empty histograms, identity, and uptime.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Process identity, for joining with fleet reports.
    pub identity: SnapshotIdentity,
    /// Microseconds since the engine was created (process start, in
    /// practice). Monotonic across snapshots from one engine.
    pub uptime_us: u64,
    /// Counter scopes with their totals, in first-request order.
    pub counters: Vec<(String, Counters)>,
    /// Histogram scopes with their distributions, in first-request
    /// order, empty scopes skipped.
    pub hists: Vec<(String, Histogram)>,
}

/// Takes [`TelemetrySnapshot`]s of one [`RecordingRecorder`].
///
/// Owns an `Arc` of the recorder so admin-listener threads can hold an
/// engine with a `'static` lifetime while the run continues to record.
#[derive(Debug, Clone)]
pub struct SnapshotEngine {
    rec: Arc<RecordingRecorder>,
    started: Instant,
    identity: SnapshotIdentity,
}

impl SnapshotEngine {
    /// An engine over `rec`, with uptime counted from now.
    pub fn new(rec: Arc<RecordingRecorder>) -> SnapshotEngine {
        SnapshotEngine {
            rec,
            started: Instant::now(),
            identity: SnapshotIdentity::default(),
        }
    }

    /// Stamps the identity triple into every snapshot taken.
    pub fn with_identity(
        mut self,
        role: &str,
        run_id: Option<String>,
        peer: &str,
    ) -> SnapshotEngine {
        self.identity = SnapshotIdentity {
            role: Some(role.to_string()),
            run_id,
            peer: Some(peer.to_string()),
        };
        self
    }

    /// The recorder this engine reads.
    pub fn recorder(&self) -> &Arc<RecordingRecorder> {
        &self.rec
    }

    /// The current totals as a plain value.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            identity: self.identity.clone(),
            uptime_us: u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX),
            counters: self.rec.scopes(),
            hists: self.rec.hist_scopes(),
        }
    }
}

/// What happened between two snapshots of the **same engine**, taken in
/// order: counters subtract per cell (saturating — exact and
/// non-negative by per-location monotonicity, see the module docs),
/// histograms subtract bucket-wise via [`Histogram::diff_from`], and
/// scopes that first appeared in `cur` count in full. `uptime_us`
/// becomes the window length, which is what turns the counter cells
/// into rates.
pub fn delta(prev: &TelemetrySnapshot, cur: &TelemetrySnapshot) -> TelemetrySnapshot {
    let counters = cur
        .counters
        .iter()
        .map(|(scope, c)| {
            let base = prev
                .counters
                .iter()
                .find(|(s, _)| s == scope)
                .map(|(_, p)| *p)
                .unwrap_or_default();
            let mut v = c.values();
            for (cell, old) in v.iter_mut().zip(base.values()) {
                *cell = cell.saturating_sub(old);
            }
            (scope.clone(), Counters::from_values(v))
        })
        .collect();
    let hists = cur
        .hists
        .iter()
        .map(|(scope, h)| {
            let base = prev
                .hists
                .iter()
                .find(|(s, _)| s == scope)
                .map(|(_, p)| p.clone())
                .unwrap_or_default();
            (scope.clone(), h.diff_from(&base))
        })
        .collect();
    TelemetrySnapshot {
        identity: cur.identity.clone(),
        uptime_us: cur.uptime_us.saturating_sub(prev.uptime_us),
        counters,
        hists,
    }
}

/// Escapes a Prometheus label value: backslash, double quote, newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

/// Inverse of [`escape_label`].
fn unescape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(ch) = chars.next() {
        if ch == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(ch);
        }
    }
    out
}

impl TelemetrySnapshot {
    /// The counter totals for one scope, if present.
    pub fn counters_for(&self, scope: &str) -> Option<&Counters> {
        self.counters
            .iter()
            .find(|(s, _)| s == scope)
            .map(|(_, c)| c)
    }

    /// The histogram for one scope, if present (and non-empty).
    pub fn hist_for(&self, scope: &str) -> Option<&Histogram> {
        self.hists.iter().find(|(s, _)| s == scope).map(|(_, h)| h)
    }

    /// Field-wise sum of every counter scope.
    pub fn total(&self) -> Counters {
        Counters::sum(self.counters.iter().map(|(_, c)| c))
    }

    /// Renders the snapshot in Prometheus text exposition format
    /// (version 0.0.4). Counter fields become one `_total` family each
    /// (`dbdc_frames_sent_total{scope="net/server"} 42`), with **every**
    /// field emitted for **every** scope — including zeros — so the
    /// scope list survives a round trip. Histograms become one shared
    /// `dbdc_hist` family (`_bucket` samples cumulative over the fixed
    /// bucket scheme's upper bounds, plus `_sum`/`_count`), with the
    /// exact side-tracked extremes in the non-standard `dbdc_hist_min`/
    /// `dbdc_hist_max` gauges so [`from_prometheus`] is an exact
    /// inverse. Identity rides in `dbdc_process_info` labels, uptime in
    /// `dbdc_uptime_us`.
    ///
    /// [`from_prometheus`]: TelemetrySnapshot::from_prometheus
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        out.push_str("# TYPE dbdc_process_info gauge\n");
        out.push_str(&format!(
            "dbdc_process_info{{role=\"{}\",run_id=\"{}\",peer=\"{}\"}} 1\n",
            escape_label(self.identity.role.as_deref().unwrap_or("")),
            escape_label(self.identity.run_id.as_deref().unwrap_or("")),
            escape_label(self.identity.peer.as_deref().unwrap_or("")),
        ));
        out.push_str("# TYPE dbdc_uptime_us gauge\n");
        out.push_str(&format!("dbdc_uptime_us {}\n", self.uptime_us));

        for (f, field) in Counters::FIELDS.iter().enumerate() {
            out.push_str(&format!("# TYPE dbdc_{field}_total counter\n"));
            for (scope, c) in &self.counters {
                out.push_str(&format!(
                    "dbdc_{field}_total{{scope=\"{}\"}} {}\n",
                    escape_label(scope),
                    c.values()[f]
                ));
            }
        }

        if !self.hists.is_empty() {
            out.push_str("# TYPE dbdc_hist histogram\n");
            for (scope, h) in &self.hists {
                let scope_esc = escape_label(scope);
                let mut cum = 0u64;
                for (i, c) in h.nonzero_buckets() {
                    cum += c;
                    let (_, hi) = bucket_bounds(i);
                    out.push_str(&format!(
                        "dbdc_hist_bucket{{scope=\"{scope_esc}\",le=\"{hi}\"}} {cum}\n"
                    ));
                }
                out.push_str(&format!(
                    "dbdc_hist_bucket{{scope=\"{scope_esc}\",le=\"+Inf\"}} {}\n",
                    h.count()
                ));
                out.push_str(&format!(
                    "dbdc_hist_sum{{scope=\"{scope_esc}\"}} {}\n",
                    h.sum()
                ));
                out.push_str(&format!(
                    "dbdc_hist_count{{scope=\"{scope_esc}\"}} {}\n",
                    h.count()
                ));
            }
            out.push_str("# TYPE dbdc_hist_min gauge\n");
            for (scope, h) in &self.hists {
                out.push_str(&format!(
                    "dbdc_hist_min{{scope=\"{}\"}} {}\n",
                    escape_label(scope),
                    h.min()
                ));
            }
            out.push_str("# TYPE dbdc_hist_max gauge\n");
            for (scope, h) in &self.hists {
                out.push_str(&format!(
                    "dbdc_hist_max{{scope=\"{}\"}} {}\n",
                    escape_label(scope),
                    h.max()
                ));
            }
        }
        out
    }

    /// Parses [`to_prometheus`] output back into a snapshot — the exact
    /// inverse: counters, scope order, histograms (bucket-exact, with
    /// the min/max gauges restoring the exact extremes), identity, and
    /// uptime all round-trip. Unknown families are ignored so the
    /// parser tolerates forward-compatible additions.
    ///
    /// [`to_prometheus`]: TelemetrySnapshot::to_prometheus
    pub fn from_prometheus(text: &str) -> Result<TelemetrySnapshot, String> {
        let mut snap = TelemetrySnapshot::default();
        // Scope → field values, in first-seen order (the encoder emits
        // families field-major with a stable scope order, so first-seen
        // order here reproduces the original scope order).
        let mut counters: Vec<(String, [u64; 30])> = Vec::new();
        struct HistAcc {
            cum: Vec<(u64, u64)>, // (le, cumulative count), +Inf excluded
            sum: u64,
            count: u64,
            min: u64,
            max: u64,
        }
        let mut hists: Vec<(String, HistAcc)> = Vec::new();
        let hist_entry = |hists: &mut Vec<(String, HistAcc)>, scope: &str| -> usize {
            if let Some(i) = hists.iter().position(|(s, _)| s == scope) {
                return i;
            }
            hists.push((
                scope.to_string(),
                HistAcc {
                    cum: Vec::new(),
                    sum: 0,
                    count: 0,
                    min: 0,
                    max: 0,
                },
            ));
            hists.len() - 1
        };

        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |what: &str| format!("line {}: {what}: {line}", lineno + 1);
            let (series, value) = line
                .rsplit_once(' ')
                .ok_or_else(|| err("expected `series value`"))?;
            let (name, labels) = match series.split_once('{') {
                Some((name, rest)) => {
                    let rest = rest
                        .strip_suffix('}')
                        .ok_or_else(|| err("unterminated label set"))?;
                    (name, parse_labels(rest).map_err(|e| err(&e))?)
                }
                None => (series, Vec::new()),
            };
            let label = |key: &str| {
                labels
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v.clone())
            };
            let parse_u64 = |v: &str| {
                v.parse::<u64>()
                    .map_err(|_| err("non-integer sample value"))
            };

            if name == "dbdc_process_info" {
                let opt = |key: &str| label(key).filter(|v| !v.is_empty());
                snap.identity = SnapshotIdentity {
                    role: opt("role"),
                    run_id: opt("run_id"),
                    peer: opt("peer"),
                };
            } else if name == "dbdc_uptime_us" {
                snap.uptime_us = parse_u64(value)?;
            } else if let Some(field) = name
                .strip_prefix("dbdc_")
                .and_then(|n| n.strip_suffix("_total"))
            {
                let Some(f) = Counters::FIELDS.iter().position(|&k| k == field) else {
                    continue; // unknown counter family: forward-compat
                };
                let scope = label("scope").ok_or_else(|| err("counter without scope label"))?;
                let i = match counters.iter().position(|(s, _)| *s == scope) {
                    Some(i) => i,
                    None => {
                        counters.push((scope, [0u64; 30]));
                        counters.len() - 1
                    }
                };
                counters[i].1[f] = parse_u64(value)?;
            } else if name == "dbdc_hist_bucket" {
                let scope = label("scope").ok_or_else(|| err("bucket without scope label"))?;
                let le = label("le").ok_or_else(|| err("bucket without le label"))?;
                let i = hist_entry(&mut hists, &scope);
                if le != "+Inf" {
                    let le = le.parse::<u64>().map_err(|_| err("non-integer le"))?;
                    hists[i].1.cum.push((le, parse_u64(value)?));
                }
            } else if let Some(part) = name.strip_prefix("dbdc_hist_") {
                let scope = label("scope").ok_or_else(|| err("hist series without scope"))?;
                let i = hist_entry(&mut hists, &scope);
                let v = parse_u64(value)?;
                match part {
                    "sum" => hists[i].1.sum = v,
                    "count" => hists[i].1.count = v,
                    "min" => hists[i].1.min = v,
                    "max" => hists[i].1.max = v,
                    _ => {}
                }
            }
        }

        snap.counters = counters
            .into_iter()
            .map(|(scope, v)| (scope, Counters::from_values(v)))
            .collect();
        for (scope, acc) in hists {
            let mut prev = 0u64;
            let mut buckets = Vec::with_capacity(acc.cum.len());
            for (le, cum) in acc.cum {
                let c = cum
                    .checked_sub(prev)
                    .ok_or_else(|| format!("hist {scope:?}: non-cumulative bucket at le={le}"))?;
                prev = cum;
                if c > 0 {
                    buckets.push((bucket_of(le), c));
                }
            }
            let h = Histogram::from_parts(acc.count, acc.sum, acc.min, acc.max, buckets)
                .map_err(|e| format!("hist {scope:?}: {e}"))?;
            snap.hists.push((scope, h));
        }
        Ok(snap)
    }
}

/// Parses a Prometheus label body (`k="v",k2="v2"`) with escapes.
fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label without `=`")?;
        let key = rest[..eq].trim().to_string();
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or("label value not quoted")?;
        // Find the closing quote, skipping escaped characters.
        let mut end = None;
        let mut escaped = false;
        for (i, ch) in rest.char_indices() {
            if escaped {
                escaped = false;
            } else if ch == '\\' {
                escaped = true;
            } else if ch == '"' {
                end = Some(i);
                break;
            }
        }
        let end = end.ok_or("unterminated label value")?;
        labels.push((key, unescape_label(&rest[..end])));
        rest = &rest[end + 1..];
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn engine_with_traffic() -> SnapshotEngine {
        let rec = Arc::new(RecordingRecorder::new());
        {
            let r: &dyn Recorder = &*rec;
            let s = r.sheet("net/server").unwrap();
            s.add_frame_sent(23, 10);
            s.add_frame_sent(40, 27);
            s.add_retry(std::time::Duration::from_nanos(1500));
            r.sheet("local[0]").unwrap().record_range(100, 7);
            let h = r.hist("net/session_ns").unwrap();
            h.record(900);
            h.record(1_000_000);
            h.record(17);
        }
        SnapshotEngine::new(rec).with_identity("server", Some("r1".into()), "server")
    }

    #[test]
    fn snapshot_reads_scopes_hists_and_identity() {
        let eng = engine_with_traffic();
        let snap = eng.snapshot();
        assert_eq!(snap.identity.role.as_deref(), Some("server"));
        assert_eq!(snap.identity.run_id.as_deref(), Some("r1"));
        assert_eq!(snap.counters.len(), 2);
        assert_eq!(snap.counters_for("net/server").unwrap().frames_sent, 2);
        assert_eq!(snap.counters_for("net/server").unwrap().wire_bytes_sent, 63);
        assert_eq!(snap.counters_for("local[0]").unwrap().range_queries, 1);
        assert_eq!(snap.hist_for("net/session_ns").unwrap().count(), 3);
        assert_eq!(snap.total().frames_sent, 2);
        assert_eq!(snap.total().range_queries, 1);
    }

    #[test]
    fn delta_subtracts_per_cell_and_counts_new_scopes_in_full() {
        let eng = engine_with_traffic();
        let a = eng.snapshot();
        {
            let r: &dyn Recorder = &**eng.recorder();
            r.sheet("net/server").unwrap().add_frame_sent(13, 0);
            r.sheet("relabel[0]").unwrap().record_range(5, 1);
            r.hist("net/session_ns").unwrap().record(40);
        }
        let b = eng.snapshot();
        let d = delta(&a, &b);
        let net = d.counters_for("net/server").unwrap();
        assert_eq!(net.frames_sent, 1);
        assert_eq!(net.wire_bytes_sent, 13);
        assert_eq!(net.retries, 0);
        // Untouched scope deltas to zero; new scope counts in full.
        assert!(d.counters_for("local[0]").unwrap().is_zero());
        assert_eq!(d.counters_for("relabel[0]").unwrap().range_queries, 1);
        // Histogram window: exactly the one new sample.
        let h = d.hist_for("net/session_ns").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 40);
        assert!(d.uptime_us <= b.uptime_us);
    }

    #[test]
    fn delta_of_identical_snapshots_is_zero() {
        let eng = engine_with_traffic();
        let a = eng.snapshot();
        let d = delta(&a, &a);
        assert!(d.total().is_zero());
        assert_eq!(d.uptime_us, 0);
        for (_, h) in &d.hists {
            assert!(h.is_empty());
        }
    }

    #[test]
    fn prometheus_round_trip_is_exact() {
        let eng = engine_with_traffic();
        let snap = eng.snapshot();
        let text = snap.to_prometheus();
        assert!(text.contains("dbdc_frames_sent_total{scope=\"net/server\"} 2"));
        assert!(text.contains("dbdc_hist_bucket{scope=\"net/session_ns\",le=\"+Inf\"} 3"));
        assert!(text.contains("# TYPE dbdc_wire_bytes_sent_total counter"));
        let back = TelemetrySnapshot::from_prometheus(&text).expect("parse");
        assert_eq!(back, snap);
    }

    #[test]
    fn prometheus_round_trip_survives_hostile_scope_names() {
        let rec = Arc::new(RecordingRecorder::new());
        let scope = "weird\"scope\\with\nnewline";
        (&*rec as &dyn Recorder)
            .sheet(scope)
            .unwrap()
            .add_bytes_sent(7);
        let snap = SnapshotEngine::new(rec).snapshot();
        let back = TelemetrySnapshot::from_prometheus(&snap.to_prometheus()).expect("parse");
        assert_eq!(back, snap);
        assert_eq!(back.counters_for(scope).unwrap().bytes_sent, 7);
    }

    #[test]
    fn empty_recorder_round_trips_too() {
        let snap = SnapshotEngine::new(Arc::new(RecordingRecorder::new())).snapshot();
        let back = TelemetrySnapshot::from_prometheus(&snap.to_prometheus()).expect("parse");
        assert_eq!(back, snap);
        assert!(back.counters.is_empty());
        assert!(back.hists.is_empty());
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(TelemetrySnapshot::from_prometheus("dbdc_uptime_us").is_err());
        assert!(TelemetrySnapshot::from_prometheus("dbdc_uptime_us abc").is_err());
        assert!(
            TelemetrySnapshot::from_prometheus("dbdc_frames_sent_total{scope=\"x\"} 1\n").is_ok()
        );
        assert!(TelemetrySnapshot::from_prometheus(
            "dbdc_frames_sent_total{scope=\"unterminated} 1\n"
        )
        .is_err());
        // Non-cumulative buckets are rejected.
        let bad = "dbdc_hist_bucket{scope=\"s\",le=\"5\"} 4\n\
                   dbdc_hist_bucket{scope=\"s\",le=\"9\"} 2\n\
                   dbdc_hist_count{scope=\"s\"} 4\n";
        assert!(TelemetrySnapshot::from_prometheus(bad).is_err());
    }

    #[test]
    fn parser_ignores_unknown_families() {
        let text = "# HELP something else\n\
                    go_goroutines 12\n\
                    dbdc_future_field_total{scope=\"x\"} 3\n\
                    dbdc_uptime_us 55\n";
        let snap = TelemetrySnapshot::from_prometheus(text).expect("parse");
        assert_eq!(snap.uptime_us, 55);
        assert!(snap.counters.is_empty());
    }
}
