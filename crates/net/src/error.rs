//! Error taxonomy of the serving layer.
//!
//! The retry machinery cares about exactly one distinction: *retryable*
//! failures (timeouts, broken connections, corrupted frames — anything a
//! lossy link produces) versus *fatal* ones (protocol-version or topology
//! mismatches, where retrying the same bytes can never succeed).

use dbdc::wire::WireError;

/// A failure in the frame layer, below any message semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix claims fewer bytes than the fixed overhead
    /// (kind + checksum) requires.
    TooShort(u32),
    /// The length prefix exceeds the configured maximum frame size —
    /// either a hostile peer or stream desynchronization.
    TooLarge {
        /// Declared frame length.
        len: u32,
        /// The configured ceiling.
        max: usize,
    },
    /// The frame checksum does not match — the body was corrupted in
    /// transit.
    BadChecksum,
    /// An unknown frame kind byte.
    BadKind(u8),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooShort(len) => write!(f, "frame length {len} below minimum"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame length {len} exceeds maximum {max}")
            }
            FrameError::BadChecksum => write!(f, "frame checksum mismatch"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k:#04x}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Any failure of the serving layer.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure (includes per-read timeouts).
    Io(std::io::Error),
    /// The frame layer rejected an incoming frame.
    Frame(FrameError),
    /// A frame carried a model the wire codec rejected (checksum,
    /// truncation, bad header...).
    Wire(WireError),
    /// The peer violated the session protocol (unexpected frame kind,
    /// malformed handshake payload). Retryable: usually a symptom of a
    /// half-torn connection.
    Protocol(String),
    /// Fatal handshake disagreement (protocol version, site id, site
    /// count). Retrying cannot help.
    Handshake(String),
    /// All retry attempts were exhausted.
    Exhausted {
        /// Attempts performed.
        attempts: u32,
        /// The last attempt's failure, rendered.
        last: String,
    },
    /// The overall operation deadline passed.
    Deadline,
}

impl NetError {
    /// Whether a retry with the same inputs could succeed.
    pub fn is_retryable(&self) -> bool {
        match self {
            NetError::Io(_) | NetError::Frame(_) | NetError::Wire(_) | NetError::Protocol(_) => {
                true
            }
            NetError::Handshake(_) | NetError::Exhausted { .. } | NetError::Deadline => false,
        }
    }

    /// Whether this is a read/connect timeout (as opposed to a hard I/O
    /// failure).
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            NetError::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        )
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o: {e}"),
            NetError::Frame(e) => write!(f, "frame: {e}"),
            NetError::Wire(e) => write!(f, "wire: {e}"),
            NetError::Protocol(m) => write!(f, "protocol: {m}"),
            NetError::Handshake(m) => write!(f, "handshake: {m}"),
            NetError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts (last: {last})")
            }
            NetError::Deadline => write!(f, "operation deadline exceeded"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Frame(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_classification() {
        assert!(NetError::Frame(FrameError::BadChecksum).is_retryable());
        assert!(
            NetError::Io(std::io::Error::new(std::io::ErrorKind::TimedOut, "t")).is_retryable()
        );
        assert!(NetError::Wire(WireError::Truncated).is_retryable());
        assert!(!NetError::Handshake("version".into()).is_retryable());
        assert!(!NetError::Deadline.is_retryable());
    }

    #[test]
    fn timeout_classification() {
        let t = NetError::Io(std::io::Error::new(std::io::ErrorKind::WouldBlock, "t"));
        assert!(t.is_timeout());
        let e = NetError::Io(std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            "r",
        ));
        assert!(!e.is_timeout());
        assert!(!NetError::Frame(FrameError::BadChecksum).is_timeout());
    }

    #[test]
    fn errors_render() {
        assert!(NetError::Frame(FrameError::TooLarge { len: 9, max: 4 })
            .to_string()
            .contains("exceeds"));
        assert!(NetError::Exhausted {
            attempts: 3,
            last: "x".into()
        }
        .to_string()
        .contains("3 attempts"));
    }
}
