//! **dbdc-net** — the real TCP serving layer for DBDC.
//!
//! The core runtime ([`dbdc::runtime`]) executes the whole protocol in
//! one process and *models* the network phases from exact message
//! sizes. This crate runs the same protocol over actual sockets,
//! std-only (no async runtime): a [`serve`]r accepting one connection
//! per site, and a [`run_site`] client that clusters its partition,
//! uploads its local model, and relabels against the broadcast global
//! model. Labels are identical to the in-process runtime on the same
//! partitions — asserted by the loopback tests.
//!
//! Layering, bottom up:
//!
//! - [`frame`] — length-prefixed, checksummed frames with a session
//!   handshake; the payloads of the model frames are exactly the
//!   [`dbdc::wire`] encodings, so message byte counts match the
//!   in-process runtime's reports.
//! - [`retry`] — bounded retries with exponential backoff.
//! - [`metrics`] — wire-level instrumentation ([`WireMetrics`]): frame
//!   and byte counters per direction and per frame kind, rejection
//!   classification, and frame/session latency histograms, all through
//!   the [`dbdc_obs::Recorder`] trait (zero-cost when disabled).
//! - [`server`] / [`site`] — the two protocol ends. All server-side
//!   operations are idempotent; sites own recovery by replaying the
//!   whole session.
//! - [`fault`] — a deterministic fault-injecting TCP proxy (drop,
//!   delay, truncate, bit-flip) for loopback torture tests.
//! - [`admin`] — an optional HTTP/1.0 admin plane on `--admin-addr`
//!   serving live telemetry (`/metrics`, `/healthz`, `/readyz`,
//!   `/report`) from snapshots of the run's recorder.

pub mod admin;
pub mod error;
pub mod fault;
pub mod frame;
pub mod metrics;
pub mod retry;
pub mod server;
pub mod site;

pub use admin::{http_get, AdminServer, AdminState};
pub use error::{FrameError, NetError};
pub use fault::{FaultPlan, FaultProxy, FaultStats, SplitMix64};
pub use frame::{
    decode_frame_body, encode_frame, read_frame, write_frame, Frame, FrameKind, Hello,
    DEFAULT_MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
pub use metrics::WireMetrics;
pub use retry::RetryPolicy;
pub use server::{serve, ServeOptions, ServerOutcome};
pub use site::{run_site, SiteOptions, SiteOutcome};
