//! Length-prefixed frames over TCP.
//!
//! A TCP stream has no message boundaries, so every session message —
//! handshake, model upload, broadcast, acks — travels inside a frame:
//!
//! ```text
//! len:u32 LE | kind:u8 | payload | checksum:u64 LE
//!            `------ len bytes ------------------'
//! ```
//!
//! `len` counts everything after the prefix (kind + payload + checksum,
//! so `payload.len() + 9`). The checksum is FNV-1a over `kind` followed
//! by `payload`, computed independently from the wire codec's own
//! checksum: the frame layer detects transport corruption before any
//! payload is interpreted, and model payloads are *additionally*
//! protected end-to-end by [`dbdc::wire`].
//!
//! Reads are strict: a short read mid-frame is an error (the connection
//! died), a length prefix above the configured ceiling aborts before
//! any allocation, and a checksum mismatch rejects the frame without
//! looking at the payload.

use std::io::{Read, Write};

use crate::error::FrameError;

/// Frame overhead past the length prefix: kind byte + checksum.
pub const FRAME_OVERHEAD: usize = 1 + 8;

/// Default ceiling on `len`. Generous for models (a representative is
/// tens of bytes; 64 MiB holds millions) while bounding allocation from
/// a corrupt or hostile length prefix.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 64 << 20;

/// Every message kind of the session protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Site → server: protocol version + site id + expected site count.
    Hello = 1,
    /// Server → site: handshake accepted.
    HelloAck = 2,
    /// Site → server: a wire-encoded [`dbdc::LocalModel`].
    LocalModel = 3,
    /// Server → site: local model received and verified.
    ModelAck = 4,
    /// Server → site: a wire-encoded [`dbdc::GlobalModel`].
    GlobalModel = 5,
    /// Site → server: global model received and verified.
    GlobalAck = 6,
    /// Either direction: fatal rejection, payload is a UTF-8 reason.
    Error = 7,
    /// Server → site: your GLOBAL_ACK was recorded, the session is
    /// over. Without this the site could not distinguish "server got my
    /// ack and closed" from "the link died as I acked" — it stops only
    /// on GOODBYE and otherwise replays the (idempotent) session.
    Goodbye = 8,
}

impl FrameKind {
    fn from_u8(b: u8) -> Result<Self, FrameError> {
        Ok(match b {
            1 => FrameKind::Hello,
            2 => FrameKind::HelloAck,
            3 => FrameKind::LocalModel,
            4 => FrameKind::ModelAck,
            5 => FrameKind::GlobalModel,
            6 => FrameKind::GlobalAck,
            7 => FrameKind::Error,
            8 => FrameKind::Goodbye,
            other => return Err(FrameError::BadKind(other)),
        })
    }

    /// The kind's name, for protocol-error messages.
    pub fn name(self) -> &'static str {
        match self {
            FrameKind::Hello => "HELLO",
            FrameKind::HelloAck => "HELLO_ACK",
            FrameKind::LocalModel => "LOCAL_MODEL",
            FrameKind::ModelAck => "MODEL_ACK",
            FrameKind::GlobalModel => "GLOBAL_MODEL",
            FrameKind::GlobalAck => "GLOBAL_ACK",
            FrameKind::Error => "ERROR",
            FrameKind::Goodbye => "GOODBYE",
        }
    }
}

/// A decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The message kind.
    pub kind: FrameKind,
    /// The message body (a wire-encoded model, a handshake, a reason).
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame with no payload (acks).
    pub fn bare(kind: FrameKind) -> Self {
        Frame {
            kind,
            payload: Vec::new(),
        }
    }

    /// A frame carrying `payload`.
    pub fn new(kind: FrameKind, payload: Vec<u8>) -> Self {
        Frame { kind, payload }
    }
}

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut hash = seed;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn frame_checksum(kind: u8, payload: &[u8]) -> u64 {
    fnv1a(fnv1a(FNV_OFFSET, &[kind]), payload)
}

/// Encodes a frame into its on-stream bytes (prefix included).
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let len = frame.payload.len() + FRAME_OVERHEAD;
    let mut out = Vec::with_capacity(4 + len);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    out.push(frame.kind as u8);
    out.extend_from_slice(&frame.payload);
    out.extend_from_slice(&frame_checksum(frame.kind as u8, &frame.payload).to_le_bytes());
    out
}

/// Decodes the body of a frame (everything after the length prefix).
pub fn decode_frame_body(body: &[u8]) -> Result<Frame, FrameError> {
    if body.len() < FRAME_OVERHEAD {
        return Err(FrameError::TooShort(body.len() as u32));
    }
    let kind_byte = body[0];
    let payload = &body[1..body.len() - 8];
    let mut sum = [0u8; 8];
    sum.copy_from_slice(&body[body.len() - 8..]);
    if frame_checksum(kind_byte, payload) != u64::from_le_bytes(sum) {
        return Err(FrameError::BadChecksum);
    }
    // Kind is checked after the checksum: a corrupted kind byte should
    // read as transport corruption, not a protocol violation.
    let kind = FrameKind::from_u8(kind_byte)?;
    Ok(Frame {
        kind,
        payload: payload.to_vec(),
    })
}

/// Writes one frame to `w` and flushes.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&encode_frame(frame))?;
    w.flush()
}

/// Reads exactly one frame from `r`, rejecting bodies above
/// `max_frame_bytes` before allocating.
///
/// I/O errors (including read timeouts) surface as `Err(Ok(io))` via
/// the outer [`std::io::Error`]; frame-level rejections surface as
/// [`FrameError`] wrapped in [`std::io::ErrorKind::InvalidData`] — use
/// [`read_frame`]'s typed sibling return instead when the caller needs
/// to distinguish.
pub fn read_frame(
    r: &mut impl Read,
    max_frame_bytes: usize,
) -> Result<Frame, crate::error::NetError> {
    let mut prefix = [0u8; 4];
    r.read_exact(&mut prefix)?;
    let len = u32::from_le_bytes(prefix);
    if (len as usize) < FRAME_OVERHEAD {
        return Err(FrameError::TooShort(len).into());
    }
    if len as usize > max_frame_bytes {
        return Err(FrameError::TooLarge {
            len,
            max: max_frame_bytes,
        }
        .into());
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(decode_frame_body(&body)?)
}

/// The protocol version both ends must agree on during the handshake.
pub const PROTOCOL_VERSION: u16 = 1;

/// The HELLO payload: version, site id, expected site count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// Protocol version ([`PROTOCOL_VERSION`]).
    pub version: u16,
    /// The connecting site's id, `0 <= site < n_sites`.
    pub site: u32,
    /// How many sites the session expects in total.
    pub n_sites: u32,
}

impl Hello {
    /// The payload for a site introducing itself.
    pub fn new(site: u32, n_sites: u32) -> Self {
        Hello {
            version: PROTOCOL_VERSION,
            site,
            n_sites,
        }
    }

    /// Encodes into a HELLO frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(10);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.site.to_le_bytes());
        out.extend_from_slice(&self.n_sites.to_le_bytes());
        out
    }

    /// Decodes a HELLO frame payload.
    pub fn decode(payload: &[u8]) -> Option<Self> {
        if payload.len() != 10 {
            return None;
        }
        Some(Hello {
            version: u16::from_le_bytes([payload[0], payload[1]]),
            site: u32::from_le_bytes([payload[2], payload[3], payload[4], payload[5]]),
            n_sites: u32::from_le_bytes([payload[6], payload[7], payload[8], payload[9]]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        for frame in [
            Frame::bare(FrameKind::ModelAck),
            Frame::new(FrameKind::Hello, Hello::new(2, 4).encode()),
            Frame::new(FrameKind::LocalModel, vec![7u8; 1000]),
        ] {
            let bytes = encode_frame(&frame);
            let mut r = &bytes[..];
            let back = read_frame(&mut r, DEFAULT_MAX_FRAME_BYTES).expect("decodes");
            assert_eq!(back, frame);
            assert!(r.is_empty(), "frame consumed exactly");
        }
    }

    #[test]
    fn bitflips_are_rejected() {
        let frame = Frame::new(FrameKind::GlobalModel, (0u8..200).collect());
        let clean = encode_frame(&frame);
        // Flip one bit in every body byte position (skipping the length
        // prefix, which is covered by the TooShort/TooLarge guards).
        for pos in 4..clean.len() {
            let mut dirty = clean.clone();
            dirty[pos] ^= 1;
            let got = read_frame(&mut &dirty[..], DEFAULT_MAX_FRAME_BYTES);
            assert!(got.is_err(), "flip at byte {pos} accepted");
        }
    }

    #[test]
    fn oversize_prefix_rejected_before_allocation() {
        let mut bytes = (u32::MAX).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 16]);
        let err = read_frame(&mut &bytes[..], 1024).unwrap_err();
        assert!(matches!(
            err,
            crate::error::NetError::Frame(FrameError::TooLarge { .. })
        ));
    }

    #[test]
    fn undersize_prefix_rejected() {
        for len in 0..FRAME_OVERHEAD as u32 {
            let mut bytes = len.to_le_bytes().to_vec();
            bytes.extend_from_slice(&vec![0u8; len as usize]);
            let err = read_frame(&mut &bytes[..], 1024).unwrap_err();
            assert!(matches!(
                err,
                crate::error::NetError::Frame(FrameError::TooShort(_))
            ));
        }
    }

    #[test]
    fn unknown_kind_rejected_only_with_valid_checksum() {
        // A frame whose kind byte is unknown but checksum is consistent:
        // the error must be BadKind, proving checksum is checked first.
        let kind = 0xEEu8;
        let payload = b"zz";
        let mut body = vec![kind];
        body.extend_from_slice(payload);
        body.extend_from_slice(&frame_checksum(kind, payload).to_le_bytes());
        let err = decode_frame_body(&body).unwrap_err();
        assert_eq!(err, FrameError::BadKind(0xEE));
    }

    #[test]
    fn hello_round_trips_and_rejects_bad_lengths() {
        let h = Hello::new(3, 8);
        assert_eq!(Hello::decode(&h.encode()), Some(h));
        assert_eq!(Hello::decode(&[]), None);
        assert_eq!(Hello::decode(&[0u8; 9]), None);
        assert_eq!(Hello::decode(&[0u8; 11]), None);
    }

    #[test]
    fn short_stream_is_an_io_error() {
        let frame = Frame::new(FrameKind::LocalModel, vec![1, 2, 3]);
        let bytes = encode_frame(&frame);
        for cut in 0..bytes.len() {
            let got = read_frame(&mut &bytes[..cut], DEFAULT_MAX_FRAME_BYTES);
            assert!(got.is_err(), "prefix of {cut} bytes accepted");
        }
    }
}
