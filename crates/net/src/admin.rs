//! The admin plane: a tiny std-only HTTP/1.0 responder for live
//! telemetry.
//!
//! Every post-mortem surface (RunReport, `report merge`, timelines)
//! requires the process to exit first. The admin listener is the live
//! counterpart: `dbdc-server`, `dbdc-site`, and `dbdc-cli proxy` bind it
//! on `--admin-addr` and serve four endpoints over plain HTTP/1.0
//! (`Connection: close`, one request per connection — simple enough for
//! `curl`, Prometheus, and the `dbdc-cli watch` poller, with no HTTP
//! library in sight):
//!
//! * `GET /metrics` — the current [`TelemetrySnapshot`] in Prometheus
//!   text exposition format (counters as monotonic `_total` series,
//!   histograms as cumulative buckets plus `_sum`/`_count`);
//! * `GET /healthz` — 200 while the process is up (liveness);
//! * `GET /readyz` — 200 once the role-specific readiness predicate
//!   holds, 503 before: the server is ready once its protocol listener
//!   is accepting, a site once its handshake has completed, the proxy
//!   once it is forwarding;
//! * `GET /report` — the current *partial* RunReport as JSON: the same
//!   schema the process would write to `--metrics-out` at exit,
//!   assembled from live sheets. Crash-safe visibility: whatever a
//!   scrape captured survives the process dying a millisecond later.
//!
//! The responder runs one accept-loop thread and handles each
//! connection inline (admin traffic is a poll every second or so, not a
//! serving workload). It holds only `Arc`s and boxed closures, so the
//! instrumented run never synchronizes with it beyond the relaxed
//! atomic reads the snapshot engine already does.
//!
//! [`TelemetrySnapshot`]: dbdc_obs::TelemetrySnapshot

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use dbdc_obs::SnapshotEngine;

/// How long a connection may dribble its request/response before the
/// responder gives up on it.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Accept-loop poll interval while idle (the listener is nonblocking so
/// shutdown can be observed).
const POLL: Duration = Duration::from_millis(25);

/// What the admin endpoints serve, bundled by the binary that owns the
/// run.
pub struct AdminState {
    /// Snapshot source for `/metrics`.
    pub engine: SnapshotEngine,
    /// Role-specific readiness predicate for `/readyz`.
    pub ready: Box<dyn Fn() -> bool + Send + Sync>,
    /// Assembles the current partial RunReport JSON for `/report`.
    pub report: Box<dyn Fn() -> String + Send + Sync>,
}

/// A running admin listener; dropping (or [`AdminServer::shutdown`])
/// stops the accept loop.
pub struct AdminServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl AdminServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts serving.
    pub fn spawn(addr: &str, state: AdminState) -> io::Result<AdminServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("dbdc-admin".into())
            .spawn(move || accept_loop(listener, state, thread_stop))?;
        Ok(AdminServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, state: AdminState, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Inline handling: admin requests are tiny and rare, and
                // a slow client is bounded by IO_TIMEOUT.
                let _ = handle_connection(stream, &state);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

fn handle_connection(mut stream: TcpStream, state: &AdminState) -> io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;

    // Read until the request head is complete (blank line); the admin
    // API is GET-only so there is never a body to consume.
    let mut head = Vec::with_capacity(256);
    let mut buf = [0u8; 512];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && !head.windows(2).any(|w| w == b"\n\n") {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.len() > 8192 {
            return respond(&mut stream, 400, "text/plain", "request too large\n");
        }
    }
    let request = String::from_utf8_lossy(&head);
    let mut parts = request.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "method not allowed\n");
    }
    match path {
        "/metrics" => {
            let body = state.engine.snapshot().to_prometheus();
            respond(
                &mut stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/healthz" => respond(&mut stream, 200, "text/plain", "ok\n"),
        "/readyz" => {
            if (state.ready)() {
                respond(&mut stream, 200, "text/plain", "ready\n")
            } else {
                respond(&mut stream, 503, "text/plain", "not ready\n")
            }
        }
        "/report" => {
            let body = (state.report)();
            respond(&mut stream, 200, "application/json", &body)
        }
        _ => respond(&mut stream, 404, "text/plain", "not found\n"),
    }
}

fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A minimal HTTP/1.0 GET against an admin endpoint; returns
/// `(status, body)`. This is the client half `dbdc-cli watch` and the
/// test suites poll with — raw `TcpStream`, no HTTP library.
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> io::Result<(u16, String)> {
    let sockaddr: SocketAddr = addr
        .parse()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("{addr:?}: {e}")))?;
    let mut stream = TcpStream::connect_timeout(&sockaddr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(format!("GET {path} HTTP/1.0\r\nHost: dbdc\r\n\r\n").as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw).into_owned();
    let status = text
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    let body = match text.find("\r\n\r\n") {
        Some(i) => text[i + 4..].to_string(),
        None => String::new(),
    };
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbdc_obs::{Recorder, RecordingRecorder, RunReport, TelemetrySnapshot};
    use std::sync::atomic::AtomicBool;

    fn spawn_admin(ready: bool) -> (AdminServer, Arc<RecordingRecorder>) {
        let rec = Arc::new(RecordingRecorder::new());
        let engine = SnapshotEngine::new(Arc::clone(&rec)).with_identity(
            "server",
            Some("t1".into()),
            "server",
        );
        let report_rec = Arc::clone(&rec);
        let ready_flag = Arc::new(AtomicBool::new(ready));
        let state = AdminState {
            engine,
            ready: Box::new(move || ready_flag.load(Ordering::Relaxed)),
            report: Box::new(move || {
                let mut r =
                    RunReport::new("serve").with_identity("server", Some("t1".into()), "server");
                r.scopes = report_rec.scopes();
                r.hists = report_rec.hist_scopes();
                r.to_json_string()
            }),
        };
        let admin = AdminServer::spawn("127.0.0.1:0", state).expect("bind admin");
        (admin, rec)
    }

    fn get(admin: &AdminServer, path: &str) -> (u16, String) {
        http_get(&admin.addr().to_string(), path, Duration::from_secs(5)).expect("http_get")
    }

    #[test]
    fn metrics_endpoint_serves_parsable_exposition() {
        let (admin, rec) = spawn_admin(true);
        (&*rec as &dyn Recorder)
            .sheet("net/server")
            .unwrap()
            .add_frame_sent(23, 10);
        let (status, body) = get(&admin, "/metrics");
        assert_eq!(status, 200);
        let snap = TelemetrySnapshot::from_prometheus(&body).expect("parse scrape");
        assert_eq!(snap.counters_for("net/server").unwrap().frames_sent, 1);
        assert_eq!(snap.identity.run_id.as_deref(), Some("t1"));
        admin.shutdown();
    }

    #[test]
    fn health_ready_and_404() {
        let (admin, _rec) = spawn_admin(false);
        assert_eq!(get(&admin, "/healthz").0, 200);
        assert_eq!(get(&admin, "/readyz").0, 503);
        assert_eq!(get(&admin, "/nope").0, 404);
        admin.shutdown();

        let (admin, _rec) = spawn_admin(true);
        let (status, body) = get(&admin, "/readyz");
        assert_eq!((status, body.as_str()), (200, "ready\n"));
    }

    #[test]
    fn report_endpoint_serves_parsable_partial_report() {
        let (admin, rec) = spawn_admin(true);
        (&*rec as &dyn Recorder)
            .sheet("net/server")
            .unwrap()
            .add_frame_received(13, 0);
        let (status, body) = get(&admin, "/report");
        assert_eq!(status, 200);
        let report = RunReport::parse(&body).expect("parse /report JSON");
        assert_eq!(report.role.as_deref(), Some("server"));
        let net = report.scopes.iter().find(|(n, _)| n == "net/server");
        assert_eq!(net.unwrap().1.frames_received, 1);
    }

    #[test]
    fn non_get_is_rejected() {
        let (admin, _rec) = spawn_admin(true);
        let addr = admin.addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.0 405"), "{out}");
    }
}
