//! A DBDC client site over real TCP.
//!
//! [`run_site`] runs the full client half of the protocol against a
//! server address: local clustering, model extraction and wire
//! encoding (identical to the in-process runtime — same index, same
//! DBSCAN driver, same encoder, so the bytes on the wire are exactly
//! the in-process message sizes), then the network session, then the
//! relabel phase against the received global model.
//!
//! The network session is retried as a whole under the site's
//! [`RetryPolicy`]: the local phase is deterministic and the encoded
//! model is reused, so a replay sends byte-identical frames and every
//! server-side effect is idempotent. Only a handshake rejection
//! (version/topology mismatch) aborts without retrying.

use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use dbdc::wire;
use dbdc::{build_local_model, DbdcParams, GlobalModel};
use dbdc_cluster::{dbscan_with_scp, par_dbscan_with_scp, DbscanParams, ScpResult};
use dbdc_geom::{Clustering, Dataset, Euclidean};
use dbdc_obs::Recorder;

use crate::error::NetError;
use crate::frame::{Frame, FrameKind, Hello, DEFAULT_MAX_FRAME_BYTES};
use crate::metrics::WireMetrics;
use crate::retry::RetryPolicy;

/// Configuration of a client site.
#[derive(Debug, Clone)]
pub struct SiteOptions {
    /// This site's id, `0 <= site < n_sites`.
    pub site: u32,
    /// The session's total site count (validated by the server).
    pub n_sites: u32,
    /// The protocol parameters (must match the server's).
    pub params: DbdcParams,
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// Per-read socket timeout.
    pub read_timeout: Duration,
    /// Session retry budget and backoff.
    pub retry: RetryPolicy,
    /// Ceiling on incoming frame bodies.
    pub max_frame_bytes: usize,
}

impl SiteOptions {
    /// Defaults for site `site` of `n_sites`: 2 s connect, 3 s reads
    /// (above the server's 2 s ack-resend pace), standard retries.
    pub fn new(site: u32, n_sites: u32, params: DbdcParams) -> Self {
        SiteOptions {
            site,
            n_sites,
            params,
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(3),
            retry: RetryPolicy::standard(),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        }
    }
}

/// What a completed site run produced.
#[derive(Debug, Clone)]
pub struct SiteOutcome {
    /// The site's final labels (dense ids local to this site's points,
    /// in partition order), after relabeling against the global model.
    pub labels: Clustering,
    /// The received global model.
    pub global: GlobalModel,
    /// Exact encoded size of the uploaded local model.
    pub bytes_up: usize,
    /// Exact encoded size of the received global model.
    pub bytes_down: usize,
    /// Network session attempts used (1 = first try succeeded).
    pub attempts: u32,
    /// Measured wall time of the local phase (cluster+extract+encode).
    pub local_wall: Duration,
    /// Measured wall time of the network session, connect through
    /// GOODBYE, across all attempts including backoff.
    pub session_wall: Duration,
    /// Measured wall time of the relabel phase.
    pub relabel_wall: Duration,
    /// Sub-phase timing of the *successful* session attempt: start
    /// offsets are measured from that attempt's connect call.
    pub session_phases: SessionPhases,
}

/// Start offset and wall time of each sub-phase of one session attempt.
/// Offsets are relative to the attempt's connect call, so a report can
/// place these as explicitly-positioned child spans of the session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionPhases {
    /// Connect + HELLO / HELLO_ACK exchange (offset is always zero).
    pub handshake_start: Duration,
    pub handshake: Duration,
    /// LOCAL_MODEL upload through MODEL_ACK.
    pub upload_start: Duration,
    pub upload: Duration,
    /// GLOBAL_MODEL receive, verify, and GLOBAL_ACK.
    pub download_start: Duration,
    pub download: Duration,
}

/// Runs the full client protocol against `addr`. Counter scopes land in
/// `rec` under `local[site]` and `relabel[site]`, matching the
/// in-process runtime's scope names; wire traffic lands under
/// `net/site[site]` (aggregate + per frame kind) with frame and session
/// latencies in the `net/frame_*_ns` / `net/session_ns` histograms.
pub fn run_site(
    addr: SocketAddr,
    site_data: &Dataset,
    opts: &SiteOptions,
    rec: &dyn Recorder,
) -> Result<SiteOutcome, NetError> {
    // --- Local phase: identical to the in-process runtime. ---
    let t0 = Instant::now();
    let (scp, encoded) = local_phase(site_data, opts, rec);
    let local_wall = t0.elapsed();

    // --- Network session, retried as a whole. ---
    let metrics = WireMetrics::new(rec, &format!("net/site[{}]", opts.site));
    let t1 = Instant::now();
    let (encoded_global, attempts, session_phases) = run_session(addr, &encoded, opts, &metrics)?;
    let session_wall = t1.elapsed();

    // --- Relabel against the broadcast model. ---
    let t2 = Instant::now();
    let sheet = rec.sheet(&format!("relabel[{}]", opts.site));
    let global = wire::decode_global_model(&encoded_global)?;
    if let Some(s) = &sheet {
        s.add_bytes_received(encoded_global.len() as u64);
    }
    let labels =
        dbdc::relabel_site_observed(site_data, &scp.dbscan.clustering, &global, sheet.as_ref());
    let relabel_wall = t2.elapsed();

    Ok(SiteOutcome {
        labels,
        bytes_up: encoded.len(),
        bytes_down: encoded_global.len(),
        attempts,
        local_wall,
        session_wall,
        relabel_wall,
        session_phases,
        global,
    })
}

/// Cluster, extract the local model, encode it — the same sequence, on
/// the same public APIs, as the in-process runtime's local phase, so a
/// networked run is byte- and label-identical to `run_dbdc` on the same
/// partition.
fn local_phase(
    site_data: &Dataset,
    opts: &SiteOptions,
    rec: &dyn Recorder,
) -> (ScpResult, bytes::Bytes) {
    let params = &opts.params;
    let sheet = rec.sheet(&format!("local[{}]", opts.site));
    let eps_hist = rec.hist(&format!("local[{}]/eps_range_ns", opts.site));
    let dbscan_params = DbscanParams::new(params.eps_local, params.min_pts_local);
    let index = dbdc_index::build_index_instrumented(
        params.index,
        site_data,
        Euclidean,
        params.eps_local,
        sheet.as_ref(),
        eps_hist.as_ref(),
    );
    let scp = if params.threads == 1 {
        dbscan_with_scp(site_data, index.as_ref(), &dbscan_params)
    } else {
        par_dbscan_with_scp(site_data, index.as_ref(), &dbscan_params, params.threads)
    };
    let model = build_local_model(params.model, site_data, &scp, opts.site);
    let encoded = wire::encode_local_model(&model).expect("local model fits the wire format");
    if let Some(s) = &sheet {
        s.add_representatives(model.len() as u64);
        s.add_bytes_sent(encoded.len() as u64);
    }
    (scp, encoded)
}

/// The session with retries: returns the received global model's wire
/// bytes, the attempt count, and the successful attempt's sub-phase
/// timing. Each attempt's wall time lands in `net/session_ns`; retries
/// and the backoff slept before them land in the site's wire scope.
fn run_session(
    addr: SocketAddr,
    encoded_model: &[u8],
    opts: &SiteOptions,
    metrics: &WireMetrics,
) -> Result<(Vec<u8>, u32, SessionPhases), NetError> {
    let mut last: Option<NetError> = None;
    for attempt in 1..=opts.retry.attempts {
        let backoff = opts.retry.delay_before(attempt - 1);
        std::thread::sleep(backoff);
        if attempt > 1 {
            metrics.add_retry(backoff);
        }
        let t = Instant::now();
        let result = session_once(addr, encoded_model, opts, metrics);
        metrics.record_session(t.elapsed());
        match result {
            Ok((global, phases)) => return Ok((global, attempt, phases)),
            Err(e) if e.is_retryable() => last = Some(e),
            Err(e) => {
                if matches!(e, NetError::Handshake(_)) {
                    metrics.add_handshake_rejection();
                }
                return Err(e);
            }
        }
    }
    Err(NetError::Exhausted {
        attempts: opts.retry.attempts,
        last: last.map(|e| e.to_string()).unwrap_or_default(),
    })
}

/// One full session attempt: connect, handshake, upload, receive the
/// global model, ack, wait for GOODBYE.
fn session_once(
    addr: SocketAddr,
    encoded_model: &[u8],
    opts: &SiteOptions,
    metrics: &WireMetrics,
) -> Result<(Vec<u8>, SessionPhases), NetError> {
    let mut phases = SessionPhases::default();
    let attempt_start = Instant::now();
    let mut stream = TcpStream::connect_timeout(&addr, opts.connect_timeout)?;
    stream.set_read_timeout(Some(opts.read_timeout))?;
    stream.set_nodelay(true).ok();

    // --- Handshake. ---
    metrics.write_frame_observed(
        &mut stream,
        &Frame::new(
            FrameKind::Hello,
            Hello::new(opts.site, opts.n_sites).encode(),
        ),
    )?;
    expect_frame(&mut stream, opts, metrics, FrameKind::HelloAck)?;
    phases.handshake = attempt_start.elapsed();

    // --- Upload. ---
    phases.upload_start = attempt_start.elapsed();
    metrics.write_frame_observed(
        &mut stream,
        &Frame::new(FrameKind::LocalModel, encoded_model.to_vec()),
    )?;
    expect_frame(&mut stream, opts, metrics, FrameKind::ModelAck)?;
    phases.upload = attempt_start.elapsed() - phases.upload_start;

    // --- Receive the global model. ---
    phases.download_start = attempt_start.elapsed();
    let frame = expect_frame(&mut stream, opts, metrics, FrameKind::GlobalModel)?;
    // Verify end-to-end before acking: a corrupted broadcast must read
    // as "not delivered" so the server resends / the session replays.
    wire::decode_global_model(&frame.payload)?;
    let encoded_global = frame.payload;

    // --- Confirm, then linger for the server's confirmation. ---
    metrics.write_frame_observed(&mut stream, &Frame::bare(FrameKind::GlobalAck))?;
    phases.download = attempt_start.elapsed() - phases.download_start;
    // The server resends GLOBAL_MODEL if our ack was lost; re-ack each
    // copy. Only GOODBYE ends the session — anything else replays it.
    for _ in 0..64 {
        let f = metrics.read_frame_observed(&mut stream, opts.max_frame_bytes)?;
        match f.kind {
            FrameKind::Goodbye => return Ok((encoded_global, phases)),
            FrameKind::GlobalModel => {
                metrics.write_frame_observed(&mut stream, &Frame::bare(FrameKind::GlobalAck))?;
            }
            other => {
                return Err(NetError::Protocol(format!(
                    "expected GOODBYE, got {}",
                    other.name()
                )))
            }
        }
    }
    Err(NetError::Protocol("no GOODBYE after 64 frames".into()))
}

/// Reads one frame and checks its kind. An ERROR frame is a fatal
/// handshake rejection carrying the server's reason.
fn expect_frame(
    stream: &mut TcpStream,
    opts: &SiteOptions,
    metrics: &WireMetrics,
    want: FrameKind,
) -> Result<Frame, NetError> {
    let frame = metrics.read_frame_observed(stream, opts.max_frame_bytes)?;
    if frame.kind == want {
        return Ok(frame);
    }
    if frame.kind == FrameKind::Error {
        return Err(NetError::Handshake(
            String::from_utf8_lossy(&frame.payload).into_owned(),
        ));
    }
    Err(NetError::Protocol(format!(
        "expected {}, got {}",
        want.name(),
        frame.kind.name()
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{read_frame, write_frame};
    use dbdc_obs::RecordingRecorder;
    use std::net::TcpListener;

    fn opts() -> SiteOptions {
        let mut o = SiteOptions::new(0, 1, DbdcParams::new(1.6, 5));
        o.connect_timeout = Duration::from_millis(200);
        o.read_timeout = Duration::from_millis(200);
        o.retry = RetryPolicy {
            attempts: 2,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
        };
        o
    }

    #[test]
    fn connect_refused_exhausts_retries() {
        // Bind-then-drop guarantees a dead port.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind throwaway listener");
            l.local_addr().expect("read bound listener address")
        };
        let rec = RecordingRecorder::new();
        let metrics = WireMetrics::new(&rec, "net/site[0]");
        let err = run_session(addr, &[], &opts(), &metrics)
            .expect_err("session against a dead port must fail");
        match err {
            NetError::Exhausted { attempts, .. } => assert_eq!(attempts, 2),
            other => panic!("expected Exhausted, got {other}"),
        }
        // The second attempt was booked as a retry with its backoff.
        let c = rec.counters("net/site[0]");
        assert_eq!(c.retries, 1);
        assert!(c.backoff_wait_ns >= 1_000_000, "1 ms backoff recorded");
    }

    #[test]
    fn error_frame_aborts_without_retrying() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind rejecting server");
        let addr = listener.local_addr().expect("read server address");
        let server = std::thread::spawn(move || {
            // Reject both potential attempts; the test asserts only one
            // connection ever arrives.
            let mut served = 0u32;
            while served < 1 {
                let (mut s, _) = listener.accept().expect("accept site connection");
                let _ = read_frame(&mut s, DEFAULT_MAX_FRAME_BYTES).expect("read HELLO frame");
                write_frame(
                    &mut s,
                    &Frame::new(FrameKind::Error, b"version mismatch".to_vec()),
                )
                .expect("write ERROR frame");
                served += 1;
            }
            served
        });
        let rec = RecordingRecorder::new();
        let metrics = WireMetrics::new(&rec, "net/site[0]");
        let err = run_session(addr, &[], &opts(), &metrics)
            .expect_err("rejected handshake must fail the session");
        assert!(matches!(err, NetError::Handshake(ref m) if m.contains("version")));
        assert_eq!(
            server.join().expect("join rejecting server thread"),
            1,
            "no retry after a fatal rejection"
        );
        let c = rec.counters("net/site[0]");
        assert_eq!(c.handshake_rejections, 1);
        assert_eq!(c.retries, 0);
    }

    #[test]
    fn unexpected_kind_is_a_retryable_protocol_error() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind nonsense server");
        let addr = listener.local_addr().expect("read server address");
        let server = std::thread::spawn(move || {
            for _ in 0..2 {
                let (mut s, _) = listener.accept().expect("accept site connection");
                let _ = read_frame(&mut s, DEFAULT_MAX_FRAME_BYTES).expect("read HELLO frame");
                // A GOODBYE during the handshake is nonsense.
                write_frame(&mut s, &Frame::bare(FrameKind::Goodbye)).expect("write GOODBYE");
            }
        });
        let err = run_session(addr, &[], &opts(), &WireMetrics::disabled())
            .expect_err("protocol nonsense must exhaust retries");
        assert!(
            matches!(err, NetError::Exhausted { attempts: 2, ref last } if last.contains("GOODBYE"))
        );
        server.join().expect("join nonsense server thread");
    }
}
