//! Deterministic fault injection for loopback testing.
//!
//! [`FaultProxy`] sits between sites and the server as a plain TCP
//! forwarder that understands just enough of the frame layer (the
//! length prefix) to act on whole frames: it can **drop** a frame,
//! **delay** it, **truncate** it mid-body (then kill the connection,
//! as a real mid-transfer failure would), or **flip a bit** in it.
//!
//! Every decision comes from a [`SplitMix64`] stream seeded from
//! `(seed, connection, direction)`, so a failing test reproduces
//! exactly from its seed — no global RNG, no time dependence.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dbdc_obs::{CounterSheet, Recorder};

use crate::frame::FRAME_OVERHEAD;

/// SplitMix64: tiny, seedable, and plenty for fault scheduling.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// The next value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform value in `[0, bound)`; `0` when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// What the proxy does to the traffic, as independent per-frame
/// probabilities. All zero (the default) forwards transparently.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for the deterministic fault schedule.
    pub seed: u64,
    /// P(frame is silently dropped).
    pub drop: f64,
    /// P(frame is delayed by `delay` before forwarding).
    pub delay_p: f64,
    /// How long a delayed frame waits.
    pub delay: Duration,
    /// P(frame is cut mid-body and the connection killed).
    pub truncate: f64,
    /// P(one bit of the frame body is flipped).
    pub bitflip: f64,
}

impl FaultPlan {
    /// A transparent plan (no faults).
    pub fn clean(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop: 0.0,
            delay_p: 0.0,
            delay: Duration::ZERO,
            truncate: 0.0,
            bitflip: 0.0,
        }
    }

    /// A moderately hostile link: occasional drops, delays, truncations
    /// and bitflips. Rates are chosen so a full session (7 frame
    /// traversals) survives untouched with probability ≈ 0.56: a site
    /// with a 20-attempt retry budget then fails with probability
    /// below 1e-7, while every fault kind still fires many times over
    /// a multi-site run.
    pub fn lossy(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop: 0.03,
            delay_p: 0.10,
            delay: Duration::from_millis(10),
            truncate: 0.02,
            bitflip: 0.03,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    None,
    Drop,
    Delay,
    Truncate,
    Bitflip,
}

fn pick_fault(rng: &mut SplitMix64, plan: &FaultPlan) -> Fault {
    // One uniform draw mapped over stacked probability bands keeps the
    // stream advancing exactly once per frame regardless of outcome.
    let x = rng.next_f64();
    let mut edge = plan.drop;
    if x < edge {
        return Fault::Drop;
    }
    edge += plan.truncate;
    if x < edge {
        return Fault::Truncate;
    }
    edge += plan.bitflip;
    if x < edge {
        return Fault::Bitflip;
    }
    edge += plan.delay_p;
    if x < edge {
        return Fault::Delay;
    }
    Fault::None
}

/// Running statistics of a proxy's mischief.
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Frames forwarded untouched (or merely delayed).
    pub forwarded: AtomicU64,
    /// Frames silently dropped.
    pub dropped: AtomicU64,
    /// Frames delayed.
    pub delayed: AtomicU64,
    /// Frames truncated (connection killed).
    pub truncated: AtomicU64,
    /// Frames with a bit flipped.
    pub bitflipped: AtomicU64,
}

impl FaultStats {
    /// Total faults injected (excluding delays, which still deliver).
    pub fn injected(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
            + self.truncated.load(Ordering::Relaxed)
            + self.bitflipped.load(Ordering::Relaxed)
    }
}

/// A frame-aware TCP proxy injecting deterministic faults.
pub struct FaultProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<FaultStats>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

/// Per-direction counter sheets the proxy mirrors its mischief into:
/// `proxy/c2s` (site → server) and `proxy/s2c` (server → site).
type DirectionSheets = [Option<Arc<CounterSheet>>; 2];

impl FaultProxy {
    /// Starts a proxy on an ephemeral loopback port forwarding to
    /// `upstream` with faults from `plan`.
    pub fn spawn(upstream: SocketAddr, plan: FaultPlan) -> std::io::Result<Self> {
        Self::spawn_inner(upstream, plan, [None, None])
    }

    /// Like [`FaultProxy::spawn`], but every fault decision is also
    /// mirrored live into `rec` under the `proxy/c2s` and `proxy/s2c`
    /// scopes (forwarded frames as `frames_sent`, faults as
    /// `faults_*`), so a run report can carry the injected-fault ledger
    /// next to the endpoints' retry counters.
    pub fn spawn_observed(
        upstream: SocketAddr,
        plan: FaultPlan,
        rec: &dyn Recorder,
    ) -> std::io::Result<Self> {
        Self::spawn_inner(
            upstream,
            plan,
            [rec.sheet("proxy/c2s"), rec.sheet("proxy/s2c")],
        )
    }

    fn spawn_inner(
        upstream: SocketAddr,
        plan: FaultPlan,
        sheets: DirectionSheets,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(FaultStats::default());
        let accept_stop = Arc::clone(&stop);
        let accept_stats = Arc::clone(&stats);
        let accept_thread = std::thread::spawn(move || {
            let mut conn_id = 0u64;
            while !accept_stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((client, _)) => {
                        conn_id += 1;
                        let id = conn_id;
                        let stats = Arc::clone(&accept_stats);
                        let stop = Arc::clone(&accept_stop);
                        let sheets = sheets.clone();
                        std::thread::spawn(move || {
                            // Connection handling is best-effort: a dead
                            // upstream or mid-stream kill is exactly the
                            // failure mode under test.
                            let _ =
                                relay_connection(client, upstream, plan, id, stats, stop, sheets);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(FaultProxy {
            addr,
            stop,
            stats,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address sites should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The proxy's fault counters.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Stops accepting new connections (existing pumps drain on their
    /// own when their streams die).
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn relay_connection(
    client: TcpStream,
    upstream: SocketAddr,
    plan: FaultPlan,
    conn_id: u64,
    stats: Arc<FaultStats>,
    stop: Arc<AtomicBool>,
    sheets: DirectionSheets,
) -> std::io::Result<()> {
    let server = TcpStream::connect(upstream)?;
    client.set_nodelay(true).ok();
    server.set_nodelay(true).ok();
    let [c2s_sheet, s2c_sheet] = sheets;
    let c2s = {
        let from = client.try_clone()?;
        let to = server.try_clone()?;
        let stats = Arc::clone(&stats);
        let stop = Arc::clone(&stop);
        let mut rng = SplitMix64::new(plan.seed ^ conn_id.wrapping_mul(0x9e37_79b9) ^ 0x5157);
        std::thread::spawn(move || pump(from, to, plan, &mut rng, stats, stop, c2s_sheet))
    };
    let mut rng = SplitMix64::new(plan.seed ^ conn_id.wrapping_mul(0x9e37_79b9) ^ 0xd0b0);
    let _ = pump(server, client, plan, &mut rng, stats, stop, s2c_sheet);
    let _ = c2s.join();
    Ok(())
}

/// Forwards frames `from → to`, one fault decision per frame. Returns
/// when either stream dies or a truncation kills the connection.
fn pump(
    mut from: TcpStream,
    mut to: TcpStream,
    plan: FaultPlan,
    rng: &mut SplitMix64,
    stats: Arc<FaultStats>,
    stop: Arc<AtomicBool>,
    sheet: Option<Arc<CounterSheet>>,
) -> std::io::Result<()> {
    // Bounded reads so a stuck peer can't pin the pump past shutdown.
    from.set_read_timeout(Some(Duration::from_millis(100))).ok();
    loop {
        let mut prefix = [0u8; 4];
        if read_exact_interruptible(&mut from, &mut prefix, &stop).is_err() {
            // Peer closed or proxy stopping: mirror by closing our side.
            let _ = to.shutdown(std::net::Shutdown::Both);
            return Ok(());
        }
        let len = u32::from_le_bytes(prefix) as usize;
        // A nonsense prefix means the stream is already garbage; forward
        // the prefix raw and die, letting the endpoint reject it.
        if !(FRAME_OVERHEAD..=crate::frame::DEFAULT_MAX_FRAME_BYTES).contains(&len) {
            let _ = to.write_all(&prefix);
            let _ = to.shutdown(std::net::Shutdown::Both);
            return Ok(());
        }
        let mut body = vec![0u8; len];
        if read_exact_interruptible(&mut from, &mut body, &stop).is_err() {
            let _ = to.shutdown(std::net::Shutdown::Both);
            return Ok(());
        }
        match pick_fault(rng, &plan) {
            Fault::Drop => {
                stats.dropped.fetch_add(1, Ordering::Relaxed);
                if let Some(s) = &sheet {
                    s.add_faults(1, 0, 0, 0);
                }
                continue;
            }
            Fault::Truncate => {
                stats.truncated.fetch_add(1, Ordering::Relaxed);
                if let Some(s) = &sheet {
                    s.add_faults(0, 0, 1, 0);
                }
                // Forward the prefix plus a strict prefix of the body,
                // then kill the connection: the receiver sees a clean
                // mid-frame EOF, never a spliced stream.
                let cut = rng.below(len as u64) as usize;
                let _ = to.write_all(&prefix);
                let _ = to.write_all(&body[..cut]);
                let _ = to.flush();
                let _ = to.shutdown(std::net::Shutdown::Both);
                let _ = from.shutdown(std::net::Shutdown::Both);
                return Ok(());
            }
            Fault::Bitflip => {
                stats.bitflipped.fetch_add(1, Ordering::Relaxed);
                if let Some(s) = &sheet {
                    s.add_faults(0, 0, 0, 1);
                }
                let bit = rng.below((len * 8) as u64) as usize;
                body[bit / 8] ^= 1 << (bit % 8);
            }
            Fault::Delay => {
                stats.delayed.fetch_add(1, Ordering::Relaxed);
                if let Some(s) = &sheet {
                    s.add_faults(0, 1, 0, 0);
                }
                std::thread::sleep(plan.delay);
            }
            Fault::None => {}
        }
        stats.forwarded.fetch_add(1, Ordering::Relaxed);
        if let Some(s) = &sheet {
            // Forwarded (or merely delayed) frames count as traffic the
            // proxy put on the wire, in full frame-on-the-wire bytes.
            s.add_frame_sent(4 + len as u64, (len - FRAME_OVERHEAD) as u64);
        }
        to.write_all(&prefix)?;
        to.write_all(&body)?;
        to.flush()?;
    }
}

/// `read_exact` that re-polls on timeout until `stop` is set, so pump
/// threads exit promptly on proxy shutdown instead of blocking forever.
fn read_exact_interruptible(
    from: &mut TcpStream,
    buf: &mut [u8],
    stop: &AtomicBool,
) -> std::io::Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        if stop.load(Ordering::Relaxed) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "proxy shutting down",
            ));
        }
        match from.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed",
                ))
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = SplitMix64::new(43);
        let c: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert_ne!(a, c);
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fault_bands_respect_probabilities() {
        let plan = FaultPlan {
            seed: 9,
            drop: 0.25,
            delay_p: 0.25,
            delay: Duration::ZERO,
            truncate: 0.25,
            bitflip: 0.25,
        };
        let mut rng = SplitMix64::new(plan.seed);
        let mut counts = [0u32; 5];
        for _ in 0..4000 {
            let idx = match pick_fault(&mut rng, &plan) {
                Fault::None => 0,
                Fault::Drop => 1,
                Fault::Delay => 2,
                Fault::Truncate => 3,
                Fault::Bitflip => 4,
            };
            counts[idx] += 1;
        }
        assert_eq!(counts[0], 0, "bands sum to 1.0, nothing passes clean");
        for (i, &c) in counts.iter().enumerate().skip(1) {
            let share = c as f64 / 4000.0;
            assert!(
                (share - 0.25).abs() < 0.05,
                "band {i} got share {share}, expected ~0.25"
            );
        }
    }

    #[test]
    fn clean_plan_forwards_everything() {
        let plan = FaultPlan::clean(1);
        let mut rng = SplitMix64::new(plan.seed);
        for _ in 0..500 {
            assert_eq!(pick_fault(&mut rng, &plan), Fault::None);
        }
    }
}
