//! Bounded retries with exponential backoff.
//!
//! Sites retry the *whole session* (reconnect, handshake, re-upload,
//! re-receive) rather than individual frames: every operation in the
//! protocol is idempotent on the server side, so replaying the session
//! from the top is always safe and keeps per-frame state machines out
//! of the recovery path.

use std::time::Duration;

/// Retry budget and backoff schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (the first try counts; `1` means no retries).
    pub attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Ceiling on the exponentially growing delay.
    pub max_delay: Duration,
}

impl RetryPolicy {
    /// The default site policy: 5 attempts, 50 ms doubling to 800 ms.
    pub fn standard() -> Self {
        RetryPolicy {
            attempts: 5,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_millis(800),
        }
    }

    /// A single attempt, no retries.
    pub fn once() -> Self {
        RetryPolicy {
            attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    /// The backoff before retry number `retry` (1-based): doubles from
    /// `base_delay`, clamped to `max_delay`.
    pub fn delay_before(&self, retry: u32) -> Duration {
        if retry == 0 || self.base_delay.is_zero() {
            return Duration::ZERO;
        }
        let factor = 1u32 << (retry - 1).min(16);
        let d = self.base_delay.saturating_mul(factor);
        d.min(self.max_delay)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_clamps() {
        let p = RetryPolicy {
            attempts: 6,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_millis(350),
        };
        assert_eq!(p.delay_before(1), Duration::from_millis(100));
        assert_eq!(p.delay_before(2), Duration::from_millis(200));
        assert_eq!(p.delay_before(3), Duration::from_millis(350));
        assert_eq!(p.delay_before(4), Duration::from_millis(350));
    }

    #[test]
    fn zero_base_never_sleeps() {
        let p = RetryPolicy::once();
        for retry in 0..5 {
            assert_eq!(p.delay_before(retry), Duration::ZERO);
        }
    }

    #[test]
    fn huge_retry_counts_do_not_overflow() {
        let p = RetryPolicy::standard();
        assert_eq!(p.delay_before(u32::MAX), p.max_delay);
    }
}
