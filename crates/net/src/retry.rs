//! Bounded retries with exponential backoff.
//!
//! Sites retry the *whole session* (reconnect, handshake, re-upload,
//! re-receive) rather than individual frames: every operation in the
//! protocol is idempotent on the server side, so replaying the session
//! from the top is always safe and keeps per-frame state machines out
//! of the recovery path.

use std::time::Duration;

/// Retry budget and backoff schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (the first try counts; `1` means no retries).
    pub attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Ceiling on the exponentially growing delay.
    pub max_delay: Duration,
}

impl RetryPolicy {
    /// The default site policy: 5 attempts, 50 ms doubling to 800 ms.
    pub fn standard() -> Self {
        RetryPolicy {
            attempts: 5,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_millis(800),
        }
    }

    /// A single attempt, no retries.
    pub fn once() -> Self {
        RetryPolicy {
            attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    /// The backoff before retry number `retry` (1-based): doubles from
    /// `base_delay`, clamped to `max_delay`.
    ///
    /// Computed in u128 nanoseconds so a large `base_delay` combined
    /// with a deep retry count saturates instead of wrapping; the old
    /// u32-factor shift capped the exponent but still overflowed the
    /// multiply for second-scale bases past retry ~17.
    pub fn delay_before(&self, retry: u32) -> Duration {
        if retry == 0 || self.base_delay.is_zero() {
            return Duration::ZERO;
        }
        let shift = (retry - 1).min(63);
        let nanos = self.base_delay.as_nanos().saturating_mul(1u128 << shift);
        let grown = if nanos > u64::MAX as u128 {
            Duration::MAX
        } else {
            Duration::from_nanos(nanos as u64)
        };
        grown.min(self.max_delay)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_clamps() {
        let p = RetryPolicy {
            attempts: 6,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_millis(350),
        };
        assert_eq!(p.delay_before(1), Duration::from_millis(100));
        assert_eq!(p.delay_before(2), Duration::from_millis(200));
        assert_eq!(p.delay_before(3), Duration::from_millis(350));
        assert_eq!(p.delay_before(4), Duration::from_millis(350));
    }

    #[test]
    fn zero_base_never_sleeps() {
        let p = RetryPolicy::once();
        for retry in 0..5 {
            assert_eq!(p.delay_before(retry), Duration::ZERO);
        }
    }

    #[test]
    fn huge_retry_counts_do_not_overflow() {
        let p = RetryPolicy::standard();
        assert_eq!(p.delay_before(u32::MAX), p.max_delay);
    }

    #[test]
    fn second_scale_base_survives_deep_retries() {
        // base = 10 s ≈ 1e10 ns. At retry 17 the factor is 2^16, so the
        // grown delay is ~6.5e14 ns — fits in u64 but overflowed the
        // old u32 factor multiply. At retry 33 the factor alone no
        // longer fits in u32; at 64+ the shift saturates at 63. All
        // must clamp cleanly to max_delay.
        let p = RetryPolicy {
            attempts: u32::MAX,
            base_delay: Duration::from_secs(10),
            max_delay: Duration::from_secs(120),
        };
        for retry in [17, 33, 64, 1_000, u32::MAX] {
            assert_eq!(p.delay_before(retry), p.max_delay, "retry {retry}");
        }
        // Below the clamp the doubling is exact.
        assert_eq!(p.delay_before(1), Duration::from_secs(10));
        assert_eq!(p.delay_before(4), Duration::from_secs(80));
    }

    #[test]
    fn max_delay_beyond_u64_nanos_saturates_to_duration_max() {
        // A max_delay too large for u64 nanoseconds: the grown delay
        // saturates to Duration::MAX and the clamp keeps max_delay.
        let p = RetryPolicy {
            attempts: u32::MAX,
            base_delay: Duration::from_secs(1 << 40),
            max_delay: Duration::MAX,
        };
        assert_eq!(p.delay_before(40), Duration::MAX);
    }
}
