//! Wire-level instrumentation for the serving layer.
//!
//! [`WireMetrics`] is the one handle both protocol ends thread through
//! their frame I/O. It captures, per observed party:
//!
//! * an **aggregate scope** (`net/server`, `net/site[i]`) — frames and
//!   bytes in both directions (full wire size *and* payload size),
//!   rejected-frame classification (checksum / truncated / oversize),
//!   handshake rejections, retries, and total backoff wait;
//! * a **per-kind scope** (`net/server/HELLO`, ...) counting frames
//!   and bytes of each [`FrameKind`] separately, so a report can answer
//!   "how many GLOBAL_MODEL resends crossed the wire?" without a new
//!   counter type;
//! * **latency histograms** `net/frame_write_ns`, `net/frame_read_ns`
//!   (per frame) and `net/session_ns` (per session attempt).
//!
//! Everything flows through the [`Recorder`] trait. When the recorder
//! is disabled ([`dbdc_obs::NoopRecorder`]) every handle is `None` and
//! the observed read/write paths take a branch and call straight into
//! the frame layer — no clock reads, no atomics, zero allocation — so
//! the uninstrumented hot path keeps its full speed.
//!
//! The struct owns only `Arc`s, so the server's per-connection handler
//! threads (`'static`) can each hold a clone.

use std::io::{Read, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dbdc_obs::{CounterSheet, HistSheet, Recorder};

use crate::error::{FrameError, NetError};
use crate::frame::{read_frame, write_frame, Frame, FrameKind};

/// Fixed per-frame wire overhead beyond the payload: 4-byte length
/// prefix + kind byte + 8-byte checksum.
pub const WIRE_OVERHEAD: u64 = 4 + crate::frame::FRAME_OVERHEAD as u64;

/// All frame kinds, in `FrameKind` discriminant order (discriminants
/// start at 1, so `kind as usize - 1` indexes this array).
const KINDS: [FrameKind; 8] = [
    FrameKind::Hello,
    FrameKind::HelloAck,
    FrameKind::LocalModel,
    FrameKind::ModelAck,
    FrameKind::GlobalModel,
    FrameKind::GlobalAck,
    FrameKind::Error,
    FrameKind::Goodbye,
];

/// Shared wire-instrumentation handles for one observed party.
#[derive(Clone, Default)]
pub struct WireMetrics {
    /// Aggregate counters for this party (`net/server`, `net/site[i]`).
    agg: Option<Arc<CounterSheet>>,
    /// Per-[`FrameKind`] counters, indexed by `kind as usize - 1`.
    per_kind: [Option<Arc<CounterSheet>>; 8],
    write_hist: Option<Arc<HistSheet>>,
    read_hist: Option<Arc<HistSheet>>,
    session_hist: Option<Arc<HistSheet>>,
}

impl WireMetrics {
    /// Handles for the party recording under `scope` (e.g.
    /// `net/site[3]`). With a disabled recorder this is free: every
    /// handle stays `None` and no sheet is ever requested.
    pub fn new(rec: &dyn Recorder, scope: &str) -> WireMetrics {
        if !rec.is_enabled() {
            return WireMetrics::default();
        }
        WireMetrics {
            agg: rec.sheet(scope),
            per_kind: KINDS.map(|k| rec.sheet(&format!("{scope}/{}", k.name()))),
            write_hist: rec.hist("net/frame_write_ns"),
            read_hist: rec.hist("net/frame_read_ns"),
            session_hist: rec.hist("net/session_ns"),
        }
    }

    /// The never-recording handle (what `new` returns for a
    /// [`dbdc_obs::NoopRecorder`]).
    pub fn disabled() -> WireMetrics {
        WireMetrics::default()
    }

    /// Whether any sheet is attached; the observed I/O paths skip all
    /// timing when this is false.
    fn live(&self) -> bool {
        self.agg.is_some()
    }

    /// Writes one frame, counting it (aggregate + per-kind) and timing
    /// the write.
    pub fn write_frame_observed(&self, w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
        if !self.live() {
            return write_frame(w, frame);
        }
        let t0 = Instant::now();
        let result = write_frame(w, frame);
        let elapsed = t0.elapsed();
        if result.is_ok() {
            let payload = frame.payload.len() as u64;
            let wire = payload + WIRE_OVERHEAD;
            if let Some(s) = &self.agg {
                s.add_frame_sent(wire, payload);
            }
            if let Some(s) = &self.per_kind[frame.kind as usize - 1] {
                s.add_frame_sent(wire, payload);
            }
            if let Some(h) = &self.write_hist {
                h.record_duration(elapsed);
            }
        }
        result
    }

    /// Reads one frame, counting it on success and classifying the
    /// rejection on failure (checksum / truncated / oversize). Timeouts
    /// and connection failures are not counted — they are link events,
    /// not frame rejections, and surface through retry counters.
    pub fn read_frame_observed(
        &self,
        r: &mut impl Read,
        max_frame_bytes: usize,
    ) -> Result<Frame, NetError> {
        if !self.live() {
            return read_frame(r, max_frame_bytes);
        }
        let t0 = Instant::now();
        let result = read_frame(r, max_frame_bytes);
        let elapsed = t0.elapsed();
        match &result {
            Ok(frame) => {
                let payload = frame.payload.len() as u64;
                let wire = payload + WIRE_OVERHEAD;
                if let Some(s) = &self.agg {
                    s.add_frame_received(wire, payload);
                }
                if let Some(s) = &self.per_kind[frame.kind as usize - 1] {
                    s.add_frame_received(wire, payload);
                }
                if let Some(h) = &self.read_hist {
                    h.record_duration(elapsed);
                }
            }
            Err(e) => self.count_read_error(e),
        }
        result
    }

    /// Books a failed read under the matching reject counter.
    fn count_read_error(&self, e: &NetError) {
        let Some(s) = &self.agg else { return };
        match e {
            NetError::Frame(FrameError::BadChecksum) => s.add_checksum_failure(),
            NetError::Frame(FrameError::TooLarge { .. }) => s.add_oversize_reject(),
            NetError::Frame(FrameError::TooShort(_)) | NetError::Frame(FrameError::BadKind(_)) => {
                s.add_truncated_reject()
            }
            // A stream that dies mid-frame is a truncated frame too.
            NetError::Io(io) if io.kind() == std::io::ErrorKind::UnexpectedEof => {
                s.add_truncated_reject()
            }
            _ => {}
        }
    }

    /// Records one whole-session retry and the backoff slept before it.
    pub fn add_retry(&self, backoff: Duration) {
        if let Some(s) = &self.agg {
            s.add_retry(backoff);
        }
    }

    /// Records a session refused during the HELLO exchange.
    pub fn add_handshake_rejection(&self) {
        if let Some(s) = &self.agg {
            s.add_handshake_rejection();
        }
    }

    /// Records one session attempt's wall time (connect → outcome)
    /// into `net/session_ns`.
    pub fn record_session(&self, wall: Duration) {
        if let Some(h) = &self.session_hist {
            h.record_duration(wall);
        }
    }
}

impl std::fmt::Debug for WireMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireMetrics")
            .field("live", &self.live())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::encode_frame;
    use dbdc_obs::{NoopRecorder, RecordingRecorder};

    #[test]
    fn noop_recorder_attaches_nothing() {
        let m = WireMetrics::new(&NoopRecorder, "net/site[0]");
        assert!(!m.live());
        // Observed I/O still works, straight through.
        let mut out = Vec::new();
        m.write_frame_observed(&mut out, &Frame::bare(FrameKind::ModelAck))
            .expect("write through disabled metrics");
        let back = m
            .read_frame_observed(&mut &out[..], 1024)
            .expect("read through disabled metrics");
        assert_eq!(back.kind, FrameKind::ModelAck);
    }

    #[test]
    fn frames_count_into_aggregate_and_per_kind_scopes() {
        let rec = RecordingRecorder::new();
        let m = WireMetrics::new(&rec, "net/site[0]");
        let mut out = Vec::new();
        let hello = Frame::new(FrameKind::Hello, vec![0u8; 10]);
        m.write_frame_observed(&mut out, &hello).expect("write");
        m.write_frame_observed(&mut out, &Frame::bare(FrameKind::GlobalAck))
            .expect("write");
        let mut r = &out[..];
        m.read_frame_observed(&mut r, 1024).expect("read hello");
        m.read_frame_observed(&mut r, 1024).expect("read ack");

        let agg = rec.counters("net/site[0]");
        assert_eq!(agg.frames_sent, 2);
        assert_eq!(agg.frames_received, 2);
        // HELLO wire = 10 payload + 13 overhead; bare ack = 13.
        assert_eq!(agg.wire_bytes_sent, 23 + 13);
        assert_eq!(agg.wire_bytes_received, 23 + 13);
        assert_eq!(agg.bytes_sent, 10);

        let hello_scope = rec.counters("net/site[0]/HELLO");
        assert_eq!(hello_scope.frames_sent, 1);
        assert_eq!(hello_scope.wire_bytes_sent, 23);
        let ack_scope = rec.counters("net/site[0]/GLOBAL_ACK");
        assert_eq!(ack_scope.frames_sent, 1);
        assert_eq!(ack_scope.wire_bytes_sent, 13);

        // Both per-frame histograms saw both frames.
        assert_eq!(rec.histogram("net/frame_write_ns").count(), 2);
        assert_eq!(rec.histogram("net/frame_read_ns").count(), 2);
    }

    #[test]
    fn read_failures_classify_into_reject_counters() {
        let rec = RecordingRecorder::new();
        let m = WireMetrics::new(&rec, "net/server");

        // Checksum failure: flip a payload bit.
        let mut bytes = encode_frame(&Frame::new(FrameKind::LocalModel, vec![9u8; 20]));
        bytes[8] ^= 1;
        assert!(m.read_frame_observed(&mut &bytes[..], 1 << 20).is_err());

        // Oversize: length prefix above the ceiling.
        let big = encode_frame(&Frame::new(FrameKind::LocalModel, vec![0u8; 64]));
        assert!(m.read_frame_observed(&mut &big[..], 16).is_err());

        // Truncated: stream dies mid-frame.
        let cut = &encode_frame(&Frame::bare(FrameKind::Goodbye))[..6];
        assert!(m.read_frame_observed(&mut &cut[..], 1 << 20).is_err());

        let c = rec.counters("net/server");
        assert_eq!(c.checksum_failures, 1);
        assert_eq!(c.oversize_rejects, 1);
        assert_eq!(c.truncated_rejects, 1);
        assert_eq!(c.frames_received, 0);
    }

    #[test]
    fn retry_and_handshake_and_session_helpers_record() {
        let rec = RecordingRecorder::new();
        let m = WireMetrics::new(&rec, "net/site[1]");
        m.add_retry(Duration::from_millis(2));
        m.add_retry(Duration::from_millis(4));
        m.add_handshake_rejection();
        m.record_session(Duration::from_millis(10));
        let c = rec.counters("net/site[1]");
        assert_eq!(c.retries, 2);
        assert_eq!(c.backoff_wait_ns, 6_000_000);
        assert_eq!(c.handshake_rejections, 1);
        assert_eq!(rec.histogram("net/session_ns").count(), 1);
    }
}
