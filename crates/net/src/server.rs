//! The DBDC server over real TCP.
//!
//! [`serve`] accepts connections from `n_sites` client sites
//! (thread-per-connection), runs the session protocol with each, builds
//! the global model exactly once when the last local model arrives, and
//! returns when every site has confirmed receipt of the broadcast.
//!
//! # Recovery model
//!
//! Every server-side operation is **idempotent**: a site that loses its
//! connection at any point simply reconnects and replays the whole
//! session (handshake → upload → receive global → ack). A re-uploaded
//! model from a site whose model is already stored is acknowledged and
//! discarded — deterministic sites re-encode byte-identical models, so
//! first-wins is safe. The global model is built exactly once.
//!
//! The final exchange is two-generals-shaped, resolved by making the
//! *site* the retrying party: the server sends GOODBYE after recording
//! a GLOBAL_ACK, and a site that never sees the GOODBYE replays the
//! session. The server therefore keeps serving replays for a drain
//! window after all sites have acked, bounded by the overall deadline.

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use dbdc::wire;
use dbdc::{build_global_model_observed, DbdcParams, GlobalModel, LocalModel};
use dbdc_obs::Recorder;

use crate::error::NetError;
use crate::frame::{Frame, FrameKind, Hello, DEFAULT_MAX_FRAME_BYTES, PROTOCOL_VERSION};
use crate::metrics::WireMetrics;

/// Configuration of a serving run.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// How many sites the session expects; [`serve`] returns once all
    /// of them have confirmed the broadcast.
    pub n_sites: usize,
    /// The protocol parameters (the server only uses the global-phase
    /// fields, but the full set keeps one source of truth).
    pub params: DbdcParams,
    /// Per-read socket timeout; also paces GLOBAL_MODEL resends while
    /// waiting for a site's ack.
    pub read_timeout: Duration,
    /// How many times GLOBAL_MODEL is re-sent on an ack-read timeout
    /// before the connection is abandoned (the site will reconnect).
    pub resend_attempts: u32,
    /// Hard ceiling on the whole run.
    pub deadline: Duration,
    /// How long to keep serving session replays after all sites acked
    /// *and* the last connection activity, so a site whose GOODBYE was
    /// lost can come back mid-backoff and re-confirm. Must exceed the
    /// sites' maximum retry backoff.
    pub drain_window: Duration,
    /// Ceiling on incoming frame bodies.
    pub max_frame_bytes: usize,
}

impl ServeOptions {
    /// Defaults for `n_sites` sites: 2 s reads, 3 resends, 60 s
    /// deadline, 1 s drain (above [`crate::RetryPolicy::standard`]'s
    /// 800 ms backoff ceiling).
    pub fn new(n_sites: usize, params: DbdcParams) -> Self {
        ServeOptions {
            n_sites,
            params,
            read_timeout: Duration::from_secs(2),
            resend_attempts: 3,
            deadline: Duration::from_secs(60),
            drain_window: Duration::from_secs(1),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        }
    }
}

/// What a completed serving run produced.
#[derive(Debug, Clone)]
pub struct ServerOutcome {
    /// The global model built from all local models.
    pub global: GlobalModel,
    /// Every site's decoded local model, in site order.
    pub models: Vec<LocalModel>,
    /// Exact encoded size of each site's local model.
    pub per_site_bytes_up: Vec<usize>,
    /// Exact encoded size of the broadcast global model.
    pub global_model_bytes: usize,
    /// Total representatives across all local models.
    pub n_representatives: usize,
    /// Measured wall time from serve start until the last local model
    /// arrived — the real (concurrent) upload phase.
    pub upload_wall: Duration,
    /// Measured wall time of building + encoding the global model.
    pub global_wall: Duration,
    /// Measured wall time from the global model being ready until the
    /// last site confirmed receipt — the real broadcast phase.
    pub broadcast_wall: Duration,
    /// Connections accepted over the run (> `n_sites` means retries
    /// happened).
    pub connections: u64,
    /// Measured wall time of the whole serve call — bind to return,
    /// drain window included. Unlike the phase walls it bounds every
    /// session a site could have run, so a timeline can use it as the
    /// serve window that all remote spans nest inside.
    pub serve_wall: Duration,
    /// Per-site handshake timing on the server's clock: offset from
    /// serve start and duration of the HELLO → HELLO_ACK exchange of
    /// the *last* connection each site opened (the one that completed
    /// its session). `None` only if the site never completed a
    /// handshake — impossible on a successful run.
    pub handshakes: Vec<Option<(Duration, Duration)>>,
}

struct ServerState {
    models: Vec<Option<LocalModel>>,
    bytes_up: Vec<Option<usize>>,
    global: Option<(GlobalModel, Vec<u8>)>,
    acked: Vec<bool>,
    active_conns: usize,
    last_activity: Instant,
    upload_wall: Duration,
    global_wall: Duration,
    all_acked_at: Option<Instant>,
    handshakes: Vec<Option<(Duration, Duration)>>,
}

impl ServerState {
    fn all_models_in(&self) -> bool {
        self.models.iter().all(|m| m.is_some())
    }

    fn all_acked(&self) -> bool {
        !self.acked.is_empty() && self.acked.iter().all(|&a| a)
    }
}

struct Shared {
    state: Mutex<ServerState>,
    ready: Condvar,
    stop: AtomicBool,
    connections: AtomicU64,
    started: Instant,
    opts: ServeOptions,
}

/// Runs a full DBDC serving session on `listener` (which should already
/// be bound; pass a `127.0.0.1:0` bind for tests). Blocks until all
/// sites confirm the broadcast or the deadline passes. Counter scopes
/// land in `rec` under `server` (bytes up/down, representatives) and
/// `net/server` (wire traffic, aggregate + per frame kind), with frame
/// and per-connection latencies in the `net/*_ns` histograms.
pub fn serve(
    listener: TcpListener,
    opts: ServeOptions,
    rec: &dyn Recorder,
) -> Result<ServerOutcome, NetError> {
    assert!(
        opts.n_sites > 0,
        "a serving session needs at least one site"
    );
    listener.set_nonblocking(true)?;
    let shared = Arc::new(Shared {
        state: Mutex::new(ServerState {
            models: vec![None; opts.n_sites],
            bytes_up: vec![None; opts.n_sites],
            global: None,
            acked: vec![false; opts.n_sites],
            active_conns: 0,
            last_activity: Instant::now(),
            upload_wall: Duration::ZERO,
            global_wall: Duration::ZERO,
            all_acked_at: None,
            handshakes: vec![None; opts.n_sites],
        }),
        ready: Condvar::new(),
        stop: AtomicBool::new(false),
        connections: AtomicU64::new(0),
        started: Instant::now(),
        opts,
    });
    let sheet = rec.sheet("server");
    let wire = WireMetrics::new(rec, "net/server");

    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let outcome = loop {
        if shared.started.elapsed() > shared.opts.deadline {
            shared.stop.store(true, Ordering::Relaxed);
            break Err(NetError::Deadline);
        }
        match listener.accept() {
            Ok((stream, _)) => {
                shared.connections.fetch_add(1, Ordering::Relaxed);
                {
                    let mut st = shared.state.lock().expect("server state poisoned");
                    st.active_conns += 1;
                    st.last_activity = Instant::now();
                }
                let shared = Arc::clone(&shared);
                let sheet = sheet.clone();
                let wire = wire.clone();
                handlers.push(std::thread::spawn(move || {
                    let _ = handle_connection(stream, &shared, sheet.as_ref(), &wire);
                    let mut st = shared.state.lock().expect("server state poisoned");
                    st.active_conns -= 1;
                    st.last_activity = Instant::now();
                    shared.ready.notify_all();
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => {
                shared.stop.store(true, Ordering::Relaxed);
                break Err(NetError::Io(e));
            }
        }
        let st = shared.state.lock().expect("server state poisoned");
        if st.all_acked_at.is_some() {
            // Stay up through the drain window (measured from the last
            // connection activity) so a site whose GOODBYE was lost can
            // come back mid-backoff and re-confirm.
            let quiet = st.last_activity.elapsed() > shared.opts.drain_window;
            if quiet {
                // Tell lingering handlers (e.g. a dangling connection
                // that never sent HELLO) to stop re-arming their reads.
                shared.stop.store(true, Ordering::Relaxed);
                if st.active_conns == 0 {
                    drop(st);
                    break Ok(());
                }
            }
        }
    };
    // Handler threads poll `stop` between blocking reads (which are all
    // timeout-bounded), so this join is prompt.
    for h in handlers {
        let _ = h.join();
    }
    outcome?;

    let st = shared.state.lock().expect("server state poisoned");
    let models: Vec<LocalModel> = st
        .models
        .iter()
        .map(|m| m.clone().expect("all in"))
        .collect();
    let (global, encoded) = st.global.clone().expect("global built");
    let n_representatives = models.iter().map(|m| m.len()).sum();
    let per_site_bytes_up: Vec<usize> = st.bytes_up.iter().map(|b| b.expect("all in")).collect();
    if let Some(s) = &sheet {
        s.add_representatives(n_representatives as u64);
    }
    let global_ready = st.upload_wall + st.global_wall;
    let broadcast_wall = st
        .all_acked_at
        .map(|t| (t - shared.started).saturating_sub(global_ready))
        .unwrap_or(Duration::ZERO);
    Ok(ServerOutcome {
        handshakes: st.handshakes.clone(),
        per_site_bytes_up,
        global_model_bytes: encoded.len(),
        n_representatives,
        upload_wall: st.upload_wall,
        global_wall: st.global_wall,
        broadcast_wall,
        connections: shared.connections.load(Ordering::Relaxed),
        serve_wall: shared.started.elapsed(),
        global,
        models,
    })
}

/// One connection's session. Any error just abandons the connection —
/// the site owns recovery by replaying.
fn handle_connection(
    mut stream: TcpStream,
    shared: &Shared,
    sheet: Option<&std::sync::Arc<dbdc_obs::CounterSheet>>,
    wire: &WireMetrics,
) -> Result<(), NetError> {
    let opts = &shared.opts;
    stream.set_read_timeout(Some(opts.read_timeout))?;
    stream.set_nodelay(true).ok();
    // The handshake window on the server's clock starts when the
    // handler picks up the freshly accepted connection — pairs with the
    // site's connect-to-HELLO_ACK window for clock alignment.
    let hs_start = shared.started.elapsed();
    let conn_start = Instant::now();

    // --- Handshake. ---
    let frame = read_frame_interruptible(&mut stream, shared, wire)?;
    if frame.kind != FrameKind::Hello {
        return Err(NetError::Protocol(format!(
            "expected HELLO, got {}",
            frame.kind.name()
        )));
    }
    let hello = Hello::decode(&frame.payload)
        .ok_or_else(|| NetError::Protocol("malformed HELLO payload".into()))?;
    if let Err(reason) = validate_hello(&hello, opts.n_sites) {
        // Fatal for the site: tell it why so it stops retrying.
        wire.add_handshake_rejection();
        let _ = wire.write_frame_observed(
            &mut stream,
            &Frame::new(FrameKind::Error, reason.clone().into_bytes()),
        );
        return Err(NetError::Handshake(reason));
    }
    let site = hello.site as usize;
    wire.write_frame_observed(&mut stream, &Frame::bare(FrameKind::HelloAck))?;
    {
        // Overwrite-last: the connection that completes the session is
        // the site's final (successful) attempt.
        let mut st = shared.state.lock().expect("server state poisoned");
        st.handshakes[site] = Some((hs_start, conn_start.elapsed()));
    }

    // --- Upload. ---
    let frame = read_frame_interruptible(&mut stream, shared, wire)?;
    if frame.kind != FrameKind::LocalModel {
        return Err(NetError::Protocol(format!(
            "expected LOCAL_MODEL, got {}",
            frame.kind.name()
        )));
    }
    // Decode before acking: a corrupt payload must read as "not
    // delivered" so the site retries.
    let model = wire::decode_local_model(&frame.payload)?;
    {
        let mut st = shared.state.lock().expect("server state poisoned");
        if st.models[site].is_none() {
            if let Some(s) = sheet {
                s.add_bytes_received(frame.payload.len() as u64);
            }
            st.models[site] = Some(model);
            st.bytes_up[site] = Some(frame.payload.len());
            if st.all_models_in() && st.global.is_none() {
                // Exactly-once global build, on the thread that
                // delivered the last model.
                st.upload_wall = shared.started.elapsed();
                let t0 = Instant::now();
                let models: Vec<LocalModel> = st
                    .models
                    .iter()
                    .map(|m| m.clone().expect("all in"))
                    .collect();
                let global = build_global_model_observed(&models, &opts.params, sheet);
                let encoded = wire::encode_global_model(&global)
                    .expect("global model fits the wire format")
                    .to_vec();
                st.global_wall = t0.elapsed();
                st.global = Some((global, encoded));
                shared.ready.notify_all();
            }
        }
        // else: replayed upload from a deterministic site — identical
        // bytes, nothing to store.
    }
    wire.write_frame_observed(&mut stream, &Frame::bare(FrameKind::ModelAck))?;

    // --- Wait for the global model (the last uploader builds it). ---
    let encoded_global = {
        let mut st = shared.state.lock().expect("server state poisoned");
        loop {
            if let Some((_, encoded)) = &st.global {
                break encoded.clone();
            }
            if shared.stop.load(Ordering::Relaxed) || shared.started.elapsed() > opts.deadline {
                return Err(NetError::Deadline);
            }
            let (guard, _) = shared
                .ready
                .wait_timeout(st, Duration::from_millis(50))
                .expect("server state poisoned");
            st = guard;
        }
    };

    // --- Broadcast until the site acks. ---
    for _ in 0..=opts.resend_attempts {
        wire.write_frame_observed(
            &mut stream,
            &Frame::new(FrameKind::GlobalModel, encoded_global.clone()),
        )?;
        if let Some(s) = sheet {
            s.add_bytes_sent(encoded_global.len() as u64);
        }
        match wire.read_frame_observed(&mut stream, opts.max_frame_bytes) {
            Ok(f) if f.kind == FrameKind::GlobalAck => {
                {
                    let mut st = shared.state.lock().expect("server state poisoned");
                    st.acked[site] = true;
                    if st.all_acked() && st.all_acked_at.is_none() {
                        st.all_acked_at = Some(Instant::now());
                    }
                }
                shared.ready.notify_all();
                // Best-effort: if this is lost the site replays the
                // session and gets another one.
                let _ = wire.write_frame_observed(&mut stream, &Frame::bare(FrameKind::Goodbye));
                return Ok(());
            }
            Ok(f) => {
                return Err(NetError::Protocol(format!(
                    "expected GLOBAL_ACK, got {}",
                    f.kind.name()
                )));
            }
            Err(e) if e.is_timeout() && !shared.stop.load(Ordering::Relaxed) => {
                // Ack lost or site still reading: resend the broadcast.
                continue;
            }
            Err(e) => return Err(e),
        }
    }
    Err(NetError::Exhausted {
        attempts: opts.resend_attempts + 1,
        last: "no GLOBAL_ACK".into(),
    })
}

fn validate_hello(hello: &Hello, n_sites: usize) -> Result<(), String> {
    if hello.version != PROTOCOL_VERSION {
        return Err(format!(
            "protocol version mismatch: server speaks {PROTOCOL_VERSION}, site sent {}",
            hello.version
        ));
    }
    if hello.n_sites as usize != n_sites {
        return Err(format!(
            "site count mismatch: server expects {n_sites}, site sent {}",
            hello.n_sites
        ));
    }
    if hello.site as usize >= n_sites {
        return Err(format!(
            "site id {} out of range for {n_sites} sites",
            hello.site
        ));
    }
    Ok(())
}

/// A frame read that re-arms on timeout until the server stops, so an
/// idle connection (a site mid-backoff) doesn't get abandoned while the
/// run is still live.
fn read_frame_interruptible(
    stream: &mut TcpStream,
    shared: &Shared,
    wire: &WireMetrics,
) -> Result<Frame, NetError> {
    loop {
        match wire.read_frame_observed(stream, shared.opts.max_frame_bytes) {
            Err(e)
                if e.is_timeout()
                    && !shared.stop.load(Ordering::Relaxed)
                    && shared.started.elapsed() < shared.opts.deadline =>
            {
                continue;
            }
            other => return other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_validation_covers_all_mismatches() {
        assert!(validate_hello(&Hello::new(0, 4), 4).is_ok());
        assert!(validate_hello(&Hello::new(3, 4), 4).is_ok());
        let bad_version = Hello {
            version: PROTOCOL_VERSION + 1,
            site: 0,
            n_sites: 4,
        };
        assert!(validate_hello(&bad_version, 4)
            .unwrap_err()
            .contains("version"));
        assert!(validate_hello(&Hello::new(0, 5), 4)
            .unwrap_err()
            .contains("site count"));
        assert!(validate_hello(&Hello::new(4, 4), 4)
            .unwrap_err()
            .contains("out of range"));
    }
}
