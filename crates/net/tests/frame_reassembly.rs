//! TCP delivers frames in arbitrary fragments and dies at arbitrary
//! offsets. These properties pin down the frame reader against both:
//! any fragmentation reassembles to the identical frame, and any
//! truncation — including the fault shim's generator-driven cut points
//! — yields a clean error, never a panic, never a wrong frame.

use std::io::Read;

use dbdc_net::frame::{encode_frame, read_frame, Frame, FrameKind, DEFAULT_MAX_FRAME_BYTES};
use dbdc_net::SplitMix64;
use proptest::prelude::*;

/// A reader that returns at most one byte per `read` call — the most
/// fragmented stream TCP can legally produce.
struct TrickleReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Read for TrickleReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos == self.bytes.len() || buf.is_empty() {
            return Ok(0);
        }
        buf[0] = self.bytes[self.pos];
        self.pos += 1;
        Ok(1)
    }
}

/// A reader delivering the stream in caller-chosen chunk sizes.
struct ChunkedReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    chunks: Vec<usize>,
    next: usize,
}

impl Read for ChunkedReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos == self.bytes.len() || buf.is_empty() {
            return Ok(0);
        }
        let want = if self.next < self.chunks.len() {
            let c = self.chunks[self.next];
            self.next += 1;
            c.max(1)
        } else {
            buf.len()
        };
        let n = want.min(buf.len()).min(self.bytes.len() - self.pos);
        buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn kinds() -> [FrameKind; 8] {
    [
        FrameKind::Hello,
        FrameKind::HelloAck,
        FrameKind::LocalModel,
        FrameKind::ModelAck,
        FrameKind::GlobalModel,
        FrameKind::GlobalAck,
        FrameKind::Error,
        FrameKind::Goodbye,
    ]
}

proptest! {
    /// Single-byte reassembly: a frame delivered one byte at a time
    /// decodes to exactly the frame that was sent.
    #[test]
    fn single_byte_trickle_reassembles_exactly(
        kind_idx in 0usize..8,
        payload in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let frame = Frame::new(kinds()[kind_idx], payload);
        let bytes = encode_frame(&frame);
        let mut r = TrickleReader { bytes: &bytes, pos: 0 };
        let back = read_frame(&mut r, DEFAULT_MAX_FRAME_BYTES);
        prop_assert_eq!(back.ok(), Some(frame));
        prop_assert_eq!(r.pos, bytes.len());
    }

    /// Arbitrary fragmentation: any chunking of the stream reassembles
    /// to the identical frame.
    #[test]
    fn arbitrary_chunking_reassembles_exactly(
        kind_idx in 0usize..8,
        payload in prop::collection::vec(any::<u8>(), 0..300),
        chunks in prop::collection::vec(1usize..40, 0..64),
    ) {
        let frame = Frame::new(kinds()[kind_idx], payload);
        let bytes = encode_frame(&frame);
        let mut r = ChunkedReader { bytes: &bytes, pos: 0, chunks, next: 0 };
        let back = read_frame(&mut r, DEFAULT_MAX_FRAME_BYTES);
        prop_assert_eq!(back.ok(), Some(frame));
    }

    /// Every strict prefix of a valid frame — a connection dying
    /// mid-transfer — errors cleanly, even via a trickle reader.
    #[test]
    fn every_strict_prefix_errors_cleanly(
        kind_idx in 0usize..8,
        payload in prop::collection::vec(any::<u8>(), 0..120),
    ) {
        let frame = Frame::new(kinds()[kind_idx], payload);
        let bytes = encode_frame(&frame);
        for cut in 0..bytes.len() {
            let got = read_frame(&mut &bytes[..cut], DEFAULT_MAX_FRAME_BYTES);
            prop_assert!(got.is_err(), "prefix of {} bytes decoded", cut);
            let mut trickle = TrickleReader { bytes: &bytes[..cut], pos: 0 };
            let got = read_frame(&mut trickle, DEFAULT_MAX_FRAME_BYTES);
            prop_assert!(got.is_err(), "trickled prefix of {} bytes decoded", cut);
        }
    }

    /// The fault shim's truncate mode, replayed exactly: the shim picks
    /// its cut with `SplitMix64::below(body_len)` and always forwards
    /// the full length prefix plus that strict body prefix. Whatever
    /// the seed, the receiver reports an error.
    #[test]
    fn shim_style_truncations_error_cleanly(
        seed in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let frame = Frame::new(FrameKind::LocalModel, payload);
        let bytes = encode_frame(&frame);
        let body_len = bytes.len() - 4;
        let mut rng = SplitMix64::new(seed);
        let cut = rng.below(body_len as u64) as usize;
        let delivered = &bytes[..4 + cut];
        let got = read_frame(&mut &delivered[..], DEFAULT_MAX_FRAME_BYTES);
        prop_assert!(got.is_err(), "shim cut at body byte {} decoded", cut);
    }
}
