//! In-process loopback: a real TCP server and real TCP sites on
//! 127.0.0.1, asserted label-identical to the single-process runtime —
//! with and without an adversarial link in the middle.

use std::net::TcpListener;
use std::time::Duration;

use dbdc::{run_dbdc, DbdcOutcome, DbdcParams, EpsGlobal, Partitioner};
use dbdc_datagen::dataset_c;
use dbdc_geom::{Clustering, Dataset, Label};
use dbdc_net::{
    run_site, serve, FaultPlan, FaultProxy, NetError, RetryPolicy, ServeOptions, ServerOutcome,
    SiteOptions, SiteOutcome,
};
use dbdc_obs::{NoopRecorder, RecordingRecorder};

const N_SITES: usize = 4;

/// Full frame-on-the-wire overhead: length prefix + kind + checksum.
const WIRE: u64 = 13;

fn params() -> DbdcParams {
    DbdcParams::new(1.6, 5).with_eps_global(EpsGlobal::MultipleOfLocal(2.0))
}

fn partitioner() -> Partitioner {
    Partitioner::RandomEqual { seed: 7 }
}

/// Splits the dataset exactly like the in-process runtime does.
fn split(data: &Dataset) -> (Vec<Dataset>, Vec<Vec<u32>>) {
    let assignment = partitioner().assign(data, N_SITES);
    data.partition(N_SITES, &assignment)
}

/// Reassembles per-site labels into the full clustering, mirroring the
/// runtime's assembly step.
fn reassemble(n: usize, back: &[Vec<u32>], sites: &[SiteOutcome]) -> Clustering {
    let mut full = vec![Label::Noise; n];
    for (site, ids) in back.iter().enumerate() {
        for (pos, &orig) in ids.iter().enumerate() {
            full[orig as usize] = sites[site].labels.label(pos as u32);
        }
    }
    Clustering::from_labels(full)
}

/// Runs server + sites over loopback (optionally through a fault
/// proxy), returning everything needed for identity checks.
#[allow(clippy::type_complexity)]
fn networked_run(
    data: &Dataset,
    serve_opts: ServeOptions,
    site_opts: impl Fn(u32) -> SiteOptions,
    plan: Option<FaultPlan>,
) -> (
    Result<ServerOutcome, NetError>,
    Vec<Result<SiteOutcome, NetError>>,
    Option<FaultProxy>,
) {
    let (parts, _) = split(data);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let server_addr = listener.local_addr().expect("local addr");
    let proxy = plan.map(|p| FaultProxy::spawn(server_addr, p).expect("spawn proxy"));
    let connect_addr = proxy.as_ref().map(|p| p.addr()).unwrap_or(server_addr);
    let server = std::thread::spawn(move || serve(listener, serve_opts, &NoopRecorder));
    let site_results: Vec<Result<SiteOutcome, NetError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = parts
            .iter()
            .enumerate()
            .map(|(site, part)| {
                let opts = site_opts(site as u32);
                scope.spawn(move || run_site(connect_addr, part, &opts, &NoopRecorder))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("site thread panicked"))
            .collect()
    });
    let server_result = server.join().expect("server thread panicked");
    (server_result, site_results, proxy)
}

fn expected(data: &Dataset) -> DbdcOutcome {
    run_dbdc(data, &params(), partitioner(), N_SITES)
}

#[test]
fn clean_loopback_matches_in_process_runtime() {
    let g = dataset_c(31);
    let reference = expected(&g.data);
    let (_, back) = split(&g.data);

    let mut serve_opts = ServeOptions::new(N_SITES, params());
    serve_opts.drain_window = Duration::from_millis(150);
    let (server, sites, _) = networked_run(
        &g.data,
        serve_opts,
        |site| SiteOptions::new(site, N_SITES as u32, params()),
        None,
    );
    let server = server.expect("server completes");
    let sites: Vec<SiteOutcome> = sites
        .into_iter()
        .map(|s| s.expect("site completes"))
        .collect();

    // The distributed-over-TCP clustering is the in-process clustering.
    let assignment = reassemble(g.data.len(), &back, &sites);
    assert_eq!(assignment, reference.assignment);

    // The server saw exactly the in-process protocol: same global
    // model, same message sizes, one connection per site.
    assert_eq!(server.global, reference.global);
    assert_eq!(server.per_site_bytes_up, reference.per_site_bytes_up);
    assert_eq!(server.global_model_bytes, reference.global_model_bytes);
    assert_eq!(server.n_representatives, reference.n_representatives);
    assert_eq!(server.connections, N_SITES as u64);
    for (site, s) in sites.iter().enumerate() {
        assert_eq!(s.attempts, 1, "site {site} needed retries on a clean link");
        assert_eq!(s.bytes_up, reference.per_site_bytes_up[site]);
        assert_eq!(s.bytes_down, reference.global_model_bytes);
        assert_eq!(s.global, reference.global);
    }
    // The measured phases are real walls now, not model outputs.
    assert!(server.upload_wall > Duration::ZERO);
    assert!(server.broadcast_wall > Duration::ZERO);
}

#[test]
fn lossy_loopback_converges_to_identical_labels() {
    let g = dataset_c(32);
    let reference = expected(&g.data);
    let (_, back) = split(&g.data);

    let mut total_events = 0u64;
    for seed in [0xA11CEu64, 0xB0BB1E] {
        let mut serve_opts = ServeOptions::new(N_SITES, params());
        serve_opts.read_timeout = Duration::from_millis(500);
        serve_opts.deadline = Duration::from_secs(45);
        serve_opts.drain_window = Duration::from_millis(1200);
        let site_opts = |site: u32| {
            let mut o = SiteOptions::new(site, N_SITES as u32, params());
            o.connect_timeout = Duration::from_secs(1);
            o.read_timeout = Duration::from_millis(800);
            o.retry = RetryPolicy {
                attempts: 25,
                base_delay: Duration::from_millis(25),
                max_delay: Duration::from_millis(400),
            };
            o
        };
        let (server, sites, proxy) =
            networked_run(&g.data, serve_opts, site_opts, Some(FaultPlan::lossy(seed)));
        let server = server.expect("server converges through faults");
        let sites: Vec<SiteOutcome> = sites
            .into_iter()
            .map(|s| s.expect("site converges through faults"))
            .collect();

        // Drops, delays, truncations and bitflips changed nothing: the
        // result is byte- and label-identical to the clean run.
        let assignment = reassemble(g.data.len(), &back, &sites);
        assert_eq!(assignment, reference.assignment, "plan seed {seed:#x}");
        assert_eq!(server.global, reference.global);
        assert_eq!(server.per_site_bytes_up, reference.per_site_bytes_up);

        let proxy = proxy.expect("proxy ran");
        let stats = proxy.stats();
        total_events += stats.injected() + stats.delayed.load(std::sync::atomic::Ordering::Relaxed);
    }
    // Across both seeds the adversarial link did fire: with an 18%
    // per-frame event rate over ≥56 frames, two silent runs have
    // probability ~1e-5. Convergence above does not depend on this.
    assert!(total_events > 0, "fault proxy never fired across two runs");
}

/// A clean instrumented run: every byte the wire counters claim was
/// sent reconciles with frame-level arithmetic, and both ends agree.
#[test]
fn clean_run_wire_counters_reconcile_with_frame_arithmetic() {
    let g = dataset_c(35);
    let (parts, _) = split(&g.data);

    let rec = RecordingRecorder::new();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let mut serve_opts = ServeOptions::new(N_SITES, params());
    serve_opts.drain_window = Duration::from_millis(150);

    let (server, sites) = std::thread::scope(|scope| {
        let server = scope.spawn(|| serve(listener, serve_opts, &rec));
        let handles: Vec<_> = parts
            .iter()
            .enumerate()
            .map(|(site, part)| {
                let opts = SiteOptions::new(site as u32, N_SITES as u32, params());
                let rec = &rec;
                scope.spawn(move || run_site(addr, part, &opts, rec))
            })
            .collect();
        let sites: Vec<SiteOutcome> = handles
            .into_iter()
            .map(|h| {
                h.join()
                    .expect("site thread panicked")
                    .expect("site completes")
            })
            .collect();
        (
            server
                .join()
                .expect("server thread panicked")
                .expect("server completes"),
            sites,
        )
    });

    let mut sites_wire_sent = 0u64;
    let mut sites_wire_received = 0u64;
    for (i, s) in sites.iter().enumerate() {
        let agg = rec.counters(&format!("net/site[{i}]"));
        let hello = rec.counters(&format!("net/site[{i}]/HELLO"));
        let model = rec.counters(&format!("net/site[{i}]/LOCAL_MODEL"));
        let ack = rec.counters(&format!("net/site[{i}]/GLOBAL_ACK"));

        // One attempt on a clean link: one HELLO, one LOCAL_MODEL.
        assert_eq!(hello.frames_sent, 1, "site {i}");
        assert_eq!(model.frames_sent, 1, "site {i}");
        assert!(ack.frames_sent >= 1, "site {i}");
        assert_eq!(agg.retries, 0, "no retries on a clean link");
        assert_eq!(agg.checksum_failures + agg.truncated_rejects, 0);

        // The aggregate wire bytes are exactly the frame arithmetic:
        // HELLO carries a 10-byte payload, LOCAL_MODEL the encoded
        // model, GLOBAL_ACK is bare.
        let expected = (10 + WIRE) * hello.frames_sent
            + (s.bytes_up as u64 + WIRE) * model.frames_sent
            + WIRE * ack.frames_sent;
        assert_eq!(agg.wire_bytes_sent, expected, "site {i} wire identity");
        assert_eq!(
            agg.frames_sent,
            hello.frames_sent + model.frames_sent + ack.frames_sent
        );

        // Sub-phase timing of the successful attempt is populated and
        // ordered: handshake, then upload, then download.
        let p = s.session_phases;
        assert!(p.handshake > Duration::ZERO, "site {i}");
        assert!(p.upload_start >= p.handshake, "site {i}");
        assert!(p.download_start >= p.upload_start + p.upload, "site {i}");

        sites_wire_sent += agg.wire_bytes_sent;
        sites_wire_received += agg.wire_bytes_received;
    }

    // No proxy in the middle: the server's receive side is exactly the
    // sites' send side, and vice versa.
    let srv = rec.counters("net/server");
    assert_eq!(srv.wire_bytes_received, sites_wire_sent);
    assert_eq!(srv.wire_bytes_sent, sites_wire_received);
    assert_eq!(
        rec.counters("net/server/HELLO").frames_received,
        N_SITES as u64
    );

    // The server paired a handshake window with every site.
    assert_eq!(server.handshakes.len(), N_SITES);
    assert!(server.handshakes.iter().all(|h| h.is_some()));

    // The latency histograms saw the traffic.
    assert!(rec.histogram("net/frame_write_ns").count() > 0);
    assert!(rec.histogram("net/frame_read_ns").count() > 0);
    assert_eq!(rec.histogram("net/session_ns").count(), N_SITES as u64);
}

/// A drop-only adversarial link with server resends disabled: every
/// dropped frame stalls exactly one session attempt, so the observed
/// retry counters must cover the proxy's injected-drop ledger.
#[test]
fn observed_retries_cover_injected_drops() {
    let g = dataset_c(36);
    let (parts, _) = split(&g.data);

    let rec = RecordingRecorder::new();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let server_addr = listener.local_addr().expect("local addr");
    let mut plan = FaultPlan::clean(0xD20D);
    plan.drop = 0.15;
    let proxy = FaultProxy::spawn_observed(server_addr, plan, &rec).expect("spawn proxy");
    let proxy_addr = proxy.addr();

    let mut serve_opts = ServeOptions::new(N_SITES, params());
    serve_opts.read_timeout = Duration::from_millis(300);
    // No server-side resends: recovery is purely whole-session replay,
    // so one drop can never be absorbed silently by a resend.
    serve_opts.resend_attempts = 0;
    serve_opts.deadline = Duration::from_secs(45);
    serve_opts.drain_window = Duration::from_millis(1200);

    let sites: Vec<SiteOutcome> = std::thread::scope(|scope| {
        let server = scope.spawn(|| serve(listener, serve_opts, &rec));
        let handles: Vec<_> = parts
            .iter()
            .enumerate()
            .map(|(site, part)| {
                let mut opts = SiteOptions::new(site as u32, N_SITES as u32, params());
                opts.connect_timeout = Duration::from_secs(1);
                opts.read_timeout = Duration::from_millis(500);
                opts.retry = RetryPolicy {
                    attempts: 40,
                    base_delay: Duration::from_millis(10),
                    max_delay: Duration::from_millis(100),
                };
                let rec = &rec;
                scope.spawn(move || run_site(proxy_addr, part, &opts, rec))
            })
            .collect();
        let sites = handles
            .into_iter()
            .map(|h| {
                h.join()
                    .expect("site thread panicked")
                    .expect("site converges")
            })
            .collect();
        server
            .join()
            .expect("server thread panicked")
            .expect("server converges");
        sites
    });

    let dropped = proxy
        .stats()
        .dropped
        .load(std::sync::atomic::Ordering::Relaxed);
    let total_retries: u64 = (0..N_SITES)
        .map(|i| rec.counters(&format!("net/site[{i}]")).retries)
        .sum();
    assert!(
        total_retries >= dropped,
        "observed {total_retries} retries < {dropped} injected drops"
    );
    // The observed counters agree with the outcome-level attempt count.
    let outcome_retries: u64 = sites.iter().map(|s| (s.attempts - 1) as u64).sum();
    assert_eq!(total_retries, outcome_retries);
    // The proxy mirrored its ledger into the report scopes.
    let proxied =
        rec.counters("proxy/c2s").faults_dropped + rec.counters("proxy/s2c").faults_dropped;
    assert_eq!(proxied, dropped);
}

#[test]
fn fully_corrupted_link_is_rejected_by_checksums() {
    let g = dataset_c(33);
    let (parts, _) = split(&g.data);

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let server_addr = listener.local_addr().expect("local addr");
    // Every frame gets one bit flipped: nothing valid ever arrives.
    let mut plan = FaultPlan::clean(99);
    plan.bitflip = 1.0;
    let proxy = FaultProxy::spawn(server_addr, plan).expect("spawn proxy");
    let proxy_addr = proxy.addr();

    let mut serve_opts = ServeOptions::new(N_SITES, params());
    serve_opts.read_timeout = Duration::from_millis(200);
    serve_opts.deadline = Duration::from_secs(3);
    let server = std::thread::spawn(move || serve(listener, serve_opts, &NoopRecorder));

    let result = {
        let mut o = SiteOptions::new(0, N_SITES as u32, params());
        o.connect_timeout = Duration::from_millis(500);
        o.read_timeout = Duration::from_millis(300);
        o.retry = RetryPolicy {
            attempts: 3,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(10),
        };
        run_site(proxy_addr, &parts[0], &o, &NoopRecorder)
    };
    // The site never accepts a corrupt frame: it retries and exhausts.
    match result {
        Err(NetError::Exhausted { attempts, .. }) => assert_eq!(attempts, 3),
        other => panic!("expected Exhausted, got {other:?}"),
    }
    assert!(
        proxy
            .stats()
            .bitflipped
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0,
        "corruption was injected"
    );
    // The server never saw a valid model either and times out cleanly.
    match server.join().expect("server thread panicked") {
        Err(NetError::Deadline) => {}
        other => panic!("expected Deadline, got {other:?}"),
    }
}

#[test]
fn topology_mismatch_is_fatal_but_session_recovers() {
    let g = dataset_c(34);
    let (parts, _) = split(&g.data);

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let mut serve_opts = ServeOptions::new(1, params());
    serve_opts.drain_window = Duration::from_millis(150);
    serve_opts.deadline = Duration::from_secs(20);
    let server = std::thread::spawn(move || serve(listener, serve_opts, &NoopRecorder));

    // A site claiming the wrong topology is rejected without retries.
    let bad = {
        let mut o = SiteOptions::new(0, 2, params());
        o.retry = RetryPolicy::standard();
        run_site(addr, &parts[0], &o, &NoopRecorder)
    };
    match bad {
        Err(NetError::Handshake(reason)) => {
            assert!(reason.contains("site count"), "reason: {reason}")
        }
        other => panic!("expected Handshake rejection, got {other:?}"),
    }

    // The server survives the rejection and serves a correct site.
    let good = run_site(
        addr,
        &parts[0],
        &SiteOptions::new(0, 1, params()),
        &NoopRecorder,
    )
    .expect("correct site completes");
    assert_eq!(good.attempts, 1);
    let server = server.join().expect("server thread panicked");
    assert!(server.is_ok(), "server failed: {:?}", server.err());
}
