//! The admin plane over a real loopback fleet: mid-run `/metrics`
//! scrapes show live non-zero traffic bounded by the final totals, and
//! a scrape taken after `serve` returns equals the exit-time recorder
//! state — counter for counter, bucket for bucket — so the watch table
//! and the `--metrics-out` report can never disagree about a finished
//! run.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dbdc::{DbdcParams, EpsGlobal, Partitioner};
use dbdc_datagen::dataset_c;
use dbdc_net::{http_get, run_site, serve, AdminServer, AdminState, ServeOptions, SiteOptions};
use dbdc_obs::{NoopRecorder, RecordingRecorder, RunReport, SnapshotEngine, TelemetrySnapshot};

const N_SITES: usize = 4;

fn params() -> DbdcParams {
    DbdcParams::new(1.6, 5).with_eps_global(EpsGlobal::MultipleOfLocal(2.0))
}

fn scrape(addr: &str, path: &str) -> (u16, String) {
    http_get(addr, path, Duration::from_secs(5)).expect("admin endpoint reachable")
}

#[test]
fn admin_scrapes_track_a_live_fleet_exactly() {
    let g = dataset_c(31);
    let assignment = Partitioner::RandomEqual { seed: 7 }.assign(&g.data, N_SITES);
    let (parts, _) = g.data.partition(N_SITES, &assignment);

    // The admin plane sits on the server's recorder, exactly as
    // `dbdc-server --admin-addr` wires it.
    let rec = Arc::new(RecordingRecorder::new());
    let engine = SnapshotEngine::new(Arc::clone(&rec)).with_identity(
        "server",
        Some("adm1".into()),
        "server",
    );
    let report_rec = Arc::clone(&rec);
    let admin = AdminServer::spawn(
        "127.0.0.1:0",
        AdminState {
            engine,
            ready: Box::new(|| true),
            report: Box::new(move || {
                let mut r = RunReport::new("serve")
                    .with_identity("server", Some("adm1".into()), "server")
                    .with_param("clean", false);
                r.scopes = report_rec.scopes();
                r.hists = report_rec.hist_scopes();
                r.to_json_string()
            }),
        },
    )
    .expect("bind admin");
    let admin_addr = admin.addr().to_string();

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let server_addr = listener.local_addr().expect("local addr");
    let mut opts = ServeOptions::new(N_SITES, params());
    opts.drain_window = Duration::from_millis(300);
    let server_rec = Arc::clone(&rec);
    let server = std::thread::spawn(move || serve(listener, opts, &*server_rec));

    // Sites run with a noop recorder: the plane under test is the
    // server's. Mid-run, poll /metrics until the server has sent at
    // least one frame — a live reading taken while sockets are open.
    let mid = std::thread::scope(|scope| {
        for (site, part) in parts.iter().enumerate() {
            let opts = SiteOptions::new(site as u32, N_SITES as u32, params());
            scope.spawn(move || {
                run_site(server_addr, part, &opts, &NoopRecorder).expect("site session")
            });
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let (status, body) = scrape(&admin_addr, "/metrics");
            assert_eq!(status, 200);
            let snap = TelemetrySnapshot::from_prometheus(&body).expect("parse mid-run scrape");
            if snap.total().frames_sent > 0 {
                break snap;
            }
            assert!(Instant::now() < deadline, "no frames_sent observed in 30s");
            std::thread::sleep(Duration::from_millis(5));
        }
    });
    server.join().expect("server thread").expect("serve");

    // Liveness/readiness still answer after the run itself finished.
    assert_eq!(scrape(&admin_addr, "/healthz").0, 200);
    assert_eq!(scrape(&admin_addr, "/readyz").0, 200);

    // The final scrape IS the exit-time recorder state: every counter
    // scope and every histogram, exactly.
    let (status, body) = scrape(&admin_addr, "/metrics");
    assert_eq!(status, 200);
    let fin = TelemetrySnapshot::from_prometheus(&body).expect("parse final scrape");
    assert_eq!(fin.counters, rec.scopes());
    assert_eq!(fin.hists, rec.hist_scopes());
    assert!(fin.total().frames_sent > 0);
    assert_eq!(fin.identity.run_id.as_deref(), Some("adm1"));

    // Monotonic: the mid-run reading never exceeds the final one, in
    // any cell of any scope.
    for (scope, c) in &mid.counters {
        let f = fin
            .counters_for(scope)
            .expect("mid-run scope survives to the end");
        for ((m, fv), field) in c
            .values()
            .iter()
            .zip(f.values())
            .zip(dbdc_obs::Counters::FIELDS)
        {
            assert!(*m <= fv, "{scope}: mid-run {field}={m} exceeds final {fv}");
        }
    }

    // /report serves the same truth as a partial RunReport.
    let (status, body) = scrape(&admin_addr, "/report");
    assert_eq!(status, 200);
    let report = RunReport::parse(&body).expect("parse /report");
    assert_eq!(report.scopes, fin.counters);
    assert_eq!(report.role.as_deref(), Some("server"));
    admin.shutdown();
}
