//! Clustering labels and clustering comparison.
//!
//! A [`Clustering`] assigns every point of a dataset either to a cluster
//! (identified by a dense [`ClusterId`]) or to noise — exactly the output
//! shape of DBSCAN and of the DBDC relabeling step. The module also provides
//! the machinery needed by the paper's quality functions (per-pair cluster
//! intersection/union sizes via a contingency table) and two standard
//! external validity measures, the Adjusted Rand Index and Normalized Mutual
//! Information, which we use as independent baselines when evaluating the
//! paper's own P^I / P^II measures.

use std::collections::HashMap;

/// Identifier of a cluster within one clustering. Dense, starting at 0.
pub type ClusterId = u32;

/// The label of a single point: noise or a member of a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Label {
    /// The point does not belong to any cluster.
    Noise,
    /// The point belongs to the cluster with the given id.
    Cluster(ClusterId),
}

impl Label {
    /// Whether the label is [`Label::Noise`].
    #[inline]
    pub fn is_noise(&self) -> bool {
        matches!(self, Label::Noise)
    }

    /// The cluster id if the point is clustered.
    #[inline]
    pub fn cluster(&self) -> Option<ClusterId> {
        match self {
            Label::Noise => None,
            Label::Cluster(c) => Some(*c),
        }
    }
}

/// A flat partitioning clustering: one [`Label`] per point of a dataset.
///
/// Invariant maintained by the constructors: cluster ids are *dense* — every
/// id in `0..n_clusters()` labels at least one point.
///
/// ```
/// use dbdc_geom::{Clustering, Label};
///
/// let c = Clustering::from_labels(vec![
///     Label::Cluster(7), Label::Cluster(7), Label::Noise, Label::Cluster(9),
/// ]);
/// assert_eq!(c.n_clusters(), 2);       // ids are renumbered densely
/// assert_eq!(c.label(0), Label::Cluster(0));
/// assert_eq!(c.n_noise(), 1);
/// assert_eq!(c.members(1), vec![3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    labels: Vec<Label>,
    n_clusters: u32,
}

impl Clustering {
    /// Builds a clustering from per-point labels, renumbering cluster ids to
    /// be dense while preserving first-appearance order.
    pub fn from_labels(labels: Vec<Label>) -> Self {
        let mut remap: HashMap<ClusterId, ClusterId> = HashMap::new();
        let mut labels = labels;
        for l in labels.iter_mut() {
            if let Label::Cluster(c) = l {
                let next = remap.len() as u32;
                let dense = *remap.entry(*c).or_insert(next);
                *l = Label::Cluster(dense);
            }
        }
        Self {
            labels,
            n_clusters: remap.len() as u32,
        }
    }

    /// Builds a clustering that keeps the supplied cluster ids **verbatim**
    /// (no densification). Used where ids must stay comparable across
    /// several clusterings — e.g. global cluster ids shared by all DBDC
    /// sites. Ids in `0..n_clusters` may be unused.
    ///
    /// # Panics
    /// Panics if some label references a cluster id `>= n_clusters`.
    pub fn from_labels_verbatim(labels: Vec<Label>, n_clusters: u32) -> Self {
        for l in &labels {
            if let Label::Cluster(c) = l {
                assert!(
                    *c < n_clusters,
                    "label references cluster {c} >= n_clusters {n_clusters}"
                );
            }
        }
        Self { labels, n_clusters }
    }

    /// A clustering in which every point is noise.
    pub fn all_noise(n: usize) -> Self {
        Self {
            labels: vec![Label::Noise; n],
            n_clusters: 0,
        }
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the clustering covers no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of clusters.
    #[inline]
    pub fn n_clusters(&self) -> u32 {
        self.n_clusters
    }

    /// The label of point `i`.
    #[inline]
    pub fn label(&self, i: u32) -> Label {
        self.labels[i as usize]
    }

    /// All labels.
    #[inline]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Number of noise points.
    pub fn n_noise(&self) -> usize {
        self.labels.iter().filter(|l| l.is_noise()).count()
    }

    /// Cluster sizes, indexed by cluster id.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.n_clusters as usize];
        for l in &self.labels {
            if let Label::Cluster(c) = l {
                sizes[*c as usize] += 1;
            }
        }
        sizes
    }

    /// The point indices belonging to cluster `c`.
    pub fn members(&self, c: ClusterId) -> Vec<u32> {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(i, l)| (l.cluster() == Some(c)).then_some(i as u32))
            .collect()
    }
}

/// The contingency table between two clusterings of the same point set.
///
/// `count(a, b)` is the number of points in cluster `a` of the first
/// clustering and cluster `b` of the second; noise is tracked separately.
/// This is the shared substrate for the paper's quality functions (which
/// need `|C_d ∩ C_c|` and `|C_d ∪ C_c|` for the pair of clusters containing
/// each object) and for ARI / NMI.
#[derive(Debug, Clone)]
pub struct Contingency {
    /// `(cluster_a, cluster_b) -> |intersection|`, clustered points only.
    joint: HashMap<(ClusterId, ClusterId), usize>,
    sizes_a: Vec<usize>,
    sizes_b: Vec<usize>,
    /// Points that are noise in A but clustered in B.
    noise_a_only: usize,
    /// Points that are noise in B but clustered in A.
    noise_b_only: usize,
    /// Points that are noise in both.
    noise_both: usize,
    n: usize,
}

impl Contingency {
    /// Builds the contingency table of two clusterings.
    ///
    /// # Panics
    /// Panics if the clusterings cover a different number of points.
    pub fn new(a: &Clustering, b: &Clustering) -> Self {
        assert_eq!(a.len(), b.len(), "clusterings must cover the same points");
        let mut joint: HashMap<(ClusterId, ClusterId), usize> = HashMap::new();
        let mut noise_a_only = 0;
        let mut noise_b_only = 0;
        let mut noise_both = 0;
        for (la, lb) in a.labels().iter().zip(b.labels().iter()) {
            match (la.cluster(), lb.cluster()) {
                (Some(ca), Some(cb)) => *joint.entry((ca, cb)).or_insert(0) += 1,
                (None, Some(_)) => noise_a_only += 1,
                (Some(_), None) => noise_b_only += 1,
                (None, None) => noise_both += 1,
            }
        }
        Self {
            joint,
            sizes_a: a.cluster_sizes(),
            sizes_b: b.cluster_sizes(),
            noise_a_only,
            noise_b_only,
            noise_both,
            n: a.len(),
        }
    }

    /// Number of points clustered in both clusterings that lie in cluster
    /// `a` of the first and cluster `b` of the second.
    #[inline]
    pub fn intersection(&self, a: ClusterId, b: ClusterId) -> usize {
        self.joint.get(&(a, b)).copied().unwrap_or(0)
    }

    /// `|C_a ∪ C_b|` where `C_a`, `C_b` are clusters of the two clusterings.
    #[inline]
    pub fn union(&self, a: ClusterId, b: ClusterId) -> usize {
        self.sizes_a[a as usize] + self.sizes_b[b as usize] - self.intersection(a, b)
    }

    /// Size of cluster `a` in the first clustering.
    pub fn size_a(&self, a: ClusterId) -> usize {
        self.sizes_a[a as usize]
    }

    /// Size of cluster `b` in the second clustering.
    pub fn size_b(&self, b: ClusterId) -> usize {
        self.sizes_b[b as usize]
    }

    /// Points that are noise in the first but clustered in the second.
    pub fn noise_a_only(&self) -> usize {
        self.noise_a_only
    }

    /// Points that are noise in the second but clustered in the first.
    pub fn noise_b_only(&self) -> usize {
        self.noise_b_only
    }

    /// Points that are noise in both clusterings.
    pub fn noise_both(&self) -> usize {
        self.noise_both
    }

    /// Total number of points.
    pub fn n(&self) -> usize {
        self.n
    }
}

fn comb2(n: usize) -> f64 {
    let n = n as f64;
    n * (n - 1.0) / 2.0
}

/// Adjusted Rand Index between two clusterings, treating noise as a regular
/// class (the common convention when evaluating DBSCAN-family algorithms).
/// Returns a value in `[-1, 1]`; 1 means identical partitions.
pub fn adjusted_rand_index(a: &Clustering, b: &Clustering) -> f64 {
    assert_eq!(a.len(), b.len(), "clusterings must cover the same points");
    let n = a.len();
    if n == 0 {
        return 1.0;
    }
    // Treat noise as one extra class on each side.
    let key = |l: Label| -> i64 {
        match l {
            Label::Noise => -1,
            Label::Cluster(c) => c as i64,
        }
    };
    let mut joint: HashMap<(i64, i64), usize> = HashMap::new();
    let mut rows: HashMap<i64, usize> = HashMap::new();
    let mut cols: HashMap<i64, usize> = HashMap::new();
    for (la, lb) in a.labels().iter().zip(b.labels().iter()) {
        let (ka, kb) = (key(*la), key(*lb));
        *joint.entry((ka, kb)).or_insert(0) += 1;
        *rows.entry(ka).or_insert(0) += 1;
        *cols.entry(kb).or_insert(0) += 1;
    }
    let sum_joint: f64 = joint.values().map(|&v| comb2(v)).sum();
    let sum_rows: f64 = rows.values().map(|&v| comb2(v)).sum();
    let sum_cols: f64 = cols.values().map(|&v| comb2(v)).sum();
    let total = comb2(n);
    let expected = sum_rows * sum_cols / total;
    let max_index = 0.5 * (sum_rows + sum_cols);
    if (max_index - expected).abs() < f64::EPSILON {
        // Both partitions are trivial (all singletons or one block).
        return 1.0;
    }
    (sum_joint - expected) / (max_index - expected)
}

/// Normalized Mutual Information (arithmetic normalization) between two
/// clusterings, treating noise as a regular class. Returns a value in
/// `[0, 1]`; 1 means identical partitions.
pub fn normalized_mutual_information(a: &Clustering, b: &Clustering) -> f64 {
    assert_eq!(a.len(), b.len(), "clusterings must cover the same points");
    let n = a.len();
    if n == 0 {
        return 1.0;
    }
    let key = |l: Label| -> i64 {
        match l {
            Label::Noise => -1,
            Label::Cluster(c) => c as i64,
        }
    };
    let mut joint: HashMap<(i64, i64), usize> = HashMap::new();
    let mut rows: HashMap<i64, usize> = HashMap::new();
    let mut cols: HashMap<i64, usize> = HashMap::new();
    for (la, lb) in a.labels().iter().zip(b.labels().iter()) {
        let (ka, kb) = (key(*la), key(*lb));
        *joint.entry((ka, kb)).or_insert(0) += 1;
        *rows.entry(ka).or_insert(0) += 1;
        *cols.entry(kb).or_insert(0) += 1;
    }
    let n = n as f64;
    let mut mi = 0.0;
    for (&(ka, kb), &nij) in &joint {
        let nij = nij as f64;
        let ni = rows[&ka] as f64;
        let nj = cols[&kb] as f64;
        mi += (nij / n) * ((n * nij) / (ni * nj)).ln();
    }
    let h = |counts: &HashMap<i64, usize>| -> f64 {
        counts
            .values()
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.ln()
            })
            .sum()
    };
    let (ha, hb) = (h(&rows), h(&cols));
    if ha == 0.0 && hb == 0.0 {
        return 1.0;
    }
    let denom = 0.5 * (ha + hb);
    if denom == 0.0 {
        return 0.0;
    }
    (mi / denom).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn c(ids: &[i64]) -> Clustering {
        Clustering::from_labels(
            ids.iter()
                .map(|&i| {
                    if i < 0 {
                        Label::Noise
                    } else {
                        Label::Cluster(i as u32)
                    }
                })
                .collect(),
        )
    }

    #[test]
    fn densifies_cluster_ids() {
        let cl = c(&[5, 5, 9, -1, 9, 7]);
        assert_eq!(cl.n_clusters(), 3);
        assert_eq!(cl.label(0), Label::Cluster(0));
        assert_eq!(cl.label(2), Label::Cluster(1));
        assert_eq!(cl.label(5), Label::Cluster(2));
        assert_eq!(cl.label(3), Label::Noise);
        assert_eq!(cl.n_noise(), 1);
    }

    #[test]
    fn sizes_and_members() {
        let cl = c(&[0, 0, 1, -1, 1, 1]);
        assert_eq!(cl.cluster_sizes(), vec![2, 3]);
        assert_eq!(cl.members(1), vec![2, 4, 5]);
        assert_eq!(cl.members(0), vec![0, 1]);
    }

    #[test]
    fn all_noise() {
        let cl = Clustering::all_noise(4);
        assert_eq!(cl.n_clusters(), 0);
        assert_eq!(cl.n_noise(), 4);
        assert!(!cl.is_empty());
        assert!(Clustering::all_noise(0).is_empty());
    }

    #[test]
    fn contingency_counts() {
        // A: [0,0,1,1,-]   B: [0,1,1,1,-]
        let a = c(&[0, 0, 1, 1, -1]);
        let b = c(&[0, 1, 1, 1, -1]);
        let t = Contingency::new(&a, &b);
        assert_eq!(t.intersection(0, 0), 1);
        assert_eq!(t.intersection(0, 1), 1);
        assert_eq!(t.intersection(1, 1), 2);
        assert_eq!(t.intersection(1, 0), 0);
        assert_eq!(t.union(0, 1), 2 + 3 - 1);
        assert_eq!(t.noise_both(), 1);
        assert_eq!(t.noise_a_only(), 0);
        assert_eq!(t.noise_b_only(), 0);
        assert_eq!(t.n(), 5);
        assert_eq!(t.size_a(1), 2);
        assert_eq!(t.size_b(1), 3);
    }

    #[test]
    fn contingency_noise_asymmetry() {
        let a = c(&[-1, 0, 0]);
        let b = c(&[0, 0, -1]);
        let t = Contingency::new(&a, &b);
        assert_eq!(t.noise_a_only(), 1);
        assert_eq!(t.noise_b_only(), 1);
        assert_eq!(t.noise_both(), 0);
    }

    #[test]
    fn ari_identical_is_one() {
        let a = c(&[0, 0, 1, 1, -1, 2]);
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ari_permuted_ids_is_one() {
        let a = c(&[0, 0, 1, 1]);
        let b = c(&[1, 1, 0, 0]);
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ari_independent_is_low() {
        let a = c(&[0, 0, 0, 1, 1, 1]);
        let b = c(&[0, 1, 0, 1, 0, 1]);
        assert!(adjusted_rand_index(&a, &b) < 0.2);
    }

    #[test]
    fn nmi_identical_is_one() {
        let a = c(&[0, 0, 1, 1, -1]);
        assert!((normalized_mutual_information(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nmi_independent_is_low() {
        let a = c(&[0, 0, 0, 0, 1, 1, 1, 1]);
        let b = c(&[0, 1, 0, 1, 0, 1, 0, 1]);
        assert!(normalized_mutual_information(&a, &b) < 1e-9);
    }

    #[test]
    fn empty_clusterings_compare_equal() {
        let a = Clustering::all_noise(0);
        assert_eq!(adjusted_rand_index(&a, &a), 1.0);
        assert_eq!(normalized_mutual_information(&a, &a), 1.0);
    }

    fn arb_labels(n: usize) -> impl Strategy<Value = Clustering> {
        prop::collection::vec(-1i64..4, n).prop_map(|v| c(&v))
    }

    proptest! {
        #[test]
        fn ari_symmetric(a in arb_labels(24), b in arb_labels(24)) {
            let ab = adjusted_rand_index(&a, &b);
            let ba = adjusted_rand_index(&b, &a);
            prop_assert!((ab - ba).abs() < 1e-9);
            prop_assert!((-1.0..=1.0 + 1e-9).contains(&ab));
        }

        #[test]
        fn nmi_symmetric_and_bounded(a in arb_labels(24), b in arb_labels(24)) {
            let ab = normalized_mutual_information(&a, &b);
            let ba = normalized_mutual_information(&b, &a);
            prop_assert!((ab - ba).abs() < 1e-9);
            prop_assert!((0.0..=1.0).contains(&ab));
        }

        #[test]
        fn self_comparison_is_perfect(a in arb_labels(24)) {
            prop_assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-9);
            prop_assert!((normalized_mutual_information(&a, &a) - 1.0).abs() < 1e-9);
        }

        #[test]
        fn contingency_totals(a in arb_labels(32), b in arb_labels(32)) {
            let t = Contingency::new(&a, &b);
            let joint_total: usize = (0..a.n_clusters())
                .flat_map(|ca| (0..b.n_clusters()).map(move |cb| (ca, cb)))
                .map(|(ca, cb)| t.intersection(ca, cb))
                .sum();
            let total = joint_total + t.noise_a_only() + t.noise_b_only() + t.noise_both();
            prop_assert_eq!(total, t.n());
        }
    }
}
