//! Axis-aligned bounding rectangles.
//!
//! These are the workhorse of the R*-tree (node bounding boxes, the split
//! heuristics' area/margin/overlap computations) and of the grid index
//! (cell extents). They are dimension-generic.

/// An axis-aligned, possibly degenerate, `d`-dimensional rectangle.
///
/// Invariant: `lo[i] <= hi[i]` for every dimension `i`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rect {
    lo: Box<[f64]>,
    hi: Box<[f64]>,
}

impl Rect {
    /// Creates a rectangle from lower and upper corners.
    ///
    /// # Panics
    /// Panics if the corners have different dimensionality, are empty, or if
    /// `lo[i] > hi[i]` for some `i`.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "corner dimensionality mismatch");
        assert!(!lo.is_empty(), "a rect must have at least 1 dimension");
        assert!(
            lo.iter().zip(hi.iter()).all(|(l, h)| l <= h),
            "lower corner must not exceed upper corner"
        );
        Self {
            lo: lo.into_boxed_slice(),
            hi: hi.into_boxed_slice(),
        }
    }

    /// The degenerate rectangle covering exactly one point.
    pub fn point(p: &[f64]) -> Self {
        Self::new(p.to_vec(), p.to_vec())
    }

    /// The smallest rectangle containing every point yielded by `points`.
    /// Returns `None` if the iterator is empty.
    pub fn bounding<'a>(mut points: impl Iterator<Item = &'a [f64]>) -> Option<Self> {
        let first = points.next()?;
        let mut lo = first.to_vec();
        let mut hi = first.to_vec();
        for p in points {
            for (i, &c) in p.iter().enumerate() {
                if c < lo[i] {
                    lo[i] = c;
                }
                if c > hi[i] {
                    hi[i] = c;
                }
            }
        }
        Some(Self::new(lo, hi))
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Lower corner.
    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper corner.
    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Center point of the rectangle.
    pub fn center(&self) -> Vec<f64> {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .map(|(l, h)| 0.5 * (l + h))
            .collect()
    }

    /// Hyper-volume (`prod(hi - lo)`); zero for degenerate rectangles.
    pub fn area(&self) -> f64 {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .map(|(l, h)| h - l)
            .product()
    }

    /// Sum of edge lengths — the R*-tree split heuristic's "margin".
    pub fn margin(&self) -> f64 {
        self.lo.iter().zip(self.hi.iter()).map(|(l, h)| h - l).sum()
    }

    /// Whether `p` lies inside (or on the boundary of) the rectangle.
    #[inline]
    pub fn contains_point(&self, p: &[f64]) -> bool {
        debug_assert_eq!(p.len(), self.dim());
        self.lo
            .iter()
            .zip(self.hi.iter())
            .zip(p.iter())
            .all(|((l, h), c)| l <= c && c <= h)
    }

    /// Whether `other` is fully contained in `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.lo.iter().zip(other.lo.iter()).all(|(a, b)| a <= b)
            && self.hi.iter().zip(other.hi.iter()).all(|(a, b)| a >= b)
    }

    /// Whether the two rectangles intersect (boundary contact counts).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .zip(other.lo.iter().zip(other.hi.iter()))
            .all(|((al, ah), (bl, bh))| al <= bh && bl <= ah)
    }

    /// Volume of the intersection of the two rectangles (0 if disjoint).
    pub fn overlap(&self, other: &Rect) -> f64 {
        let mut v = 1.0;
        for i in 0..self.dim() {
            let l = self.lo[i].max(other.lo[i]);
            let h = self.hi[i].min(other.hi[i]);
            if l >= h {
                return 0.0;
            }
            v *= h - l;
        }
        v
    }

    /// The smallest rectangle containing both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        let lo = self
            .lo
            .iter()
            .zip(other.lo.iter())
            .map(|(a, b)| a.min(*b))
            .collect();
        let hi = self
            .hi
            .iter()
            .zip(other.hi.iter())
            .map(|(a, b)| a.max(*b))
            .collect();
        Rect::new(lo, hi)
    }

    /// Grows the rectangle in place to cover `p`.
    pub fn expand_to_point(&mut self, p: &[f64]) {
        for (i, &c) in p.iter().enumerate() {
            if c < self.lo[i] {
                self.lo[i] = c;
            }
            if c > self.hi[i] {
                self.hi[i] = c;
            }
        }
    }

    /// Grows the rectangle in place to cover `other`.
    pub fn expand_to_rect(&mut self, other: &Rect) {
        for i in 0..self.dim() {
            if other.lo[i] < self.lo[i] {
                self.lo[i] = other.lo[i];
            }
            if other.hi[i] > self.hi[i] {
                self.hi[i] = other.hi[i];
            }
        }
    }

    /// Increase in area needed to cover `other` — the R-tree insertion
    /// heuristic's "area enlargement".
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Minimum Euclidean distance from `p` to the rectangle (0 if inside).
    pub fn min_dist(&self, p: &[f64]) -> f64 {
        self.min_dist_sq(p).sqrt()
    }

    /// Squared minimum Euclidean distance from `p` to the rectangle.
    pub fn min_dist_sq(&self, p: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (i, &c) in p.iter().enumerate() {
            let d = if c < self.lo[i] {
                self.lo[i] - c
            } else if c > self.hi[i] {
                c - self.hi[i]
            } else {
                0.0
            };
            acc += d * d;
        }
        acc
    }

    /// Squared distance from `p` to the farthest corner of the rectangle.
    /// Used for pruning in nearest-neighbour searches.
    pub fn max_dist_sq(&self, p: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (i, &c) in p.iter().enumerate() {
            let d = (c - self.lo[i]).abs().max((c - self.hi[i]).abs());
            acc += d * d;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(lo: [f64; 2], hi: [f64; 2]) -> Rect {
        Rect::new(lo.to_vec(), hi.to_vec())
    }

    #[test]
    fn area_margin_center() {
        let a = r([0.0, 0.0], [2.0, 3.0]);
        assert_eq!(a.area(), 6.0);
        assert_eq!(a.margin(), 5.0);
        assert_eq!(a.center(), vec![1.0, 1.5]);
    }

    #[test]
    fn degenerate_point_rect() {
        let p = Rect::point(&[1.0, -2.0]);
        assert_eq!(p.area(), 0.0);
        assert!(p.contains_point(&[1.0, -2.0]));
        assert!(!p.contains_point(&[1.0, -2.1]));
    }

    #[test]
    #[should_panic(expected = "lower corner")]
    fn rejects_inverted_corners() {
        let _ = r([1.0, 0.0], [0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn rejects_mismatched_dims() {
        let _ = Rect::new(vec![0.0], vec![1.0, 1.0]);
    }

    #[test]
    fn intersection_and_overlap() {
        let a = r([0.0, 0.0], [2.0, 2.0]);
        let b = r([1.0, 1.0], [3.0, 3.0]);
        let c = r([5.0, 5.0], [6.0, 6.0]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert_eq!(a.overlap(&b), 1.0);
        assert_eq!(a.overlap(&c), 0.0);
        // Boundary contact intersects but has zero overlap volume.
        let d = r([2.0, 0.0], [4.0, 2.0]);
        assert!(a.intersects(&d));
        assert_eq!(a.overlap(&d), 0.0);
    }

    #[test]
    fn union_and_enlargement() {
        let a = r([0.0, 0.0], [1.0, 1.0]);
        let b = r([2.0, 2.0], [3.0, 3.0]);
        let u = a.union(&b);
        assert_eq!(u, r([0.0, 0.0], [3.0, 3.0]));
        assert_eq!(a.enlargement(&b), 9.0 - 1.0);
        assert_eq!(a.enlargement(&a), 0.0);
    }

    #[test]
    fn containment() {
        let a = r([0.0, 0.0], [4.0, 4.0]);
        let b = r([1.0, 1.0], [2.0, 2.0]);
        assert!(a.contains_rect(&b));
        assert!(!b.contains_rect(&a));
        assert!(a.contains_rect(&a));
    }

    #[test]
    fn expansion() {
        let mut a = r([0.0, 0.0], [1.0, 1.0]);
        a.expand_to_point(&[-1.0, 2.0]);
        assert_eq!(a, r([-1.0, 0.0], [1.0, 2.0]));
        a.expand_to_rect(&r([0.0, -3.0], [5.0, 0.0]));
        assert_eq!(a, r([-1.0, -3.0], [5.0, 2.0]));
    }

    #[test]
    fn min_dist_inside_and_outside() {
        let a = r([0.0, 0.0], [2.0, 2.0]);
        assert_eq!(a.min_dist(&[1.0, 1.0]), 0.0);
        assert_eq!(a.min_dist(&[5.0, 2.0]), 3.0);
        assert_eq!(a.min_dist(&[5.0, 6.0]), 5.0);
    }

    #[test]
    fn max_dist_from_center() {
        let a = r([0.0, 0.0], [2.0, 2.0]);
        assert_eq!(a.max_dist_sq(&[1.0, 1.0]), 2.0);
        assert_eq!(a.max_dist_sq(&[0.0, 0.0]), 8.0);
    }

    #[test]
    fn bounding_of_points() {
        let pts: Vec<Vec<f64>> = vec![vec![1.0, 5.0], vec![-2.0, 0.0], vec![3.0, 2.0]];
        let b = Rect::bounding(pts.iter().map(|p| p.as_slice())).unwrap();
        assert_eq!(b, r([-2.0, 0.0], [3.0, 5.0]));
        assert!(Rect::bounding(std::iter::empty()).is_none());
    }

    fn arb_rect() -> impl Strategy<Value = Rect> {
        (
            prop::collection::vec(-100.0..100.0f64, 2),
            prop::collection::vec(0.0..50.0f64, 2),
        )
            .prop_map(|(lo, ext)| {
                let hi = lo.iter().zip(ext.iter()).map(|(l, e)| l + e).collect();
                Rect::new(lo, hi)
            })
    }

    proptest! {
        #[test]
        fn union_contains_both(a in arb_rect(), b in arb_rect()) {
            let u = a.union(&b);
            prop_assert!(u.contains_rect(&a));
            prop_assert!(u.contains_rect(&b));
        }

        #[test]
        fn overlap_symmetric_and_bounded(a in arb_rect(), b in arb_rect()) {
            let ab = a.overlap(&b);
            prop_assert!((ab - b.overlap(&a)).abs() < 1e-9);
            prop_assert!(ab <= a.area() + 1e-9);
            prop_assert!(ab <= b.area() + 1e-9);
        }

        #[test]
        fn min_dist_zero_iff_contained(a in arb_rect(), p in prop::collection::vec(-150.0..150.0f64, 2)) {
            let d = a.min_dist(&p);
            if a.contains_point(&p) {
                prop_assert_eq!(d, 0.0);
            } else {
                prop_assert!(d > 0.0);
            }
            prop_assert!(a.min_dist_sq(&p) <= a.max_dist_sq(&p) + 1e-9);
        }

        #[test]
        fn enlargement_non_negative(a in arb_rect(), b in arb_rect()) {
            prop_assert!(a.enlargement(&b) >= -1e-9);
        }
    }
}
