//! Coordinate precision selector for the scan-heavy index paths.
//!
//! The default `F64` path stores leaf coordinates as `f64` and is
//! bit-exact with the scalar oracle everywhere. The opt-in `F32` path
//! stores the SoA leaf blocks as `f32` and runs the batched surrogate
//! kernels in single precision, halving the memory traffic of the
//! ε-range scan loop. Queries and tree bounds stay `f64`: only the
//! per-point candidate test is approximate, so results can differ from
//! the `f64` oracle for points whose distance to the query is within
//! rounding distance of ε. The tradeoff is reported (label agreement,
//! DBCV delta), never silently gated on identity.

/// Which representation the index stores its leaf coordinate blocks in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Double precision — bit-exact, the oracle path.
    #[default]
    F64,
    /// Single-precision SoA leaf blocks + f32 surrogate kernels —
    /// approximate near the ε boundary, half the scan bandwidth.
    F32,
}

impl Precision {
    /// Every precision, for sweeps.
    pub const ALL: [Precision; 2] = [Precision::F64, Precision::F32];

    /// Stable lowercase name (CLI value, report key).
    pub fn name(&self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Precision {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "f64" | "double" => Ok(Precision::F64),
            "f32" | "single" => Ok(Precision::F32),
            other => Err(format!(
                "unknown precision {other:?} (expected \"f64\" or \"f32\")"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in Precision::ALL {
            assert_eq!(p.name().parse::<Precision>().unwrap(), p);
        }
        assert_eq!("double".parse::<Precision>().unwrap(), Precision::F64);
        assert_eq!("single".parse::<Precision>().unwrap(), Precision::F32);
        assert!("f16".parse::<Precision>().is_err());
    }

    #[test]
    fn default_is_f64() {
        assert_eq!(Precision::default(), Precision::F64);
    }
}
