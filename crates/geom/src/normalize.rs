//! Feature normalization.
//!
//! DBSCAN's single ε treats every dimension alike, so features on wildly
//! different scales (euros vs. visit counts in the retail example) must be
//! normalized before clustering. Two standard scalers are provided; both
//! are fitted on one dataset and can then be applied to others (e.g. fit on
//! a reference site, apply on every site — the transform must agree across
//! DBDC sites or their models would live in different spaces).

use crate::dataset::Dataset;

/// A fitted per-dimension affine transform `x' = (x - offset) / scale`.
#[derive(Debug, Clone, PartialEq)]
pub struct Scaler {
    offset: Vec<f64>,
    scale: Vec<f64>,
}

impl Scaler {
    /// Fits a min-max scaler mapping each dimension of `data` to `[0, 1]`.
    /// Constant dimensions map to 0.
    ///
    /// # Panics
    /// Panics if `data` is empty.
    pub fn min_max(data: &Dataset) -> Self {
        assert!(!data.is_empty(), "cannot fit a scaler on an empty dataset");
        let bbox = data.bounding_rect().expect("non-empty");
        let offset = bbox.lo().to_vec();
        let scale = bbox
            .lo()
            .iter()
            .zip(bbox.hi())
            .map(|(l, h)| {
                let s = h - l;
                if s > 0.0 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Self { offset, scale }
    }

    /// Fits a z-score scaler (mean 0, standard deviation 1 per dimension).
    /// Constant dimensions map to 0.
    ///
    /// # Panics
    /// Panics if `data` is empty.
    pub fn z_score(data: &Dataset) -> Self {
        assert!(!data.is_empty(), "cannot fit a scaler on an empty dataset");
        let (n, dim) = (data.len() as f64, data.dim());
        let mut mean = vec![0.0; dim];
        for p in data.iter() {
            for (m, &x) in mean.iter_mut().zip(p) {
                *m += x;
            }
        }
        for m in mean.iter_mut() {
            *m /= n;
        }
        let mut var = vec![0.0; dim];
        for p in data.iter() {
            for ((v, &m), &x) in var.iter_mut().zip(&mean).zip(p) {
                *v += (x - m) * (x - m);
            }
        }
        let scale = var
            .iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 0.0 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Self {
            offset: mean,
            scale,
        }
    }

    /// Applies the transform, producing a new dataset.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    pub fn apply(&self, data: &Dataset) -> Dataset {
        assert_eq!(data.dim(), self.offset.len(), "dimensionality mismatch");
        let mut out = Dataset::with_capacity(data.dim(), data.len());
        let mut buf = vec![0.0; data.dim()];
        for p in data.iter() {
            for (b, ((&x, &o), &s)) in buf
                .iter_mut()
                .zip(p.iter().zip(&self.offset).zip(&self.scale))
            {
                *b = (x - o) / s;
            }
            out.push(&buf);
        }
        out
    }

    /// Inverts the transform for a single point (e.g. to report centroids in
    /// original units).
    pub fn invert(&self, p: &[f64]) -> Vec<f64> {
        assert_eq!(p.len(), self.offset.len(), "dimensionality mismatch");
        p.iter()
            .zip(&self.offset)
            .zip(&self.scale)
            .map(|((&x, &o), &s)| x * s + o)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed() -> Dataset {
        // x in [0, 1000], y in [0, 1].
        Dataset::from_flat(2, vec![0.0, 0.0, 500.0, 0.5, 1000.0, 1.0, 250.0, 0.25])
    }

    #[test]
    fn min_max_maps_to_unit_box() {
        let d = skewed();
        let scaler = Scaler::min_max(&d);
        let t = scaler.apply(&d);
        let bbox = t.bounding_rect().unwrap();
        assert_eq!(bbox.lo(), &[0.0, 0.0]);
        assert_eq!(bbox.hi(), &[1.0, 1.0]);
        // Both dimensions now contribute equally.
        assert_eq!(t.point(1), &[0.5, 0.5]);
    }

    #[test]
    fn z_score_centers_and_scales() {
        let d = skewed();
        let scaler = Scaler::z_score(&d);
        let t = scaler.apply(&d);
        for dim in 0..2 {
            let mean: f64 = t.iter().map(|p| p[dim]).sum::<f64>() / t.len() as f64;
            let var: f64 = t.iter().map(|p| p[dim] * p[dim]).sum::<f64>() / t.len() as f64;
            assert!(mean.abs() < 1e-12, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-9, "variance {var}");
        }
    }

    #[test]
    fn constant_dimension_is_safe() {
        let d = Dataset::from_flat(2, vec![5.0, 1.0, 5.0, 2.0, 5.0, 3.0]);
        for scaler in [Scaler::min_max(&d), Scaler::z_score(&d)] {
            let t = scaler.apply(&d);
            assert!(t.iter().all(|p| p[0].abs() < 1e-12 || p[0] == 0.0));
            assert!(t.iter().all(|p| p.iter().all(|c| c.is_finite())));
        }
    }

    #[test]
    fn invert_round_trips() {
        let d = skewed();
        for scaler in [Scaler::min_max(&d), Scaler::z_score(&d)] {
            let t = scaler.apply(&d);
            for (orig, trans) in d.iter().zip(t.iter()) {
                let back = scaler.invert(trans);
                for (a, b) in orig.iter().zip(&back) {
                    assert!((a - b).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn fitted_transform_is_portable() {
        // Fit on one "site", apply to another: the transform must be the
        // same function, not re-fitted.
        let site_a = skewed();
        let scaler = Scaler::min_max(&site_a);
        let mut site_b = Dataset::new(2);
        site_b.push(&[2000.0, 2.0]); // outside site A's range
        let t = scaler.apply(&site_b);
        assert_eq!(t.point(0), &[2.0, 2.0]); // linear extension, not clamped
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty_fit() {
        let _ = Scaler::min_max(&Dataset::new(2));
    }
}
